//! End-to-end pipeline tests: run every benchmark on the instrumented
//! uniprocessor runtime, translate, extrapolate, and sanity-check the
//! predicted metrics.

use perf_extrap::prelude::*;

#[test]
fn every_benchmark_flows_through_the_full_pipeline() {
    for bench in Bench::all() {
        for n in [1usize, 4, 8] {
            let measured = bench.trace(n, Scale::Tiny);
            measured.validate().unwrap();
            let traces = translate(&measured, TranslateOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
            traces.validate().unwrap();
            let pred = extrapolate(&traces, &machine::default_distributed())
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
            assert_eq!(pred.n_threads, n, "{}", bench.name());
            assert!(
                pred.exec_time() >= traces.makespan(),
                "{}: a real machine cannot beat the ideal makespan ({} < {})",
                bench.name(),
                pred.exec_time(),
                traces.makespan()
            );
            pred.predicted.validate().unwrap();
            assert_eq!(pred.predicted.makespan(), pred.exec_time());
        }
    }
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run_once = || {
        let measured = Bench::Sparse.trace(4, Scale::Tiny);
        let traces = translate(&measured, TranslateOptions::default()).unwrap();
        let pred = extrapolate(&traces, &machine::cm5()).unwrap();
        (measured, pred.exec_time(), pred.predicted)
    };
    let (m1, t1, p1) = run_once();
    let (m2, t2, p2) = run_once();
    assert_eq!(m1, m2, "uniprocessor traces must be bit-identical");
    assert_eq!(t1, t2);
    assert_eq!(p1, p2);
}

#[test]
fn trace_files_round_trip_through_disk() {
    let dir = std::env::temp_dir().join("extrap-pipeline-test");
    std::fs::create_dir_all(&dir).unwrap();

    let measured = Bench::Cyclic.trace(4, Scale::Tiny);
    let program_path = dir.join("cyclic.xtrp");
    perf_extrap::trace::writer::write_program_file(&program_path, &measured).unwrap();
    let back = perf_extrap::trace::reader::read_program_file(&program_path).unwrap();
    assert_eq!(measured, back);

    let traces = translate(&measured, TranslateOptions::default()).unwrap();
    let set_path = dir.join("cyclic.xtps");
    perf_extrap::trace::writer::write_set_file(&set_path, &traces).unwrap();
    let back = perf_extrap::trace::reader::read_set_file(&set_path).unwrap();
    assert_eq!(traces, back);

    // Predictions from the on-disk copy match the in-memory one.
    let a = extrapolate(&traces, &machine::cm5()).unwrap().exec_time();
    let b = extrapolate(&back, &machine::cm5()).unwrap().exec_time();
    assert_eq!(a, b);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn translation_intrusion_compensation_shrinks_times() {
    // Charging a recording overhead on the runtime and compensating it in
    // translation recovers (approximately) the uncompensated timing.
    let clean = Program::new(4).run(|ctx| {
        ctx.charge(DurationNs::from_us(100.0));
        ctx.barrier();
    });
    let noisy_program = Program::new(4).with_event_overhead(DurationNs::from_us(5.0));
    let noisy = noisy_program.run(|ctx| {
        ctx.charge(DurationNs::from_us(100.0));
        ctx.barrier();
    });

    let clean_set = translate(&clean, TranslateOptions::default()).unwrap();
    let uncompensated = translate(&noisy, TranslateOptions::default()).unwrap();
    let compensated = translate(
        &noisy,
        TranslateOptions {
            event_overhead: DurationNs::from_us(5.0),
            switch_overhead: DurationNs::ZERO,
        },
    )
    .unwrap();

    assert!(uncompensated.makespan() > clean_set.makespan());
    assert_eq!(compensated.makespan(), clean_set.makespan());
}

#[test]
fn config_files_drive_the_simulation() {
    let text = machine::cm5().to_config_text();
    let parsed = SimParams::from_config_text(&text).unwrap();
    let traces = translate(
        &Bench::Embar.trace(4, Scale::Tiny),
        TranslateOptions::default(),
    )
    .unwrap();
    let a = extrapolate(&traces, &machine::cm5()).unwrap().exec_time();
    let b = extrapolate(&traces, &parsed).unwrap().exec_time();
    assert_eq!(a, b);
}
