//! Property-based tests of the extrapolation models over randomized
//! synthetic phase programs.

use perf_extrap::prelude::*;
use proptest::prelude::*;

/// One thread's work in one phase: compute ns + optional remote access
/// (owner offset, declared bytes).
type PhaseSpec = (u64, Option<(u32, u32)>);

/// Strategy: a random phase-structured program description.
fn arb_program() -> impl Strategy<Value = (usize, Vec<Vec<PhaseSpec>>)> {
    // threads in 1..=8; 1..6 phases; per thread per phase: compute in
    // 1..500us and an optional remote access (owner offset, bytes).
    (1usize..=8).prop_flat_map(|n| {
        let phase = proptest::collection::vec(
            (1_000u64..500_000, proptest::option::of((1u32..8, 1u32..100_000))),
            n,
        );
        (Just(n), proptest::collection::vec(phase, 1..6))
    })
}

fn build(n: usize, phases: &[Vec<PhaseSpec>]) -> TraceSet {
    let mut p = PhaseProgram::new(n);
    for phase in phases {
        let work = phase
            .iter()
            .enumerate()
            .map(|(t, &(compute, access))| {
                let mut w = perf_extrap::trace::PhaseWork {
                    compute: DurationNs(compute),
                    accesses: vec![],
                };
                if let Some((owner_off, bytes)) = access {
                    let owner = (t + owner_off as usize) % n;
                    if owner != t {
                        w.accesses.push(perf_extrap::trace::PhaseAccess {
                            after: DurationNs(compute / 2),
                            owner: ThreadId::from_index(owner),
                            element: ElementId::from_index(t),
                            declared_bytes: bytes.max(1),
                            actual_bytes: (bytes / 4).max(1),
                            write: false,
                        });
                    }
                }
                w
            })
            .collect();
        p.push_phase(work);
    }
    translate(&p.record(), TranslateOptions::default()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ideal_machine_reproduces_makespan((n, phases) in arb_program()) {
        let ts = build(n, &phases);
        let pred = extrapolate(&ts, &machine::ideal()).unwrap();
        prop_assert_eq!(pred.exec_time(), ts.makespan());
    }

    #[test]
    fn predictions_never_beat_the_ideal_schedule((n, phases) in arb_program()) {
        let ts = build(n, &phases);
        for params in [machine::default_distributed(), machine::shared_memory(), machine::cm5()] {
            let pred = extrapolate(&ts, &params).unwrap();
            let floor = ts.makespan().as_ns() as f64 * params.mips_ratio;
            prop_assert!(
                pred.exec_time().as_ns() as f64 >= floor * 0.999,
                "{:?} beat the scaled ideal: {} < {}",
                params.policy, pred.exec_time().as_ns(), floor
            );
        }
    }

    #[test]
    fn mips_ratio_exactly_scales_pure_compute((n, phases) in arb_program()) {
        // Strip accesses: pure compute programs scale exactly.
        let stripped: Vec<Vec<PhaseSpec>> = phases
            .iter()
            .map(|ph| ph.iter().map(|&(c, _)| (c, None)).collect())
            .collect();
        let ts = build(n, &stripped);
        let mut params = machine::ideal();
        params.mips_ratio = 2.0;
        let doubled = extrapolate(&ts, &params).unwrap().exec_time();
        prop_assert_eq!(doubled.as_ns(), ts.makespan().as_ns() * 2);
    }

    #[test]
    fn faster_networks_never_slow_programs_down((n, phases) in arb_program()) {
        let ts = build(n, &phases);
        let slow = {
            let mut p = machine::default_distributed();
            p.comm = p.comm.with_bandwidth_mbps(5.0);
            extrapolate(&ts, &p).unwrap().exec_time()
        };
        let fast = {
            let mut p = machine::default_distributed();
            p.comm = p.comm.with_bandwidth_mbps(500.0);
            extrapolate(&ts, &p).unwrap().exec_time()
        };
        prop_assert!(fast <= slow, "fast {} > slow {}", fast, slow);
    }

    #[test]
    fn actual_size_mode_never_loses_to_declared((n, phases) in arb_program()) {
        // actual_bytes <= declared_bytes by construction.
        let ts = build(n, &phases);
        let mut declared = machine::default_distributed();
        declared.size_mode = SizeMode::Declared;
        let mut actual = machine::default_distributed();
        actual.size_mode = SizeMode::Actual;
        let td = extrapolate(&ts, &declared).unwrap().exec_time();
        let ta = extrapolate(&ts, &actual).unwrap().exec_time();
        prop_assert!(ta <= td, "actual {} > declared {}", ta, td);
    }

    #[test]
    fn predicted_traces_are_valid_and_consistent((n, phases) in arb_program()) {
        let ts = build(n, &phases);
        let pred = extrapolate(&ts, &machine::cm5()).unwrap();
        pred.predicted.validate().unwrap();
        prop_assert_eq!(pred.predicted.makespan(), pred.exec_time());
        // Same barrier structure as the input.
        prop_assert_eq!(
            pred.predicted.threads[0].barrier_sequence(),
            ts.threads[0].barrier_sequence()
        );
        // Barrier count matches.
        prop_assert_eq!(pred.barriers, ts.threads[0].barrier_sequence().len());
    }

    #[test]
    fn extrapolation_is_deterministic((n, phases) in arb_program()) {
        let ts = build(n, &phases);
        let params = machine::default_distributed();
        let a = extrapolate(&ts, &params).unwrap();
        let b = extrapolate(&ts, &params).unwrap();
        prop_assert_eq!(a.exec_time(), b.exec_time());
        prop_assert_eq!(a.predicted, b.predicted);
    }

    #[test]
    fn multithread_m_equals_n_matches_one_per_proc((n, phases) in arb_program()) {
        let ts = build(n, &phases);
        let mut explicit = machine::default_distributed();
        explicit.multithread.mapping = ThreadMapping::Block { procs: n };
        let implicit = machine::default_distributed();
        let a = extrapolate(&ts, &explicit).unwrap().exec_time();
        let b = extrapolate(&ts, &implicit).unwrap().exec_time();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn reference_machine_also_completes((n, phases) in arb_program()) {
        let ts = build(n, &phases);
        let pred = RefMachine::new(machine::cm5()).measure(&ts).unwrap();
        prop_assert!(pred.exec_time() >= TimeNs::ZERO);
        pred.predicted.validate().unwrap();
    }
}
