//! The paper's headline experimental claims, asserted as tests (at tiny
//! problem scales; EXPERIMENTS.md records the full-scale runs).

use perf_extrap::prelude::*;

fn speedups(bench: Bench, params: &SimParams, procs: &[usize]) -> Vec<f64> {
    let base = predict(bench, 1, params).exec_time();
    procs
        .iter()
        .map(|&n| predict(bench, n, params).speedup_vs(base))
        .collect()
}

fn predict(bench: Bench, n: usize, params: &SimParams) -> Prediction {
    let traces = translate(&bench.trace(n, Scale::Tiny), TranslateOptions::default()).unwrap();
    extrapolate(&traces, params).unwrap()
}

#[test]
fn fig4_embar_is_linear_and_sort_is_not() {
    let params = machine::default_distributed();
    let procs = [2usize, 4, 8, 16, 32];
    let embar = speedups(Bench::Embar, &params, &procs);
    assert!(embar[4] > 15.0, "Embar at 32 procs: {embar:?}");
    let sort = speedups(Bench::Sort, &params, &procs);
    assert!(
        sort[4] < embar[4] / 2.0,
        "Sort is 'more severely affected': {sort:?}"
    );
}

#[test]
fn fig4_grid_idle_processor_artifact() {
    // (BLOCK,BLOCK) on a non-square processor count leaves processors
    // idle: no improvement from 4 to 8, recovery at 16.
    let params = machine::default_distributed();
    let s = speedups(Bench::Grid, &params, &[4, 8, 16]);
    assert!(s[1] <= s[0] * 1.02, "4->8 must not improve: {s:?}");
    assert!(s[2] > s[1] * 1.2, "16 recovers: {s:?}");
}

#[test]
fn fig5_grid_investigation_ordering() {
    let n = 16;
    let traces = translate(
        &Bench::Grid.trace(n, Scale::Tiny),
        TranslateOptions::default(),
    )
    .unwrap();
    let base = machine::default_distributed();
    let mut high_bw = base.clone();
    high_bw.comm = high_bw.comm.with_bandwidth_mbps(200.0);
    let mut actual = base.clone();
    actual.size_mode = SizeMode::Actual;
    let mut tuned = actual.clone();
    tuned.comm = tuned.comm.with_startup_us(10.0);

    let t = |p: &SimParams| extrapolate(&traces, p).unwrap().exec_time();
    let (t_base, t_bw, t_actual, t_tuned, t_ideal) = (
        t(&base),
        t(&high_bw),
        t(&actual),
        t(&tuned),
        t(&machine::ideal()),
    );
    assert!(t_bw < t_base, "bandwidth helps: {t_bw} vs {t_base}");
    assert!(
        t_actual < t_base,
        "actual sizes help: {t_actual} vs {t_base}"
    );
    // The paper's punchline: fixing the recorded size is comparable to
    // the 10x-bandwidth experiment.
    let ratio = t_actual.as_ns() as f64 / t_bw.as_ns() as f64;
    assert!((0.8..1.25).contains(&ratio), "comparable: ratio {ratio}");
    assert!(t_tuned < t_actual);
    assert!(t_ideal <= t_tuned);
}

#[test]
fn fig6_mips_ratio_scales_compute_bound_programs() {
    let traces = translate(
        &Bench::Embar.trace(8, Scale::Tiny),
        TranslateOptions::default(),
    )
    .unwrap();
    let time_at = |ratio: f64| {
        let mut params = machine::default_distributed();
        params.mips_ratio = ratio;
        extrapolate(&traces, &params).unwrap().exec_time().as_ns() as f64
    };
    let (slow, base, fast) = (time_at(2.0), time_at(1.0), time_at(0.5));
    assert!(
        (slow / base - 2.0).abs() < 0.05,
        "slow/base = {}",
        slow / base
    );
    assert!(
        (base / fast - 2.0).abs() < 0.1,
        "base/fast = {}",
        base / fast
    );
}

#[test]
fn fig6_mgrid_speedup_is_ratio_sensitive() {
    // Faster processors (smaller ratio) worsen the comm/comp balance, so
    // speedup drops — the paper's Fig 6(iv).
    let params_with = |ratio: f64| {
        let mut p = machine::default_distributed();
        p.mips_ratio = ratio;
        p
    };
    let procs = [16usize];
    let s_slow = speedups(Bench::Mgrid, &params_with(2.0), &procs)[0];
    let s_fast = speedups(Bench::Mgrid, &params_with(0.5), &procs)[0];
    assert!(
        s_slow > s_fast * 1.15,
        "Mgrid speedup should drop with faster processors: {s_slow} vs {s_fast}"
    );
}

#[test]
fn fig7_min_time_processor_count_shifts_down() {
    // Fig 7: with cheaper compute (MipsRatio 0.25) the execution-time
    // minimum moves to fewer processors.  Built on a controlled
    // strong-scaling program: total compute is fixed, split across the
    // threads, with one barrier per phase whose cost grows with the
    // processor count.
    let strong_scaled = |n: usize| {
        let mut p = PhaseProgram::new(n);
        for _ in 0..20 {
            p.push_uniform_phase(DurationNs::from_us(4_000.0 / n as f64));
        }
        translate(&p.record(), TranslateOptions::default()).unwrap()
    };
    let argmin = |ratio: f64| {
        let mut params = machine::default_distributed();
        params.mips_ratio = ratio;
        params.comm = params.comm.with_startup_us(100.0);
        [1usize, 2, 4, 8, 16, 32]
            .into_iter()
            .min_by_key(|&n| {
                extrapolate(&strong_scaled(n), &params)
                    .unwrap()
                    .exec_time()
                    .as_ns()
            })
            .unwrap()
    };
    let full = argmin(1.0);
    let quarter = argmin(0.25);
    assert!(
        quarter < full,
        "minimum must move to fewer processors: ratio=1 -> P={full}, ratio=0.25 -> P={quarter}"
    );
}

#[test]
fn fig8_no_interrupt_is_never_best() {
    for bench in [Bench::Cyclic, Bench::Grid] {
        let traces = translate(&bench.trace(16, Scale::Tiny), TranslateOptions::default()).unwrap();
        let time_with = |policy: ServicePolicy| {
            let mut params = machine::default_distributed();
            params.comm = params.comm.with_startup_us(100.0);
            params.policy = policy;
            extrapolate(&traces, &params).unwrap().exec_time()
        };
        let none = time_with(ServicePolicy::NoInterrupt);
        let interrupt = time_with(ServicePolicy::Interrupt);
        let poll = time_with(ServicePolicy::poll_us(100.0));
        assert!(
            none >= interrupt && none >= poll,
            "{}: no-interrupt {none} vs interrupt {interrupt} / poll {poll}",
            bench.name()
        );
    }
}

#[test]
fn fig9_extrapolation_ranks_distributions_like_the_reference_machine() {
    use perf_extrap::workloads::matmul;
    let n = 12;
    let params = machine::cm5();
    let reference = RefMachine::new(params.clone());
    for procs in [4usize, 16] {
        let mut predicted: Vec<(String, u64, u64)> = Vec::new();
        for dist in matmul::nine_distributions() {
            let (trace, _) = matmul::run(procs, &matmul::MatmulConfig { n, dist });
            let ts = translate(&trace, TranslateOptions::default()).unwrap();
            let p = extrapolate(&ts, &params).unwrap().exec_time().as_ns();
            let m = reference.measure(&ts).unwrap().exec_time().as_ns();
            predicted.push((format!("{dist:?}"), p, m));
        }
        let best_pred = predicted.iter().min_by_key(|r| r.1).unwrap();
        let best_meas = predicted.iter().min_by_key(|r| r.2).unwrap();
        // The predicted choice's measured time is within 25% of optimum
        // (the paper reports within 3% at its only miss).
        let gap = best_pred.2 as f64 / best_meas.2 as f64;
        assert!(
            gap < 1.25,
            "P={procs}: predicted {} measured best {} gap {gap}",
            best_pred.0,
            best_meas.0
        );
    }
}

#[test]
fn validation_reference_machine_is_slower_or_equal_under_hot_spots() {
    // The link-level simulator resolves contention the analytic model
    // only approximates; on an all-to-one pattern it must not be faster.
    let traces = translate(
        &Bench::Poisson.trace(8, Scale::Tiny),
        TranslateOptions::default(),
    )
    .unwrap();
    let params = machine::cm5();
    let analytic = extrapolate(&traces, &params).unwrap().exec_time();
    let detailed = RefMachine::new(params)
        .measure(&traces)
        .unwrap()
        .exec_time();
    assert!(
        detailed.as_ns() as f64 >= analytic.as_ns() as f64 * 0.85,
        "analytic {analytic} vs detailed {detailed}"
    );
}
