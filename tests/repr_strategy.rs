//! End-to-end tests of representative-region simulation
//! (`Strategy = repr`): fallback byte-identity on non-repeating
//! benchmarks, composition accuracy on synthetic periodic traces, and
//! determinism of repr sweeps across worker counts.

use perf_extrap::prelude::*;

fn with_strategy(strategy: SimStrategy) -> SimParams {
    let mut params = machine::default_distributed();
    params.strategy = strategy;
    params
}

/// Full structural equality of two predictions (`Prediction` carries a
/// trace, so it doesn't implement `PartialEq` itself).
fn assert_identical(a: &Prediction, b: &Prediction, context: &str) {
    assert_eq!(a.n_threads, b.n_threads, "{context}: n_threads");
    assert_eq!(a.n_procs, b.n_procs, "{context}: n_procs");
    assert_eq!(a.per_thread, b.per_thread, "{context}: per-thread stats");
    assert_eq!(a.network, b.network, "{context}: network stats");
    assert_eq!(a.barriers, b.barriers, "{context}: barriers");
    assert_eq!(
        a.events_dispatched, b.events_dispatched,
        "{context}: events"
    );
    assert_eq!(a.predicted, b.predicted, "{context}: predicted trace");
}

#[test]
fn non_repeating_benchmarks_fall_back_byte_identically() {
    // Embar has too few epochs to amortize anything; Cyclic's epochs
    // form a geometric series (compute halves every epoch), so no two
    // cluster together.  Both must take the exact path — including the
    // materialized predicted trace.
    for bench in [Bench::Embar, Bench::Cyclic] {
        for n in [4usize, 8] {
            let traces = translate(&bench.trace(n, Scale::Tiny), Default::default()).unwrap();
            let exact = extrapolate(&traces, &with_strategy(SimStrategy::Exact)).unwrap();
            let repr = extrapolate(&traces, &with_strategy(SimStrategy::representative())).unwrap();
            assert_identical(&exact, &repr, &format!("{} n={n}", bench.name()));
        }
    }
}

/// A synthetic periodic program: `period` distinct SplitMix64-drawn
/// phase durations repeated `reps` times.
fn periodic_trace(n_threads: usize, period: usize, reps: usize, seed: u64) -> TraceSet {
    let mut state = seed;
    let pattern: Vec<DurationNs> = (0..period)
        .map(|_| DurationNs(200_000 + splitmix64(&mut state) % 2_000_000))
        .collect();
    let mut p = PhaseProgram::new(n_threads);
    for _ in 0..reps {
        for &d in &pattern {
            p.push_uniform_phase(d);
        }
    }
    translate(&p.record(), Default::default()).unwrap()
}

#[test]
fn periodic_synthetic_traces_compose_within_declared_tolerance() {
    for (threads, period, reps, seed) in [
        (4usize, 3usize, 12usize, 1u64),
        (8, 5, 10, 2),
        (2, 1, 40, 3),
    ] {
        let traces = periodic_trace(threads, period, reps, seed);
        let exact = extrapolate(&traces, &with_strategy(SimStrategy::Exact)).unwrap();
        let repr = extrapolate(&traces, &with_strategy(SimStrategy::representative())).unwrap();

        let (e, r) = (
            exact.exec_time().as_ns() as f64,
            repr.exec_time().as_ns() as f64,
        );
        let err = (r - e).abs() / e;
        assert!(
            err <= 0.05,
            "period={period} reps={reps}: {err:.4} relative error exceeds the declared tolerance"
        );
        assert!(
            repr.events_dispatched < exact.events_dispatched,
            "period={period}: representative run must dispatch fewer events"
        );
        // Workload metrics compose exactly when the pattern repeats
        // perfectly: identical epochs have identical representatives.
        assert_eq!(exact.network.messages, repr.network.messages);
        let exact_compute: DurationNs = exact.per_thread.iter().map(|t| t.compute).sum();
        let repr_compute: DurationNs = repr.per_thread.iter().map(|t| t.compute).sum();
        assert_eq!(exact_compute, repr_compute, "period={period}");
    }
}

#[test]
fn repr_sweeps_are_byte_identical_across_worker_counts() {
    let jobs: Vec<SweepJob<usize>> = [1usize, 4, 8, 16]
        .into_iter()
        .map(|n| SweepJob {
            key: n,
            params: with_strategy(SimStrategy::representative()),
        })
        .collect();
    let run = |workers: usize| -> Vec<Prediction> {
        let cache = SharedTraceCache::new();
        sweep(&jobs, workers, &cache, |&n| {
            translate(&Bench::Mgrid.trace(n, Scale::Small), Default::default())
        })
        .into_iter()
        .map(|r| r.unwrap())
        .collect()
    };
    let serial = run(1);
    let pooled = run(8);
    // Covers cluster-weight determinism too: composed metrics are a
    // weighted sum, so any weight difference shows up in the bytes.
    for ((s, p), &n) in serial.iter().zip(&pooled).zip(&[1usize, 4, 8, 16]) {
        assert_identical(s, p, &format!("mgrid n={n}"));
    }
    // And the strategy must actually engage on Mgrid (it repeats).
    let exact = run_exact();
    assert!(
        serial[3].events_dispatched < exact.events_dispatched,
        "Mgrid at small scale must use the representative path"
    );
}

fn run_exact() -> Prediction {
    let traces = translate(&Bench::Mgrid.trace(16, Scale::Small), Default::default()).unwrap();
    extrapolate(&traces, &with_strategy(SimStrategy::Exact)).unwrap()
}
