//! Declarative flag parsing shared by every `extrap` subcommand.
//!
//! Each subcommand builds an [`ArgSpec`], pulls its flags out by name,
//! and finishes with [`ArgSpec::finish`]/[`ArgSpec::finish_exact`] to
//! collect positionals.  Finishing rejects any flag-looking token that
//! no one claimed with an error that names the subcommand — previously
//! a typo like `--shceduler` silently became a positional argument and
//! surfaced as a confusing usage error (or worse, was ignored).
//!
//! Taking a flag also *registers* it, so by finish time the spec knows
//! the subcommand's complete flag set.  `--help`/`-h` (stripped at
//! construction) turns [`finish`](ArgSpec::finish) into a generated
//! help listing of exactly those flags — help can never drift from the
//! parser because they are the same declaration.

/// One registered flag: what the subcommand asked for while parsing.
struct FlagInfo {
    flag: String,
    takes_value: bool,
    /// Accepted spellings, for enumerated flags (`"text, json, csv"`).
    valid: Option<String>,
}

/// The argument cursor for one subcommand invocation.
pub struct ArgSpec {
    cmd: &'static str,
    args: Vec<String>,
    help: bool,
    flags: Vec<FlagInfo>,
}

impl ArgSpec {
    /// Wraps a subcommand's raw arguments.  `cmd` is the name used in
    /// diagnostics (`"sweep"`, `"client sweep"`, ...).  `--help`/`-h`
    /// anywhere in `args` is claimed here; the spec then renders
    /// generated help at finish time instead of parsing positionals.
    pub fn new(cmd: &'static str, args: Vec<String>) -> ArgSpec {
        let mut args = args;
        let before = args.len();
        args.retain(|a| a != "--help" && a != "-h");
        ArgSpec {
            cmd,
            help: args.len() != before,
            args,
            flags: Vec::new(),
        }
    }

    /// The subcommand name this spec reports in errors.
    pub fn cmd(&self) -> &'static str {
        self.cmd
    }

    fn register(&mut self, flag: &str, takes_value: bool) {
        if !self.flags.iter().any(|f| f.flag == flag) {
            self.flags.push(FlagInfo {
                flag: flag.to_string(),
                takes_value,
                valid: None,
            });
        }
    }

    /// Takes `--flag VALUE` (at most one occurrence).
    pub fn value(&mut self, flag: &str) -> Result<Option<String>, String> {
        self.register(flag, true);
        if let Some(pos) = self.args.iter().position(|a| a == flag) {
            if pos + 1 >= self.args.len() {
                return Err(format!("{}: {flag} needs a value", self.cmd));
            }
            let value = self.args.remove(pos + 1);
            self.args.remove(pos);
            Ok(Some(value))
        } else {
            Ok(None)
        }
    }

    /// Takes every occurrence of `--flag VALUE`, in order.
    pub fn values(&mut self, flag: &str) -> Result<Vec<String>, String> {
        let mut out = Vec::new();
        while let Some(v) = self.value(flag)? {
            out.push(v);
        }
        Ok(out)
    }

    /// Takes a boolean `--flag`; returns whether it was present.
    pub fn switch(&mut self, flag: &str) -> bool {
        self.register(flag, false);
        if let Some(pos) = self.args.iter().position(|a| a == flag) {
            self.args.remove(pos);
            true
        } else {
            false
        }
    }

    /// Takes `--flag VALUE` and parses it, attributing parse failures
    /// to the flag and subcommand.
    pub fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.value(flag)? {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|e| format!("{}: bad {flag} value {v:?}: {e}", self.cmd)),
        }
    }

    /// Takes an enum-valued `--flag VALUE` where `parse` maps accepted
    /// spellings (including attached-parameter forms like `repr:32` or
    /// `tree:4`) to the enum.  A value `parse` rejects produces one
    /// uniform error listing the `valid` spellings, so subcommands stop
    /// hand-rolling value syntax and diverging diagnostics.
    pub fn enumerated<T>(
        &mut self,
        flag: &str,
        valid: &str,
        parse: impl Fn(&str) -> Option<T>,
    ) -> Result<Option<T>, String> {
        let taken = self.value(flag);
        if let Some(info) = self.flags.iter_mut().find(|f| f.flag == flag) {
            info.valid = Some(valid.to_string());
        }
        match taken? {
            None => Ok(None),
            Some(v) => parse(&v)
                .map(Some)
                .ok_or_else(|| format!("{}: bad {flag} value {v:?} (valid: {valid})", self.cmd)),
        }
    }

    /// Takes `--flag N` requiring `N >= 1` (worker counts and friends).
    pub fn positive(&mut self, flag: &str) -> Result<Option<usize>, String> {
        match self.parsed::<usize>(flag)? {
            Some(0) => Err(format!("{}: {flag} needs a positive integer", self.cmd)),
            other => Ok(other),
        }
    }

    /// The generated `--help` text: the subcommand's registered flags,
    /// in registration (i.e. declaration) order.
    fn render_help(&self) -> String {
        let mut out = format!("usage: extrap {} — flags:\n", self.cmd);
        for f in &self.flags {
            match (&f.valid, f.takes_value) {
                (Some(valid), _) => {
                    out.push_str(&format!("  {} VALUE   (one of: {valid})\n", f.flag))
                }
                (None, true) => out.push_str(&format!("  {} VALUE\n", f.flag)),
                (None, false) => out.push_str(&format!("  {}\n", f.flag)),
            }
        }
        out.push_str("run `extrap help` for full usage lines");
        out
    }

    /// The remaining positional arguments, after rejecting any
    /// unclaimed flag-looking token by name.  If `--help` was passed,
    /// prints the generated flag listing and exits successfully — by
    /// this point every flag the subcommand understands is registered.
    pub fn finish(self) -> Result<Vec<String>, String> {
        if self.help {
            println!("{}", self.render_help());
            std::process::exit(0);
        }
        if let Some(flag) = self.args.iter().find(|a| a.starts_with('-') && a.len() > 1) {
            return Err(format!(
                "{}: unknown flag {flag:?}; try `extrap help`",
                self.cmd
            ));
        }
        Ok(self.args)
    }

    /// Exactly `N` positionals, or the given usage line.
    pub fn finish_exact<const N: usize>(self, usage: &str) -> Result<[String; N], String> {
        self.finish()?
            .try_into()
            .map_err(|_| format!("usage: {usage}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(args: &[&str]) -> ArgSpec {
        ArgSpec::new("demo", args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn value_and_switch_and_positionals() {
        let mut s = spec(&["input.xtps", "--jobs", "4", "--csv"]);
        assert_eq!(s.value("--jobs").unwrap().as_deref(), Some("4"));
        assert!(s.switch("--csv"));
        assert!(!s.switch("--csv"));
        assert_eq!(s.finish().unwrap(), vec!["input.xtps".to_string()]);
    }

    #[test]
    fn values_takes_every_occurrence_in_order() {
        let mut s = spec(&["--set", "a=1", "x", "--set", "b=2"]);
        assert_eq!(s.values("--set").unwrap(), vec!["a=1", "b=2"]);
        assert_eq!(s.finish().unwrap(), vec!["x".to_string()]);
    }

    #[test]
    fn missing_value_names_the_subcommand() {
        let mut s = spec(&["--jobs"]);
        assert_eq!(s.value("--jobs").unwrap_err(), "demo: --jobs needs a value");
    }

    #[test]
    fn unknown_flag_is_rejected_by_name() {
        let s = spec(&["file", "--shceduler", "heap"]);
        let err = s.finish().unwrap_err();
        assert!(
            err.starts_with("demo: unknown flag \"--shceduler\""),
            "{err}"
        );
    }

    #[test]
    fn parsed_attributes_failures() {
        let mut s = spec(&["--jobs", "many"]);
        let err = s.parsed::<usize>("--jobs").unwrap_err();
        assert!(err.contains("demo") && err.contains("--jobs"), "{err}");
        let mut s = spec(&["--jobs", "0"]);
        assert!(s.positive("--jobs").unwrap_err().contains("positive"));
    }

    #[test]
    fn enumerated_parses_attached_parameters() {
        #[derive(Debug, PartialEq)]
        enum Mode {
            Plain,
            Sized(u32),
        }
        let parse = |v: &str| match v {
            "plain" => Some(Mode::Plain),
            other => other.strip_prefix("sized:")?.parse().ok().map(Mode::Sized),
        };
        let mut s = spec(&["--mode", "sized:32"]);
        assert_eq!(
            s.enumerated("--mode", "plain, sized:N", parse).unwrap(),
            Some(Mode::Sized(32))
        );
        let mut s = spec(&["--mode", "sized:many"]);
        let err = s.enumerated("--mode", "plain, sized:N", parse).unwrap_err();
        assert_eq!(
            err,
            "demo: bad --mode value \"sized:many\" (valid: plain, sized:N)"
        );
        let mut s = spec(&[]);
        assert_eq!(
            s.enumerated("--mode", "plain, sized:N", parse).unwrap(),
            None
        );
    }

    #[test]
    fn help_is_stripped_and_lists_every_taken_flag() {
        let mut s = spec(&["--help", "file"]);
        assert!(s.help, "--help must be claimed at construction");
        let _ = s.value("--jobs");
        let _ = s.enumerated("--format", "text, json", |_| Some(()));
        s.switch("--csv");
        let help = s.render_help();
        assert!(help.contains("--jobs VALUE"), "{help}");
        assert!(
            help.contains("--format VALUE   (one of: text, json)"),
            "{help}"
        );
        assert!(help.contains("  --csv\n"), "{help}");
        // `-h` is equivalent and never reaches positional parsing.
        let s = spec(&["-h"]);
        assert!(s.help);
    }

    #[test]
    fn finish_exact_reports_usage() {
        let s = spec(&["a", "b"]);
        assert_eq!(
            s.finish_exact::<1>("extrap demo FILE").unwrap_err(),
            "usage: extrap demo FILE"
        );
    }
}
