//! `extrap serve` and `extrap client` — the daemon and its CLI driver.
//!
//! `serve` runs an `extrap-serve` daemon in the foreground until a
//! client sends `Shutdown` (it then drains in-flight jobs and exits).
//! `client` speaks the versioned wire protocol to a running daemon; its
//! `sweep --csv` output is byte-identical to the in-process
//! `extrap sweep --csv`, because both render the same exact integer
//! nanoseconds through the same formatter.

use crate::args::ArgSpec;
use crate::{parse_sweep_request, render_sweep_rows, scale_name};
use extrap_core::SimStrategy;
use extrap_proto::SweepSpec;
use extrap_serve::client::Client;
use extrap_serve::{ServeConfig, Server};
use extrap_time::TimeNs;
use std::io::Write;
use std::time::Duration;

/// Where `extrap client` looks for a daemon when `--addr` is omitted;
/// matches `ServeConfig::default()`.
const DEFAULT_ADDR: &str = "127.0.0.1:4755";

/// `extrap serve`: run the extrapolation daemon in the foreground.
pub(crate) fn cmd_serve(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("serve", args);
    let mut config = ServeConfig::default();
    if let Some(addr) = spec.value("--addr")? {
        config.addr = addr;
    }
    if let Some(n) = spec.positive("--workers")? {
        config.workers = n;
    }
    if let Some(n) = spec.positive("--sweep-workers")? {
        config.sweep_workers = n;
    }
    if let Some(mb) = spec.parsed::<usize>("--mem-budget-mb")? {
        config.mem_budget_bytes = mb << 20;
    }
    if let Some(n) = spec.positive("--max-inflight")? {
        config.max_inflight_jobs = n;
    }
    if let Some(n) = spec.positive("--max-conn-inflight")? {
        config.max_inflight_per_conn = n;
    }
    if let Some(n) = spec.positive("--max-connections")? {
        config.max_connections = n;
    }
    if let Some(ms) = spec.parsed::<u64>("--timeout-ms")? {
        config.request_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = spec.parsed::<u64>("--batch-window-ms")? {
        config.batch_window = Duration::from_millis(ms);
    }
    config.check_bounds = spec.switch("--check-bounds");
    let leftovers = spec.finish()?;
    if !leftovers.is_empty() {
        return Err("serve: takes flags only; see `extrap help`".to_string());
    }

    let server = Server::start(config).map_err(|e| e.to_string())?;
    // Scripts (and the CI smoke job) wait for this line before
    // connecting, so it must hit the pipe before we block in join().
    println!("extrap-serve listening on {}", server.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| format!("stdout: {e}"))?;
    server.join();
    println!("extrap-serve drained; bye");
    Ok(())
}

/// `extrap client <sweep|simulate|analyze|stats|shutdown>`: drive a
/// daemon.
pub(crate) fn cmd_client(args: Vec<String>) -> Result<(), String> {
    let mut it = args.into_iter();
    let sub = it
        .next()
        .ok_or("usage: extrap client sweep|simulate|analyze|stats|shutdown [--addr HOST:PORT]")?;
    let rest: Vec<String> = it.collect();
    match sub.as_str() {
        "sweep" => client_sweep(rest),
        "simulate" => client_simulate(rest),
        "analyze" => client_analyze(rest),
        "stats" => client_stats(rest),
        "shutdown" => client_shutdown(rest),
        other => Err(format!(
            "client: unknown subcommand {other:?} (sweep|simulate|analyze|stats|shutdown)"
        )),
    }
}

fn take_addr(spec: &mut ArgSpec) -> Result<String, String> {
    Ok(spec
        .value("--addr")?
        .unwrap_or_else(|| DEFAULT_ADDR.to_string()))
}

fn connect(addr: &str) -> Result<Client, String> {
    Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))
}

fn client_sweep(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("client sweep", args);
    let addr = take_addr(&mut spec)?;
    let req = parse_sweep_request(spec)?;

    let wire = SweepSpec {
        benches: req.benches.iter().map(|b| b.name().to_string()).collect(),
        procs: req.procs.iter().map(|&n| n as u32).collect(),
        scale: scale_name(req.scale).to_string(),
        params: req.params.to_config_text(),
    };
    let n_points = wire.benches.len() * wire.procs.len();
    let rows = connect(&addr)?.sweep(wire).map_err(|e| e.to_string())?;

    let rendered: Vec<(String, usize, f64)> = rows
        .iter()
        .map(|r| {
            (
                r.bench.clone(),
                r.procs as usize,
                TimeNs(r.exec_time_ns).as_ms(),
            )
        })
        .collect();
    render_sweep_rows(&rendered, &req.procs, req.csv);
    if !req.csv {
        println!("({n_points} jobs via {addr})");
    }
    Ok(())
}

fn client_simulate(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("client simulate", args);
    let addr = take_addr(&mut spec)?;
    let params = crate::load_params(&mut spec)?;
    let [input] = spec.finish_exact("extrap client simulate FILE [--addr HOST:PORT]")?;
    let payload = std::fs::read(&input).map_err(|e| format!("{input}: {e}"))?;

    let mut client = connect(&addr)?;
    let (trace, n_threads, resident) = client
        .submit_trace(&input, payload)
        .map_err(|e| e.to_string())?;
    let result = client.simulate(trace, &params.to_config_text());
    // Best-effort: free the server-side entry whatever the outcome.
    let _ = client.evict(trace);
    let p = result.map_err(|e| e.to_string())?;

    println!("trace:                    {input} ({n_threads} threads, {resident} bytes resident)");
    println!(
        "predicted execution time: {:.3} ms",
        TimeNs(p.exec_time_ns).as_ms()
    );
    println!("processors:               {}", p.n_procs);
    println!("barriers completed:       {}", p.barriers);
    println!("messages / bytes:         {} / {}", p.messages, p.bytes);
    println!(
        "mean contention factor:   {:.3}",
        p.mean_contention_factor()
    );
    println!("-- per-thread breakdown (ms) --");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "thread", "compute", "send", "service", "rem-wait", "bar-wait", "end"
    );
    for (i, b) in p.per_thread.iter().enumerate() {
        println!(
            "{:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            i,
            b.compute_ns as f64 / 1e6,
            b.send_overhead_ns as f64 / 1e6,
            b.service_ns as f64 / 1e6,
            b.remote_wait_ns as f64 / 1e6,
            b.barrier_wait_ns as f64 / 1e6,
            TimeNs(b.end_time_ns).as_ms(),
        );
    }
    Ok(())
}

/// `extrap client analyze FILE`: upload a trace, fetch its static
/// work/span bound report (rendered server-side through the same
/// formatter as local `extrap analyze`), then free the server entry.
fn client_analyze(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("client analyze", args);
    let addr = take_addr(&mut spec)?;
    let params = crate::load_params(&mut spec)?;
    let format = spec
        .value("--format")?
        .unwrap_or_else(|| "text".to_string());
    if extrap_analyze::Format::parse(&format).is_none() {
        return Err(format!(
            "client analyze: unknown --format {format:?} (text|json|csv)"
        ));
    }
    let [input] = spec.finish_exact(
        "extrap client analyze FILE [--format text|json|csv] \
         [--machine M | --params FILE] [--addr HOST:PORT]",
    )?;
    let payload = std::fs::read(&input).map_err(|e| format!("{input}: {e}"))?;

    let mut client = connect(&addr)?;
    let (trace, _, _) = client
        .submit_trace(&input, payload)
        .map_err(|e| e.to_string())?;
    let result = client.analyze(trace, &params.to_config_text(), &format);
    // Best-effort: free the server-side entry whatever the outcome.
    let _ = client.evict(trace);
    print!("{}", result.map_err(|e| e.to_string())?);
    Ok(())
}

/// `extrap client stats [FILE]`: without a positional, the server's
/// counters snapshot; with one, upload the trace and fetch its
/// phase/epoch report — byte-identical to local `extrap stats FILE`.
fn client_stats(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("client stats", args);
    let addr = take_addr(&mut spec)?;
    let phases = spec.switch("--phases");
    let max_clusters = spec
        .positive("--max-clusters")?
        .unwrap_or(SimStrategy::DEFAULT_MAX_CLUSTERS as usize);
    let tolerance = spec
        .parsed::<f64>("--tolerance")?
        .unwrap_or(SimStrategy::DEFAULT_TOLERANCE);
    let mut leftovers = spec.finish()?;
    if leftovers.len() > 1 {
        return Err(
            "usage: extrap client stats [FILE --phases --max-clusters K --tolerance F] \
             [--addr HOST:PORT]"
                .to_string(),
        );
    }
    if let Some(input) = leftovers.pop() {
        let payload = std::fs::read(&input).map_err(|e| format!("{input}: {e}"))?;
        let mut client = connect(&addr)?;
        let (trace, _, _) = client
            .submit_trace(&input, payload)
            .map_err(|e| e.to_string())?;
        let result = client.phases(trace, phases, max_clusters as u32, tolerance);
        let _ = client.evict(trace);
        print!("{}", result.map_err(|e| e.to_string())?);
        return Ok(());
    }
    if phases {
        return Err("client stats: --phases needs a trace FILE to report on".to_string());
    }
    let s = connect(&addr)?.stats().map_err(|e| e.to_string())?;
    println!("uptime:             {:.1} s", s.uptime_ms as f64 / 1e3);
    println!(
        "connections:        {} total, {} active",
        s.connections, s.active_connections
    );
    println!("requests:           {}", s.requests);
    println!(
        "jobs:               {} in flight, {} done, {} failed",
        s.jobs_inflight, s.jobs_done, s.jobs_failed
    );
    println!(
        "sweep batches:      {} ({} coalesced riders)",
        s.sweep_batches, s.coalesced_sweeps
    );
    println!(
        "resident:           {} traces, {} bytes (budget {})",
        s.traces_resident,
        s.resident_bytes,
        if s.mem_budget_bytes == 0 {
            "unlimited".to_string()
        } else {
            format!("{} bytes", s.mem_budget_bytes)
        }
    );
    println!("evictions:          {}", s.evictions);
    println!("translations:       {}", s.translations);
    Ok(())
}

fn client_shutdown(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("client shutdown", args);
    let addr = take_addr(&mut spec)?;
    let leftovers = spec.finish()?;
    if !leftovers.is_empty() {
        return Err("client shutdown: takes --addr only".to_string());
    }
    connect(&addr)?.shutdown().map_err(|e| e.to_string())?;
    println!("shutdown requested; {addr} is draining");
    Ok(())
}
