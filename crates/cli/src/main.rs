#![forbid(unsafe_code)]
//! `extrap` — the ExtraP command-line tool.
//!
//! ```text
//! extrap trace     <bench> <threads> [--scale S] -o trace.xtrp
//! extrap translate trace.xtrp -o traces.xtps [--event-overhead US] [--switch-overhead US] \
//!                  [--stream [--mem-budget BYTES]]     # out-of-core spill/merge translate
//! extrap simulate  traces.xtps [--machine M | --params FILE] [--set KEY=VALUE]... \
//!                  [--scheduler heap|calendar|auto] [--check-bounds] [--predicted OUT] [--stream]
//! extrap analyze   FILE|BENCH [--threads N] [--procs LIST] [--format text|json|csv]
//! extrap sweep     <bench>[,<bench>...] [--procs 1,2,...] [--jobs N] [--csv] [--check-bounds] \
//!                  [--stream [--mem-budget BYTES]]     # bounded-resident grid sweep
//! extrap serve     [--addr HOST:PORT] [--workers N] [--mem-budget-mb N] ...
//! extrap client    sweep|simulate|stats|shutdown [--addr HOST:PORT] ...
//! extrap check     [traces.xtps]           # determinism report, or model-check the
//!                  [--scenarios] [--scenario NAME] [--replay CERT]   # concurrent core
//! extrap report    traces.xtps            # trace statistics
//! extrap stats     traces.xtps [--phases]  # phase/epoch-cluster statistics
//! extrap lint      FILE|DIR... [--jobs N] [--format json] [--deny-warnings] [--allow CODE]...
//! extrap lint      --fix FILE [--out FILE] [--dry-run]   # repair fixable diagnostics
//! extrap params    [--machine M]          # print a parameter file
//! extrap benches                          # list benchmarks
//! ```

mod args;
mod remote;

use args::ArgSpec;
use extrap_core::{
    machine, Extrapolator, SchedulerKind, SharedTraceCache, SimParams, SimStrategy, SweepGrid,
};
use extrap_time::{DurationNs, TimeNs};
use extrap_trace::{TraceRecord, TraceStats, TranslateOptions, TranslateSink};
use extrap_workloads::{Bench, Scale};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("extrap: {e}");
            ExitCode::from(1)
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut it = args.into_iter();
    let cmd = it.next().unwrap_or_else(|| "help".to_string());
    let rest: Vec<String> = it.collect();
    match cmd.as_str() {
        "trace" => cmd_trace(rest),
        "translate" => cmd_translate(rest),
        "simulate" => cmd_simulate(rest),
        "analyze" => cmd_analyze(rest),
        "sweep" => cmd_sweep(rest),
        "serve" => remote::cmd_serve(rest),
        "client" => remote::cmd_client(rest),
        "report" => cmd_report(rest),
        "stats" => cmd_stats(rest),
        "timeline" => cmd_timeline(rest),
        "check" => cmd_check(rest),
        "lint" => cmd_lint(rest),
        "diff" => cmd_diff(rest),
        "params" => cmd_params(rest),
        "benches" => {
            for b in Bench::all() {
                println!("{:10} {}", b.name(), b.description());
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!(
                "usage:\n  extrap trace <bench> <threads> [--scale tiny|small|paper] -o FILE\n  \
                 extrap translate FILE -o FILE [--event-overhead US] [--switch-overhead US] \
                 [--stream [--mem-budget BYTES]]\n  \
                 extrap simulate FILE [--machine distributed|shared|ideal|cm5] [--params FILE] \
                 [--set KEY=VALUE]... [--scheduler heap|calendar|auto] \
                 [--strategy exact|repr[:K[:TOL]]] [--check-bounds] [--predicted FILE] \
                 [--stream]\n  \
                 extrap analyze FILE|BENCH [--threads N] [--procs 1,2,4,8,16,32] [--scale S] \
                 [--format text|json|csv] [--machine M] [--params FILE] [--set KEY=VALUE]...\n  \
                 extrap sweep <bench>[,<bench>...] [--procs 1,2,4,8,16,32] [--scale S] \
                 [--machine M] [--params FILE] [--set KEY=VALUE]... \
                 [--scheduler heap|calendar|auto] [--strategy exact|repr[:K[:TOL]]] \
                 [--jobs N] [--csv] [--check-bounds] [--stream [--mem-budget BYTES]]\n  \
                 extrap serve [--addr HOST:PORT] [--workers N] [--sweep-workers N] \
                 [--mem-budget-mb N] [--max-inflight N] [--max-conn-inflight N] \
                 [--max-connections N] [--timeout-ms N] [--batch-window-ms N] \
                 [--check-bounds]\n  \
                 extrap client sweep <bench>[,...] [--addr HOST:PORT] [sweep flags] [--csv]\n  \
                 extrap client simulate FILE [--addr HOST:PORT] [simulate flags]\n  \
                 extrap client analyze FILE [--addr HOST:PORT] [--format text|json|csv] \
                 [analyze flags]\n  \
                 extrap client stats [FILE --phases] [--addr HOST:PORT]\n  \
                 extrap client shutdown [--addr HOST:PORT]\n  \
                 extrap report FILE\n  \
                 extrap stats FILE [--phases] [--max-clusters K] [--tolerance F] [--stream]\n  \
                 extrap timeline FILE [--width N]\n  \
                 extrap check [FILE] [--scenarios] [--scenario NAME] [--replay CERT] \
                 [--schedules N] [--seed N] [--max-steps N]\n  \
                 extrap lint FILE|DIR... [--machine M] [--format text|json] [--jobs N] \
                 [--deny-warnings] [--allow CODE]... [--stream]\n  \
                 extrap lint --fix FILE [--out FILE] [--dry-run] | extrap lint --codes\n  \
                 extrap diff FILE <machineA> <machineB>\n  \
                 extrap params [--machine M]\n  extrap benches"
            );
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `extrap help`")),
    }
}

fn scale_of(s: &str) -> Option<Scale> {
    match s {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

/// Takes `--scale` off a spec (default: small).
fn take_scale(spec: &mut ArgSpec) -> Result<Scale, String> {
    Ok(spec
        .enumerated("--scale", "tiny, small, paper", scale_of)?
        .unwrap_or(Scale::Small))
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

fn machine_of(s: &str) -> Option<SimParams> {
    match s {
        "distributed" => Some(machine::default_distributed()),
        "shared" => Some(machine::shared_memory()),
        "ideal" => Some(machine::ideal()),
        "cm5" => Some(machine::cm5()),
        _ => None,
    }
}

fn parse_machine(s: Option<String>) -> Result<SimParams, String> {
    match s {
        None => Ok(machine::default_distributed()),
        Some(name) => machine_of(&name)
            .ok_or_else(|| format!("unknown machine {name:?} (distributed|shared|ideal|cm5)")),
    }
}

fn parse_us(s: Option<String>, what: &str) -> Result<DurationNs, String> {
    match s {
        None => Ok(DurationNs::ZERO),
        Some(v) => v
            .parse::<f64>()
            .map(DurationNs::from_us)
            .map_err(|e| format!("bad {what}: {e}")),
    }
}

fn resolve_bench(name: &str) -> Result<Bench, String> {
    Bench::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name.trim()))
        .ok_or_else(|| format!("unknown benchmark {name:?}; see `extrap benches`"))
}

fn cmd_trace(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("trace", args);
    let scale = take_scale(&mut spec)?;
    let out = spec.value("-o")?;
    let [bench_name, threads] = spec.finish_exact("extrap trace <bench> <threads> -o FILE")?;
    let out: PathBuf = out.ok_or("trace: -o FILE is required")?.into();
    let bench = resolve_bench(&bench_name)?;
    let threads: usize = threads
        .parse()
        .map_err(|e| format!("bad thread count: {e}"))?;
    let trace = bench.trace(threads, scale);
    extrap_trace::writer::write_program_file(&out, &trace).map_err(|e| e.to_string())?;
    println!(
        "wrote {} events for {} threads to {}",
        trace.records.len(),
        trace.n_threads,
        out.display()
    );
    Ok(())
}

fn cmd_translate(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("translate", args);
    let out = spec.value("-o")?;
    let options = TranslateOptions {
        event_overhead: parse_us(spec.value("--event-overhead")?, "event overhead")?,
        switch_overhead: parse_us(spec.value("--switch-overhead")?, "switch overhead")?,
    };
    let (stream_mode, mem_budget) = take_streaming(&mut spec)?;
    let [input] =
        spec.finish_exact("extrap translate FILE -o FILE [--stream [--mem-budget BYTES]]")?;
    let out: PathBuf = out.ok_or("translate: -o FILE is required")?.into();
    let (n_threads, makespan) = if stream_mode {
        // Fully out-of-core: epoch-translate the chunked input stream
        // into per-thread spill runs (holding at most `mem_budget`
        // translated bytes in memory) and replay them straight into the
        // output file.  Bytes are identical to the whole-trace path.
        let mut stream =
            extrap_trace::stream::ProgramStream::open(&input).map_err(|e| e.to_string())?;
        let n_threads = stream.n_threads();
        let mut sink = MakespanSink {
            inner: extrap_trace::SpillSink::new(n_threads, mem_budget),
            makespan: TimeNs::ZERO,
        };
        extrap_trace::translate_stream(&mut stream, options, &mut sink)
            .map_err(|e| e.to_string())?;
        let makespan = sink.makespan;
        sink.inner.write_set_file(&out).map_err(|e| e.to_string())?;
        (n_threads, makespan)
    } else {
        let trace = extrap_trace::reader::read_program_file(&input).map_err(|e| e.to_string())?;
        let set = extrap_trace::translate(&trace, options).map_err(|e| e.to_string())?;
        extrap_trace::writer::write_set_file(&out, &set).map_err(|e| e.to_string())?;
        (set.n_threads(), set.makespan())
    };
    println!("translated {n_threads} threads; idealized parallel makespan {makespan}");
    Ok(())
}

/// Takes the `--params`/`--machine`/`--set`/`--scheduler` family off a
/// spec — the parameter-loading protocol every simulating subcommand
/// (local or remote) shares.
fn load_params(spec: &mut ArgSpec) -> Result<SimParams, String> {
    let mut params = if let Some(file) = spec.value("--params")? {
        let text = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
        SimParams::from_config_text(&text)?
    } else {
        spec.enumerated("--machine", "distributed, shared, ideal, cm5", machine_of)?
            .unwrap_or_else(machine::default_distributed)
    };
    for kv in spec.values("--set")? {
        let (key, value) = kv
            .split_once('=')
            .ok_or_else(|| format!("--set expects KEY=VALUE, got {kv:?}"))?;
        // Apply the single key on top of the current parameters.
        let mut text = params.to_config_text();
        text.push_str(&format!("{} = {}\n", key.trim(), value.trim()));
        params = SimParams::from_config_text(&text)?;
    }
    if let Some(kind) =
        spec.enumerated("--scheduler", "heap, calendar, auto", SchedulerKind::parse)?
    {
        params.scheduler = kind;
    }
    if let Some(strategy) = spec.enumerated("--strategy", SimStrategy::VALID, SimStrategy::parse)? {
        params.strategy = strategy;
    }
    Ok(params)
}

/// Takes `--check-bounds` off a spec; when present, installs and
/// enables the static bounds sanitizer so every subsequent simulation
/// result is asserted against its work/span envelope.
fn take_check_bounds(spec: &mut ArgSpec) -> bool {
    let on = spec.switch("--check-bounds");
    if on {
        extrap_analyze::install_sanitizer();
    }
    on
}

/// Default in-memory budget for `--stream` spill sinks: 64 MiB.
const DEFAULT_STREAM_BUDGET: usize = 64 << 20;

/// Takes `--stream [--mem-budget BYTES]` off a spec — the out-of-core
/// ingestion opt-in shared by `translate`/`simulate`/`sweep`/`stats`/
/// `lint`.  The budget defaults to [`DEFAULT_STREAM_BUDGET`] and only
/// applies where there is something to bound (the translate spill sink,
/// the sweep cache); subcommands whose streaming path is bounded by
/// construction accept it for uniformity.
fn take_streaming(spec: &mut ArgSpec) -> Result<(bool, usize), String> {
    let stream = spec.switch("--stream");
    let budget = spec.parsed::<usize>("--mem-budget")?;
    if budget.is_some() && !stream {
        return Err(format!("{}: --mem-budget requires --stream", spec.cmd()));
    }
    Ok((stream, budget.unwrap_or(DEFAULT_STREAM_BUDGET)))
}

/// A [`TranslateSink`] adapter that tracks the translated makespan (the
/// maximum emitted timestamp) on the way through to `inner`, so the
/// out-of-core `translate` can report the same summary line as the
/// whole-trace path without re-reading its output.
struct MakespanSink<S> {
    inner: S,
    makespan: TimeNs,
}

impl<S: TranslateSink> TranslateSink for MakespanSink<S> {
    fn emit(&mut self, thread: usize, rec: TraceRecord) -> Result<(), extrap_trace::TraceError> {
        if rec.time > self.makespan {
            self.makespan = rec.time;
        }
        self.inner.emit(thread, rec)
    }
}

fn cmd_simulate(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("simulate", args);
    let params = load_params(&mut spec)?;
    take_check_bounds(&mut spec);
    let predicted_out = spec.value("--predicted")?;
    let (stream_mode, _mem_budget) = take_streaming(&mut spec)?;
    let [input] = spec.finish_exact("extrap simulate FILE [--machine M] [--stream]")?;
    let pred = if stream_mode {
        // Out-of-core: compile the op scripts straight off the chunked
        // set stream (same invariants, same first error, identical
        // program — so identical prediction) without ever holding the
        // decoded `TraceSet`.  Decode memory is bounded by construction
        // (one refill window), so `--mem-budget` has nothing to cap.
        let mut stream =
            extrap_trace::stream::SetStream::open(&input).map_err(|e| e.to_string())?;
        let program = extrap_core::compile_set_stream(&mut stream).map_err(|e| e.to_string())?;
        Extrapolator::new(params)
            .run(&program)
            .map_err(|e| e.to_string())?
    } else {
        let set = extrap_trace::reader::read_set_file(&input).map_err(|e| e.to_string())?;
        Extrapolator::new(params)
            .run(&set)
            .map_err(|e| e.to_string())?
    };
    println!(
        "predicted execution time: {:.3} ms",
        pred.exec_time().as_ms()
    );
    println!("processors:               {}", pred.n_procs);
    println!("barriers completed:       {}", pred.barriers);
    println!(
        "messages / bytes:         {} / {}",
        pred.network.messages, pred.network.bytes
    );
    println!(
        "mean contention factor:   {:.3}",
        pred.network.mean_factor()
    );
    println!(
        "utilization:              {:.1}%",
        pred.utilization() * 100.0
    );
    println!("comp/comm ratio:          {:.2}", pred.comp_comm_ratio());
    println!("-- per-thread breakdown (ms) --");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "thread", "compute", "send", "service", "rem-wait", "bar-wait", "end"
    );
    for (i, b) in pred.per_thread.iter().enumerate() {
        println!(
            "{:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            i,
            b.compute.as_us() / 1_000.0,
            b.send_overhead.as_us() / 1_000.0,
            b.service.as_us() / 1_000.0,
            b.remote_wait.as_us() / 1_000.0,
            b.barrier_wait.as_us() / 1_000.0,
            b.end_time.as_ms(),
        );
    }
    if let Some(path) = predicted_out {
        extrap_trace::writer::write_set_file(&path, &pred.predicted).map_err(|e| e.to_string())?;
        println!("predicted trace written to {path}");
    }
    Ok(())
}

/// `extrap analyze`: static work/span bound analysis — per-epoch work
/// and load imbalance, the contention-free critical path, and
/// closed-form exec-time/speedup bounds, all without running the
/// simulator.  The positional is sniffed: an existing file is read as a
/// translated trace set; anything else resolves as a benchmark name,
/// which additionally produces bound *curves* over `--procs`.
fn cmd_analyze(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("analyze", args);
    let params = load_params(&mut spec)?;
    let scale = take_scale(&mut spec)?;
    let format = spec
        .enumerated("--format", "text, json, csv", extrap_analyze::Format::parse)?
        .unwrap_or(extrap_analyze::Format::Text);
    let threads = spec.positive("--threads")?.unwrap_or(8);
    let procs_arg = spec.value("--procs")?;
    let [input] = spec.finish_exact(
        "extrap analyze FILE|BENCH [--threads N] [--procs LIST] [--scale S] \
         [--format text|json|csv] [--machine M | --params FILE]",
    )?;

    let (label, program, curve) = if std::path::Path::new(&input).is_file() {
        if procs_arg.is_some() {
            return Err(
                "analyze: --procs curves need a benchmark name (a trace file has a \
                 fixed thread count)"
                    .to_string(),
            );
        }
        let set = extrap_trace::reader::read_set_file(&input).map_err(|e| e.to_string())?;
        let program = extrap_core::CompiledProgram::compile(&set).map_err(|e| e.to_string())?;
        (input.clone(), program, Vec::new())
    } else {
        let bench = resolve_bench(&input)?;
        let procs: Vec<usize> = match procs_arg {
            None => vec![1, 2, 4, 8, 16, 32],
            Some(list) => list
                .split(',')
                .map(|p| {
                    p.trim()
                        .parse::<usize>()
                        .map_err(|e| format!("bad --procs entry {p:?}: {e}"))
                })
                .collect::<Result<_, _>>()?,
        };
        let compile_at = |n: usize| -> Result<extrap_core::CompiledProgram, String> {
            let set = extrap_trace::translate(&bench.trace(n, scale), Default::default())
                .map_err(|e| e.to_string())?;
            extrap_core::CompiledProgram::compile(&set).map_err(|e| e.to_string())
        };
        let mut curve = Vec::with_capacity(procs.len());
        for &n in &procs {
            let analysis =
                extrap_analyze::analyze(&compile_at(n)?, &params).map_err(|e| e.to_string())?;
            curve.push(extrap_analyze::CurvePoint { n, analysis });
        }
        let label = format!("{}/{}", bench.name(), scale_name(scale));
        (label, compile_at(threads)?, curve)
    };
    let analysis = extrap_analyze::analyze(&program, &params).map_err(|e| e.to_string())?;
    print!(
        "{}",
        extrap_analyze::render(&label, &analysis, &curve, format)
    );
    Ok(())
}

/// A fully parsed sweep request, shared by the local `sweep` command
/// and `client sweep` (which ships it over the wire instead of running
/// it in-process).
pub(crate) struct SweepRequest {
    pub(crate) benches: Vec<Bench>,
    pub(crate) procs: Vec<usize>,
    pub(crate) scale: Scale,
    pub(crate) params: SimParams,
    pub(crate) jobs: usize,
    pub(crate) csv: bool,
}

/// Parses the sweep flag family plus the bench-list positional.  The
/// usage string adapts to the wrapping subcommand via `spec.cmd()`.
pub(crate) fn parse_sweep_request(mut spec: ArgSpec) -> Result<SweepRequest, String> {
    let params = load_params(&mut spec)?;
    let scale = take_scale(&mut spec)?;
    let procs: Vec<usize> = match spec.value("--procs")? {
        None => vec![1, 2, 4, 8, 16, 32],
        Some(list) => list
            .split(',')
            .map(|p| {
                p.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("bad --procs entry {p:?}: {e}"))
            })
            .collect::<Result<_, _>>()?,
    };
    let jobs = spec
        .positive("--jobs")?
        .unwrap_or_else(extrap_core::sweep::default_workers);
    let csv = spec.switch("--csv");
    let usage = format!("extrap {} <bench>[,<bench>...] [--procs LIST]", spec.cmd());
    let [bench_list] = spec.finish_exact(&usage)?;
    let benches: Vec<Bench> = bench_list
        .split(',')
        .map(resolve_bench)
        .collect::<Result<_, _>>()?;
    Ok(SweepRequest {
        benches,
        procs,
        scale,
        params,
        jobs,
        csv,
    })
}

/// Prints sweep rows (`(bench, procs, time_ms)` in grid order) in the
/// CSV or aligned-table form — identical for local and served sweeps.
pub(crate) fn render_sweep_rows(rows: &[(String, usize, f64)], procs: &[usize], csv: bool) {
    if csv {
        println!("bench,procs,time_ms");
        for (bench, n, ms) in rows {
            println!("{bench},{n},{ms:.6}");
        }
    } else {
        print!("{:>10}", "bench");
        for &n in procs {
            print!(" {n:>10}");
        }
        println!("   [ms across P]");
        for chunk in rows.chunks(procs.len()) {
            print!("{:>10}", chunk[0].0);
            for (_, _, ms) in chunk {
                print!(" {ms:>10.3}");
            }
            println!();
        }
    }
}

/// `extrap sweep`: extrapolate a benchmark × processor-count grid in
/// parallel through the sweep engine and print one row per benchmark.
fn cmd_sweep(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("sweep", args);
    take_check_bounds(&mut spec);
    let (stream_mode, mem_budget) = take_streaming(&mut spec)?;
    let req = parse_sweep_request(spec)?;

    // The sweep report only prints times, so skip the predicted traces.
    let mut params = req.params;
    params.record_mode = extrap_core::RecordMode::MetricsOnly;
    let grid = SweepGrid::new()
        .workloads(req.benches.iter().map(|b| b.name().to_string()))
        .procs(req.procs.iter().copied())
        .params(params)
        .jobs();
    let cache = SharedTraceCache::new();
    let results = if stream_mode {
        // Out-of-core ingestion: each key's program is compiled through
        // the fused translate→compile stream (no `ProgramTrace`, no
        // `TraceSet`), and the cache is swept down to `--mem-budget`
        // before each build so resident compiled programs stay bounded.
        extrap_core::sweep_streaming(&grid, req.jobs, &cache, |(name, n)| {
            cache.evict_to_budget(mem_budget);
            let bench = resolve_bench(name).expect("benchmark validated above");
            let bytes = extrap_trace::format::encode_program(&bench.trace(*n, req.scale));
            let mut stream = extrap_trace::stream::ProgramStream::new(
                extrap_trace::stream::SliceSource(&bytes),
            )?;
            let (program, _stats) =
                extrap_core::compile_program_stream(&mut stream, Default::default())?;
            Ok(program)
        })
    } else {
        extrap_core::sweep(&grid, req.jobs, &cache, |(name, n)| {
            let bench = resolve_bench(name).expect("benchmark validated above");
            extrap_trace::translate(&bench.trace(*n, req.scale), Default::default())
        })
    };

    let mut rows = Vec::new();
    for (job, result) in grid.iter().zip(results) {
        let pred = result.map_err(|e| e.to_string())?;
        rows.push((job.key.0.clone(), job.key.1, pred.exec_time().as_ms()));
    }
    render_sweep_rows(&rows, &req.procs, req.csv);
    if !req.csv {
        println!(
            "({} jobs, {} workers, {} translations)",
            grid.len(),
            req.jobs,
            cache.translations()
        );
    }
    Ok(())
}

fn cmd_report(args: Vec<String>) -> Result<(), String> {
    let [input] = ArgSpec::new("report", args).finish_exact("extrap report FILE")?;
    let set = extrap_trace::reader::read_set_file(&input).map_err(|e| e.to_string())?;
    let stats = TraceStats::from_set(&set);
    println!("threads:           {}", set.n_threads());
    println!("makespan:          {:.3} ms", stats.makespan().as_ms());
    println!("barriers:          {}", stats.barriers());
    println!("remote accesses:   {}", stats.total_remote_accesses());
    println!("declared bytes:    {}", stats.total_declared_bytes());
    println!("actual bytes:      {}", stats.total_actual_bytes());
    println!(
        "total compute:     {:.3} ms",
        stats.total_compute().as_us() / 1_000.0
    );
    println!("utilization:       {:.1}%", stats.utilization() * 100.0);
    Ok(())
}

/// `extrap stats`: phase-level statistics of a translated trace — the
/// marker-delimited phase profiles, plus (with `--phases`) the
/// barrier-epoch cluster structure that `--strategy repr` would
/// exploit, so repetition can be inspected before opting in.
fn cmd_stats(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("stats", args);
    let phases = spec.switch("--phases");
    let max_clusters = spec
        .positive("--max-clusters")?
        .unwrap_or(SimStrategy::DEFAULT_MAX_CLUSTERS as usize);
    let tolerance = spec
        .parsed::<f64>("--tolerance")?
        .unwrap_or(SimStrategy::DEFAULT_TOLERANCE);
    // Accepted for pipeline uniformity: the set decoder already reads in
    // bounded chunks, and the report itself needs every phase resident.
    let (_stream_mode, _mem_budget) = take_streaming(&mut spec)?;
    let [input] = spec.finish_exact(
        "extrap stats FILE [--phases] [--max-clusters K] [--tolerance F] [--stream [--mem-budget BYTES]]",
    )?;
    let set = extrap_trace::reader::read_set_file(&input).map_err(|e| e.to_string())?;
    let opts = extrap_trace::ClusterOptions {
        max_clusters,
        tolerance,
    };
    print!("{}", extrap_trace::render_stats_report(&set, phases, &opts));
    Ok(())
}

fn cmd_timeline(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("timeline", args);
    let width = spec.parsed::<usize>("--width")?.unwrap_or(100);
    let [input] = spec.finish_exact("extrap timeline FILE [--width N]")?;
    let set = extrap_trace::reader::read_set_file(&input).map_err(|e| e.to_string())?;
    print!("{}", extrap_trace::timeline::render(&set, width));
    Ok(())
}

/// `extrap check`: two related verifiers under one verb.
///
/// With a trace FILE, run the epoch-level determinism report (the
/// paper's SS5 transferability assumption).  Without one, drive the
/// `extrap-check` model checker over the built-in concurrency
/// scenarios: `--scenarios` lists them, `--scenario NAME` checks one,
/// the default checks all production scenarios, and `--replay CERT`
/// re-executes a failure certificate step for step.
fn cmd_check(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("check", args);
    let list = spec.switch("--scenarios");
    let scenario = spec.value("--scenario")?;
    let replay_cert = spec.value("--replay")?;
    let schedules = spec.positive("--schedules")?;
    let seed = spec.parsed::<u64>("--seed")?;
    let max_steps = spec.positive("--max-steps")?;
    let positionals = spec.finish()?;

    let checker_mode =
        list || scenario.is_some() || replay_cert.is_some() || positionals.is_empty();
    if !checker_mode {
        if positionals.len() != 1 || schedules.is_some() || seed.is_some() || max_steps.is_some() {
            return Err(
                "usage: extrap check FILE | extrap check [--scenarios] [--scenario NAME] \
                 [--replay CERT] [--schedules N] [--seed N] [--max-steps N]"
                    .to_string(),
            );
        }
        return check_trace_file(&positionals[0]);
    }
    if !positionals.is_empty() {
        return Err("check: a trace FILE cannot be combined with checker flags".to_string());
    }

    let config = extrap_check::CheckConfig {
        max_schedules: schedules.unwrap_or(1_000),
        seed: seed.unwrap_or(1),
        max_steps: max_steps.unwrap_or(50_000),
    };

    if list {
        for s in extrap_check::scenarios::all_scenarios() {
            println!("{:18} {}", s.name, s.about);
        }
        return Ok(());
    }

    if let Some(cert) = replay_cert {
        let cert: extrap_check::Certificate = cert
            .parse()
            .map_err(|e| format!("check: bad certificate: {e}"))?;
        let scenario = extrap_check::scenarios::find(&cert.scenario)
            .ok_or_else(|| format!("check: unknown scenario {:?} in certificate", cert.scenario))?;
        let outcome = extrap_check::replay(&scenario, &cert, config.max_steps);
        match outcome.status {
            extrap_check::RunStatus::Failed(f) => {
                println!("replay of {cert} reproduces the failure:");
                println!("  {:?}: {}", f.kind, f.message);
                Err("failure reproduced (this is what the certificate records)".to_string())
            }
            _ => {
                println!("replay of {cert} completed cleanly: no failure at this schedule");
                Ok(())
            }
        }
    } else {
        let to_check: Vec<extrap_check::Scenario> = match scenario {
            Some(name) => vec![extrap_check::scenarios::find(&name)
                .ok_or_else(|| format!("check: unknown scenario {name:?}; try --scenarios"))?],
            None => extrap_check::scenarios::scenarios(),
        };
        let mut failed = false;
        for s in &to_check {
            let report = extrap_check::check_scenario(s, &config);
            print!("{}", report.render());
            failed |= !report.passed();
        }
        if failed {
            Err("model check failed; replay the certificate above to debug".to_string())
        } else {
            Ok(())
        }
    }
}

/// The original `extrap check FILE` mode: epoch-level write-conflict
/// analysis of a translated trace set.
fn check_trace_file(input: &str) -> Result<(), String> {
    let set = extrap_trace::reader::read_set_file(input).map_err(|e| e.to_string())?;
    let report = extrap_trace::determinism_report(&set);
    println!("remote writes: {}", report.remote_writes);
    if report.is_deterministic() {
        println!(
            "no epoch-level write conflicts: the trace satisfies the paper's \
             deterministic-execution assumption (SS5); extrapolation is sound."
        );
        Ok(())
    } else {
        println!(
            "{} potential timing-dependent conflicts found:",
            report.conflicts.len()
        );
        for c in report.conflicts.iter().take(20) {
            println!(
                "  epoch {:>4}  element {:>8}  writers {:?}  readers {:?}",
                c.epoch, c.element, c.writers, c.readers
            );
        }
        Err("trace may not transfer between environments (see SS5)".to_string())
    }
}

/// `extrap lint`: run the static verification passes over trace files
/// and/or parameter configs *before* spending simulation time on them.
///
/// Inputs are sniffed by content: the `XTRP`/`XTPS` magic selects the
/// program-trace or trace-set linter (decoded **raw** through the
/// streaming reader, so a corrupted file is inspected in full instead
/// of failing at the first broken invariant); anything else is parsed
/// as a `key = value` parameter file.  Directories are recursed for
/// `.xtrp`/`.xtps`/`.cfg` files; the expanded list is path-sorted so
/// the output is deterministic regardless of worker count.  Files are
/// linted in parallel (`--jobs N`), each worker recycling one stream
/// arena.  `--machine M` additionally lints a named preset.  Exits
/// nonzero when any error-severity diagnostic survives `--allow CODE`
/// filtering, or — under `--deny-warnings` — any warning does.
///
/// `--fix` switches to repair mode: see [`cmd_lint_fix`].
fn cmd_lint(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("lint", args);
    if spec.switch("--codes") {
        let leftovers = spec.finish()?;
        if !leftovers.is_empty() {
            return Err("lint: --codes takes no other arguments".to_string());
        }
        for code in extrap_lint::Code::all() {
            println!(
                "{} [{}] {}{}",
                code.as_str(),
                code.severity().label(),
                code.title(),
                if code.fixable() { " (fixable)" } else { "" }
            );
        }
        return Ok(());
    }
    let json = spec
        .enumerated("--format", "text, json", |v| match v {
            "text" => Some(false),
            "json" => Some(true),
            _ => None,
        })?
        .unwrap_or(false);
    let machine = spec.value("--machine")?;
    let jobs = spec
        .positive("--jobs")?
        .unwrap_or_else(extrap_core::sweep::default_workers);
    let deny_warnings = spec.switch("--deny-warnings");
    let allow: Vec<extrap_lint::Code> = spec
        .values("--allow")?
        .iter()
        .map(|s| {
            extrap_lint::Code::parse(s)
                .ok_or_else(|| format!("--allow: unknown code {s:?} (see `extrap lint --codes`)"))
        })
        .collect::<Result<_, _>>()?;
    let fix = spec.switch("--fix");
    let dry_run = spec.switch("--dry-run");
    let out_path = spec.value("--out")?;
    // Accepted for pipeline uniformity: the linter already runs its
    // streaming machines over bounded chunks regardless of file size.
    let (_stream_mode, _mem_budget) = take_streaming(&mut spec)?;
    if !fix && (dry_run || out_path.is_some()) {
        return Err("lint: --dry-run/--out only make sense with --fix".to_string());
    }
    if fix {
        if json {
            return Err("lint: --fix supports text output only".to_string());
        }
        if machine.is_some() {
            return Err("lint: --fix repairs trace files; drop --machine".to_string());
        }
        let [input] = spec.finish_exact("extrap lint --fix FILE [--out FILE] [--dry-run]")?;
        return cmd_lint_fix(&input, out_path, dry_run, &allow, deny_warnings);
    }
    let inputs = spec.finish()?;
    if inputs.is_empty() && machine.is_none() {
        return Err(
            "usage: extrap lint FILE|DIR... [--machine M] [--format text|json]".to_string(),
        );
    }

    let files = expand_lint_inputs(&inputs)?;

    // (label, report) per linted input: the machine preset first
    // (serially), then every file in path order.
    let mut reports: Vec<(String, extrap_lint::Report)> = Vec::new();
    if let Some(name) = machine {
        let params = parse_machine(Some(name.clone()))?;
        reports.push((
            format!("machine:{name}"),
            apply_allow(extrap_lint::lint_params(&params), &allow),
        ));
    }
    let results = extrap_core::sweep::parallel_map_with(
        &files,
        jobs,
        extrap_trace::stream::StreamArena::new,
        |arena, _i, path| lint_one(path, arena),
    );
    for (path, result) in files.iter().zip(results) {
        reports.push((path.clone(), apply_allow(result?, &allow)));
    }

    let errors: usize = reports.iter().map(|(_, r)| r.error_count()).sum();
    let warnings: usize = reports.iter().map(|(_, r)| r.warning_count()).sum();
    if json {
        let mut out = String::from("{\"files\":[");
        for (i, (label, report)) in reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"path\":\"");
            out.push_str(&json_escape(label));
            out.push_str("\",");
            // Splice the per-report object's fields into this file entry.
            out.push_str(&extrap_lint::render_json(report)[1..]);
        }
        out.push_str(&format!("],\"errors\":{errors},\"warnings\":{warnings}}}"));
        println!("{out}");
    } else {
        for (label, report) in &reports {
            println!("{label}:");
            print!("{}", extrap_lint::render_text(report));
        }
    }
    if errors > 0 {
        Err(format!(
            "lint found {errors} error{}",
            if errors == 1 { "" } else { "s" }
        ))
    } else if deny_warnings && warnings > 0 {
        Err(format!(
            "lint found {warnings} warning{} (--deny-warnings)",
            if warnings == 1 { "" } else { "s" }
        ))
    } else {
        Ok(())
    }
}

/// Lints one input file: binary traces go through the streaming linter
/// (bounded memory, arena recycled across files by the caller);
/// anything else is treated as UTF-8 parameter config text.
fn lint_one(
    path: &str,
    arena: &mut extrap_trace::stream::StreamArena,
) -> Result<extrap_lint::Report, String> {
    match extrap_lint::lint_trace_file(path, arena) {
        Ok(Some(report)) => Ok(report),
        Ok(None) => {
            let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            let text = String::from_utf8(data)
                .map_err(|_| format!("{path}: not a trace file and not UTF-8 config text"))?;
            let params = SimParams::from_config_text_unvalidated(&text)
                .map_err(|e| format!("{path}: {e}"))?;
            Ok(extrap_lint::lint_params(&params))
        }
        // Trace errors off the streaming linter already carry the path.
        Err(e) => Err(e.to_string()),
    }
}

/// Expands lint inputs: files pass through as given (whatever their
/// extension — content sniffing decides how to lint them), directories
/// are recursed for `.xtrp`/`.xtps`/`.cfg` files.  The result is
/// sorted and deduplicated so output order is deterministic.
fn expand_lint_inputs(args: &[String]) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    for arg in args {
        let path = std::path::Path::new(arg);
        if path.is_dir() {
            collect_trace_files(path, &mut files)?;
        } else {
            files.push(arg.clone());
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn collect_trace_files(dir: &std::path::Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_trace_files(&path, out)?;
        } else if matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("xtrp" | "xtps" | "cfg")
        ) {
            out.push(path.to_string_lossy().into_owned());
        }
    }
    Ok(())
}

/// Drops diagnostics whose code the user `--allow`ed.
fn apply_allow(report: extrap_lint::Report, allow: &[extrap_lint::Code]) -> extrap_lint::Report {
    if allow.is_empty() {
        return report;
    }
    extrap_lint::Report {
        diagnostics: report
            .diagnostics
            .into_iter()
            .filter(|d| !allow.contains(&d.code))
            .collect(),
    }
}

/// `extrap lint --fix`: mechanically repair the fixable diagnostics in
/// one binary trace file (`E001`/`E002` timestamp dips, `E003` bad
/// thread ids, `E006` dangling owners, `W003` missing frames), then
/// **re-lint the repaired trace and refuse to write unless it is
/// error-free** — unfixable corruption (`E004`, `E005`, `E007`,
/// `E009`) never silently produces a "fixed" file that still lies.
/// `--dry-run` reports the repairs without writing; `--out FILE`
/// redirects the output (default: in place).
fn cmd_lint_fix(
    input: &str,
    out_path: Option<String>,
    dry_run: bool,
    allow: &[extrap_lint::Code],
    deny_warnings: bool,
) -> Result<(), String> {
    use extrap_lint::Severity;

    let data = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    enum Fixed {
        Program(extrap_trace::ProgramTrace),
        Set(extrap_trace::TraceSet),
    }
    let (fixed, notes, report) = match data.get(..4) {
        Some(b"XTRP") => {
            let trace = extrap_trace::format::decode_program_raw(&data)
                .map_err(|e| format!("{input}: {e}"))?;
            let out = extrap_lint::fix_program(&trace);
            let report = extrap_lint::lint_program(&out.value);
            (Fixed::Program(out.value), out.notes, report)
        }
        Some(b"XTPS") => {
            let set =
                extrap_trace::format::decode_set_raw(&data).map_err(|e| format!("{input}: {e}"))?;
            let out = extrap_lint::fix_set(&set);
            let report = extrap_lint::lint_set(&out.value);
            (Fixed::Set(out.value), out.notes, report)
        }
        _ => return Err(format!("{input}: --fix needs a binary trace file")),
    };
    let report = apply_allow(report, allow);

    println!("{input}:");
    for note in &notes {
        println!("fix[{}]: {}", note.code, note.detail);
    }
    // Whatever survives the fixer is by definition beyond mechanical
    // repair; say so explicitly next to each remaining error.
    let mut shown = report.clone();
    for d in &mut shown.diagnostics {
        if d.code.severity() == Severity::Error {
            d.message.push_str(" [unfixable]");
        }
    }
    print!("{}", extrap_lint::render_text(&shown));

    let errors = report.error_count();
    if errors > 0 {
        return Err(format!(
            "lint --fix: {errors} unfixable error{} remain; not writing",
            if errors == 1 { "" } else { "s" }
        ));
    }
    let dest = out_path.unwrap_or_else(|| input.to_string());
    if dry_run {
        println!(
            "dry run: {} repair{} would be written to {dest}",
            notes.len(),
            if notes.len() == 1 { "" } else { "s" }
        );
    } else {
        match &fixed {
            Fixed::Program(trace) => extrap_trace::writer::write_program_file(&dest, trace),
            Fixed::Set(set) => extrap_trace::writer::write_set_file(&dest, set),
        }
        .map_err(|e| format!("{dest}: {e}"))?;
        // Belt and braces: the file on disk must re-lint error-free.
        let mut arena = extrap_trace::stream::StreamArena::new();
        let back = lint_one(&dest, &mut arena)?;
        if apply_allow(back, allow).has_errors() {
            return Err(format!("lint --fix: {dest} fails re-lint after writing"));
        }
        println!(
            "wrote fixed trace to {dest} ({} repair{})",
            notes.len(),
            if notes.len() == 1 { "" } else { "s" }
        );
    }
    let warnings = report.warning_count();
    if deny_warnings && warnings > 0 {
        return Err(format!(
            "lint found {warnings} warning{} (--deny-warnings)",
            if warnings == 1 { "" } else { "s" }
        ));
    }
    Ok(())
}

/// Minimal JSON string escaping for file paths embedded in lint output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn cmd_diff(args: Vec<String>) -> Result<(), String> {
    let [input, ma, mb] =
        ArgSpec::new("diff", args).finish_exact("extrap diff FILE <machineA> <machineB>")?;
    let set = extrap_trace::reader::read_set_file(&input).map_err(|e| e.to_string())?;
    let pa = parse_machine(Some(ma.clone()))?;
    let pb = parse_machine(Some(mb.clone()))?;
    let a = Extrapolator::new(pa).run(&set).map_err(|e| e.to_string())?;
    let b = Extrapolator::new(pb).run(&set).map_err(|e| e.to_string())?;
    println!(
        "{}: {:.3} ms    {}: {:.3} ms",
        ma,
        a.exec_time().as_ms(),
        mb,
        b.exec_time().as_ms()
    );
    print!("{}", extrap_core::diff(&a, &b).render(&ma, &mb));
    Ok(())
}

fn cmd_params(args: Vec<String>) -> Result<(), String> {
    let mut spec = ArgSpec::new("params", args);
    let params = spec
        .enumerated("--machine", "distributed, shared, ideal, cm5", machine_of)?
        .unwrap_or_else(machine::default_distributed);
    let leftovers = spec.finish()?;
    if !leftovers.is_empty() {
        return Err("usage: extrap params [--machine M]".to_string());
    }
    print!("{}", params.to_config_text());
    Ok(())
}
