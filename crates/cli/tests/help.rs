//! End-to-end `--help` coverage: every flag a subcommand's usage line
//! in `extrap help` advertises must also appear in that subcommand's
//! generated `--help` listing.  The listing is produced from the same
//! `ArgSpec` registrations the parser uses, so this test pins the
//! advertised surface to the parsed one — a flag added to the usage
//! text but never taken (or vice versa) fails here.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_extrap"))
        .args(args)
        .output()
        .expect("run extrap");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// Extracts `--flag` tokens (and the literal `-o`) from a usage line.
fn flags_of(line: &str) -> Vec<String> {
    let mut flags = Vec::new();
    for w in line.split_whitespace() {
        let w = w.trim_start_matches('[');
        if let Some(rest) = w.strip_prefix("--") {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_lowercase() || *c == '-')
                .collect();
            if !name.is_empty() {
                flags.push(format!("--{name}"));
            }
        } else if w == "-o" {
            flags.push("-o".to_string());
        }
    }
    flags
}

/// The subcommand words a usage line invokes (one or two, e.g.
/// `["client", "sweep"]`), stopping at the first non-command token.
fn command_of(line: &str) -> Vec<&str> {
    line.split_whitespace()
        .skip(1)
        .take(2)
        .take_while(|w| !w.is_empty() && w.chars().all(|c| c.is_ascii_lowercase()))
        .collect()
}

#[test]
fn every_usage_flag_appears_in_generated_subcommand_help() {
    let (ok, usage) = run(&["help"]);
    assert!(ok, "extrap help must exit 0");

    let mut checked = 0;
    for line in usage.lines() {
        let line = line.trim();
        if !line.starts_with("extrap ") {
            continue;
        }
        let cmd = command_of(line);
        let flags = flags_of(line);
        if cmd.is_empty() || flags.is_empty() {
            continue; // flagless commands have nothing to cross-check
        }
        let mut args = cmd.clone();
        args.push("--help");
        let (ok, help) = run(&args);
        assert!(ok, "extrap {} --help must exit 0", cmd.join(" "));
        for f in &flags {
            assert!(
                help.contains(f.as_str()),
                "extrap {} --help must name {f}; got:\n{help}",
                cmd.join(" ")
            );
        }
        checked += 1;
    }
    assert!(
        checked >= 10,
        "expected to cross-check at least 10 usage lines, got {checked}"
    );
}

#[test]
fn short_and_long_help_are_equivalent_and_flagged_anywhere() {
    let (ok, long) = run(&["analyze", "--help"]);
    assert!(ok);
    let (ok, short) = run(&["analyze", "-h"]);
    assert!(ok);
    assert_eq!(long, short, "-h and --help must render identically");
    assert!(long.starts_with("usage: extrap analyze"), "{long}");
    // --help wins even with positionals and other flags present.
    let (ok, mixed) = run(&["analyze", "Grid", "--threads", "4", "--help"]);
    assert!(ok);
    assert_eq!(mixed, long);
}
