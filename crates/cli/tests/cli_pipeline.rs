//! End-to-end tests of the `extrap` binary: trace → translate →
//! report/simulate/timeline/check over real files.

use std::path::PathBuf;
use std::process::{Command, Output};

fn extrap(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_extrap"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).to_string()
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("extrap-cli-test-{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_pipeline_through_the_binary() {
    let dir = tmpdir("pipeline");
    let xtrp = dir.join("grid.xtrp");
    let xtps = dir.join("grid.xtps");

    let out = extrap(&[
        "trace",
        "grid",
        "4",
        "--scale",
        "tiny",
        "-o",
        xtrp.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("4 threads"));

    let out = extrap(&[
        "translate",
        xtrp.to_str().unwrap(),
        "-o",
        xtps.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("translated 4 threads"));

    let out = extrap(&["report", xtps.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("barriers:"));
    assert!(text.contains("remote accesses:"));

    let out = extrap(&["simulate", xtps.to_str().unwrap(), "--machine", "cm5"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("predicted execution time"));

    let out = extrap(&["timeline", xtps.to_str().unwrap(), "--width", "60"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("T0"));

    let out = extrap(&["check", xtps.to_str().unwrap()]);
    assert!(out.status.success(), "grid is read-only: {out:?}");
    assert!(stdout(&out).contains("no epoch-level write conflicts"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_honors_param_overrides() {
    let dir = tmpdir("overrides");
    let xtrp = dir.join("embar.xtrp");
    let xtps = dir.join("embar.xtps");
    extrap(&[
        "trace",
        "embar",
        "2",
        "--scale",
        "tiny",
        "-o",
        xtrp.to_str().unwrap(),
    ]);
    extrap(&[
        "translate",
        xtrp.to_str().unwrap(),
        "-o",
        xtps.to_str().unwrap(),
    ]);

    let base = stdout(&extrap(&[
        "simulate",
        xtps.to_str().unwrap(),
        "--machine",
        "ideal",
    ]));
    let slowed = stdout(&extrap(&[
        "simulate",
        xtps.to_str().unwrap(),
        "--machine",
        "ideal",
        "--set",
        "MipsRatio=2.0",
    ]));
    let time = |s: &str| -> f64 {
        s.lines()
            .find(|l| l.contains("predicted execution time"))
            .unwrap()
            .split_whitespace()
            .nth(3)
            .unwrap()
            .parse()
            .unwrap()
    };
    let (t_base, t_slow) = (time(&base), time(&slowed));
    assert!(
        (t_slow / t_base - 2.0).abs() < 0.05,
        "MipsRatio=2 should double the time: {t_base} vs {t_slow}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn params_round_trip_through_a_file() {
    let dir = tmpdir("params");
    let cfg = dir.join("machine.cfg");
    let out = extrap(&["params", "--machine", "cm5"]);
    assert!(out.status.success());
    std::fs::write(&cfg, out.stdout).unwrap();

    let xtrp = dir.join("t.xtrp");
    let xtps = dir.join("t.xtps");
    extrap(&[
        "trace",
        "cyclic",
        "2",
        "--scale",
        "tiny",
        "-o",
        xtrp.to_str().unwrap(),
    ]);
    extrap(&[
        "translate",
        xtrp.to_str().unwrap(),
        "-o",
        xtps.to_str().unwrap(),
    ]);

    let via_file = stdout(&extrap(&[
        "simulate",
        xtps.to_str().unwrap(),
        "--params",
        cfg.to_str().unwrap(),
    ]));
    let via_preset = stdout(&extrap(&[
        "simulate",
        xtps.to_str().unwrap(),
        "--machine",
        "cm5",
    ]));
    assert_eq!(
        via_file.lines().next(),
        via_preset.lines().next(),
        "config file must reproduce the preset"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_compares_two_machines() {
    let dir = tmpdir("diff");
    let xtrp = dir.join("m.xtrp");
    let xtps = dir.join("m.xtps");
    extrap(&[
        "trace",
        "mgrid",
        "4",
        "--scale",
        "tiny",
        "-o",
        xtrp.to_str().unwrap(),
    ]);
    extrap(&[
        "translate",
        xtrp.to_str().unwrap(),
        "-o",
        xtps.to_str().unwrap(),
    ]);
    let out = extrap(&["diff", xtps.to_str().unwrap(), "distributed", "cm5"]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("prediction diff"));
    assert!(text.contains("barrier wait"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_inputs_fail_cleanly() {
    let out = extrap(&["trace", "nope", "4", "-o", "/dev/null"]);
    assert!(!out.status.success());
    let out = extrap(&["simulate", "/nonexistent.xtps"]);
    assert!(!out.status.success());
    let out = extrap(&["frobnicate"]);
    assert!(!out.status.success());
    let out = extrap(&["benches"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("Embar"));
}

#[test]
fn lint_accepts_clean_traces_and_configs() {
    let dir = tmpdir("lint-clean");
    let xtrp = dir.join("c.xtrp");
    let xtps = dir.join("c.xtps");
    extrap(&[
        "trace",
        "grid",
        "4",
        "--scale",
        "tiny",
        "-o",
        xtrp.to_str().unwrap(),
    ]);
    extrap(&[
        "translate",
        xtrp.to_str().unwrap(),
        "-o",
        xtps.to_str().unwrap(),
    ]);
    let cfg = dir.join("machine.cfg");
    std::fs::write(&cfg, stdout(&extrap(&["params", "--machine", "cm5"]))).unwrap();

    let out = extrap(&[
        "lint",
        xtrp.to_str().unwrap(),
        xtps.to_str().unwrap(),
        cfg.to_str().unwrap(),
        "--machine",
        "ideal",
    ]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert_eq!(text.matches("clean: no diagnostics").count(), 4);

    let out = extrap(&["lint", xtps.to_str().unwrap(), "--format", "json"]);
    assert!(out.status.success(), "{out:?}");
    let json = stdout(&out);
    assert!(json.contains("\"diagnostics\":[]"), "{json}");
    assert!(
        json.trim_end().ends_with("\"errors\":0,\"warnings\":0}"),
        "{json}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_flags_corruption_and_exits_nonzero() {
    let dir = tmpdir("lint-bad");
    let cfg = dir.join("bad.cfg");
    std::fs::write(&cfg, "MipsRatio = 0\n").unwrap();
    let out = extrap(&["lint", cfg.to_str().unwrap()]);
    assert!(!out.status.success(), "out-of-range param must fail lint");
    assert!(stdout(&out).contains("error[E008]"));

    let out = extrap(&["lint", cfg.to_str().unwrap(), "--format", "json"]);
    assert!(!out.status.success());
    let json = stdout(&out);
    assert!(json.contains("\"code\":\"E008\""), "{json}");
    assert!(json.contains("\"errors\":1"), "{json}");

    // A corrupted binary trace: the strict reader would refuse it, but
    // `lint` decodes raw and must diagnose it with a stable code.
    let xtrp = dir.join("t.xtrp");
    extrap(&[
        "trace",
        "embar",
        "2",
        "--scale",
        "tiny",
        "-o",
        xtrp.to_str().unwrap(),
    ]);
    let mut bytes = std::fs::read(&xtrp).unwrap();
    // Zero the (little-endian u64) timestamp of the last record: each
    // record is 8 (time) + 4 (thread) + 1 (kind) + payload; the final
    // record is thread-end (no payload), 13 bytes from the stream's tail.
    let n = bytes.len();
    for b in &mut bytes[n - 13..n - 5] {
        *b = 0;
    }
    std::fs::write(&xtrp, &bytes).unwrap();
    let out = extrap(&["lint", xtrp.to_str().unwrap()]);
    assert!(!out.status.success(), "time regression must fail lint");
    assert!(stdout(&out).contains("error[E001]"), "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_codes_listing() {
    let out = extrap(&["lint", "--codes"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for code in ["E001", "E005", "E007", "E008", "W001", "W004"] {
        assert!(text.contains(code), "missing {code} in listing");
    }
}

#[test]
fn lint_recurses_directories_and_is_deterministic() {
    let dir = tmpdir("lint-dir");
    let sub = dir.join("nested");
    std::fs::create_dir_all(&sub).unwrap();
    let xtrp = dir.join("a.xtrp");
    extrap(&[
        "trace",
        "grid",
        "2",
        "--scale",
        "tiny",
        "-o",
        xtrp.to_str().unwrap(),
    ]);
    let xtps = sub.join("b.xtps");
    extrap(&[
        "translate",
        xtrp.to_str().unwrap(),
        "-o",
        xtps.to_str().unwrap(),
    ]);
    std::fs::write(
        sub.join("machine.cfg"),
        stdout(&extrap(&["params", "--machine", "cm5"])),
    )
    .unwrap();
    std::fs::write(dir.join("notes.txt"), "not linted").unwrap();

    let serial = extrap(&["lint", dir.to_str().unwrap(), "--jobs", "1"]);
    assert!(serial.status.success(), "{serial:?}");
    let text = stdout(&serial);
    assert_eq!(text.matches("clean: no diagnostics").count(), 3, "{text}");
    assert!(
        !text.contains("notes.txt"),
        "unrecognized extensions must be skipped: {text}"
    );
    let (a, b, c) = (
        text.find("a.xtrp").unwrap(),
        text.find("b.xtps").unwrap(),
        text.find("machine.cfg").unwrap(),
    );
    assert!(
        a < b && b < c,
        "directory expansion must be path-sorted: {text}"
    );

    let parallel = extrap(&["lint", dir.to_str().unwrap(), "--jobs", "8"]);
    assert!(parallel.status.success(), "{parallel:?}");
    assert_eq!(
        text,
        stdout(&parallel),
        "lint output must not depend on the worker count"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_fix_repairs_fixable_corruption() {
    let dir = tmpdir("lint-fix");
    let xtrp = dir.join("t.xtrp");
    extrap(&[
        "trace",
        "embar",
        "2",
        "--scale",
        "tiny",
        "-o",
        xtrp.to_str().unwrap(),
    ]);
    // Zero the timestamp of the final record (a 13-byte thread-end):
    // an E001 regression the fixer can repair by re-sorting.
    let mut bytes = std::fs::read(&xtrp).unwrap();
    let n = bytes.len();
    for b in &mut bytes[n - 13..n - 5] {
        *b = 0;
    }
    std::fs::write(&xtrp, &bytes).unwrap();
    assert!(!extrap(&["lint", xtrp.to_str().unwrap()]).status.success());

    // --dry-run reports the repairs but must not touch the file.
    let out = extrap(&["lint", "--fix", xtrp.to_str().unwrap(), "--dry-run"]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("fix[E001]"), "{}", stdout(&out));
    assert_eq!(
        std::fs::read(&xtrp).unwrap(),
        bytes,
        "--dry-run must not write"
    );

    // --fix --out writes a repaired copy that then lints clean.
    let fixed = dir.join("fixed.xtrp");
    let out = extrap(&[
        "lint",
        "--fix",
        xtrp.to_str().unwrap(),
        "--out",
        fixed.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    assert!(
        stdout(&out).contains("wrote fixed trace"),
        "{}",
        stdout(&out)
    );
    let out = extrap(&["lint", fixed.to_str().unwrap()]);
    assert!(out.status.success(), "fixed file must lint clean: {out:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_fix_refuses_unfixable_corruption() {
    let dir = tmpdir("lint-unfixable");
    let xtrp = dir.join("t.xtrp");
    extrap(&[
        "trace",
        "embar",
        "2",
        "--scale",
        "tiny",
        "-o",
        xtrp.to_str().unwrap(),
    ]);
    // Zero the timestamp of T1's trailing barrier-exit (the 17-byte
    // record starting 59 bytes from the end; the embar generator is
    // deterministic).  Re-sorting would drag the exit across its
    // matching enter, so this regression is NOT mechanically fixable.
    let mut bytes = std::fs::read(&xtrp).unwrap();
    let n = bytes.len();
    for b in &mut bytes[n - 59..n - 51] {
        *b = 0;
    }
    std::fs::write(&xtrp, &bytes).unwrap();

    let fixed = dir.join("fixed.xtrp");
    let out = extrap(&[
        "lint",
        "--fix",
        xtrp.to_str().unwrap(),
        "--out",
        fixed.to_str().unwrap(),
    ]);
    assert!(
        !out.status.success(),
        "unfixable corruption must fail --fix"
    );
    assert!(stdout(&out).contains("[unfixable]"), "{}", stdout(&out));
    assert!(!fixed.exists(), "--fix must not write a still-broken trace");
    // Configs have nothing to rewrite either.
    let cfg = dir.join("m.cfg");
    std::fs::write(&cfg, "MipsRatio = 1\n").unwrap();
    assert!(!extrap(&["lint", "--fix", cfg.to_str().unwrap()])
        .status
        .success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_allow_and_deny_warnings() {
    let dir = tmpdir("lint-allow");
    let cfg = dir.join("warn.cfg");
    // Legal but suspicious: contention enabled with a no-op alpha (W004).
    std::fs::write(&cfg, "Contention = on\nContentionAlpha = 0\n").unwrap();

    let out = extrap(&["lint", cfg.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "warnings alone must not fail: {out:?}"
    );
    assert!(stdout(&out).contains("warning[W004]"));

    let out = extrap(&["lint", cfg.to_str().unwrap(), "--deny-warnings"]);
    assert!(!out.status.success(), "--deny-warnings must fail on W004");

    let out = extrap(&[
        "lint",
        cfg.to_str().unwrap(),
        "--deny-warnings",
        "--allow",
        "w004",
    ]);
    assert!(out.status.success(), "allowed codes are filtered: {out:?}");
    assert!(stdout(&out).contains("clean: no diagnostics"));

    // --allow also silences errors (case-insensitive code parse).
    let out = extrap(&["lint", cfg.to_str().unwrap(), "--allow", "nope"]);
    assert!(!out.status.success(), "unknown --allow code must error");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_is_deterministic_across_worker_counts() {
    let args = |jobs: &'static str| {
        [
            "sweep",
            "embar,grid",
            "--scale",
            "tiny",
            "--procs",
            "1,2,4",
            "--jobs",
            jobs,
            "--csv",
        ]
    };
    let serial = extrap(&args("1"));
    assert!(serial.status.success(), "{serial:?}");
    let parallel = extrap(&args("8"));
    assert!(parallel.status.success(), "{parallel:?}");
    assert_eq!(
        stdout(&serial),
        stdout(&parallel),
        "sweep output must not depend on the worker count"
    );
    let text = stdout(&serial);
    assert!(text.starts_with("bench,procs,time_ms"));
    assert_eq!(
        text.lines().count(),
        1 + 2 * 3,
        "header + 2 benches x 3 procs"
    );
}
