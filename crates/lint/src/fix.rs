//! Mechanical repair of fixable lint findings (`extrap lint --fix`).
//!
//! The fixer handles exactly the diagnostics whose repair is
//! *unambiguous* (see [`Code::fixable`]):
//!
//! * `E001` / `E002` — timestamp dips are repaired by a **stable
//!   re-sort confined to the violating window**: the smallest record
//!   range around each descent that can be reordered without moving
//!   anything already in order.  Stability preserves the original
//!   relative order of equal timestamps, so an in-order trace is a
//!   fixed point.
//! * `E003` / `E006` — records referencing a non-existent thread, and
//!   remote accesses naming a non-existent or epoch-inconsistent owner,
//!   are **dropped**, each with a provenance note.  Barrier records of
//!   valid threads are never dropped (removing synchronization would
//!   silently change program meaning).
//! * `W003` — missing thread begin/end frames are **synthesized** at
//!   the stream boundaries (begin at the first timestamp, end at the
//!   last), so the repair introduces no new time regression.
//!
//! Everything else is left untouched: `E004`/`E005`/`E007` record real
//! program defects, and `E009` (misplaced thread traces) has no safe
//! resolution — swapping segments guesses at intent.
//!
//! [`fix_program`] / [`fix_set`] iterate drop → re-sort → synthesize to
//! a fixpoint (one repair can expose the next: re-sorting a window may
//! move a thread's begin off the front, requiring frame synthesis), and
//! return the repaired value plus the notes describing every change.
//! Callers decide what to do with the result; the CLI re-lints it and
//! refuses to write unless no errors remain.

use crate::diag::Code;
use extrap_time::{ElementId, ThreadId, TimeNs};
use extrap_trace::{EventKind, ProgramTrace, TraceRecord, TraceSet};
use std::collections::BTreeMap;

/// Safety cap on repair rounds.  Each round either changes nothing
/// (done) or strictly reduces disorder, so real traces converge in two
/// or three; the cap guards against a logic error looping forever.
const MAX_ROUNDS: usize = 8;

/// One change the fixer made, with the code that motivated it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FixNote {
    /// The diagnostic code this repair addresses.
    pub code: Code,
    /// What was changed, in provenance-note form.
    pub detail: String,
}

impl FixNote {
    fn new(code: Code, detail: impl Into<String>) -> FixNote {
        FixNote {
            code,
            detail: detail.into(),
        }
    }
}

/// A repaired value plus the notes describing every change made.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FixOutcome<T> {
    /// The (possibly unchanged) repaired value.
    pub value: T,
    /// One note per repair, in the order they were applied.
    pub notes: Vec<FixNote>,
}

impl<T> FixOutcome<T> {
    /// True when the fixer changed anything.
    pub fn changed(&self) -> bool {
        !self.notes.is_empty()
    }
}

/// Repairs every fixable finding in a program trace (see module docs).
pub fn fix_program(trace: &ProgramTrace) -> FixOutcome<ProgramTrace> {
    let mut records = trace.records.clone();
    let n_threads = trace.n_threads;
    let mut notes = Vec::new();
    for _ in 0..MAX_ROUNDS {
        let before = notes.len();
        drop_bad_records(&mut records, n_threads, "the global stream", &mut notes);
        sort_violating_windows(&mut records, None, &mut notes);
        synthesize_program_frames(&mut records, n_threads, &mut notes);
        if notes.len() == before {
            break;
        }
    }
    FixOutcome {
        value: ProgramTrace { n_threads, records },
        notes,
    }
}

/// Repairs every fixable finding in a trace set (see module docs).
pub fn fix_set(set: &TraceSet) -> FixOutcome<TraceSet> {
    let mut fixed = set.clone();
    let n_threads = fixed.threads.len();
    let mut notes = Vec::new();
    for _ in 0..MAX_ROUNDS {
        let before = notes.len();
        // Element-owner claims are compared across the whole set (one
        // epoch counter per segment, one shared claim table), exactly as
        // the lint pass sees them.
        let mut owners: BTreeMap<(usize, ElementId), ThreadId> = BTreeMap::new();
        for t in &mut fixed.threads {
            let label = format!("{}'s stream", t.thread);
            drop_dangling_accesses(&mut t.records, n_threads, &mut owners, &label, &mut notes);
        }
        for t in &mut fixed.threads {
            sort_violating_windows(&mut t.records, Some(t.thread), &mut notes);
        }
        for t in &mut fixed.threads {
            synthesize_thread_frame(t.thread, &mut t.records, &mut notes);
        }
        if notes.len() == before {
            break;
        }
    }
    FixOutcome {
        value: fixed,
        notes,
    }
}

/// Drops `E003` bad-thread records and `E006` dangling/inconsistent
/// remote accesses from a program's global stream.
fn drop_bad_records(
    records: &mut Vec<TraceRecord>,
    n_threads: usize,
    where_: &str,
    notes: &mut Vec<FixNote>,
) {
    let mut epochs = vec![0usize; n_threads];
    let mut owners: BTreeMap<(usize, ElementId), ThreadId> = BTreeMap::new();
    let mut kept = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        if r.thread.index() >= n_threads {
            notes.push(FixNote::new(
                Code::E003BadThreadId,
                format!(
                    "dropped record {i} of {where_}: references {} but the trace \
                     declares {n_threads} threads",
                    r.thread
                ),
            ));
            continue;
        }
        match keep_record(
            r,
            i,
            epochs[r.thread.index()],
            n_threads,
            &mut owners,
            where_,
        ) {
            Ok(()) => {
                if matches!(r.kind, EventKind::BarrierEnter { .. }) {
                    epochs[r.thread.index()] += 1;
                }
                kept.push(*r);
            }
            Err(note) => notes.push(note),
        }
    }
    *records = kept;
}

/// Drops `E006` dangling/inconsistent remote accesses from one
/// trace-set segment, sharing the claim table across segments.
fn drop_dangling_accesses(
    records: &mut Vec<TraceRecord>,
    n_threads: usize,
    owners: &mut BTreeMap<(usize, ElementId), ThreadId>,
    where_: &str,
    notes: &mut Vec<FixNote>,
) {
    let mut epoch = 0usize;
    let mut kept = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        match keep_record(r, i, epoch, n_threads, owners, where_) {
            Ok(()) => {
                if matches!(r.kind, EventKind::BarrierEnter { .. }) {
                    epoch += 1;
                }
                kept.push(*r);
            }
            Err(note) => notes.push(note),
        }
    }
    *records = kept;
}

/// Decides whether one record survives the `E006` drop pass, recording
/// in-range owner claims in the shared table (first *kept* claim wins,
/// matching the lint pass's first-claim-in-feed-order rule).
fn keep_record(
    r: &TraceRecord,
    i: usize,
    epoch: usize,
    n_threads: usize,
    owners: &mut BTreeMap<(usize, ElementId), ThreadId>,
    where_: &str,
) -> Result<(), FixNote> {
    let (owner, element) = match r.kind {
        EventKind::RemoteRead { owner, element, .. }
        | EventKind::RemoteWrite { owner, element, .. } => (owner, element),
        _ => return Ok(()),
    };
    if owner.index() >= n_threads {
        return Err(FixNote::new(
            Code::E006DanglingElement,
            format!(
                "dropped record {i} of {where_}: remote access to element {} names \
                 owner {owner} but the trace has {n_threads} threads",
                element.index()
            ),
        ));
    }
    match owners.get(&(epoch, element)) {
        Some(&first) if first != owner => Err(FixNote::new(
            Code::E006DanglingElement,
            format!(
                "dropped record {i} of {where_}: element {} claimed for owner {owner} \
                 but the epoch's first kept access names owner {first}",
                element.index()
            ),
        )),
        Some(_) => Ok(()),
        None => {
            owners.insert((epoch, element), owner);
            Ok(())
        }
    }
}

/// Finds the smallest window around the first timestamp descent at or
/// after `from` that a local re-sort fully repairs: grow left while the
/// neighbor exceeds the window minimum, right while the neighbor
/// precedes the window maximum.
fn unsorted_window(records: &[TraceRecord], from: usize) -> Option<(usize, usize)> {
    let d = (from.max(1)..records.len()).find(|&i| records[i].time < records[i - 1].time)?;
    let (mut l, mut r) = (d - 1, d);
    let mut lo = records[d].time;
    let mut hi = records[d - 1].time;
    loop {
        let mut grew = false;
        while l > 0 && records[l - 1].time > lo {
            l -= 1;
            lo = lo.min(records[l].time);
            hi = hi.max(records[l].time);
            grew = true;
        }
        while r + 1 < records.len() && records[r + 1].time < hi {
            r += 1;
            lo = lo.min(records[r].time);
            hi = hi.max(records[r].time);
            grew = true;
        }
        if !grew {
            return Some((l, r));
        }
    }
}

/// `E001`/`E002`: stable re-sort of each violating window.  `thread` is
/// `Some` for a per-thread stream (`E002` notes), `None` for the global
/// stream (`E001` notes).
fn sort_violating_windows(
    records: &mut [TraceRecord],
    thread: Option<ThreadId>,
    notes: &mut Vec<FixNote>,
) {
    let mut from = 0;
    while let Some((l, r)) = unsorted_window(records, from) {
        records[l..=r].sort_by_key(|x| x.time);
        let (code, where_) = match thread {
            Some(t) => (Code::E002ThreadTimeRegression, format!("{t}'s stream")),
            None => (
                Code::E001GlobalTimeRegression,
                "the global stream".to_string(),
            ),
        };
        notes.push(FixNote::new(
            code,
            format!(
                "re-sorted {} records in window [{l}..{r}] of {where_} (stable, \
                 timestamps only)",
                r - l + 1
            ),
        ));
        from = r + 1;
    }
}

/// `W003` for program traces: synthesize missing begin/end frames at
/// the stream boundaries so no new regression is introduced.
fn synthesize_program_frames(
    records: &mut Vec<TraceRecord>,
    n_threads: usize,
    notes: &mut Vec<FixNote>,
) {
    let mut first: Vec<Option<EventKind>> = vec![None; n_threads];
    let mut last: Vec<Option<EventKind>> = vec![None; n_threads];
    for r in records.iter() {
        let i = r.thread.index();
        if i < n_threads {
            if first[i].is_none() {
                first[i] = Some(r.kind);
            }
            last[i] = Some(r.kind);
        }
    }
    let front_time = records.first().map(|r| r.time).unwrap_or(TimeNs::ZERO);
    let back_time = records.last().map(|r| r.time).unwrap_or(TimeNs::ZERO);
    let mut prepend: Vec<TraceRecord> = Vec::new();
    let mut append: Vec<TraceRecord> = Vec::new();
    for t in 0..n_threads {
        let thread = ThreadId(t as u32);
        let (need_begin, need_end) = frame_needs(thread, first[t], last[t], notes);
        if need_begin {
            prepend.push(TraceRecord {
                time: front_time,
                thread,
                kind: EventKind::ThreadBegin,
            });
        }
        if need_end {
            // An absent thread's end goes up front with its begin (the
            // empty frame); a present thread's end closes its stream.
            let rec = |time| TraceRecord {
                time,
                thread,
                kind: EventKind::ThreadEnd,
            };
            if first[t].is_none() {
                prepend.push(rec(front_time));
            } else {
                append.push(rec(back_time));
            }
        }
    }
    if !prepend.is_empty() {
        prepend.append(records);
        *records = prepend;
    }
    records.append(&mut append);
}

/// `W003` for one trace-set segment.
fn synthesize_thread_frame(
    thread: ThreadId,
    records: &mut Vec<TraceRecord>,
    notes: &mut Vec<FixNote>,
) {
    let first = records.first().map(|r| r.kind);
    let last = records.last().map(|r| r.kind);
    let (need_begin, need_end) = frame_needs(thread, first, last, notes);
    let front_time = records.first().map(|r| r.time).unwrap_or(TimeNs::ZERO);
    let back_time = records.last().map(|r| r.time).unwrap_or(TimeNs::ZERO);
    if need_begin {
        records.insert(
            0,
            TraceRecord {
                time: front_time,
                thread,
                kind: EventKind::ThreadBegin,
            },
        );
    }
    if need_end {
        records.push(TraceRecord {
            time: back_time,
            thread,
            kind: EventKind::ThreadEnd,
        });
    }
}

/// Shared `W003` decision: which frame records a thread is missing,
/// with one note per synthesized record.
fn frame_needs(
    thread: ThreadId,
    first: Option<EventKind>,
    last: Option<EventKind>,
    notes: &mut Vec<FixNote>,
) -> (bool, bool) {
    let (need_begin, need_end) = match (first, last) {
        (Some(EventKind::ThreadBegin), Some(EventKind::ThreadEnd)) => (false, false),
        (None, _) => (true, true),
        (f, l) => (
            f != Some(EventKind::ThreadBegin),
            l != Some(EventKind::ThreadEnd),
        ),
    };
    if need_begin && need_end && first.is_none() {
        notes.push(FixNote::new(
            Code::W003MissingThreadFrame,
            format!("synthesized an empty begin/end frame for {thread}, which has no events"),
        ));
        return (true, true);
    }
    if need_begin {
        notes.push(FixNote::new(
            Code::W003MissingThreadFrame,
            format!("synthesized a begin event at the front of {thread}'s stream"),
        ));
    }
    if need_end {
        notes.push(FixNote::new(
            Code::W003MissingThreadFrame,
            format!("synthesized an end event at the back of {thread}'s stream"),
        ));
    }
    (need_begin, need_end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_program, lint_set};
    use extrap_time::DurationNs;
    use extrap_trace::{translate, PhaseProgram};

    fn clean_program() -> ProgramTrace {
        let mut p = PhaseProgram::new(2);
        p.push_uniform_phase(DurationNs(100));
        p.push_uniform_phase(DurationNs(40));
        p.record()
    }

    #[test]
    fn clean_trace_is_a_fixed_point() {
        let pt = clean_program();
        let out = fix_program(&pt);
        assert!(!out.changed());
        assert_eq!(out.value, pt);
        let ts = translate(&pt, Default::default()).unwrap();
        let out = fix_set(&ts);
        assert!(!out.changed());
        assert_eq!(out.value, ts);
    }

    #[test]
    fn timestamp_dip_is_resorted_within_window() {
        // Same corruption as examples/traces/corrupt_time.xtrp: the
        // final ThreadEnd's timestamp zeroed.  (Zeroing a *barrier*
        // record instead would be unfixable — the re-sort would tear
        // the enter/exit pairing, an E004.)
        let mut pt = clean_program();
        let i = pt.records.len() - 1;
        pt.records[i].time = TimeNs(0);
        assert!(lint_program(&pt).has_errors());
        let out = fix_program(&pt);
        assert!(out.changed());
        assert!(out
            .notes
            .iter()
            .any(|n| n.code == Code::E001GlobalTimeRegression));
        assert!(!lint_program(&out.value).has_errors());
        // The re-sort drops nothing; it may only *add* synthesized
        // frame records (the moved end tears a thread's frame).
        assert!(out.value.records.len() >= pt.records.len());
    }

    #[test]
    fn dangling_owner_is_dropped_with_note() {
        let mut pt = clean_program();
        let time = pt.records.last().unwrap().time;
        let end = pt.records.pop().unwrap();
        pt.records.push(TraceRecord {
            time,
            thread: ThreadId(0),
            kind: EventKind::RemoteRead {
                owner: ThreadId(99),
                element: ElementId(7),
                declared_bytes: 64,
                actual_bytes: 8,
            },
        });
        pt.records.push(end);
        let out = fix_program(&pt);
        assert!(out
            .notes
            .iter()
            .any(|n| n.code == Code::E006DanglingElement));
        assert!(!lint_program(&out.value).has_errors());
        assert_eq!(out.value.records.len(), pt.records.len() - 1);
    }

    #[test]
    fn fix_is_idempotent_on_its_own_output() {
        let mut pt = clean_program();
        pt.records[2].time = TimeNs(0);
        pt.records.retain(|r| r.kind != EventKind::ThreadEnd);
        let once = fix_program(&pt);
        assert!(!lint_program(&once.value).has_errors());
        let twice = fix_program(&once.value);
        assert!(!twice.changed(), "second fix changed: {:?}", twice.notes);
        assert_eq!(twice.value, once.value);
    }

    #[test]
    fn unfixable_set_corruption_is_left_untouched() {
        let pt = clean_program();
        let ts = translate(&pt, Default::default()).unwrap();
        // Swap the two segments: E009, deliberately unfixable.
        let mut bad = ts.clone();
        bad.threads.swap(0, 1);
        let out = fix_set(&bad);
        assert!(!out.changed());
        assert_eq!(out.value, bad);
        assert!(lint_set(&out.value).has_errors());
    }
}
