//! Incremental lint machines: every trace pass as a state machine fed
//! record-by-record, so multi-gigabyte traces lint in bounded memory.
//!
//! [`StreamLinter`] combines the two trace pass families:
//!
//! * [`WellFormedStream`] — fully streaming well-formedness (`E001`,
//!   `E002`, `E003`, `E004`, `E006`, `E009`, `W001`, `W002`, `W003`);
//! * [`SoundnessStream`] — translation soundness (`E005`, `E007`)
//!   keeping only per-thread barrier-sequence digests and the collapsed
//!   vector clocks (barrier-epoch counters), never the record stream.
//!
//! The whole-trace entry points ([`crate::lint_program`] /
//! [`crate::lint_set`]) are thin adapters that replay in-memory traces
//! through these machines, so the streaming drivers
//! ([`lint_program_stream`] / [`lint_set_stream`] / [`lint_trace_file`])
//! produce **byte-identical** reports by construction.
//!
//! # Memory bound
//!
//! Resident analysis state is `O(threads + live epochs + sync events)`,
//! independent of the record count:
//!
//! * per thread: a constant-size cursor (clock, barrier-protocol cell,
//!   epoch counter) plus its phase-marker sequence (markers are rare —
//!   one per program phase — and `W001`'s message prints the full
//!   sequences, so they are retained);
//! * the element-ownership and causality maps are keyed by
//!   `(epoch, element)`; for program traces (global time order, so
//!   epochs advance together) entries whose epoch every thread has left
//!   are pruned as the stream advances, leaving only **live** epochs;
//!   for trace sets the epoch counter restarts with every segment, so
//!   entries persist but are still bounded by distinct
//!   `(epoch, element)` pairs, not records;
//! * the `E005` digest keeps the first thread's barrier-id sequence as
//!   the reference plus, per other thread, a counter, the first
//!   mismatch, and any enters that arrived before the reference grew.
//!
//! [`StreamLinter::peak_resident_bytes`] reports an estimate of that
//! state (analysis state only, excluding emitted diagnostics), which
//! tests pin to show the bound holds as traces grow.

use crate::diag::{Code, Diagnostic, Report, Span};
use extrap_time::{BarrierId, ElementId, ThreadId, TimeNs};
use extrap_trace::stream::{
    sniff_kind, ChunkSource, ProgramStream, SetChunk, SetStream, StreamArena, TraceKind,
};
use extrap_trace::{EventKind, TraceError, TraceRecord};
use std::collections::{BTreeMap, BTreeSet};
use std::mem::size_of;
use std::path::Path;

/// Which trace shape a machine is consuming.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Shape {
    Program,
    Set,
}

/// Per-thread well-formedness cursor.
struct ThreadWf {
    thread: ThreadId,
    count: usize,
    first_kind: Option<EventKind>,
    last_kind: Option<EventKind>,
    open: Option<(BarrierId, Span)>,
    epoch: usize,
    markers: Vec<u32>,
    prev_time: TimeNs,
}

impl ThreadWf {
    fn new(thread: ThreadId) -> ThreadWf {
        ThreadWf {
            thread,
            count: 0,
            first_kind: None,
            last_kind: None,
            open: None,
            epoch: 0,
            markers: Vec::new(),
            prev_time: TimeNs::ZERO,
        }
    }
}

/// The well-formedness pass as an incremental machine (see module docs).
pub struct WellFormedStream {
    shape: Shape,
    n_threads: usize,
    threads: Vec<ThreadWf>,
    current: usize,
    next_record: usize,
    prev_time: TimeNs,
    /// First claimed owner per `(epoch, element)`; shared across
    /// threads, pruned to live epochs for program traces.
    owners: BTreeMap<(usize, ElementId), ThreadId>,
    marker_total: usize,
}

impl WellFormedStream {
    /// A machine for a 1-processor program trace declaring `n_threads`.
    pub fn for_program(n_threads: usize) -> WellFormedStream {
        WellFormedStream {
            shape: Shape::Program,
            n_threads,
            threads: (0..n_threads)
                .map(|t| ThreadWf::new(ThreadId(t as u32)))
                .collect(),
            current: 0,
            next_record: 0,
            prev_time: TimeNs::ZERO,
            owners: BTreeMap::new(),
            marker_total: 0,
        }
    }

    /// A machine for a trace set declaring `n_threads` segments.
    pub fn for_set(n_threads: usize) -> WellFormedStream {
        WellFormedStream {
            shape: Shape::Set,
            n_threads,
            threads: Vec::new(),
            current: 0,
            next_record: 0,
            prev_time: TimeNs::ZERO,
            owners: BTreeMap::new(),
            marker_total: 0,
        }
    }

    /// Starts the next per-thread segment (set shape only).
    pub fn begin_thread(&mut self, position: usize, thread: ThreadId, report: &mut Report) {
        debug_assert_eq!(self.shape, Shape::Set);
        if thread.index() != position {
            report.push(
                Code::E009MisplacedThread,
                Span::thread(thread),
                format!("trace at position {position} claims to belong to {thread}"),
            );
        }
        self.threads.push(ThreadWf::new(thread));
        self.current = self.threads.len() - 1;
        self.next_record = 0;
    }

    /// Feeds one record; returns the `(thread index, span)` the record
    /// was attributed to, or `None` when it belongs to no tracked
    /// thread (out-of-range ids in a program trace).
    pub fn record(&mut self, r: &TraceRecord, report: &mut Report) -> Option<(usize, Span)> {
        match self.shape {
            Shape::Program => {
                let i = self.next_record;
                self.next_record += 1;
                if r.thread.index() >= self.n_threads {
                    report.push(
                        Code::E003BadThreadId,
                        Span::record(i),
                        format!(
                            "record references {} but the trace declares {} threads",
                            r.thread, self.n_threads
                        ),
                    );
                }
                if r.time < self.prev_time {
                    report.push(
                        Code::E001GlobalTimeRegression,
                        Span::at(r.thread, i),
                        format!(
                            "global clock goes backwards: {} ns after {} ns",
                            r.time.0, self.prev_time.0
                        ),
                    );
                }
                // Resynchronize after a dip so one corruption yields one
                // diagnostic instead of flagging every later in-order record.
                self.prev_time = r.time;
                if r.thread.index() < self.n_threads {
                    let idx = r.thread.index();
                    let span = Span::at(r.thread, i);
                    self.step(idx, span, r, report);
                    Some((idx, span))
                } else {
                    None
                }
            }
            Shape::Set => {
                let j = self.next_record;
                self.next_record += 1;
                let idx = self.current;
                let thread = self.threads[idx].thread;
                let span = Span::at(thread, j);
                if r.thread != thread {
                    report.push(
                        Code::E009MisplacedThread,
                        span,
                        format!("record of {} found in {thread}'s trace", r.thread),
                    );
                }
                if r.time < self.threads[idx].prev_time {
                    report.push(
                        Code::E002ThreadTimeRegression,
                        span,
                        format!(
                            "{thread}'s clock goes backwards: {} ns after {} ns",
                            r.time.0, self.threads[idx].prev_time.0
                        ),
                    );
                }
                self.threads[idx].prev_time = r.time;
                self.step(idx, span, r, report);
                Some((idx, span))
            }
        }
    }

    /// The shape-independent per-thread protocol checks.
    fn step(&mut self, idx: usize, span: Span, r: &TraceRecord, report: &mut Report) {
        let tw = &mut self.threads[idx];
        tw.count += 1;
        if tw.first_kind.is_none() {
            tw.first_kind = Some(r.kind);
        }
        tw.last_kind = Some(r.kind);
        let (owner, element) = match r.kind {
            EventKind::BarrierEnter { barrier } => {
                if let Some((inside, _)) = tw.open {
                    report.push(
                        Code::E004BarrierProtocol,
                        span,
                        format!(
                            "{} enters barrier {} while still inside barrier {}",
                            tw.thread,
                            barrier.index(),
                            inside.index()
                        ),
                    );
                }
                tw.open = Some((barrier, span));
                tw.epoch += 1;
                if self.shape == Shape::Program {
                    self.prune_dead_epochs();
                }
                return;
            }
            EventKind::BarrierExit { barrier } => {
                match tw.open.take() {
                    None => report.push(
                        Code::E004BarrierProtocol,
                        span,
                        format!(
                            "{} exits barrier {} without having entered it",
                            tw.thread,
                            barrier.index()
                        ),
                    ),
                    Some((entered, _)) if entered != barrier => report.push(
                        Code::E004BarrierProtocol,
                        span,
                        format!(
                            "{} exits barrier {} but entered barrier {}",
                            tw.thread,
                            barrier.index(),
                            entered.index()
                        ),
                    ),
                    Some(_) => {}
                }
                return;
            }
            EventKind::Marker { id } => {
                tw.markers.push(id);
                self.marker_total += 1;
                return;
            }
            EventKind::RemoteRead { owner, element, .. }
            | EventKind::RemoteWrite { owner, element, .. } => (owner, element),
            _ => return,
        };
        // Ownership is only required to be consistent *within* a barrier
        // epoch: programs redistribute arrays (and multigrid codes reuse
        // element ids across levels), but two same-epoch accesses naming
        // different owners for one element cannot both be right.
        let (thread, epoch) = (tw.thread, tw.epoch);
        if owner.index() >= self.n_threads {
            report.push(
                Code::E006DanglingElement,
                span,
                format!(
                    "remote access to element {} names owner {owner} but the trace has \
                     {} threads",
                    element.index(),
                    self.n_threads
                ),
            );
        } else if owner == thread {
            report.push(
                Code::W002SelfRemoteAccess,
                span,
                format!(
                    "{thread} remote-accesses element {} it owns itself (local access \
                     traced as remote?)",
                    element.index()
                ),
            );
        }
        match self.owners.get(&(epoch, element)) {
            None => {
                self.owners.insert((epoch, element), owner);
            }
            Some(&first) if first != owner => {
                report.push(
                    Code::E006DanglingElement,
                    span,
                    format!(
                        "element {} accessed with owner {owner} but an access in the same \
                         barrier epoch names owner {first} (inconsistent ownership)",
                        element.index()
                    ),
                );
            }
            Some(_) => {}
        }
    }

    /// Drops ownership entries for epochs every thread has left.  Only
    /// sound for program traces: the global stream is consumed in time
    /// order, so once the minimum per-thread epoch passes `e`, no
    /// further record can land in epoch `e`.
    fn prune_dead_epochs(&mut self) {
        let min_epoch = self.threads.iter().map(|t| t.epoch).min().unwrap_or(0);
        while self
            .owners
            .first_key_value()
            .is_some_and(|(k, _)| k.0 < min_epoch)
        {
            self.owners.pop_first();
        }
    }

    /// Emits the end-of-stream diagnostics: per-thread frame (`W003`)
    /// and unclosed-barrier (`E004`) checks, then the cross-thread
    /// marker comparison (`W001`).
    pub fn finish(&mut self, report: &mut Report) {
        for tw in &self.threads {
            match (tw.first_kind, tw.last_kind) {
                (None, _) => report.push(
                    Code::W003MissingThreadFrame,
                    Span::thread(tw.thread),
                    format!("{} has no events at all", tw.thread),
                ),
                (Some(EventKind::ThreadBegin), Some(EventKind::ThreadEnd)) => {}
                (first, last) => report.push(
                    Code::W003MissingThreadFrame,
                    Span::thread(tw.thread),
                    format!(
                        "{}'s stream is not framed by begin/end (starts with {}, ends with {})",
                        tw.thread,
                        first.map(|k| k.tag()).unwrap_or("nothing"),
                        last.map(|k| k.tag()).unwrap_or("nothing"),
                    ),
                ),
            }
            if let Some((barrier, span)) = tw.open {
                report.push(
                    Code::E004BarrierProtocol,
                    span,
                    format!(
                        "{} enters barrier {} but never exits it",
                        tw.thread,
                        barrier.index()
                    ),
                );
            }
        }
        let Some(first) = self.threads.first() else {
            return;
        };
        let (reference, ref_thread) = (&first.markers, first.thread);
        for tw in &self.threads[1..] {
            if &tw.markers != reference {
                report.push(
                    Code::W001MarkerMismatch,
                    Span::thread(tw.thread),
                    format!(
                        "{} passes marker sequence {:?} but {ref_thread} passes {:?}",
                        tw.thread, tw.markers, reference
                    ),
                );
            }
        }
    }

    /// Estimated bytes of resident analysis state (O(1) to compute).
    pub fn resident_bytes(&self) -> usize {
        self.threads.len() * size_of::<ThreadWf>()
            + self.marker_total * size_of::<u32>()
            + self.owners.len() * size_of::<((usize, ElementId), ThreadId)>()
    }
}

/// One element's accesses within one barrier epoch, collapsed to the
/// digest `E007` needs: the first writer (in view order) and the set of
/// participating threads.
struct EpochAccess {
    writer: Option<(ThreadId, Span, (usize, usize))>,
    participants: BTreeSet<ThreadId>,
}

/// Per-thread soundness digest.
struct ThreadSound {
    thread: ThreadId,
    epoch: usize,
    entered: usize,
    first_mismatch: Option<(usize, u32, u32)>,
    /// Barrier enters that arrived before the reference sequence grew
    /// to their position; resolved at [`SoundnessStream::finish`].
    pending: Vec<(usize, u32)>,
}

impl ThreadSound {
    fn new(thread: ThreadId) -> ThreadSound {
        ThreadSound {
            thread,
            epoch: 0,
            entered: 0,
            first_mismatch: None,
            pending: Vec::new(),
        }
    }
}

/// The translation-soundness pass as an incremental machine: `E005`
/// barrier-sequence agreement via per-thread digests against the first
/// thread's reference sequence, and `E007` causality via the collapsed
/// vector clocks (see the module docs of `passes::soundness` for the
/// theory).
pub struct SoundnessStream {
    shape: Shape,
    threads: Vec<ThreadSound>,
    /// The first thread's barrier-id sequence (the `E005` reference).
    reference: Vec<u32>,
    accesses: BTreeMap<(usize, ElementId), EpochAccess>,
    /// `E007` diagnostics for epochs already pruned (program shape);
    /// buffered so they still render after the `E005`s, in key order.
    early_e007: Vec<Diagnostic>,
    pending_total: usize,
    participants_total: usize,
}

impl SoundnessStream {
    /// A machine for a program trace declaring `n_threads`.
    pub fn for_program(n_threads: usize) -> SoundnessStream {
        SoundnessStream {
            shape: Shape::Program,
            threads: (0..n_threads)
                .map(|t| ThreadSound::new(ThreadId(t as u32)))
                .collect(),
            reference: Vec::new(),
            accesses: BTreeMap::new(),
            early_e007: Vec::new(),
            pending_total: 0,
            participants_total: 0,
        }
    }

    /// A machine for a trace set.
    pub fn for_set() -> SoundnessStream {
        SoundnessStream {
            shape: Shape::Set,
            threads: Vec::new(),
            reference: Vec::new(),
            accesses: BTreeMap::new(),
            early_e007: Vec::new(),
            pending_total: 0,
            participants_total: 0,
        }
    }

    /// Starts the next per-thread segment (set shape only).
    pub fn begin_thread(&mut self, thread: ThreadId) {
        debug_assert_eq!(self.shape, Shape::Set);
        self.threads.push(ThreadSound::new(thread));
    }

    /// Feeds one record attributed to thread index `idx` (program:
    /// `r.thread`'s index; set: the segment position) at `span`.
    pub fn record(&mut self, idx: usize, span: Span, r: &TraceRecord) {
        match r.kind {
            EventKind::BarrierEnter { barrier } => {
                let t = &mut self.threads[idx];
                let pos = t.entered;
                t.entered += 1;
                t.epoch += 1;
                if idx == 0 {
                    self.reference.push(barrier.0);
                } else if pos < self.reference.len() {
                    if self.reference[pos] != barrier.0 && t.first_mismatch.is_none() {
                        t.first_mismatch = Some((pos, barrier.0, self.reference[pos]));
                    }
                } else {
                    t.pending.push((pos, barrier.0));
                    self.pending_total += 1;
                }
                if self.shape == Shape::Program {
                    self.prune_dead_epochs();
                }
            }
            EventKind::RemoteRead { element, .. } => self.note_access(idx, span, element, false),
            EventKind::RemoteWrite { element, .. } => self.note_access(idx, span, element, true),
            _ => {}
        }
    }

    fn note_access(&mut self, idx: usize, span: Span, element: ElementId, write: bool) {
        let t = &self.threads[idx];
        let (thread, epoch) = (t.thread, t.epoch);
        let acc = self
            .accesses
            .entry((epoch, element))
            .or_insert_with(|| EpochAccess {
                writer: None,
                participants: BTreeSet::new(),
            });
        if acc.participants.insert(thread) {
            self.participants_total += 1;
        }
        if write {
            // "First writer" in view order = minimal (view index, record
            // index), matching the whole-trace pass even when the global
            // stream interleaves threads.
            let key = (idx, span.record.unwrap_or(0));
            match acc.writer {
                Some((_, _, k)) if k <= key => {}
                _ => acc.writer = Some((thread, span, key)),
            }
        }
    }

    /// Converts one collapsed access cell into its `E007` diagnostic,
    /// if it is a race (a writer plus at least one other participant).
    fn race_diagnostic(key: (usize, ElementId), acc: &EpochAccess) -> Option<Diagnostic> {
        let (epoch, element) = key;
        let (writer, span, _) = acc.writer?;
        if acc.participants.len() <= 1 {
            return None;
        }
        let others: Vec<String> = acc
            .participants
            .iter()
            .filter(|&&t| t != writer)
            .map(|t| t.to_string())
            .collect();
        Some(Diagnostic::new(
            Code::E007CausalityViolation,
            span,
            format!(
                "write to element {} by {writer} is concurrent with accesses by {} in \
                 barrier epoch {epoch} — no happens-before edge orders them, so the \
                 trace does not transfer across timings (§5)",
                element.index(),
                others.join(", "),
            ),
        ))
    }

    /// Evaluates and drops access cells for epochs every thread has
    /// left (program shape; see [`WellFormedStream::prune_dead_epochs`]).
    fn prune_dead_epochs(&mut self) {
        let min_epoch = self.threads.iter().map(|t| t.epoch).min().unwrap_or(0);
        while self
            .accesses
            .first_key_value()
            .is_some_and(|(k, _)| k.0 < min_epoch)
        {
            let (key, acc) = self.accesses.pop_first().expect("peeked non-empty");
            self.participants_total -= acc.participants.len();
            if let Some(d) = SoundnessStream::race_diagnostic(key, &acc) {
                self.early_e007.push(d);
            }
        }
    }

    /// Emits the end-of-stream diagnostics: `E005` per disagreeing
    /// thread, then every `E007` race in `(epoch, element)` order.
    pub fn finish(&mut self, report: &mut Report) {
        if self.threads.is_empty() {
            return;
        }
        let (head, tail) = self.threads.split_at_mut(1);
        let ref_thread = head[0].thread;
        let ref_len = self.reference.len();
        for t in tail {
            // Resolve enters that outran the reference, keeping the
            // lowest-position mismatch (a pending entry at position p can
            // precede an inline-compared one at position q > p).
            for &(pos, b) in &t.pending {
                if pos < ref_len && self.reference[pos] != b {
                    match t.first_mismatch {
                        Some((p, _, _)) if p <= pos => {}
                        _ => t.first_mismatch = Some((pos, b, self.reference[pos])),
                    }
                }
            }
            if t.entered != ref_len {
                report.push(
                    Code::E005BarrierMismatch,
                    Span::thread(t.thread),
                    format!(
                        "{} enters {} barriers but {ref_thread} enters {} — the threads \
                         deadlock at barrier number {}",
                        t.thread,
                        t.entered,
                        ref_len,
                        t.entered.min(ref_len)
                    ),
                );
            } else if let Some((i, a, b)) = t.first_mismatch {
                report.push(
                    Code::E005BarrierMismatch,
                    Span::thread(t.thread),
                    format!(
                        "{} enters barrier {a} where {ref_thread} enters barrier {b} \
                         (position {i} of the barrier sequence)",
                        t.thread
                    ),
                );
            }
        }
        // Pruned epochs first (lower keys), then the still-live cells:
        // together, ascending (epoch, element) order.
        for d in self.early_e007.drain(..) {
            report.diagnostics.push(d);
        }
        for (&key, acc) in &self.accesses {
            if let Some(d) = SoundnessStream::race_diagnostic(key, acc) {
                report.diagnostics.push(d);
            }
        }
    }

    /// Estimated bytes of resident analysis state (O(1) to compute;
    /// excludes buffered diagnostics, which are output, not state).
    pub fn resident_bytes(&self) -> usize {
        self.threads.len() * size_of::<ThreadSound>()
            + self.reference.len() * size_of::<u32>()
            + self.pending_total * size_of::<(usize, u32)>()
            + self.accesses.len() * size_of::<((usize, ElementId), EpochAccess)>()
            + self.participants_total * size_of::<ThreadId>()
    }
}

/// Both trace pass families behind one record-at-a-time interface,
/// producing the same [`Report`] as [`crate::lint_program`] /
/// [`crate::lint_set`] (see module docs).
pub struct StreamLinter {
    wf: WellFormedStream,
    sound: SoundnessStream,
    report: Report,
    peak_resident: usize,
}

impl StreamLinter {
    /// A linter for a program trace declaring `n_threads`.
    pub fn for_program(n_threads: usize) -> StreamLinter {
        let mut lt = StreamLinter {
            wf: WellFormedStream::for_program(n_threads),
            sound: SoundnessStream::for_program(n_threads),
            report: Report::new(),
            peak_resident: 0,
        };
        lt.note_peak();
        lt
    }

    /// A linter for a trace set declaring `n_threads` segments.
    pub fn for_set(n_threads: usize) -> StreamLinter {
        let mut lt = StreamLinter {
            wf: WellFormedStream::for_set(n_threads),
            sound: SoundnessStream::for_set(),
            report: Report::new(),
            peak_resident: 0,
        };
        lt.note_peak();
        lt
    }

    /// Starts the next per-thread segment (set shape only).
    pub fn begin_thread(&mut self, position: usize, thread: ThreadId) {
        self.wf.begin_thread(position, thread, &mut self.report);
        self.sound.begin_thread(thread);
        self.note_peak();
    }

    /// Feeds one record through both machines.
    pub fn record(&mut self, r: &TraceRecord) {
        if let Some((idx, span)) = self.wf.record(r, &mut self.report) {
            self.sound.record(idx, span, r);
        }
        self.note_peak();
    }

    /// Finishes both machines and returns the combined report.
    pub fn finish(mut self) -> Report {
        self.wf.finish(&mut self.report);
        self.sound.finish(&mut self.report);
        self.report
    }

    fn note_peak(&mut self) {
        let resident = self.resident_bytes();
        if resident > self.peak_resident {
            self.peak_resident = resident;
        }
    }

    /// Estimated bytes of resident analysis state right now.
    pub fn resident_bytes(&self) -> usize {
        self.wf.resident_bytes() + self.sound.resident_bytes()
    }

    /// The high-water mark of [`resident_bytes`](Self::resident_bytes)
    /// over the stream so far — what the memory-bound tests pin.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident
    }
}

/// Lints a chunked program-trace stream without materializing it.
pub fn lint_program_stream<S: ChunkSource>(
    stream: &mut ProgramStream<S>,
) -> Result<Report, TraceError> {
    let mut lt = StreamLinter::for_program(stream.n_threads());
    while let Some(chunk) = stream.next_chunk()? {
        for r in chunk {
            lt.record(r);
        }
    }
    Ok(lt.finish())
}

/// Lints a chunked trace-set stream without materializing it.
pub fn lint_set_stream<S: ChunkSource>(stream: &mut SetStream<S>) -> Result<Report, TraceError> {
    let mut lt = StreamLinter::for_set(stream.n_threads());
    loop {
        match stream.next_chunk()? {
            None => break,
            Some(SetChunk::Thread {
                position, thread, ..
            }) => lt.begin_thread(position, thread),
            Some(SetChunk::Records(recs)) => {
                for r in recs {
                    lt.record(r);
                }
            }
        }
    }
    Ok(lt.finish())
}

/// Lints a trace file through the chunked reader, dispatching on its
/// magic bytes and recycling `arena`'s buffers across calls.
///
/// Returns `Ok(None)` when the file carries neither trace magic (the
/// caller decides whether to treat it as config text).
pub fn lint_trace_file(
    path: impl AsRef<Path>,
    arena: &mut StreamArena,
) -> Result<Option<Report>, TraceError> {
    let path = path.as_ref();
    let kind = sniff_kind(path).map_err(|e| TraceError::from(e).in_file(path))?;
    let taken = std::mem::take(arena);
    match kind {
        None => {
            *arena = taken;
            Ok(None)
        }
        Some(TraceKind::Program) => {
            let mut stream = ProgramStream::open_with_arena(path, taken)?;
            let report = lint_program_stream(&mut stream);
            *arena = stream.into_arena();
            report.map(Some)
        }
        Some(TraceKind::Set) => {
            let mut stream = SetStream::open_with_arena(path, taken)?;
            let report = lint_set_stream(&mut stream);
            *arena = stream.into_arena();
            report.map(Some)
        }
    }
}
