#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # extrap-lint — static trace/model verification
//!
//! The extrapolation pipeline trusts its inputs: a corrupted trace or a
//! nonsensical machine description does not crash the simulator, it
//! produces confidently wrong predictions.  This crate closes that gap
//! with a registry of **static passes** run over traces and parameter
//! sets *before* simulation:
//!
//! * [`passes::WellFormedness`] — monotone timestamps, valid thread
//!   ids, matched barrier entry/exit, balanced phase markers, remote
//!   accesses referencing valid and consistently-owned elements;
//! * [`passes::TranslationSoundness`] — cross-thread barrier agreement
//!   (static deadlock detection) and a vector-clock happens-before
//!   check that the §3.2 translation preserves causality (the §5
//!   determinism analysis as a race detector);
//! * [`passes::ModelSanity`] — parameter ranges and
//!   topology/contention consistency on [`SimParams`].
//!
//! Findings are [`Diagnostic`]s with **stable codes** (`E001`–`E009`,
//! `W001`–`W004`; see [`Code`]), rendered as compiler-style text or
//! JSON ([`render`]).  The `extrap lint` subcommand drives this crate
//! from the command line; [`validate_program`] / [`validate_set`] plug
//! it into the trace reader's and [`SharedTraceCache`]'s opt-in
//! validate-on-load hooks.
//!
//! [`SharedTraceCache`]: extrap_core::SharedTraceCache

pub mod diag;
pub mod fix;
pub mod passes;
pub mod render;
pub mod stream;

pub use diag::{Code, Diagnostic, Report, Severity, Span};
pub use fix::{fix_program, fix_set, FixNote, FixOutcome};
pub use passes::{ModelSanity, Pass, Target, TranslationSoundness, WellFormedness};
pub use render::{render_json, render_text, summary_line};
pub use stream::{
    lint_program_stream, lint_set_stream, lint_trace_file, SoundnessStream, StreamLinter,
    WellFormedStream,
};

use extrap_core::SimParams;
use extrap_trace::{ProgramTrace, TraceSet};

/// A configured sequence of lint passes.
///
/// [`Linter::new`] registers the full default registry; [`with_pass`]
/// appends custom passes.  Every pass sees every target and contributes
/// to one combined [`Report`], so a single run diagnoses everything at
/// once rather than stopping at the first problem (the difference
/// between this crate and the `validate()` methods it subsumes).
///
/// [`with_pass`]: Linter::with_pass
pub struct Linter {
    passes: Vec<Box<dyn Pass>>,
}

impl Linter {
    /// A linter with the default pass registry.
    pub fn new() -> Linter {
        Linter {
            passes: vec![
                Box::new(WellFormedness),
                Box::new(TranslationSoundness),
                Box::new(ModelSanity),
            ],
        }
    }

    /// Appends a custom pass to the registry.
    pub fn with_pass(mut self, pass: Box<dyn Pass>) -> Linter {
        self.passes.push(pass);
        self
    }

    /// The registered pass names, in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass over one target.
    pub fn run(&self, target: &Target<'_>) -> Report {
        let mut report = Report::new();
        for pass in &self.passes {
            pass.run(target, &mut report);
        }
        report
    }

    /// Lints a 1-processor program trace.
    pub fn lint_program(&self, trace: &ProgramTrace) -> Report {
        self.run(&Target::Program(trace))
    }

    /// Lints a translated trace set.
    pub fn lint_set(&self, set: &TraceSet) -> Report {
        self.run(&Target::Set(set))
    }

    /// Lints a simulation parameter set.
    pub fn lint_params(&self, params: &SimParams) -> Report {
        self.run(&Target::Params(params))
    }
}

impl Default for Linter {
    fn default() -> Linter {
        Linter::new()
    }
}

/// Lints a program trace with the default registry.
pub fn lint_program(trace: &ProgramTrace) -> Report {
    Linter::new().lint_program(trace)
}

/// Lints a trace set with the default registry.
pub fn lint_set(set: &TraceSet) -> Report {
    Linter::new().lint_set(set)
}

/// Lints a parameter set with the default registry.
pub fn lint_params(params: &SimParams) -> Report {
    Linter::new().lint_params(params)
}

/// Validate-on-load adapter for program traces: `Err` with the rendered
/// error diagnostics when the default registry finds any, for
/// [`extrap_trace::reader::read_program_with`] and friends.  Warnings do
/// not fail the load.
pub fn validate_program(trace: &ProgramTrace) -> Result<(), String> {
    reject_on_errors(lint_program(trace))
}

/// Validate-on-load adapter for trace sets, matching the
/// [`extrap_core::TraceValidator`] hook signature (install with
/// [`extrap_core::SharedTraceCache::with_validator`]).
pub fn validate_set(set: &TraceSet) -> Result<(), String> {
    reject_on_errors(lint_set(set))
}

fn reject_on_errors(report: Report) -> Result<(), String> {
    if report.has_errors() {
        Err(render::render_errors(&report))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extrap_time::DurationNs;
    use extrap_trace::{translate, PhaseProgram};

    fn clean_program(n: usize) -> ProgramTrace {
        let mut p = PhaseProgram::new(n);
        p.push_uniform_phase(DurationNs::from_us(100.0));
        p.push_uniform_phase(DurationNs::from_us(40.0));
        p.record()
    }

    #[test]
    fn default_registry_runs_all_passes() {
        let names = Linter::new().pass_names();
        assert_eq!(
            names,
            ["well-formedness", "translation-soundness", "model-sanity"]
        );
    }

    #[test]
    fn clean_inputs_lint_clean() {
        let pt = clean_program(4);
        assert!(lint_program(&pt).is_clean());
        let ts = translate(&pt, Default::default()).unwrap();
        assert!(lint_set(&ts).is_clean());
        assert!(lint_params(&SimParams::default()).is_clean());
    }

    #[test]
    fn validators_pass_clean_and_reject_corrupt() {
        let pt = clean_program(2);
        assert!(validate_program(&pt).is_ok());
        let ts = translate(&pt, Default::default()).unwrap();
        assert!(validate_set(&ts).is_ok());

        // Drop thread 1's barriers: a static deadlock (E005).
        let mut bad = ts.clone();
        bad.threads[1].records.retain(|r| !r.kind.is_sync());
        let detail = validate_set(&bad).unwrap_err();
        assert!(detail.contains("E005"), "got: {detail}");
    }

    #[test]
    fn custom_pass_extends_registry() {
        struct Nag;
        impl Pass for Nag {
            fn name(&self) -> &'static str {
                "nag"
            }
            fn run(&self, _target: &Target<'_>, report: &mut Report) {
                report.push(Code::W004ParamSuspicious, Span::none(), "nag");
            }
        }
        let linter = Linter::new().with_pass(Box::new(Nag));
        let report = linter.lint_params(&SimParams::default());
        assert_eq!(report.warning_count(), 1);
    }
}
