//! Diagnostics: stable codes, severities, spans, and the report container.
//!
//! Codes are **stable identifiers**: once shipped, a code never changes
//! meaning, so scripts can match on `E005` forever.  Errors (`E0xx`)
//! mean the input cannot be trusted by the extrapolation pipeline;
//! warnings (`W0xx`) flag suspicious-but-legal constructs.

use extrap_time::ThreadId;
use std::fmt;

/// How bad a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Suspicious but not fatal; extrapolation proceeds.
    Warning,
    /// The input violates an invariant the pipeline relies on.
    Error,
}

impl Severity {
    /// Lower-case label used by both renderers.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Every diagnostic the linter can emit, by stable code.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Code {
    /// Global timestamps go backwards in a 1-processor program trace.
    E001GlobalTimeRegression,
    /// Per-thread timestamps go backwards in a translated trace.
    E002ThreadTimeRegression,
    /// A record references a thread id outside `0..n_threads`.
    E003BadThreadId,
    /// Barrier entry/exit protocol violated within one thread (exit
    /// without entry, nested entry, mismatched ids, entry never exited).
    E004BarrierProtocol,
    /// Threads disagree on the barrier sequence — with global barriers
    /// this is a static deadlock (some thread waits forever).
    E005BarrierMismatch,
    /// A remote access references an element whose owner is out of range
    /// or inconsistent with other accesses to the same element.
    E006DanglingElement,
    /// A remote write is concurrent (same barrier epoch, no
    /// happens-before edge) with another thread's access to the same
    /// element — translation does not preserve causality (§5).
    E007CausalityViolation,
    /// A simulation parameter is out of its legal range.
    E008ParamOutOfRange,
    /// A thread trace is stored at the wrong position in a trace set.
    E009MisplacedThread,
    /// Threads disagree on the phase-marker sequence.
    W001MarkerMismatch,
    /// A thread remote-accesses an element it owns itself.
    W002SelfRemoteAccess,
    /// A thread's event stream is missing its begin/end frame.
    W003MissingThreadFrame,
    /// A parameter combination is legal but probably not intended.
    W004ParamSuspicious,
}

impl Code {
    /// The stable code string (`E001`, `W004`, …).
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::E001GlobalTimeRegression => "E001",
            Code::E002ThreadTimeRegression => "E002",
            Code::E003BadThreadId => "E003",
            Code::E004BarrierProtocol => "E004",
            Code::E005BarrierMismatch => "E005",
            Code::E006DanglingElement => "E006",
            Code::E007CausalityViolation => "E007",
            Code::E008ParamOutOfRange => "E008",
            Code::E009MisplacedThread => "E009",
            Code::W001MarkerMismatch => "W001",
            Code::W002SelfRemoteAccess => "W002",
            Code::W003MissingThreadFrame => "W003",
            Code::W004ParamSuspicious => "W004",
        }
    }

    /// The severity class encoded in the code's first letter.
    pub fn severity(&self) -> Severity {
        if self.as_str().starts_with('E') {
            Severity::Error
        } else {
            Severity::Warning
        }
    }

    /// A short human title for the code (used by `--explain`-style docs).
    pub fn title(&self) -> &'static str {
        match self {
            Code::E001GlobalTimeRegression => "global timestamp regression",
            Code::E002ThreadTimeRegression => "per-thread timestamp regression",
            Code::E003BadThreadId => "thread id out of range",
            Code::E004BarrierProtocol => "barrier protocol violation",
            Code::E005BarrierMismatch => "cross-thread barrier mismatch (static deadlock)",
            Code::E006DanglingElement => "dangling element reference",
            Code::E007CausalityViolation => "causality violation",
            Code::E008ParamOutOfRange => "parameter out of range",
            Code::E009MisplacedThread => "misplaced thread trace",
            Code::W001MarkerMismatch => "phase-marker mismatch",
            Code::W002SelfRemoteAccess => "remote access to own element",
            Code::W003MissingThreadFrame => "missing thread begin/end frame",
            Code::W004ParamSuspicious => "suspicious parameter combination",
        }
    }

    /// Parses a stable code string (`E001`, `w003`, …), case-insensitively.
    pub fn parse(s: &str) -> Option<Code> {
        Code::all()
            .iter()
            .copied()
            .find(|c| c.as_str().eq_ignore_ascii_case(s))
    }

    /// True when `extrap lint --fix` can mechanically repair this
    /// diagnostic (see [`crate::fix`]).  The rest are unfixable: the
    /// trace records evidence of a real program defect (`E004`, `E005`,
    /// `E007`) or an ambiguity with no safe resolution (`E009`), and
    /// parameter diagnostics (`E008`, `W004`) have no trace to rewrite.
    pub fn fixable(&self) -> bool {
        matches!(
            self,
            Code::E001GlobalTimeRegression
                | Code::E002ThreadTimeRegression
                | Code::E003BadThreadId
                | Code::E006DanglingElement
                | Code::W003MissingThreadFrame
        )
    }

    /// Every code, in code order (for docs and exhaustive tests).
    pub fn all() -> &'static [Code] {
        &[
            Code::E001GlobalTimeRegression,
            Code::E002ThreadTimeRegression,
            Code::E003BadThreadId,
            Code::E004BarrierProtocol,
            Code::E005BarrierMismatch,
            Code::E006DanglingElement,
            Code::E007CausalityViolation,
            Code::E008ParamOutOfRange,
            Code::E009MisplacedThread,
            Code::W001MarkerMismatch,
            Code::W002SelfRemoteAccess,
            Code::W003MissingThreadFrame,
            Code::W004ParamSuspicious,
        ]
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the input a diagnostic points.
///
/// Trace "source locations" are record indices: for program traces the
/// index is into the global stream, for trace sets it is into the named
/// thread's stream.  Parameter diagnostics carry neither.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// The thread involved, if any.
    pub thread: Option<ThreadId>,
    /// The record index the diagnostic anchors to, if any.
    pub record: Option<usize>,
}

impl Span {
    /// A span with no location (whole-input diagnostics).
    pub fn none() -> Span {
        Span::default()
    }

    /// A span naming only a thread.
    pub fn thread(thread: ThreadId) -> Span {
        Span {
            thread: Some(thread),
            record: None,
        }
    }

    /// A span naming a thread and a record index within its stream.
    pub fn at(thread: ThreadId, record: usize) -> Span {
        Span {
            thread: Some(thread),
            record: Some(record),
        }
    }

    /// A span naming only a record index (global program stream).
    pub fn record(record: usize) -> Span {
        Span {
            thread: None,
            record: Some(record),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.thread, self.record) {
            (Some(t), Some(r)) => write!(f, "{t}, record {r}"),
            (Some(t), None) => write!(f, "{t}"),
            (None, Some(r)) => write!(f, "record {r}"),
            (None, None) => Ok(()),
        }
    }
}

/// One finding: a code, where it points, and a rendered message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Location in the input.
    pub span: Span,
    /// Human-readable description of this specific instance.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.code.severity().label(),
            self.code,
            self.message
        )?;
        let loc = self.span.to_string();
        if !loc.is_empty() {
            write!(f, " ({loc})")?;
        }
        Ok(())
    }
}

/// The outcome of a lint run: all diagnostics, in pass order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Report {
    /// Everything the passes found.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, code: Code, span: Span, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic::new(code, span, message));
    }

    /// Merges another report's diagnostics into this one.
    pub fn extend(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.code.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// True when at least one error was found.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// True when nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Diagnostics carrying the given code.
    pub fn with_code(&self, code: Code) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_classified() {
        assert_eq!(Code::E005BarrierMismatch.as_str(), "E005");
        assert_eq!(Code::E005BarrierMismatch.severity(), Severity::Error);
        assert_eq!(Code::W002SelfRemoteAccess.severity(), Severity::Warning);
        for c in Code::all() {
            assert_eq!(c.severity() == Severity::Error, c.as_str().starts_with('E'));
            assert!(!c.title().is_empty());
        }
    }

    #[test]
    fn report_counts_by_severity() {
        let mut r = Report::new();
        assert!(r.is_clean() && !r.has_errors());
        r.push(Code::W001MarkerMismatch, Span::none(), "w");
        assert!(!r.is_clean() && !r.has_errors());
        r.push(Code::E001GlobalTimeRegression, Span::record(3), "e");
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
    }

    #[test]
    fn diagnostic_display_includes_code_and_span() {
        let d = Diagnostic::new(
            Code::E004BarrierProtocol,
            Span::at(ThreadId(1), 5),
            "exit without entry",
        );
        assert_eq!(
            d.to_string(),
            "error[E004]: exit without entry (T1, record 5)"
        );
    }
}
