//! Report renderers: human text and machine JSON.
//!
//! The JSON form is hand-rolled (the build container has no serde); it
//! emits one object per diagnostic plus summary counts, with full string
//! escaping, so `extrap lint --format json` can feed CI tooling.

use crate::diag::{Diagnostic, Report};
use std::fmt::Write;

/// Renders the report as compiler-style text, one line per diagnostic,
/// followed by a summary line.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{d}");
    }
    let _ = writeln!(out, "{}", summary_line(report));
    out
}

/// The one-line summary (`3 errors, 1 warning` / `clean`).
pub fn summary_line(report: &Report) -> String {
    if report.is_clean() {
        return "clean: no diagnostics".to_string();
    }
    let (e, w) = (report.error_count(), report.warning_count());
    let plural = |n: usize| if n == 1 { "" } else { "s" };
    match (e, w) {
        (0, w) => format!("{w} warning{}", plural(w)),
        (e, 0) => format!("{e} error{}", plural(e)),
        (e, w) => format!("{e} error{}, {w} warning{}", plural(e), plural(w)),
    }
}

/// A compact multi-line summary of the errors only — used by the
/// validate-on-load hooks, whose rejection detail becomes the
/// `TraceError::Validation` message.
pub fn render_errors(report: &Report) -> String {
    let lines: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.code.severity() == crate::diag::Severity::Error)
        .map(|d| d.to_string())
        .collect();
    lines.join("; ")
}

/// Renders the report as a single JSON object:
///
/// ```json
/// {"diagnostics":[{"code":"E004","severity":"error","message":"…",
///   "thread":1,"record":5}],"errors":1,"warnings":0}
/// ```
///
/// `thread`/`record` are `null` when the diagnostic has no location.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_diagnostic_json(&mut out, d);
    }
    let _ = write!(
        out,
        "],\"errors\":{},\"warnings\":{}}}",
        report.error_count(),
        report.warning_count()
    );
    out
}

fn write_diagnostic_json(out: &mut String, d: &Diagnostic) {
    out.push_str("{\"code\":\"");
    out.push_str(d.code.as_str());
    out.push_str("\",\"severity\":\"");
    out.push_str(d.code.severity().label());
    out.push_str("\",\"message\":\"");
    escape_json_into(out, &d.message);
    out.push_str("\",\"thread\":");
    match d.span.thread {
        Some(t) => {
            let _ = write!(out, "{}", t.index());
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"record\":");
    match d.span.record {
        Some(r) => {
            let _ = write!(out, "{r}");
        }
        None => out.push_str("null"),
    }
    out.push('}');
}

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Span};
    use extrap_time::ThreadId;

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(
            Code::E004BarrierProtocol,
            Span::at(ThreadId(1), 5),
            "barrier 2 exited without entry",
        );
        r.push(
            Code::W002SelfRemoteAccess,
            Span::thread(ThreadId(0)),
            "thread reads \"its own\" element",
        );
        r
    }

    #[test]
    fn text_renders_one_line_per_diagnostic_plus_summary() {
        let text = render_text(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("error[E004]:"));
        assert!(lines[1].starts_with("warning[W002]:"));
        assert_eq!(lines[2], "1 error, 1 warning");
    }

    #[test]
    fn clean_report_summary() {
        assert_eq!(summary_line(&Report::new()), "clean: no diagnostics");
        assert!(render_errors(&Report::new()).is_empty());
    }

    #[test]
    fn errors_only_summary_drops_warnings() {
        let s = render_errors(&sample());
        assert!(s.contains("E004"));
        assert!(!s.contains("W002"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let json = render_json(&sample());
        assert!(json.contains("\"code\":\"E004\""));
        assert!(json.contains("\"thread\":1,\"record\":5"));
        assert!(json.contains("\"thread\":0,\"record\":null"));
        assert!(json.contains("\\\"its own\\\""));
        assert!(json.ends_with("\"errors\":1,\"warnings\":1}"));
    }

    #[test]
    fn json_of_empty_report_is_well_formed() {
        assert_eq!(
            render_json(&Report::new()),
            "{\"diagnostics\":[],\"errors\":0,\"warnings\":0}"
        );
    }

    #[test]
    fn control_chars_are_escaped() {
        let mut r = Report::new();
        r.push(Code::E008ParamOutOfRange, Span::none(), "a\nb\u{1}c");
        let json = render_json(&r);
        assert!(json.contains("a\\nb\\u0001c"));
    }
}
