//! Model sanity: range and consistency checks on [`SimParams`].
//!
//! `E008` mirrors (and extends) [`SimParams::validate`], but reports
//! **every** violation instead of stopping at the first, so a config
//! file full of typos is diagnosed in one run.  `W004` flags parameter
//! combinations that parse and validate but almost certainly do not
//! model what the user intended (a contention model with zero slope, a
//! bus with contention disabled, …).

use super::{Pass, Target};
use crate::diag::{Code, Report, Span};
use extrap_core::{BarrierAlgorithm, ServicePolicy, SimParams, Topology};

/// The model-sanity pass (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct ModelSanity;

impl Pass for ModelSanity {
    fn name(&self) -> &'static str {
        "model-sanity"
    }

    fn run(&self, target: &Target<'_>, report: &mut Report) {
        let Target::Params(p) = target else { return };
        check_ranges(p, report);
        check_consistency(p, report);
    }
}

/// `E008`: hard range violations.
fn check_ranges(p: &SimParams, report: &mut Report) {
    let err = |report: &mut Report, msg: String| {
        report.push(Code::E008ParamOutOfRange, Span::none(), msg);
    };
    if !(p.mips_ratio.is_finite() && p.mips_ratio > 0.0) {
        err(
            report,
            format!(
                "MipsRatio must be positive and finite, got {}",
                p.mips_ratio
            ),
        );
    }
    if let ServicePolicy::Poll { interval } = p.policy {
        if interval.is_zero() {
            err(report, "poll interval must be nonzero".to_string());
        }
    }
    if let BarrierAlgorithm::Tree { arity } = p.barrier.algorithm {
        if arity < 2 {
            err(
                report,
                format!("tree barrier arity must be >= 2, got {arity}"),
            );
        }
    }
    if let Topology::FatTree { arity } = p.network.topology {
        if arity < 2 {
            err(
                report,
                format!("fat-tree topology arity must be >= 2, got {arity}"),
            );
        }
    }
    let alpha = p.network.contention.alpha;
    if !alpha.is_finite() || alpha < 0.0 {
        err(
            report,
            format!("ContentionAlpha must be non-negative and finite, got {alpha}"),
        );
    }
    if let Err(detail) = p.multithread.validate() {
        err(report, detail);
    }
}

/// `W004`: legal-but-suspicious combinations.
fn check_consistency(p: &SimParams, report: &mut Report) {
    let warn = |report: &mut Report, msg: String| {
        report.push(Code::W004ParamSuspicious, Span::none(), msg);
    };
    if p.network.contention.enabled && p.network.contention.alpha == 0.0 {
        warn(
            report,
            "contention is enabled but ContentionAlpha = 0 makes it a no-op; \
             disable contention or set a positive alpha"
                .to_string(),
        );
    }
    if p.network.topology == Topology::Bus && !p.network.contention.enabled {
        warn(
            report,
            "bus topology with contention disabled models an infinitely scalable \
             shared medium; enable contention for a meaningful bus"
                .to_string(),
        );
    }
    if p.barrier.by_msgs && p.barrier.msg_size == 0 {
        warn(
            report,
            "BarrierByMsgs is on but BarrierMsgSize = 0; barrier messages cost \
             startup only, which is rarely intended"
                .to_string(),
        );
    }
    if let ServicePolicy::Poll { interval } = p.policy {
        let per_message = p.comm.receive + p.comm.service;
        if !per_message.is_zero() && interval < per_message {
            warn(
                report,
                format!(
                    "poll interval ({} us) is shorter than per-message handling time \
                     ({} us); the processor would spend every chunk servicing messages",
                    interval.as_us(),
                    per_message.as_us()
                ),
            );
        }
    }
}
