//! The pass registry: what a lint pass is and what it runs over.

use crate::diag::{Report, Span};
use extrap_core::SimParams;
use extrap_time::ThreadId;
use extrap_trace::{ProgramTrace, TraceRecord, TraceSet};

mod model;
mod soundness;
mod wellformed;

pub use model::ModelSanity;
pub use soundness::TranslationSoundness;
pub use wellformed::WellFormedness;

/// What a lint run inspects.  Trace passes see one of the two trace
/// shapes; parameter passes see a [`SimParams`].  A pass that does not
/// apply to the given target simply emits nothing.
#[derive(Clone, Copy, Debug)]
pub enum Target<'a> {
    /// A 1-processor *n*-thread program trace (pre-translation).
    Program(&'a ProgramTrace),
    /// A translated per-thread trace set (post-translation).
    Set(&'a TraceSet),
    /// A simulation parameter set / machine configuration.
    Params(&'a SimParams),
}

/// One static check, run over a [`Target`], appending to a [`Report`].
pub trait Pass {
    /// Stable pass name (for `--explain`-style docs and debugging).
    fn name(&self) -> &'static str;
    /// Runs the pass.
    fn run(&self, target: &Target<'_>, report: &mut Report);
}

/// One thread's records with pre-built spans, unifying the two trace
/// shapes so passes can share their per-thread logic.
///
/// For a [`Target::Program`] the spans carry **global** record indices
/// (the record's position in the 1-processor stream); for a
/// [`Target::Set`] they carry per-thread indices.  Records referencing
/// out-of-range thread ids are dropped here — [`WellFormedness`] reports
/// them as `E003` from the raw stream.
pub(crate) struct ThreadView<'a> {
    pub thread: ThreadId,
    pub records: Vec<(Span, &'a TraceRecord)>,
}

pub(crate) fn thread_views<'a>(target: &Target<'a>) -> Vec<ThreadView<'a>> {
    match target {
        Target::Program(pt) => {
            let mut views: Vec<ThreadView<'a>> = (0..pt.n_threads)
                .map(|t| ThreadView {
                    thread: ThreadId(t as u32),
                    records: Vec::new(),
                })
                .collect();
            for (i, r) in pt.records.iter().enumerate() {
                if let Some(v) = views.get_mut(r.thread.index()) {
                    v.records.push((Span::at(r.thread, i), r));
                }
            }
            views
        }
        Target::Set(ts) => ts
            .threads
            .iter()
            .map(|t| ThreadView {
                thread: t.thread,
                records: t
                    .records
                    .iter()
                    .enumerate()
                    .map(|(j, r)| (Span::at(t.thread, j), r))
                    .collect(),
            })
            .collect(),
        Target::Params(_) => Vec::new(),
    }
}
