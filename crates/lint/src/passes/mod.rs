//! The pass registry: what a lint pass is and what it runs over.
//!
//! Trace passes are adapters over the incremental machines in
//! [`crate::stream`]; see that module for the streaming entry points.

use crate::diag::Report;
use extrap_core::SimParams;
use extrap_trace::{ProgramTrace, TraceSet};

mod model;
mod soundness;
mod wellformed;

pub use model::ModelSanity;
pub use soundness::TranslationSoundness;
pub use wellformed::WellFormedness;

/// What a lint run inspects.  Trace passes see one of the two trace
/// shapes; parameter passes see a [`SimParams`].  A pass that does not
/// apply to the given target simply emits nothing.
#[derive(Clone, Copy, Debug)]
pub enum Target<'a> {
    /// A 1-processor *n*-thread program trace (pre-translation).
    Program(&'a ProgramTrace),
    /// A translated per-thread trace set (post-translation).
    Set(&'a TraceSet),
    /// A simulation parameter set / machine configuration.
    Params(&'a SimParams),
}

/// One static check, run over a [`Target`], appending to a [`Report`].
pub trait Pass {
    /// Stable pass name (for `--explain`-style docs and debugging).
    fn name(&self) -> &'static str;
    /// Runs the pass.
    fn run(&self, target: &Target<'_>, report: &mut Report);
}
