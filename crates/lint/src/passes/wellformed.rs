//! Well-formedness: the structural invariants a trace must satisfy
//! before any model-level reasoning makes sense.
//!
//! * timestamps are monotone (`E001` global / `E002` per-thread);
//! * every record references a thread inside `0..n_threads` (`E003`)
//!   and trace-set positions match thread ids (`E009`);
//! * barrier entry/exit events nest properly within each thread
//!   (`E004`);
//! * remote accesses reference valid elements whose claimed owner is
//!   consistent within each barrier epoch (`E006`), with a warning for
//!   self-accesses (`W002`);
//! * phase markers agree across threads (`W001`) and every thread has
//!   its begin/end frame (`W003`).

use super::{thread_views, Pass, Target, ThreadView};
use crate::diag::{Code, Report, Span};
use extrap_time::{BarrierId, ElementId, ThreadId};
use extrap_trace::EventKind;
use std::collections::HashMap;

/// The well-formedness pass (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct WellFormedness;

impl Pass for WellFormedness {
    fn name(&self) -> &'static str {
        "well-formedness"
    }

    fn run(&self, target: &Target<'_>, report: &mut Report) {
        match target {
            Target::Program(pt) => {
                check_global_stream(pt, report);
                let views = thread_views(target);
                check_threads(&views, pt.n_threads, report);
            }
            Target::Set(ts) => {
                check_set_layout(ts, report);
                let views = thread_views(target);
                check_threads(&views, ts.n_threads(), report);
            }
            Target::Params(_) => {}
        }
    }
}

/// `E001` + `E003` over the raw 1-processor stream.
fn check_global_stream(pt: &extrap_trace::ProgramTrace, report: &mut Report) {
    let mut prev = extrap_time::TimeNs::ZERO;
    for (i, r) in pt.records.iter().enumerate() {
        if r.thread.index() >= pt.n_threads {
            report.push(
                Code::E003BadThreadId,
                Span::record(i),
                format!(
                    "record references {} but the trace declares {} threads",
                    r.thread, pt.n_threads
                ),
            );
        }
        if r.time < prev {
            report.push(
                Code::E001GlobalTimeRegression,
                Span::at(r.thread, i),
                format!(
                    "global clock goes backwards: {} ns after {} ns",
                    r.time.0, prev.0
                ),
            );
        }
        // Resynchronize after a dip so one corruption yields one
        // diagnostic instead of flagging every later in-order record.
        prev = r.time;
    }
}

/// `E002` + `E009` over a translated set's layout.
fn check_set_layout(ts: &extrap_trace::TraceSet, report: &mut Report) {
    for (i, t) in ts.threads.iter().enumerate() {
        if t.thread.index() != i {
            report.push(
                Code::E009MisplacedThread,
                Span::thread(t.thread),
                format!("trace at position {i} claims to belong to {}", t.thread),
            );
        }
        let mut prev = extrap_time::TimeNs::ZERO;
        for (j, r) in t.records.iter().enumerate() {
            if r.thread != t.thread {
                report.push(
                    Code::E009MisplacedThread,
                    Span::at(t.thread, j),
                    format!("record of {} found in {}'s trace", r.thread, t.thread),
                );
            }
            if r.time < prev {
                report.push(
                    Code::E002ThreadTimeRegression,
                    Span::at(t.thread, j),
                    format!(
                        "{}'s clock goes backwards: {} ns after {} ns",
                        t.thread, r.time.0, prev.0
                    ),
                );
            }
            prev = r.time;
        }
    }
}

/// Per-thread protocol checks shared by both trace shapes.
fn check_threads(views: &[ThreadView<'_>], n_threads: usize, report: &mut Report) {
    // Ownership is only required to be consistent *within* a barrier
    // epoch: programs redistribute arrays (and multigrid codes reuse
    // element ids across levels), but two same-epoch accesses naming
    // different owners for one element cannot both be right.  Epochs are
    // counted exactly as in the causality pass: barriers entered so far.
    let mut owners: HashMap<(usize, ElementId), (ThreadId, Span)> = HashMap::new();
    for v in views {
        check_frame(v, report);
        check_barrier_protocol(v, report);
        let mut epoch = 0usize;
        for &(span, r) in &v.records {
            let (owner, element) = match r.kind {
                EventKind::BarrierEnter { .. } => {
                    epoch += 1;
                    continue;
                }
                EventKind::RemoteRead { owner, element, .. }
                | EventKind::RemoteWrite { owner, element, .. } => (owner, element),
                _ => continue,
            };
            if owner.index() >= n_threads {
                report.push(
                    Code::E006DanglingElement,
                    span,
                    format!(
                        "remote access to element {} names owner {} but the trace has \
                         {n_threads} threads",
                        element.index(),
                        owner
                    ),
                );
            } else if owner == v.thread {
                report.push(
                    Code::W002SelfRemoteAccess,
                    span,
                    format!(
                        "{} remote-accesses element {} it owns itself (local access \
                         traced as remote?)",
                        v.thread,
                        element.index()
                    ),
                );
            }
            match owners.get(&(epoch, element)) {
                None => {
                    owners.insert((epoch, element), (owner, span));
                }
                Some(&(first, _)) if first != owner => {
                    report.push(
                        Code::E006DanglingElement,
                        span,
                        format!(
                            "element {} accessed with owner {} but an access in the same \
                             barrier epoch names owner {first} (inconsistent ownership)",
                            element.index(),
                            owner
                        ),
                    );
                }
                Some(_) => {}
            }
        }
    }
    check_markers(views, report);
}

/// `W003`: each thread's stream should be framed by begin/end.
fn check_frame(v: &ThreadView<'_>, report: &mut Report) {
    let first = v.records.first().map(|&(_, r)| r.kind);
    let last = v.records.last().map(|&(_, r)| r.kind);
    match (first, last) {
        (None, _) => report.push(
            Code::W003MissingThreadFrame,
            Span::thread(v.thread),
            format!("{} has no events at all", v.thread),
        ),
        (Some(EventKind::ThreadBegin), Some(EventKind::ThreadEnd)) => {}
        _ => report.push(
            Code::W003MissingThreadFrame,
            Span::thread(v.thread),
            format!(
                "{}'s stream is not framed by begin/end (starts with {}, ends with {})",
                v.thread,
                first.map(|k| k.tag()).unwrap_or("nothing"),
                last.map(|k| k.tag()).unwrap_or("nothing"),
            ),
        ),
    }
}

/// `E004`: barrier entry/exit must alternate with matching ids.
fn check_barrier_protocol(v: &ThreadView<'_>, report: &mut Report) {
    let mut open: Option<(BarrierId, Span)> = None;
    for &(span, r) in &v.records {
        match r.kind {
            EventKind::BarrierEnter { barrier } => {
                if let Some((inside, _)) = open {
                    report.push(
                        Code::E004BarrierProtocol,
                        span,
                        format!(
                            "{} enters barrier {} while still inside barrier {}",
                            v.thread,
                            barrier.index(),
                            inside.index()
                        ),
                    );
                }
                open = Some((barrier, span));
            }
            EventKind::BarrierExit { barrier } => match open.take() {
                None => report.push(
                    Code::E004BarrierProtocol,
                    span,
                    format!(
                        "{} exits barrier {} without having entered it",
                        v.thread,
                        barrier.index()
                    ),
                ),
                Some((entered, _)) if entered != barrier => report.push(
                    Code::E004BarrierProtocol,
                    span,
                    format!(
                        "{} exits barrier {} but entered barrier {}",
                        v.thread,
                        barrier.index(),
                        entered.index()
                    ),
                ),
                Some(_) => {}
            },
            _ => {}
        }
    }
    if let Some((barrier, span)) = open {
        report.push(
            Code::E004BarrierProtocol,
            span,
            format!(
                "{} enters barrier {} but never exits it",
                v.thread,
                barrier.index()
            ),
        );
    }
}

/// `W001`: phase markers should form the same sequence on every thread.
fn check_markers(views: &[ThreadView<'_>], report: &mut Report) {
    let marker_seq = |v: &ThreadView<'_>| -> Vec<u32> {
        v.records
            .iter()
            .filter_map(|&(_, r)| match r.kind {
                EventKind::Marker { id } => Some(id),
                _ => None,
            })
            .collect()
    };
    let Some(first) = views.first() else { return };
    let reference = marker_seq(first);
    for v in &views[1..] {
        let seq = marker_seq(v);
        if seq != reference {
            report.push(
                Code::W001MarkerMismatch,
                Span::thread(v.thread),
                format!(
                    "{} passes marker sequence {:?} but {} passes {:?}",
                    v.thread, seq, first.thread, reference
                ),
            );
        }
    }
}
