//! Well-formedness: the structural invariants a trace must satisfy
//! before any model-level reasoning makes sense.
//!
//! * timestamps are monotone (`E001` global / `E002` per-thread);
//! * every record references a thread inside `0..n_threads` (`E003`)
//!   and trace-set positions match thread ids (`E009`);
//! * barrier entry/exit events nest properly within each thread
//!   (`E004`);
//! * remote accesses reference valid elements whose claimed owner is
//!   consistent within each barrier epoch (`E006`), with a warning for
//!   self-accesses (`W002`);
//! * phase markers agree across threads (`W001`) and every thread has
//!   its begin/end frame (`W003`).
//!
//! The pass is a thin adapter: it replays the in-memory trace through
//! the incremental [`WellFormedStream`] machine, the same state machine
//! the chunked streaming drivers ([`crate::stream`]) feed record by
//! record — so whole-trace and streaming lint agree by construction.

use super::{Pass, Target};
use crate::diag::Report;
use crate::stream::WellFormedStream;

/// The well-formedness pass (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct WellFormedness;

impl Pass for WellFormedness {
    fn name(&self) -> &'static str {
        "well-formedness"
    }

    fn run(&self, target: &Target<'_>, report: &mut Report) {
        match target {
            Target::Program(pt) => {
                let mut m = WellFormedStream::for_program(pt.n_threads);
                for r in &pt.records {
                    m.record(r, report);
                }
                m.finish(report);
            }
            Target::Set(ts) => {
                let mut m = WellFormedStream::for_set(ts.n_threads());
                for (i, t) in ts.threads.iter().enumerate() {
                    m.begin_thread(i, t.thread, report);
                    for r in &t.records {
                        m.record(r, report);
                    }
                }
                m.finish(report);
            }
            Target::Params(_) => {}
        }
    }
}
