//! Translation soundness: does the §3.2 translation of this program
//! preserve its meaning?
//!
//! Two checks:
//!
//! * **Static deadlock detection** (`E005`) — every thread must pass the
//!   same barrier sequence.  With global barriers a thread that enters
//!   fewer (or different) barriers than its peers leaves the others
//!   waiting forever; translation would silently manufacture a schedule
//!   for a program that cannot finish.
//! * **Causality** (`E007`) — a vector-clock happens-before check that
//!   the translated per-thread replay preserves the dependences of the
//!   original run.  Under the data-parallel model the only inter-thread
//!   ordering is the global barrier, so each thread's vector clock
//!   collapses to its barrier-epoch counter: two accesses on different
//!   threads are ordered iff their epochs differ.  A remote **write**
//!   concurrent (same epoch) with another thread's access to the same
//!   element therefore has no happens-before edge — the value observed
//!   depends on timing, and extrapolated timings are exactly what the
//!   pipeline changes.  This is the §5 determinism analysis
//!   ([`extrap_trace::determinism_report`]) recast as a race-detector
//!   diagnostic with spans.
//!
//! The pass is a thin adapter: it replays the in-memory trace through
//! the incremental [`SoundnessStream`] machine, the same digest-keeping
//! state machine the chunked streaming drivers ([`crate::stream`]) feed
//! record by record — so whole-trace and streaming lint agree by
//! construction.  Records referencing out-of-range thread ids are
//! skipped here exactly as the streaming router skips them
//! (well-formedness reports them as `E003`).

use super::{Pass, Target};
use crate::diag::{Report, Span};
use crate::stream::SoundnessStream;

/// The translation-soundness pass (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct TranslationSoundness;

impl Pass for TranslationSoundness {
    fn name(&self) -> &'static str {
        "translation-soundness"
    }

    fn run(&self, target: &Target<'_>, report: &mut Report) {
        match target {
            Target::Program(pt) => {
                let mut m = SoundnessStream::for_program(pt.n_threads);
                for (i, r) in pt.records.iter().enumerate() {
                    if r.thread.index() < pt.n_threads {
                        m.record(r.thread.index(), Span::at(r.thread, i), r);
                    }
                }
                m.finish(report);
            }
            Target::Set(ts) => {
                let mut m = SoundnessStream::for_set();
                for (idx, t) in ts.threads.iter().enumerate() {
                    m.begin_thread(t.thread);
                    for (j, r) in t.records.iter().enumerate() {
                        m.record(idx, Span::at(t.thread, j), r);
                    }
                }
                m.finish(report);
            }
            Target::Params(_) => {}
        }
    }
}
