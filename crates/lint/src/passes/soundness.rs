//! Translation soundness: does the §3.2 translation of this program
//! preserve its meaning?
//!
//! Two checks:
//!
//! * **Static deadlock detection** (`E005`) — every thread must pass the
//!   same barrier sequence.  With global barriers a thread that enters
//!   fewer (or different) barriers than its peers leaves the others
//!   waiting forever; translation would silently manufacture a schedule
//!   for a program that cannot finish.
//! * **Causality** (`E007`) — a vector-clock happens-before check that
//!   the translated per-thread replay preserves the dependences of the
//!   original run.  Under the data-parallel model the only inter-thread
//!   ordering is the global barrier, so each thread's vector clock
//!   collapses to its barrier-epoch counter: two accesses on different
//!   threads are ordered iff their epochs differ.  A remote **write**
//!   concurrent (same epoch) with another thread's access to the same
//!   element therefore has no happens-before edge — the value observed
//!   depends on timing, and extrapolated timings are exactly what the
//!   pipeline changes.  This is the §5 determinism analysis
//!   ([`extrap_trace::determinism_report`]) recast as a race-detector
//!   diagnostic with spans.

use super::{thread_views, Pass, Target, ThreadView};
use crate::diag::{Code, Report, Span};
use extrap_time::{ElementId, ThreadId};
use extrap_trace::EventKind;
use std::collections::BTreeMap;

/// The translation-soundness pass (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct TranslationSoundness;

impl Pass for TranslationSoundness {
    fn name(&self) -> &'static str {
        "translation-soundness"
    }

    fn run(&self, target: &Target<'_>, report: &mut Report) {
        let views = thread_views(target);
        if views.is_empty() {
            return;
        }
        check_barrier_agreement(&views, report);
        check_causality(&views, report);
    }
}

/// `E005`: cross-thread barrier-sequence agreement.
fn check_barrier_agreement(views: &[ThreadView<'_>], report: &mut Report) {
    let barrier_seq = |v: &ThreadView<'_>| -> Vec<u32> {
        v.records
            .iter()
            .filter_map(|&(_, r)| match r.kind {
                EventKind::BarrierEnter { barrier } => Some(barrier.0),
                _ => None,
            })
            .collect()
    };
    let first = &views[0];
    let reference = barrier_seq(first);
    for v in &views[1..] {
        let seq = barrier_seq(v);
        if seq == reference {
            continue;
        }
        let message = if seq.len() != reference.len() {
            format!(
                "{} enters {} barriers but {} enters {} — the threads deadlock at \
                 barrier number {}",
                v.thread,
                seq.len(),
                first.thread,
                reference.len(),
                seq.len().min(reference.len())
            )
        } else {
            let (i, (a, b)) = seq
                .iter()
                .zip(&reference)
                .enumerate()
                .find(|(_, (a, b))| a != b)
                .expect("sequences differ");
            format!(
                "{} enters barrier {a} where {} enters barrier {b} (position {i} of the \
                 barrier sequence)",
                v.thread, first.thread
            )
        };
        report.push(Code::E005BarrierMismatch, Span::thread(v.thread), message);
    }
}

/// One element's accesses within one barrier epoch.
#[derive(Default)]
struct EpochAccess {
    writers: Vec<(ThreadId, Span)>,
    readers: Vec<(ThreadId, Span)>,
}

/// `E007`: the happens-before race check described in the module docs.
fn check_causality(views: &[ThreadView<'_>], report: &mut Report) {
    let mut accesses: BTreeMap<(usize, ElementId), EpochAccess> = BTreeMap::new();
    for v in views {
        // The thread's (collapsed) vector clock: barriers entered so far.
        let mut epoch = 0usize;
        for &(span, r) in &v.records {
            match r.kind {
                EventKind::BarrierEnter { .. } => epoch += 1,
                EventKind::RemoteRead { element, .. } => accesses
                    .entry((epoch, element))
                    .or_default()
                    .readers
                    .push((v.thread, span)),
                EventKind::RemoteWrite { element, .. } => accesses
                    .entry((epoch, element))
                    .or_default()
                    .writers
                    .push((v.thread, span)),
                _ => {}
            }
        }
    }
    for ((epoch, element), acc) in accesses {
        if acc.writers.is_empty() {
            continue;
        }
        let mut participants: Vec<ThreadId> = acc
            .writers
            .iter()
            .chain(acc.readers.iter())
            .map(|&(t, _)| t)
            .collect();
        participants.sort_unstable();
        participants.dedup();
        if participants.len() <= 1 {
            continue;
        }
        let (writer, span) = acc.writers[0];
        let others: Vec<String> = participants
            .iter()
            .filter(|&&t| t != writer)
            .map(|t| t.to_string())
            .collect();
        report.push(
            Code::E007CausalityViolation,
            span,
            format!(
                "write to element {} by {writer} is concurrent with accesses by {} in \
                 barrier epoch {epoch} — no happens-before edge orders them, so the \
                 trace does not transfer across timings (§5)",
                element.index(),
                others.join(", "),
            ),
        );
    }
}
