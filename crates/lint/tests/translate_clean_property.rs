//! Property test: for any well-formed phase-structured program, the
//! §3.2 translation's output lints clean.
//!
//! The linter and the translator encode the same invariants from two
//! directions — `translate()` *constructs* per-thread traces, the
//! passes *check* them — so any disagreement (a translation output the
//! linter rejects, however exotic the input) is a bug in one of the
//! two.  Programs are generated from a seeded SplitMix64 so failures
//! reproduce exactly.

use extrap_sim::SplitMix64;
use extrap_time::{DurationNs, ElementId, ThreadId};
use extrap_trace::{translate, PhaseAccess, PhaseProgram, PhaseWork, ProgramTrace};

/// A random phase-structured program that respects the data-parallel
/// contract: every access targets a remote, uniquely-owned element (no
/// self-accesses, no same-epoch write conflicts), because those are the
/// programs the paper's pipeline is *for* — the linter's job is to flag
/// everything else.
fn random_program(rng: &mut SplitMix64) -> ProgramTrace {
    let n_threads = 2 + rng.next_below(5) as usize; // 2..=6
    let n_phases = 1 + rng.next_below(5) as usize; // 1..=5
    let mut program = PhaseProgram::new(n_threads);
    let mut next_element = 0u32;
    for _ in 0..n_phases {
        let mut phase = Vec::with_capacity(n_threads);
        for t in 0..n_threads {
            let compute = DurationNs(1 + rng.next_below(200_000));
            let n_accesses = rng.next_below(4) as usize;
            let mut accesses = Vec::with_capacity(n_accesses);
            for _ in 0..n_accesses {
                // Any thread but the issuer owns the element; each access
                // touches a fresh element so no two threads ever contend.
                let owner = (t + 1 + rng.next_below(n_threads as u64 - 1) as usize) % n_threads;
                let element = ElementId(next_element);
                next_element += 1;
                accesses.push(PhaseAccess {
                    after: DurationNs(rng.next_below(compute.0.max(1))),
                    owner: ThreadId(owner as u32),
                    element,
                    declared_bytes: 8 * (1 + rng.next_below(128) as u32),
                    actual_bytes: 1 + rng.next_below(64) as u32,
                    write: rng.next_below(2) == 1,
                });
            }
            accesses.sort_by_key(|a| a.after);
            phase.push(PhaseWork { compute, accesses });
        }
        program.push_phase(phase);
    }
    program.record()
}

#[test]
fn translate_output_is_always_lint_clean() {
    let mut rng = SplitMix64::new(0x5EED_1995);
    for case in 0..200 {
        let pt = random_program(&mut rng);
        let program_report = extrap_lint::lint_program(&pt);
        assert!(
            program_report.is_clean(),
            "case {case}: generated program should be clean, got:\n{}",
            extrap_lint::render_text(&program_report)
        );
        let ts = translate(&pt, Default::default())
            .unwrap_or_else(|e| panic!("case {case}: translation failed: {e}"));
        let report = extrap_lint::lint_set(&ts);
        assert!(
            report.is_clean(),
            "case {case}: translated set should lint clean, got:\n{}",
            extrap_lint::render_text(&report)
        );
    }
}

#[test]
fn corrupting_any_translated_set_is_caught() {
    // The complementary direction on a smaller sample: drop one thread's
    // barrier events from a translated set and the linter must object
    // (E004 or E005 depending on what was dropped).
    let mut rng = SplitMix64::new(0xBAD_F00D);
    for case in 0..20 {
        let pt = random_program(&mut rng);
        let mut ts = translate(&pt, Default::default()).unwrap();
        let victim = rng.next_below(ts.n_threads() as u64) as usize;
        let before = ts.threads[victim].records.len();
        ts.threads[victim].records.retain(|r| !r.kind.is_sync());
        if ts.threads[victim].records.len() == before {
            continue; // single-phase program with no barriers? not possible, but safe
        }
        let report = extrap_lint::lint_set(&ts);
        assert!(
            report.has_errors(),
            "case {case}: de-synchronized set must not lint clean"
        );
    }
}
