//! The streaming lint path must be **byte-identical** (text and JSON
//! renderers) to the whole-trace path — on the shipped example traces,
//! and on every corruption class from the fixture battery re-encoded to
//! bytes.  Also pins the streaming memory bound: resident analysis
//! state must not grow with the record count.

use extrap_lint::{
    lint_program, lint_program_stream, lint_set, lint_set_stream, lint_trace_file, render_json,
    render_text, Report, StreamLinter,
};
use extrap_time::{BarrierId, DurationNs, ElementId, ThreadId, TimeNs};
use extrap_trace::stream::{ProgramStream, SetStream, SliceSource, StreamArena};
use extrap_trace::{
    format, translate, EventKind, PhaseAccess, PhaseProgram, PhaseWork, ProgramTrace, TraceRecord,
    TraceSet,
};
use std::path::PathBuf;

/// Deliberately awkward window/chunk sizes so every comparison crosses
/// refill and chunk boundaries mid-record.
const GEOMETRIES: &[(usize, usize)] = &[(7, 3), (64, 1), (4096, 4096)];

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/traces")
        .join(name)
}

fn assert_same_renders(whole: &Report, stream: &Report, what: &str) {
    assert_eq!(
        render_text(whole),
        render_text(stream),
        "text render differs: {what}"
    );
    assert_eq!(
        render_json(whole),
        render_json(stream),
        "json render differs: {what}"
    );
}

fn check_program_bytes(bytes: &[u8], what: &str) {
    let whole = lint_program(&format::decode_program_raw(bytes).unwrap());
    for &(window, chunk) in GEOMETRIES {
        let mut s =
            ProgramStream::with_options(SliceSource(bytes), StreamArena::new(), window, chunk)
                .unwrap();
        let stream = lint_program_stream(&mut s).unwrap();
        assert_same_renders(
            &whole,
            &stream,
            &format!("{what} (window {window}, chunk {chunk})"),
        );
    }
}

fn check_set_bytes(bytes: &[u8], what: &str) {
    let whole = lint_set(&format::decode_set_raw(bytes).unwrap());
    for &(window, chunk) in GEOMETRIES {
        let mut s =
            SetStream::with_options(SliceSource(bytes), StreamArena::new(), window, chunk).unwrap();
        let stream = lint_set_stream(&mut s).unwrap();
        assert_same_renders(
            &whole,
            &stream,
            &format!("{what} (window {window}, chunk {chunk})"),
        );
    }
}

fn check_program(pt: &ProgramTrace, what: &str) {
    check_program_bytes(&format::encode_program(pt), what);
}

fn check_set(ts: &TraceSet, what: &str) {
    check_set_bytes(&format::encode_set(ts), what);
}

// ---- fixture-battery corruptions (mirrors tests/corrupted_fixtures.rs) ----

fn access(owner: u32, element: u32, write: bool) -> PhaseAccess {
    PhaseAccess {
        after: DurationNs(10),
        owner: ThreadId(owner),
        element: ElementId(element),
        declared_bytes: 8,
        actual_bytes: 8,
        write,
    }
}

fn work(compute_ns: u64, accesses: Vec<PhaseAccess>) -> PhaseWork {
    PhaseWork {
        compute: DurationNs(compute_ns),
        accesses,
    }
}

fn clean_program() -> ProgramTrace {
    let mut p = PhaseProgram::new(2);
    p.push_uniform_phase(DurationNs(100));
    p.push_uniform_phase(DurationNs(40));
    p.record()
}

fn clean_set() -> TraceSet {
    translate(&clean_program(), Default::default()).unwrap()
}

#[test]
fn example_traces_lint_identically() {
    for name in ["grid4.xtrp", "corrupt_time.xtrp"] {
        let bytes = std::fs::read(example(name)).unwrap();
        check_program_bytes(&bytes, name);
    }
    let bytes = std::fs::read(example("grid4.xtps")).unwrap();
    check_set_bytes(&bytes, "grid4.xtps");
}

#[test]
fn lint_trace_file_matches_whole_trace_path() {
    let mut arena = StreamArena::new();
    for name in ["grid4.xtrp", "corrupt_time.xtrp"] {
        let bytes = std::fs::read(example(name)).unwrap();
        let whole = lint_program(&format::decode_program_raw(&bytes).unwrap());
        let report = lint_trace_file(example(name), &mut arena).unwrap().unwrap();
        assert_same_renders(&whole, &report, name);
    }
    let bytes = std::fs::read(example("grid4.xtps")).unwrap();
    let whole = lint_set(&format::decode_set_raw(&bytes).unwrap());
    let report = lint_trace_file(example("grid4.xtps"), &mut arena)
        .unwrap()
        .unwrap();
    assert_same_renders(&whole, &report, "grid4.xtps");
    // Not a trace: the caller gets None, not an error.
    assert!(lint_trace_file(example("cm5.cfg"), &mut arena)
        .unwrap()
        .is_none());
}

#[test]
fn corrupted_program_fixtures_lint_identically() {
    check_program(&clean_program(), "clean program");

    let mut e001 = clean_program();
    e001.records[2].time = TimeNs::ZERO;
    check_program(&e001, "e001 global time regression");

    let mut e003 = clean_program();
    let t = e003.records[2].time;
    e003.records.insert(
        3,
        TraceRecord {
            time: t,
            thread: ThreadId(9),
            kind: EventKind::Marker { id: 7 },
        },
    );
    check_program(&e003, "e003 bad thread id");

    let mut p = PhaseProgram::new(2);
    p.push_phase(vec![
        work(100, vec![access(9, 5, false)]),
        work(100, vec![]),
    ]);
    check_program(&p.record(), "e006 dangling owner");

    let mut p = PhaseProgram::new(3);
    p.push_phase(vec![
        work(100, vec![access(2, 5, false)]),
        work(100, vec![access(0, 5, false)]),
        work(100, vec![]),
    ]);
    check_program(&p.record(), "e006 inconsistent ownership");

    let mut p = PhaseProgram::new(3);
    p.push_phase(vec![
        work(100, vec![access(2, 5, false)]),
        work(100, vec![]),
        work(100, vec![]),
    ]);
    p.push_phase(vec![
        work(40, vec![access(1, 5, false)]),
        work(40, vec![]),
        work(40, vec![]),
    ]);
    check_program(&p.record(), "e006 redistribution (clean)");

    let mut w001 = clean_program();
    let t_end = w001.records.last().unwrap().time;
    for (thread, id) in [(0, 1), (1, 2)] {
        w001.records.push(TraceRecord {
            time: t_end,
            thread: ThreadId(thread),
            kind: EventKind::Marker { id },
        });
    }
    check_program(&w001, "w001 marker mismatch");

    let mut p = PhaseProgram::new(2);
    p.push_phase(vec![
        work(100, vec![access(0, 4, false)]),
        work(100, vec![]),
    ]);
    check_program(&p.record(), "w002 self remote access");

    let mut w003 = ProgramTrace::new(2);
    w003.records.push(TraceRecord {
        time: TimeNs::ZERO,
        thread: ThreadId(0),
        kind: EventKind::ThreadBegin,
    });
    w003.records.push(TraceRecord {
        time: TimeNs(10),
        thread: ThreadId(0),
        kind: EventKind::ThreadEnd,
    });
    check_program(&w003, "w003 missing frame");
}

#[test]
fn corrupted_set_fixtures_lint_identically() {
    check_set(&clean_set(), "clean set");

    let mut e002 = clean_set();
    let last = e002.threads[1].records.len() - 1;
    e002.threads[1].records[last].time = TimeNs::ZERO;
    check_set(&e002, "e002 thread time regression");

    let mut e004 = clean_set();
    let pos = e004.threads[1]
        .records
        .iter()
        .position(
            |r| matches!(r.kind, EventKind::BarrierExit { barrier } if barrier == BarrierId(0)),
        )
        .unwrap();
    e004.threads[1].records.remove(pos);
    check_set(&e004, "e004 unmatched barrier");

    let mut e005 = clean_set();
    e005.threads[1].records.retain(
        |r| !matches!(r.kind, EventKind::BarrierEnter { barrier } | EventKind::BarrierExit { barrier } if barrier == BarrierId(1)),
    );
    check_set(&e005, "e005 barrier mismatch");

    let mut p = PhaseProgram::new(3);
    p.push_phase(vec![
        work(100, vec![access(2, 9, true)]),
        work(100, vec![access(2, 9, false)]),
        work(100, vec![]),
    ]);
    let e007 = translate(&p.record(), Default::default()).unwrap();
    check_set(&e007, "e007 causality violation");

    let mut p = PhaseProgram::new(3);
    p.push_phase(vec![
        work(100, vec![access(2, 3, true)]),
        work(100, vec![]),
        work(100, vec![]),
    ]);
    p.push_phase(vec![
        work(40, vec![]),
        work(40, vec![access(2, 3, false)]),
        work(40, vec![]),
    ]);
    let ordered = translate(&p.record(), Default::default()).unwrap();
    check_set(&ordered, "e007 barrier-separated (clean)");

    let mut e009 = clean_set();
    e009.threads[1].records[1].thread = ThreadId(0);
    check_set(&e009, "e009 misplaced thread");
}

/// Builds a program whose record count scales with `reads` while its
/// *structure* (threads, barriers, distinct elements) stays fixed — the
/// shape under which streaming lint memory must stay flat.
fn wide_program(reads: usize) -> ProgramTrace {
    let threads = 4usize;
    let mut p = PhaseProgram::new(threads);
    for _ in 0..3 {
        let phase: Vec<PhaseWork> = (0..threads)
            .map(|t| {
                let owner = ((t + 1) % threads) as u32;
                // Every access targets the element named after its owner,
                // so ownership stays consistent and no diagnostics fire.
                work(
                    100,
                    (0..reads).map(|_| access(owner, owner, false)).collect(),
                )
            })
            .collect();
        p.push_phase(phase);
    }
    p.record()
}

#[test]
fn streaming_memory_is_bounded_by_structure_not_records() {
    let probe = |pt: &ProgramTrace| -> (usize, usize) {
        let mut lt = StreamLinter::for_program(pt.n_threads);
        for r in &pt.records {
            lt.record(r);
        }
        let peak = lt.peak_resident_bytes();
        let report = lt.finish();
        assert!(report.is_clean(), "probe trace must lint clean");
        (peak, pt.records.len())
    };
    let (small_peak, small_len) = probe(&wide_program(20));
    let (big_peak, big_len) = probe(&wide_program(220));
    assert!(
        big_len >= small_len * 9,
        "probe traces must differ by ~10x in record count"
    );
    // Equal structure => equal resident state; allow slack for the
    // collection growth policies, but nothing near the 10x data growth.
    assert!(
        big_peak <= small_peak * 2,
        "streaming lint state grew with record count: {small_peak} -> {big_peak} \
         bytes for {small_len} -> {big_len} records"
    );
}
