//! One fixture per diagnostic code: each seeded corruption class must
//! fire its code **exactly once** and nothing else — the codes are the
//! tool's contract, so a corruption that trips three codes at once (or a
//! clean trace that trips any) is a linter bug.

use extrap_lint::{lint_params, lint_program, lint_set, Code, Report};
use extrap_time::{BarrierId, DurationNs, ElementId, ThreadId, TimeNs};
use extrap_trace::{
    translate, EventKind, PhaseAccess, PhaseProgram, PhaseWork, ProgramTrace, TraceRecord, TraceSet,
};

fn access(owner: u32, element: u32, write: bool) -> PhaseAccess {
    PhaseAccess {
        after: DurationNs(10),
        owner: ThreadId(owner),
        element: ElementId(element),
        declared_bytes: 8,
        actual_bytes: 8,
        write,
    }
}

fn work(compute_ns: u64, accesses: Vec<PhaseAccess>) -> PhaseWork {
    PhaseWork {
        compute: DurationNs(compute_ns),
        accesses,
    }
}

/// A clean two-phase, two-thread program (the uncorrupted baseline).
fn clean_program() -> ProgramTrace {
    let mut p = PhaseProgram::new(2);
    p.push_uniform_phase(DurationNs(100));
    p.push_uniform_phase(DurationNs(40));
    p.record()
}

fn clean_set() -> TraceSet {
    translate(&clean_program(), Default::default()).unwrap()
}

/// Asserts the report contains exactly one diagnostic, carrying `code`.
fn assert_fires_exactly_once(report: &Report, code: Code) {
    assert_eq!(
        report.diagnostics.len(),
        1,
        "expected exactly one diagnostic, got: {:#?}",
        report.diagnostics
    );
    assert_eq!(report.diagnostics[0].code, code);
}

#[test]
fn clean_fixtures_are_clean() {
    assert!(lint_program(&clean_program()).is_clean());
    assert!(lint_set(&clean_set()).is_clean());
    assert!(lint_params(&extrap_core::SimParams::default()).is_clean());
}

#[test]
fn e001_global_time_regression() {
    let mut pt = clean_program();
    assert!(pt.records[2].time > TimeNs::ZERO, "need room to dip");
    pt.records[2].time = TimeNs::ZERO;
    let report = lint_program(&pt);
    assert_fires_exactly_once(&report, Code::E001GlobalTimeRegression);
    assert_eq!(report.diagnostics[0].span.record, Some(2));
}

#[test]
fn e002_thread_time_regression() {
    let mut ts = clean_set();
    let last = ts.threads[1].records.len() - 1;
    ts.threads[1].records[last].time = TimeNs::ZERO;
    let report = lint_set(&ts);
    assert_fires_exactly_once(&report, Code::E002ThreadTimeRegression);
    assert_eq!(report.diagnostics[0].span.thread, Some(ThreadId(1)));
}

#[test]
fn e003_bad_thread_id() {
    let mut pt = clean_program();
    // An extra event attributed to a thread the trace does not declare.
    let t = pt.records[2].time;
    pt.records.insert(
        3,
        TraceRecord {
            time: t,
            thread: ThreadId(9),
            kind: EventKind::Marker { id: 7 },
        },
    );
    let report = lint_program(&pt);
    assert_fires_exactly_once(&report, Code::E003BadThreadId);
}

#[test]
fn e004_unmatched_barrier() {
    let mut ts = clean_set();
    // Drop thread 1's first barrier *exit*: its entries now nest.
    let pos = ts.threads[1]
        .records
        .iter()
        .position(
            |r| matches!(r.kind, EventKind::BarrierExit { barrier } if barrier == BarrierId(0)),
        )
        .unwrap();
    ts.threads[1].records.remove(pos);
    let report = lint_set(&ts);
    assert_fires_exactly_once(&report, Code::E004BarrierProtocol);
    assert_eq!(report.diagnostics[0].span.thread, Some(ThreadId(1)));
}

#[test]
fn e005_barrier_count_mismatch_static_deadlock() {
    let mut ts = clean_set();
    // Thread 1 skips its second barrier entirely (enter and exit), so the
    // other thread would wait forever.
    ts.threads[1].records.retain(
        |r| !matches!(r.kind, EventKind::BarrierEnter { barrier } | EventKind::BarrierExit { barrier } if barrier == BarrierId(1)),
    );
    let report = lint_set(&ts);
    assert_fires_exactly_once(&report, Code::E005BarrierMismatch);
    assert!(report.diagnostics[0].message.contains("deadlock"));
}

#[test]
fn e006_dangling_element_owner() {
    let mut p = PhaseProgram::new(2);
    // Thread 0 reads an element owned by a thread that does not exist.
    p.push_phase(vec![
        work(100, vec![access(9, 5, false)]),
        work(100, vec![]),
    ]);
    let report = lint_program(&p.record());
    assert_fires_exactly_once(&report, Code::E006DanglingElement);
}

#[test]
fn e006_inconsistent_element_ownership() {
    let mut p = PhaseProgram::new(3);
    // Two accesses in the SAME barrier epoch name different owners for
    // element 5.  (Across epochs this is fine — redistribution.)
    p.push_phase(vec![
        work(100, vec![access(2, 5, false)]),
        work(100, vec![access(0, 5, false)]),
        work(100, vec![]),
    ]);
    let report = lint_program(&p.record());
    assert_fires_exactly_once(&report, Code::E006DanglingElement);
    assert!(report.diagnostics[0].message.contains("inconsistent"));
}

#[test]
fn e006_redistribution_across_epochs_is_clean() {
    let mut p = PhaseProgram::new(3);
    // The same element changes owner between epochs: a legitimate
    // redistribution (mgrid reuses element ids across levels), not E006.
    p.push_phase(vec![
        work(100, vec![access(2, 5, false)]),
        work(100, vec![]),
        work(100, vec![]),
    ]);
    p.push_phase(vec![
        work(40, vec![access(1, 5, false)]),
        work(40, vec![]),
        work(40, vec![]),
    ]);
    assert!(lint_program(&p.record()).is_clean());
}

#[test]
fn e007_causality_violation() {
    let mut p = PhaseProgram::new(3);
    // Thread 0 writes element 9 (owned by thread 2) while thread 1 reads
    // it in the same barrier epoch: concurrent under the collapsed vector
    // clock, so the §3.2 translation does not preserve causality.
    p.push_phase(vec![
        work(100, vec![access(2, 9, true)]),
        work(100, vec![access(2, 9, false)]),
        work(100, vec![]),
    ]);
    let ts = translate(&p.record(), Default::default()).unwrap();
    let report = lint_set(&ts);
    assert_fires_exactly_once(&report, Code::E007CausalityViolation);
    assert!(report.diagnostics[0].message.contains("epoch 0"));
}

#[test]
fn e007_barrier_separated_accesses_are_ordered() {
    let mut p = PhaseProgram::new(3);
    // Same element, but the write and the read are in different epochs:
    // the barrier provides the happens-before edge, so no E007.
    p.push_phase(vec![
        work(100, vec![access(2, 3, true)]),
        work(100, vec![]),
        work(100, vec![]),
    ]);
    p.push_phase(vec![
        work(40, vec![]),
        work(40, vec![access(2, 3, false)]),
        work(40, vec![]),
    ]);
    let ts = translate(&p.record(), Default::default()).unwrap();
    assert!(lint_set(&ts).is_clean());
}

#[test]
fn e008_param_out_of_range() {
    let params = extrap_core::SimParams {
        mips_ratio: 0.0,
        ..Default::default()
    };
    let report = lint_params(&params);
    assert_fires_exactly_once(&report, Code::E008ParamOutOfRange);
}

#[test]
fn e008_reports_every_violation_not_just_the_first() {
    let mut params = extrap_core::SimParams {
        mips_ratio: -1.0,
        ..Default::default()
    };
    params.network.contention.alpha = f64::NAN;
    params.barrier.algorithm = extrap_core::BarrierAlgorithm::Tree { arity: 1 };
    let report = lint_params(&params);
    assert_eq!(report.with_code(Code::E008ParamOutOfRange).len(), 3);
}

#[test]
fn e009_misplaced_thread() {
    let mut ts = clean_set();
    // One of thread 1's records claims to belong to thread 0.
    ts.threads[1].records[1].thread = ThreadId(0);
    let report = lint_set(&ts);
    assert_fires_exactly_once(&report, Code::E009MisplacedThread);
}

#[test]
fn w001_marker_mismatch() {
    let mut pt = clean_program();
    // Thread 0 passes phase marker 1; thread 1 passes marker 2.
    let t_end = pt.records.last().unwrap().time;
    pt.records.push(TraceRecord {
        time: t_end,
        thread: ThreadId(0),
        kind: EventKind::Marker { id: 1 },
    });
    pt.records.push(TraceRecord {
        time: t_end,
        thread: ThreadId(1),
        kind: EventKind::Marker { id: 2 },
    });
    let report = lint_program(&pt);
    // The trailing markers also unbalance the thread frames (W003); only
    // the marker disagreement itself must be W001, exactly once.
    assert_eq!(report.with_code(Code::W001MarkerMismatch).len(), 1);
    assert!(!report.has_errors());
}

#[test]
fn w002_self_remote_access() {
    let mut p = PhaseProgram::new(2);
    p.push_phase(vec![
        work(100, vec![access(0, 4, false)]),
        work(100, vec![]),
    ]);
    let report = lint_program(&p.record());
    assert_fires_exactly_once(&report, Code::W002SelfRemoteAccess);
}

#[test]
fn w003_missing_thread_frame() {
    let mut pt = ProgramTrace::new(2);
    pt.records.push(TraceRecord {
        time: TimeNs::ZERO,
        thread: ThreadId(0),
        kind: EventKind::ThreadBegin,
    });
    pt.records.push(TraceRecord {
        time: TimeNs(10),
        thread: ThreadId(0),
        kind: EventKind::ThreadEnd,
    });
    // Thread 1 never appears.
    let report = lint_program(&pt);
    assert_fires_exactly_once(&report, Code::W003MissingThreadFrame);
    assert_eq!(report.diagnostics[0].span.thread, Some(ThreadId(1)));
}

#[test]
fn w004_suspicious_param_combination() {
    let mut params = extrap_core::SimParams::default();
    params.network.contention.alpha = 0.0; // enabled, but a no-op
    let report = lint_params(&params);
    assert_fires_exactly_once(&report, Code::W004ParamSuspicious);
}
