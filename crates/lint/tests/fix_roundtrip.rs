//! Round-trip properties of the fix engine:
//!
//! * traces carrying only **fixable** corruption (timestamp dips of
//!   non-sync records, out-of-range thread ids, dangling or
//!   inconsistent element owners, missing frames) come back error-free,
//!   and re-fixing the output changes nothing (idempotence);
//! * traces carrying only **unfixable** corruption come back untouched,
//!   with the errors still present for the caller to refuse on.
//!
//! Driven by a deterministic SplitMix64 case generator (same idiom as
//! the trace-layer robustness tests; crates.io is unreachable so no
//! proptest).

use extrap_lint::{fix_program, fix_set, lint_program, lint_set};
use extrap_time::{BarrierId, DurationNs, ElementId, ThreadId, TimeNs};
use extrap_trace::{
    translate, EventKind, PhaseAccess, PhaseProgram, PhaseWork, ProgramTrace, TraceRecord, TraceSet,
};

const CASES: u64 = 128;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

fn for_all(seed: u64, check: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng(seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
        check(&mut rng);
    }
}

fn base_program() -> ProgramTrace {
    let mut p = PhaseProgram::new(3);
    p.push_uniform_phase(DurationNs(100));
    p.push_uniform_phase(DurationNs(40));
    p.push_uniform_phase(DurationNs(70));
    p.record()
}

fn base_set() -> TraceSet {
    translate(&base_program(), Default::default()).unwrap()
}

/// Dips the timestamp of one random *non-sync* record.  Sync records
/// are excluded deliberately: re-sorting a barrier event across its
/// partner is exactly the unfixable (`E004`) case.
fn dip_non_sync(rng: &mut Rng, records: &mut [TraceRecord]) {
    let candidates: Vec<usize> = records
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.kind.is_sync() && r.time > TimeNs::ZERO)
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return;
    }
    let i = candidates[rng.range(0, candidates.len() as u64) as usize];
    records[i].time = TimeNs(rng.range(0, records[i].time.0));
}

/// Inserts a record referencing a thread the trace does not declare.
fn insert_bad_thread(rng: &mut Rng, records: &mut Vec<TraceRecord>, n_threads: usize) {
    let at = rng.range(0, records.len() as u64 + 1) as usize;
    let time = records
        .get(at.saturating_sub(1))
        .map(|r| r.time)
        .unwrap_or(TimeNs::ZERO);
    records.insert(
        at,
        TraceRecord {
            time,
            thread: ThreadId((n_threads as u32) + rng.range(0, 5) as u32),
            kind: EventKind::Marker {
                id: rng.next() as u32,
            },
        },
    );
}

/// Inserts a remote access naming an out-of-range owner.
fn insert_dangling_access(
    rng: &mut Rng,
    records: &mut Vec<TraceRecord>,
    n_threads: usize,
    thread: ThreadId,
) {
    let at = rng.range(0, records.len() as u64 + 1) as usize;
    let time = records
        .get(at.saturating_sub(1))
        .map(|r| r.time)
        .unwrap_or(TimeNs::ZERO);
    records.insert(
        at,
        TraceRecord {
            time,
            thread,
            kind: EventKind::RemoteRead {
                owner: ThreadId((n_threads as u32) + 1 + rng.range(0, 4) as u32),
                element: ElementId(rng.range(0, 16) as u32),
                declared_bytes: 64,
                actual_bytes: 8,
            },
        },
    );
}

/// Removes one thread's frame records (its begins and/or ends).
fn tear_frame(rng: &mut Rng, records: &mut Vec<TraceRecord>, thread: ThreadId) {
    let which = rng.range(0, 3);
    records.retain(|r| {
        if r.thread != thread {
            return true;
        }
        match r.kind {
            EventKind::ThreadBegin => which == 1,
            EventKind::ThreadEnd => which == 0,
            _ => true,
        }
    });
}

#[test]
fn fixable_program_corruptions_fix_clean_and_idempotent() {
    for_all(0xF1_0001, |rng| {
        let mut pt = base_program();
        for _ in 0..rng.range(1, 4) {
            match rng.range(0, 4) {
                0 => dip_non_sync(rng, &mut pt.records),
                1 => insert_bad_thread(rng, &mut pt.records, pt.n_threads),
                2 => {
                    let t = ThreadId(rng.range(0, pt.n_threads as u64) as u32);
                    insert_dangling_access(rng, &mut pt.records, pt.n_threads, t);
                }
                _ => {
                    let t = ThreadId(rng.range(0, pt.n_threads as u64) as u32);
                    tear_frame(rng, &mut pt.records, t);
                }
            }
        }
        let once = fix_program(&pt);
        let report = lint_program(&once.value);
        assert!(
            !report.has_errors(),
            "errors survive the fixer: {:?}\nnotes: {:?}",
            report.diagnostics,
            once.notes
        );
        let twice = fix_program(&once.value);
        assert!(!twice.changed(), "fix not idempotent: {:?}", twice.notes);
        assert_eq!(twice.value, once.value);
    });
}

#[test]
fn fixable_set_corruptions_fix_clean_and_idempotent() {
    for_all(0xF1_0002, |rng| {
        let mut ts = base_set();
        let n = ts.threads.len();
        for _ in 0..rng.range(1, 4) {
            let seg = rng.range(0, n as u64) as usize;
            let thread = ts.threads[seg].thread;
            match rng.range(0, 3) {
                0 => dip_non_sync(rng, &mut ts.threads[seg].records),
                1 => insert_dangling_access(rng, &mut ts.threads[seg].records, n, thread),
                _ => tear_frame(rng, &mut ts.threads[seg].records, thread),
            }
        }
        let once = fix_set(&ts);
        let report = lint_set(&once.value);
        assert!(
            !report.has_errors(),
            "errors survive the fixer: {:?}\nnotes: {:?}",
            report.diagnostics,
            once.notes
        );
        let twice = fix_set(&once.value);
        assert!(!twice.changed(), "fix not idempotent: {:?}", twice.notes);
        assert_eq!(twice.value, once.value);
    });
}

#[test]
fn inconsistent_ownership_is_repaired_by_dropping_later_claims() {
    let mut p = PhaseProgram::new(3);
    p.push_phase(vec![
        PhaseWork {
            compute: DurationNs(100),
            accesses: vec![PhaseAccess {
                after: DurationNs(10),
                owner: ThreadId(2),
                element: ElementId(5),
                declared_bytes: 8,
                actual_bytes: 8,
                write: false,
            }],
        },
        PhaseWork {
            compute: DurationNs(100),
            accesses: vec![PhaseAccess {
                after: DurationNs(10),
                owner: ThreadId(0),
                element: ElementId(5),
                declared_bytes: 8,
                actual_bytes: 8,
                write: false,
            }],
        },
        PhaseWork {
            compute: DurationNs(100),
            accesses: vec![],
        },
    ]);
    let pt = p.record();
    assert!(lint_program(&pt).has_errors());
    let out = fix_program(&pt);
    assert!(out.changed());
    assert!(!lint_program(&out.value).has_errors());
    assert_eq!(out.value.records.len(), pt.records.len() - 1);
}

#[test]
fn unfixable_corruptions_leave_the_trace_untouched() {
    // E009: segments swapped.
    let mut swapped = base_set();
    swapped.threads.swap(0, 1);
    let out = fix_set(&swapped);
    assert!(!out.changed());
    assert_eq!(out.value, swapped);
    assert!(lint_set(&out.value).has_errors());

    // E005: one thread skips a barrier.
    let mut deadlock = base_set();
    deadlock.threads[1].records.retain(
        |r| !matches!(r.kind, EventKind::BarrierEnter { barrier } | EventKind::BarrierExit { barrier } if barrier == BarrierId(1)),
    );
    let out = fix_set(&deadlock);
    assert!(!out.changed());
    assert_eq!(out.value, deadlock);
    assert!(lint_set(&out.value).has_errors());

    // E004: a barrier exit vanished.
    let mut unmatched = base_set();
    let pos = unmatched.threads[1]
        .records
        .iter()
        .position(|r| matches!(r.kind, EventKind::BarrierExit { .. }))
        .unwrap();
    unmatched.threads[1].records.remove(pos);
    let out = fix_set(&unmatched);
    assert!(!out.changed());
    assert_eq!(out.value, unmatched);
    assert!(lint_set(&out.value).has_errors());

    // E007: a same-epoch write/read race.
    let mut p = PhaseProgram::new(3);
    p.push_phase(vec![
        PhaseWork {
            compute: DurationNs(100),
            accesses: vec![PhaseAccess {
                after: DurationNs(10),
                owner: ThreadId(2),
                element: ElementId(9),
                declared_bytes: 8,
                actual_bytes: 8,
                write: true,
            }],
        },
        PhaseWork {
            compute: DurationNs(100),
            accesses: vec![PhaseAccess {
                after: DurationNs(10),
                owner: ThreadId(2),
                element: ElementId(9),
                declared_bytes: 8,
                actual_bytes: 8,
                write: false,
            }],
        },
        PhaseWork {
            compute: DurationNs(100),
            accesses: vec![],
        },
    ]);
    let race = translate(&p.record(), Default::default()).unwrap();
    let out = fix_set(&race);
    assert!(!out.changed());
    assert_eq!(out.value, race);
    assert!(lint_set(&out.value).has_errors());
}
