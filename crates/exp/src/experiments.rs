//! The paper's experiments (§4), one function per table/figure, all
//! running on the [`sweep`](extrap_core::sweep) engine: each figure
//! flattens its parameter grid into jobs, executes them across the
//! harness's worker pool, and slices the (job-index-ordered, therefore
//! deterministic) predictions back into series.

use crate::series::Series;
use extrap_core::{
    machine, parallel_map, sweep, CachedTrace, ExtrapError, Prediction, RecordMode, SchedulerKind,
    ServicePolicy, SharedTraceCache, SimParams, SimStrategy, SizeMode, SweepJob,
};
use extrap_trace::{translate, TraceError, TraceSet};
use extrap_workloads::{matmul, Bench, Scale};
use std::fmt;
use std::sync::Arc;

/// The processor counts of every scaling experiment ("1, 2, 4, 8, 16,
/// and 32 processors").
pub const PROCS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// A harness failure, carrying the `(bench, n, params)` coordinates of
/// the failing job so figure-sized grids do not reduce to an anonymous
/// panic.
#[derive(Debug)]
pub struct ExpError {
    /// Workload (benchmark name or matmul distribution label).
    pub bench: String,
    /// Processor count of the failing job.
    pub n_procs: usize,
    /// Compact description of the failing parameter set.
    pub params: String,
    /// The underlying pipeline error.
    pub source: ExtrapError,
}

impl ExpError {
    fn new(bench: &str, n_procs: usize, params: &SimParams, source: ExtrapError) -> ExpError {
        ExpError {
            bench: bench.to_string(),
            n_procs,
            params: format!(
                "mips_ratio={}, policy={:?}, size_mode={:?}",
                params.mips_ratio, params.policy, params.size_mode
            ),
            source,
        }
    }

    fn translation(bench: &str, n_procs: usize, source: ExtrapError) -> ExpError {
        ExpError {
            bench: bench.to_string(),
            n_procs,
            params: "trace translation".to_string(),
            source,
        }
    }
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at P={} [{}]: {}",
            self.bench, self.n_procs, self.params, self.source
        )
    }
}

impl std::error::Error for ExpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Caches translated traces: the same 1-processor measurement feeds many
/// parameter sets (the whole point of extrapolation).  Concurrent and
/// shared by `&self`; each `(workload, n)` translates exactly once even
/// when every worker of a sweep demands it simultaneously.
///
/// Every translation is gated by the `extrap-lint` validator: a workload
/// whose translated trace is not lint-clean fails its jobs immediately
/// with the rendered diagnostics instead of feeding a questionable trace
/// to every figure that shares the cache entry.
pub struct TraceCache {
    inner: SharedTraceCache<(String, usize)>,
    scale: Scale,
}

impl TraceCache {
    /// A cache for one problem scale.
    pub fn new(scale: Scale) -> TraceCache {
        TraceCache {
            inner: SharedTraceCache::new().with_validator(extrap_lint::validate_set),
            scale,
        }
    }

    /// The problem scale the cache translates at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The translated-and-compiled trace of `bench` at `n` threads.
    pub fn get(&self, bench: Bench, n: usize) -> Result<Arc<CachedTrace>, ExpError> {
        let scale = self.scale;
        self.inner
            .get_or_translate((bench.name().to_string(), n), || {
                translate(&bench.trace(n, scale), Default::default())
            })
            .map_err(|e| ExpError::translation(bench.name(), n, e))
    }

    /// How many translations have actually run (cache misses).
    pub fn translations(&self) -> usize {
        self.inner.translations()
    }

    /// How many distinct `(workload, n)` keys are cached.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Default for TraceCache {
    fn default() -> TraceCache {
        TraceCache::new(Scale::default())
    }
}

/// The experiment harness: a shared trace cache plus the worker count
/// every figure's sweep runs with.  `jobs = 1` is the serial baseline;
/// any other worker count produces byte-identical output.
pub struct Harness {
    cache: TraceCache,
    jobs: usize,
    scheduler: Option<SchedulerKind>,
    strategy: Option<SimStrategy>,
}

impl Harness {
    /// A harness at `scale` sweeping with `jobs` workers.
    pub fn new(scale: Scale, jobs: usize) -> Harness {
        Harness {
            cache: TraceCache::new(scale),
            jobs: jobs.max(1),
            scheduler: None,
            strategy: None,
        }
    }

    /// Forces every job's event-queue backend, overriding whatever the
    /// figure's parameter set says.  Predictions are byte-identical
    /// across backends, so this is purely a performance knob.
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> Harness {
        self.scheduler = Some(kind);
        self
    }

    /// Forces every job's epoch coverage strategy.  Unlike the
    /// scheduler override this *does* change predictions (within the
    /// repr tolerance) — it exists to regenerate whole figures under
    /// representative simulation and eyeball the shape preservation.
    /// [`repr_validation`] ignores it (it pins both strategies itself).
    pub fn with_strategy(mut self, strategy: SimStrategy) -> Harness {
        self.strategy = Some(strategy);
        self
    }

    /// The serial (1-worker) harness.
    pub fn serial(scale: Scale) -> Harness {
        Harness::new(scale, 1)
    }

    /// The shared trace cache.
    pub fn cache(&self) -> &TraceCache {
        &self.cache
    }

    /// The problem scale.
    pub fn scale(&self) -> Scale {
        self.cache.scale
    }

    /// The sweep worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Resolves a workload key to a fresh translated trace (the sweep
    /// cache's miss path).  Benchmark names come from [`Bench::all`];
    /// `(R,C)`-style keys are matmul distribution labels.
    fn translate_key(&self, key: &(String, usize)) -> Result<TraceSet, TraceError> {
        let (name, n) = key;
        if let Some(bench) = Bench::all().into_iter().find(|b| b.name() == name.as_str()) {
            return translate(&bench.trace(*n, self.cache.scale), Default::default());
        }
        if let Some(dist) = matmul::nine_distributions()
            .into_iter()
            .find(|d| matmul_label(d) == *name)
        {
            let cfg = matmul::MatmulConfig {
                n: matmul_order(self.cache.scale),
                dist,
            };
            return translate(&matmul::run(*n, &cfg).0, Default::default());
        }
        Err(TraceError::Format {
            detail: format!("unknown workload key {name:?}"),
        })
    }

    /// Runs one sweep over explicit `(workload-key, params)` jobs.
    ///
    /// Figures only consume scalar metrics (times, speedups), so every
    /// job runs `MetricsOnly` — the predicted traces would be built and
    /// immediately dropped.
    fn run_jobs(
        &self,
        mut jobs: Vec<SweepJob<(String, usize)>>,
    ) -> Result<Vec<Prediction>, ExpError> {
        for job in &mut jobs {
            job.params.record_mode = RecordMode::MetricsOnly;
            if let Some(kind) = self.scheduler {
                job.params.scheduler = kind;
            }
            if let Some(strategy) = self.strategy {
                job.params.strategy = strategy;
            }
        }
        let results = sweep(&jobs, self.jobs, &self.cache.inner, |key| {
            self.translate_key(key)
        });
        results
            .into_iter()
            .zip(&jobs)
            .map(|(r, job)| r.map_err(|e| ExpError::new(&e.key.0, e.key.1, &job.params, e.error)))
            .collect()
    }

    /// Runs `specs` (one per series) across [`PROCS`] and returns each
    /// spec's predictions in processor order.
    fn run_specs(
        &self,
        specs: &[(String, Bench, SimParams)],
    ) -> Result<Vec<Vec<Prediction>>, ExpError> {
        let jobs = specs
            .iter()
            .flat_map(|(_, bench, params)| {
                PROCS.iter().map(|&n| SweepJob {
                    key: (bench.name().to_string(), n),
                    params: params.clone(),
                })
            })
            .collect();
        let flat = self.run_jobs(jobs)?;
        Ok(flat.chunks(PROCS.len()).map(|c| c.to_vec()).collect())
    }
}

impl Default for Harness {
    fn default() -> Harness {
        Harness::new(Scale::default(), extrap_core::sweep::default_workers())
    }
}

fn matmul_label(dist: &(pcpp_rt::Dist1, pcpp_rt::Dist1)) -> String {
    format!("({},{})", dist.0.letter(), dist.1.letter())
}

fn matmul_order(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 12,
        Scale::Small => 32,
        Scale::Paper => 48,
    }
}

/// Execution-time series (milliseconds) from per-processor predictions.
fn times_of(label: &str, preds: &[Prediction]) -> Series {
    let mut s = Series::new(label);
    for (&n, pred) in PROCS.iter().zip(preds) {
        s.push(n, pred.exec_time().as_ms());
    }
    s
}

/// Speedup series relative to the same parameter set at one processor
/// (`PROCS[0] == 1`, so the baseline is the chunk's first prediction).
fn speedups_of(label: &str, preds: &[Prediction]) -> Series {
    let base = preds[0].exec_time();
    let mut s = Series::new(label);
    for (&n, pred) in PROCS.iter().zip(preds) {
        s.push(n, pred.speedup_vs(base));
    }
    s
}

/// Extrapolates one benchmark at one processor count.
pub fn predict(
    h: &Harness,
    bench: Bench,
    n: usize,
    params: &SimParams,
) -> Result<Prediction, ExpError> {
    let traces = h.cache.get(bench, n)?;
    extrap_core::Extrapolator::new(params.clone())
        .run(traces.program())
        .map_err(|e| ExpError::new(bench.name(), n, params, e))
}

/// Execution-time series (milliseconds) across [`PROCS`].
pub fn time_series(
    h: &Harness,
    label: impl Into<String>,
    bench: Bench,
    params: &SimParams,
) -> Result<Series, ExpError> {
    let preds = h.run_specs(&[(String::new(), bench, params.clone())])?;
    Ok(times_of(&label.into(), &preds[0]))
}

/// Speedup series (relative to the same parameter set at one processor).
pub fn speedup_series(
    h: &Harness,
    label: impl Into<String>,
    bench: Bench,
    params: &SimParams,
) -> Result<Series, ExpError> {
    let preds = h.run_specs(&[(String::new(), bench, params.clone())])?;
    Ok(speedups_of(&label.into(), &preds[0]))
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/// Table 1: the barrier model parameters with their defaults.
pub fn table1() -> String {
    let b = extrap_core::BarrierParams::default();
    let mut out = String::from("## Table 1 — Barrier model parameters\n");
    let rows = [
        ("EntryTime", format!("{:.1} usec", b.entry.as_us()),
         "Time for each thread to enter a barrier."),
        ("ExitTime", format!("{:.1} usec", b.exit.as_us()),
         "Time for each thread to come out of the barrier after it has been lowered."),
        ("CheckTime", format!("{:.1} usec", b.check.as_us()),
         "Delay incurred by the master thread every time it checks if all the threads have reached the barrier."),
        ("ExitCheckTime", format!("{:.1} usec", b.exit_check.as_us()),
         "Delay incurred by a slave thread every time it checks to see if the master has released the barrier."),
        ("ModelTime", format!("{:.1} usec", b.model.as_us()),
         "Time taken by the master thread to start lowering the barrier after all the slaves have reached the barrier."),
        ("BarrierByMsgs", format!("{}", u8::from(b.by_msgs)),
         "1 - use actual messages for barrier synchronization; 0 - do not."),
        ("BarrierMsgSize", format!("{}", b.msg_size),
         "Size of a message used for barrier synchronization."),
    ];
    for (name, value, desc) in rows {
        out.push_str(&format!("{name:16} {value:>10}   {desc}\n"));
    }
    out
}

/// Table 2: the benchmark suite.
pub fn table2() -> String {
    let mut out = String::from("## Table 2 — pC++ benchmark codes\n");
    for b in Bench::all() {
        out.push_str(&format!("{:10} {}\n", b.name(), b.description()));
    }
    out
}

/// Table 3: the CM-5 parameter set.
pub fn table3() -> String {
    let p = machine::cm5();
    let mut out = String::from("## Table 3 — Parameters used for matching CM-5 characteristics\n");
    out.push_str(&format!(
        "BarrierModelTime  {:>8.1} usec\n",
        p.barrier.model.as_us()
    ));
    out.push_str(&format!(
        "CommStartupTime   {:>8.1} usec\n",
        p.comm.startup.as_us()
    ));
    out.push_str(&format!(
        "ByteTransferTime  {:>8.3} usec ({:.1} Mbytes/second)\n",
        p.comm.byte_transfer.as_us(),
        extrap_time::us_per_byte_to_mbps(p.comm.byte_transfer.as_us())
    ));
    out.push_str(&format!("MipsRatio         {:>8.2}\n", p.mips_ratio));
    out
}

// ---------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------

/// Figure 4: speedup curves for all benchmarks on the distributed-memory
/// parameter set (20 MB/s links, high overheads).  Also returns the raw
/// execution times.
pub fn fig4(h: &Harness) -> Result<(Vec<Series>, Vec<Series>), ExpError> {
    let params = machine::default_distributed();
    let specs: Vec<(String, Bench, SimParams)> = Bench::all()
        .into_iter()
        .map(|b| (b.name().to_string(), b, params.clone()))
        .collect();
    let preds = h.run_specs(&specs)?;
    let speedups = specs
        .iter()
        .zip(&preds)
        .map(|((label, _, _), p)| speedups_of(label, p))
        .collect();
    let times = specs
        .iter()
        .zip(&preds)
        .map(|((label, _, _), p)| times_of(label, p))
        .collect();
    Ok((speedups, times))
}

/// Figure 5: Grid under different extrapolations — base, 200 MB/s
/// bandwidth, ideal (zero-cost) environment, actual message sizes, and
/// actual sizes with reduced start-up.  Returns (times, speedups).
pub fn fig5(h: &Harness) -> Result<(Vec<Series>, Vec<Series>), ExpError> {
    let base = machine::default_distributed();

    let mut high_bw = base.clone();
    high_bw.comm = high_bw.comm.with_bandwidth_mbps(200.0);

    let mut actual = base.clone();
    actual.size_mode = SizeMode::Actual;

    let mut actual_low_startup = actual.clone();
    actual_low_startup.comm = actual_low_startup.comm.with_startup_us(10.0);

    let ideal = machine::ideal();

    let specs: Vec<(String, Bench, SimParams)> = [
        ("base (declared size)", base),
        ("200 MB/s bandwidth", high_bw),
        ("actual msg size", actual),
        ("actual size + low startup", actual_low_startup),
        ("ideal (zero cost)", ideal),
    ]
    .into_iter()
    .map(|(label, params)| (label.to_string(), Bench::Grid, params))
    .collect();
    let preds = h.run_specs(&specs)?;
    let times = specs
        .iter()
        .zip(&preds)
        .map(|((label, _, _), p)| times_of(label, p))
        .collect();
    let speedups = specs
        .iter()
        .zip(&preds)
        .map(|((label, _, _), p)| speedups_of(label, p))
        .collect();
    Ok((times, speedups))
}

/// Figure 6's five panels: `(embar_times, cyclic_speedups,
/// sort_speedups, mgrid_speedups, poisson_speedups)`.
pub type Fig6Panels = (
    Vec<Series>,
    Vec<Series>,
    Vec<Series>,
    Vec<Series>,
    Vec<Series>,
);

/// Figure 6: the effect of `MipsRatio` ∈ {2.0, 1.0, 0.5}.
pub fn fig6(h: &Harness) -> Result<Fig6Panels, ExpError> {
    let ratios = [2.0, 1.0, 0.5];
    let panel_benches = [
        Bench::Embar,
        Bench::Cyclic,
        Bench::Sort,
        Bench::Mgrid,
        Bench::Poisson,
    ];
    let mut specs = Vec::new();
    for r in ratios {
        let mut params = machine::default_distributed();
        params.mips_ratio = r;
        for bench in panel_benches {
            specs.push((format!("MipsRatio={r}"), bench, params.clone()));
        }
    }
    let preds = h.run_specs(&specs)?;
    let mut embar_times = Vec::new();
    let mut cyclic = Vec::new();
    let mut sort = Vec::new();
    let mut mgrid = Vec::new();
    let mut poisson = Vec::new();
    for (ri, _) in ratios.iter().enumerate() {
        let row = |b: usize| &preds[ri * panel_benches.len() + b];
        let label = &specs[ri * panel_benches.len()].0;
        embar_times.push(times_of(label, row(0)));
        cyclic.push(speedups_of(label, row(1)));
        sort.push(speedups_of(label, row(2)));
        mgrid.push(speedups_of(label, row(3)));
        poisson.push(speedups_of(label, row(4)));
    }
    Ok((embar_times, cyclic, sort, mgrid, poisson))
}

/// Figure 7: Mgrid execution time for `MipsRatio` ∈ {1.0, 0.25} ×
/// `CommStartupTime` ∈ {5, 100, 200} µs.
pub fn fig7(h: &Harness) -> Result<Vec<Series>, ExpError> {
    let mut specs = Vec::new();
    for ratio in [1.0, 0.25] {
        for startup in [5.0, 100.0, 200.0] {
            let mut params = machine::default_distributed();
            params.mips_ratio = ratio;
            params.comm = params.comm.with_startup_us(startup);
            specs.push((
                format!("ratio={ratio} startup={startup}us"),
                Bench::Mgrid,
                params,
            ));
        }
    }
    let preds = h.run_specs(&specs)?;
    Ok(specs
        .iter()
        .zip(&preds)
        .map(|((label, _, _), p)| times_of(label, p))
        .collect())
}

/// Figure 8: remote-data-request service policies on Cyclic and Grid
/// with `CommStartupTime = 100 µs`.  Returns `(cyclic_times,
/// grid_times)`.
pub fn fig8(h: &Harness) -> Result<(Vec<Series>, Vec<Series>), ExpError> {
    let policies: [(&str, ServicePolicy); 4] = [
        ("no-interrupt/poll", ServicePolicy::NoInterrupt),
        ("interrupt", ServicePolicy::Interrupt),
        ("poll 100us", ServicePolicy::poll_us(100.0)),
        ("poll 500us", ServicePolicy::poll_us(500.0)),
    ];
    let mut specs = Vec::new();
    for bench in [Bench::Cyclic, Bench::Grid] {
        for (label, policy) in policies {
            let mut params = machine::default_distributed();
            params.comm = params.comm.with_startup_us(100.0);
            params.policy = policy;
            specs.push((label.to_string(), bench, params));
        }
    }
    let preds = h.run_specs(&specs)?;
    let series: Vec<Series> = specs
        .iter()
        .zip(&preds)
        .map(|((label, _, _), p)| times_of(label, p))
        .collect();
    let (cyclic, grid) = series.split_at(policies.len());
    Ok((cyclic.to_vec(), grid.to_vec()))
}

/// Figure 9: Matmul with the nine distribution combinations —
/// extrapolated (ExtraP, analytic model) vs "measured" (link-level
/// reference machine), both on the Table 3 CM-5 parameters.  Returns
/// `(predicted_times, measured_times)`.
pub fn fig9(h: &Harness) -> Result<(Vec<Series>, Vec<Series>), ExpError> {
    let params = machine::cm5();
    let dists = matmul::nine_distributions();
    let jobs: Vec<SweepJob<(String, usize)>> = dists
        .iter()
        .flat_map(|dist| {
            PROCS.iter().map(|&procs| SweepJob {
                key: (matmul_label(dist), procs),
                params: params.clone(),
            })
        })
        .collect();
    let preds = h.run_jobs(jobs.clone())?;

    // The "measured" side replays the identical cached traces on the
    // link-level reference machine, fanned out over the same pool.
    // Only execution times are read, so skip the predicted traces.
    let mut ref_params = params.clone();
    ref_params.record_mode = RecordMode::MetricsOnly;
    let refmachine = extrap_refsim::RefMachine::new(ref_params);
    let measured_preds: Vec<Result<Prediction, ExpError>> =
        parallel_map(&jobs, h.jobs, |_, job| {
            let traces = h
                .cache
                .inner
                .get_or_translate(job.key.clone(), || h.translate_key(&job.key))
                .map_err(|e| ExpError::new(&job.key.0, job.key.1, &params, e))?;
            refmachine
                .measure(traces.traces().expect("whole-trace entry"))
                .map_err(|e| ExpError::new(&job.key.0, job.key.1, &params, e))
        });
    let measured_preds: Vec<Prediction> = measured_preds.into_iter().collect::<Result<_, _>>()?;

    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    for (di, dist) in dists.iter().enumerate() {
        let label = matmul_label(dist);
        let chunk = |flat: &[Prediction]| {
            let mut s = Series::new(label.clone());
            for (pi, &procs) in PROCS.iter().enumerate() {
                s.push(procs, flat[di * PROCS.len() + pi].exec_time().as_ms());
            }
            s
        };
        predicted.push(chunk(&preds));
        measured.push(chunk(&measured_preds));
    }
    Ok((predicted, measured))
}

/// Scalability analysis (speedup / efficiency / Karp–Flatt) of one
/// benchmark on a machine preset, across [`PROCS`].
pub fn scalability(
    h: &Harness,
    bench: Bench,
    params: &SimParams,
) -> Result<extrap_core::Scalability, ExpError> {
    let preds = h.run_specs(&[(String::new(), bench, params.clone())])?;
    let samples = PROCS
        .iter()
        .zip(&preds[0])
        .map(|(&n, pred)| (n, pred.exec_time()))
        .collect();
    Ok(extrap_core::Scalability::from_times(samples))
}

/// Extension report: barrier-algorithm ablation — every benchmark at 32
/// processors under linear-with-messages, 4-ary tree, and hardware
/// barriers (the §3.3.3 substitution study).
pub fn ablation_barriers(h: &Harness) -> Result<Vec<Series>, ExpError> {
    let variants: [(&str, extrap_core::BarrierAlgorithm, bool); 3] = [
        (
            "linear (messages)",
            extrap_core::BarrierAlgorithm::Linear,
            true,
        ),
        (
            "tree arity 4",
            extrap_core::BarrierAlgorithm::Tree { arity: 4 },
            false,
        ),
        (
            "hardware 5us",
            extrap_core::BarrierAlgorithm::Hardware,
            false,
        ),
    ];
    let benches = Bench::all();
    let mut jobs = Vec::new();
    for (_, algorithm, by_msgs) in variants {
        let mut params = machine::default_distributed();
        params.barrier.algorithm = algorithm;
        params.barrier.by_msgs = by_msgs;
        params.barrier.hardware_latency = extrap_time::DurationNs::from_us(5.0);
        for bench in benches {
            jobs.push(SweepJob {
                key: (bench.name().to_string(), 32),
                params: params.clone(),
            });
        }
    }
    let preds = h.run_jobs(jobs)?;
    let mut out = Vec::new();
    for (vi, (label, _, _)) in variants.iter().enumerate() {
        let mut series = Series::new(*label);
        for bi in 0..benches.len() {
            // x-axis doubles as a benchmark index here.
            series.push(bi + 1, preds[vi * benches.len() + bi].exec_time().as_ms());
        }
        out.push(series);
    }
    Ok(out)
}

/// Rows of the contention ablation: `(benchmark, analytic ms, link ms)`.
pub type ContentionRows = Vec<(String, f64, f64)>;

/// Extension report: analytic vs link-level contention on identical
/// traces (the speed/accuracy trade-off of §3.3.2), per benchmark at 16
/// processors on the CM-5 parameters.
pub fn ablation_contention(h: &Harness) -> Result<(ContentionRows, f64), ExpError> {
    let params = machine::cm5();
    // The rows only report times; neither side needs predicted traces.
    let mut ref_params = params.clone();
    ref_params.record_mode = RecordMode::MetricsOnly;
    let reference = extrap_refsim::RefMachine::new(ref_params);
    let benches = Bench::all();
    type Row = ((String, f64, f64), f64);
    let computed: Vec<Result<Row, ExpError>> = parallel_map(&benches, h.jobs, |_, bench| {
        let ts = h.cache.get(*bench, 16)?;
        let analytic = extrap_core::Extrapolator::new(params.clone())
            .run(ts.program())
            .map_err(|e| ExpError::new(bench.name(), 16, &params, e))?
            .exec_time();
        let detailed = reference
            .measure(ts.traces().expect("whole-trace entry"))
            .map_err(|e| ExpError::new(bench.name(), 16, &params, e))?
            .exec_time();
        let ratio = detailed.as_ns() as f64 / analytic.as_ns().max(1) as f64;
        Ok((
            (bench.name().to_string(), analytic.as_ms(), detailed.as_ms()),
            ratio,
        ))
    });
    let mut rows = Vec::new();
    let mut worst_ratio = 1.0f64;
    for item in computed {
        let (row, ratio) = item?;
        rows.push(row);
        worst_ratio = worst_ratio.max(ratio);
    }
    Ok((rows, worst_ratio))
}

/// Extension report (§6 future work): n-thread programs on m <= n
/// processors, block placement.
pub fn multithread_sweep(h: &Harness, bench: Bench) -> Result<Vec<Series>, ExpError> {
    let n_threads = 16usize;
    let mappings = [1usize, 2, 4, 8, 16];
    let jobs: Vec<SweepJob<(String, usize)>> = mappings
        .iter()
        .map(|&m| {
            let mut params = machine::default_distributed();
            params.multithread.mapping = extrap_core::ThreadMapping::Block { procs: m };
            SweepJob {
                key: (bench.name().to_string(), n_threads),
                params,
            }
        })
        .collect();
    let preds = h.run_jobs(jobs)?;
    let mut series = Series::new(format!("{} ({n_threads} threads)", bench.name()));
    for (&m, pred) in mappings.iter().zip(&preds) {
        series.push(m, pred.exec_time().as_ms());
    }
    Ok(vec![series])
}

/// One row of the representative-strategy validation table: the same
/// benchmark swept over [`PROCS`] under `Strategy = exact` and
/// `Strategy = repr` (defaults), compared prediction-by-prediction.
#[derive(Clone, Debug)]
pub struct ReprValidation {
    /// Benchmark name.
    pub bench: String,
    /// Whether every processor count fell back to exact simulation
    /// (no repetition to exploit — predictions are byte-identical).
    pub fell_back: bool,
    /// Worst relative execution-time error vs exact across [`PROCS`].
    pub max_time_err: f64,
    /// Whether ordering the processor counts by predicted speedup gives
    /// the same ranking under both strategies (curve shape preserved).
    pub ranking_identical: bool,
    /// Total exact events dispatched over total repr events dispatched —
    /// the simulation-work reduction the strategy bought.
    pub event_ratio: f64,
}

/// Error-vs-speedup validation of representative-region simulation: for
/// each benchmark, sweep [`PROCS`] under both strategies and report the
/// metric error alongside the event-count reduction.  Pins strategies
/// explicitly, so a [`Harness::with_strategy`] override cannot collapse
/// the comparison.
pub fn repr_validation(h: &Harness) -> Result<Vec<ReprValidation>, ExpError> {
    let benches = Bench::all();
    let mut jobs = Vec::new();
    for strategy in [SimStrategy::Exact, SimStrategy::representative()] {
        for bench in benches {
            for &n in PROCS.iter() {
                let mut params = machine::default_distributed();
                params.record_mode = RecordMode::MetricsOnly;
                if let Some(kind) = h.scheduler {
                    params.scheduler = kind;
                }
                params.strategy = strategy;
                jobs.push(SweepJob {
                    key: (bench.name().to_string(), n),
                    params,
                });
            }
        }
    }
    let results = sweep(&jobs, h.jobs, &h.cache.inner, |key| h.translate_key(key));
    let preds: Vec<Prediction> = results
        .into_iter()
        .zip(&jobs)
        .map(|(r, job)| r.map_err(|e| ExpError::new(&e.key.0, e.key.1, &job.params, e.error)))
        .collect::<Result<_, _>>()?;
    let (exact_all, repr_all) = preds.split_at(benches.len() * PROCS.len());
    let mut rows = Vec::new();
    for (bi, bench) in benches.iter().enumerate() {
        let exact = &exact_all[bi * PROCS.len()..(bi + 1) * PROCS.len()];
        let repr = &repr_all[bi * PROCS.len()..(bi + 1) * PROCS.len()];
        let fell_back = exact
            .iter()
            .zip(repr)
            .all(|(e, r)| e.events_dispatched == r.events_dispatched);
        let max_time_err = exact
            .iter()
            .zip(repr)
            .map(|(e, r)| {
                let et = e.exec_time().as_ns() as f64;
                (r.exec_time().as_ns() as f64 - et).abs() / et.max(1.0)
            })
            .fold(0.0f64, f64::max);
        let ranking_identical = speedup_ranking(exact) == speedup_ranking(repr);
        let exact_events: u64 = exact.iter().map(|p| p.events_dispatched).sum();
        let repr_events: u64 = repr.iter().map(|p| p.events_dispatched).sum();
        rows.push(ReprValidation {
            bench: bench.name().to_string(),
            fell_back,
            max_time_err,
            ranking_identical,
            event_ratio: exact_events as f64 / repr_events.max(1) as f64,
        });
    }
    Ok(rows)
}

/// Processor counts ordered by predicted speedup (ties broken by index),
/// i.e. the shape of the speedup curve as a permutation.
fn speedup_ranking(preds: &[Prediction]) -> Vec<usize> {
    let base = preds[0].exec_time();
    let mut idx: Vec<usize> = (0..preds.len()).collect();
    idx.sort_by(|&a, &b| {
        preds[a]
            .speedup_vs(base)
            .total_cmp(&preds[b].speedup_vs(base))
            .then(a.cmp(&b))
    });
    idx
}

/// Renders the validation rows as the `repr` report table.
pub fn render_repr_validation(rows: &[ReprValidation]) -> String {
    let mut out =
        String::from("benchmark     coverage   max time err   ranking     events exact/repr\n");
    for row in rows {
        let coverage = if row.fell_back {
            "exact (fallback)"
        } else {
            "repr"
        };
        let ranking = if row.ranking_identical {
            "identical"
        } else {
            "DIFFERS"
        };
        out.push_str(&format!(
            "{:<12}  {:<16}  {:>6.2}%   {:<9}  {:>6.2}x\n",
            row.bench,
            coverage,
            row.max_time_err * 100.0,
            ranking,
            row.event_ratio,
        ));
    }
    out
}

/// One row of the static-bounds tightness table: a benchmark's
/// simulated execution time against its closed-form work/span envelope
/// from [`extrap_analyze`], at one processor count.
#[derive(Clone, Debug)]
pub struct BoundsTightness {
    /// Workload name (benchmark or matmul distribution label).
    pub bench: String,
    /// Processor count of the comparison.
    pub n_procs: usize,
    /// Static lower bound (critical path / span), milliseconds.
    pub span_ms: f64,
    /// Simulated execution time, milliseconds.
    pub sim_ms: f64,
    /// Static upper bound, milliseconds.
    pub upper_ms: f64,
    /// `span / sim` in `(0, 1]` — 1 means the lower bound is tight.
    pub lower_tightness: f64,
    /// `sim / upper` in `(0, 1]` — 1 means the upper bound is tight.
    pub upper_tightness: f64,
}

/// Static-bounds tightness across the full suite (the 7 registry
/// benchmarks plus a matmul distribution — the paper's 8 codes) at 16
/// processors on the distributed-memory parameters: how much of the
/// envelope `span <= T <= upper` the simulator actually uses.  Every
/// row is itself a soundness check — a simulated time outside its
/// envelope fails the run.
pub fn bounds_tightness(h: &Harness) -> Result<Vec<BoundsTightness>, ExpError> {
    let mut params = machine::default_distributed();
    params.record_mode = RecordMode::MetricsOnly;
    let n = 16usize;
    let mut keys: Vec<String> = Bench::all().iter().map(|b| b.name().to_string()).collect();
    keys.push(matmul_label(&matmul::nine_distributions()[0]));
    parallel_map(&keys, h.jobs, |_, key| {
        let set = h
            .translate_key(&(key.clone(), n))
            .map_err(|e| ExpError::translation(key, n, e.into()))?;
        let cached = CachedTrace::new(set).map_err(|e| ExpError::translation(key, n, e.into()))?;
        let analysis = extrap_analyze::analyze(cached.program(), &params)
            .map_err(|u| ExpError::new(key, n, &params, ExtrapError::Params(u.to_string())))?;
        let sim = extrap_core::Extrapolator::new(params.clone())
            .run(cached.program())
            .map_err(|e| ExpError::new(key, n, &params, e))?
            .exec_time();
        let (span, upper) = (analysis.span, analysis.upper);
        if sim < span || sim > upper {
            return Err(ExpError::new(
                key,
                n,
                &params,
                ExtrapError::Params(format!(
                    "simulated time {sim:?} escapes its static envelope [{span:?}, {upper:?}]"
                )),
            ));
        }
        Ok(BoundsTightness {
            bench: key.clone(),
            n_procs: n,
            span_ms: span.as_ms(),
            sim_ms: sim.as_ms(),
            upper_ms: upper.as_ms(),
            lower_tightness: span.as_ns() as f64 / sim.as_ns().max(1) as f64,
            upper_tightness: sim.as_ns() as f64 / upper.as_ns().max(1) as f64,
        })
    })
    .into_iter()
    .collect()
}

/// Renders the [`bounds_tightness`] rows as a fixed-width table.
pub fn render_bounds_tightness(rows: &[BoundsTightness]) -> String {
    let mut out = String::from(
        "workload      P    span (ms)     sim (ms)   upper (ms)   span/sim   sim/upper\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>2}  {:>11.3}  {:>11.3}  {:>11.3}  {:>9.3}  {:>10.3}\n",
            r.bench,
            r.n_procs,
            r.span_ms,
            r.sim_ms,
            r.upper_ms,
            r.lower_tightness,
            r.upper_tightness,
        ));
    }
    out
}

/// For Fig. 9 analysis: at each processor count, does extrapolation pick
/// the same best distribution as the reference machine?  Returns
/// `(procs, predicted_best, measured_best, within)` where `within` is
/// the relative gap of the predicted choice's *measured* time to the
/// measured optimum.
pub fn fig9_ranking(
    predicted: &[Series],
    measured: &[Series],
) -> Vec<(usize, String, String, f64)> {
    let mut out = Vec::new();
    for &procs in &PROCS {
        let best_pred = predicted
            .iter()
            .min_by(|a, b| {
                a.at(procs)
                    .unwrap()
                    .partial_cmp(&b.at(procs).unwrap())
                    .unwrap()
            })
            .unwrap();
        let best_meas = measured
            .iter()
            .min_by(|a, b| {
                a.at(procs)
                    .unwrap()
                    .partial_cmp(&b.at(procs).unwrap())
                    .unwrap()
            })
            .unwrap();
        // Measured time of the predicted choice vs the measured optimum.
        let meas_of_pred = measured
            .iter()
            .find(|s| s.label == best_pred.label)
            .unwrap()
            .at(procs)
            .unwrap();
        let optimum = best_meas.at(procs).unwrap();
        let within = (meas_of_pred - optimum) / optimum;
        out.push((
            procs,
            best_pred.label.clone(),
            best_meas.label.clone(),
            within,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Harness {
        Harness::new(Scale::Tiny, 4)
    }

    #[test]
    fn trace_cache_reuses_traces() {
        let h = harness();
        let a = h
            .cache()
            .get(Bench::Embar, 2)
            .unwrap()
            .traces()
            .expect("whole-trace entry")
            .makespan();
        let b = h
            .cache()
            .get(Bench::Embar, 2)
            .unwrap()
            .traces()
            .expect("whole-trace entry")
            .makespan();
        assert_eq!(a, b);
        assert_eq!(h.cache().len(), 1);
        assert_eq!(h.cache().translations(), 1);
    }

    #[test]
    fn every_bench_translation_is_lint_clean() {
        // The cache's validator already rejects unclean traces, so a
        // successful get() proves cleanliness; re-lint explicitly anyway
        // so a regression reports the diagnostics instead of an Err.
        let h = harness();
        for bench in Bench::all() {
            for n in [2, 4] {
                let cached = h.cache().get(bench, n).unwrap();
                let traces = cached.traces().expect("whole-trace entry");
                let report = extrap_lint::lint_set(traces);
                assert!(
                    report.is_clean(),
                    "{bench:?} x{n}: {}",
                    extrap_lint::render_text(&report)
                );
            }
        }
    }

    #[test]
    fn tables_render() {
        assert!(table1().contains("EntryTime"));
        assert!(table1().contains("10.0 usec"));
        assert!(table2().contains("Bitonic sort module"));
        assert!(table3().contains("MipsRatio"));
        assert!(table3().contains("0.41"));
    }

    #[test]
    fn embar_speedup_is_nearly_linear() {
        let h = harness();
        let params = machine::default_distributed();
        let s = speedup_series(&h, "Embar", Bench::Embar, &params).unwrap();
        let s32 = s.at(32).unwrap();
        assert!(s32 > 15.0, "Embar speedup at 32 procs: {s32}");
        // Monotone growth.
        for w in s.points.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.95, "{:?}", s.points);
        }
    }

    #[test]
    fn grid_shows_no_gain_from_4_to_8() {
        let h = harness();
        let params = machine::default_distributed();
        let s = speedup_series(&h, "Grid", Bench::Grid, &params).unwrap();
        let (s4, s8, s16) = (s.at(4).unwrap(), s.at(8).unwrap(), s.at(16).unwrap());
        // The (BLOCK,BLOCK) idle-processor artifact: 8 procs uses the
        // same 2x2 thread grid as 4 procs, so there is *no improvement*
        // (the extra barrier traffic can even make it slightly worse);
        // 16 procs (4x4 grid) recovers.
        assert!(
            s8 <= s4 * 1.02,
            "no speedup gain expected from 4 to 8: {s4} vs {s8}"
        );
        assert!(s16 > s8, "16 procs should beat 8: {s8} vs {s16}");
    }

    #[test]
    fn fig5_variant_ordering() {
        let (times, _) = fig5(&harness()).unwrap();
        let at32 = |label: &str| {
            times
                .iter()
                .find(|s| s.label.starts_with(label))
                .unwrap()
                .at(32)
                .unwrap()
        };
        let base = at32("base");
        let high_bw = at32("200 MB/s");
        let actual = at32("actual msg size");
        let ideal = at32("ideal");
        assert!(high_bw < base, "more bandwidth helps: {high_bw} vs {base}");
        assert!(actual < base, "actual sizes help: {actual} vs {base}");
        assert!(ideal <= actual && ideal <= high_bw, "ideal is fastest");
    }

    #[test]
    fn fig6_embar_times_scale_with_ratio() {
        let (embar, _, _, _, _) = fig6(&harness()).unwrap();
        let t = |label: &str, p: usize| {
            embar
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .at(p)
                .unwrap()
        };
        // Pure compute: time scales proportionally to MipsRatio.
        let slow = t("MipsRatio=2", 4);
        let base = t("MipsRatio=1", 4);
        let fast = t("MipsRatio=0.5", 4);
        assert!((slow / base - 2.0).abs() < 0.1, "slow {slow} base {base}");
        assert!((base / fast - 2.0).abs() < 0.2, "base {base} fast {fast}");
    }

    #[test]
    fn fig7_series_cover_the_full_grid() {
        let series = fig7(&harness()).unwrap();
        assert_eq!(series.len(), 6, "2 ratios x 3 startups");
        for s in &series {
            assert_eq!(s.points.len(), PROCS.len(), "{}", s.label);
            assert!(s.points.iter().all(|p| p.1 > 0.0));
        }
        // Cheaper compute can only keep or lower the best processor
        // count at matching startup.
        let argmin = |label: &str| {
            series
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .argmin()
                .unwrap()
        };
        assert!(argmin("ratio=0.25 startup=200us") <= argmin("ratio=1 startup=200us"));
    }

    #[test]
    fn fig8_no_interrupt_is_never_the_best_policy() {
        let (cyclic, grid) = fig8(&harness()).unwrap();
        for group in [&cyclic, &grid] {
            assert_eq!(group.len(), 4);
            let noint = group
                .iter()
                .find(|s| s.label.contains("no-interrupt"))
                .unwrap();
            let interrupt = group.iter().find(|s| s.label == "interrupt").unwrap();
            for &p in &PROCS {
                assert!(
                    noint.at(p).unwrap() >= interrupt.at(p).unwrap() * 0.999,
                    "P={p}: {} vs {}",
                    noint.at(p).unwrap(),
                    interrupt.at(p).unwrap()
                );
            }
        }
    }

    #[test]
    fn scalability_analysis_is_consistent_with_the_series() {
        let params = machine::default_distributed();
        let analysis = scalability(&harness(), Bench::Embar, &params).unwrap();
        assert_eq!(analysis.points.len(), PROCS.len());
        // Embar at tiny scale still gets decent efficiency at 8 procs.
        assert!(analysis.max_procs_at_efficiency(0.8).unwrap() >= 8);
        assert!(analysis.mean_serial_fraction().unwrap() < 0.1);
    }

    #[test]
    fn fig9_predictions_rank_distributions() {
        let (pred, meas) = fig9(&harness()).unwrap();
        assert_eq!(pred.len(), 9);
        assert_eq!(meas.len(), 9);
        let ranking = fig9_ranking(&pred, &meas);
        // The predicted best choice must be within 25% of the measured
        // optimum at every processor count (paper: within 3% at 32).
        for (procs, p, m, within) in &ranking {
            assert!(
                *within < 0.25,
                "P={procs}: predicted {p}, measured {m}, within {within}"
            );
        }
    }

    #[test]
    fn parallel_figures_match_serial_exactly() {
        let serial = Harness::serial(Scale::Tiny);
        let parallel = Harness::new(Scale::Tiny, 8);
        let (s_speed, s_time) = fig4(&serial).unwrap();
        let (p_speed, p_time) = fig4(&parallel).unwrap();
        assert_eq!(s_speed, p_speed);
        assert_eq!(s_time, p_time);
    }

    #[test]
    fn errors_carry_bench_and_procs_context() {
        let h = harness();
        let mut params = machine::default_distributed();
        params.mips_ratio = -2.0;
        let err = predict(&h, Bench::Grid, 4, &params).unwrap_err();
        assert_eq!(err.bench, "Grid");
        assert_eq!(err.n_procs, 4);
        let msg = err.to_string();
        assert!(msg.contains("Grid") && msg.contains("P=4"), "{msg}");
    }
}
