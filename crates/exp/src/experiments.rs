//! The paper's experiments (§4), one function per table/figure.

use crate::series::Series;
use extrap_core::{extrapolate, machine, Prediction, ServicePolicy, SimParams, SizeMode};
use extrap_trace::{translate, TraceSet};
use extrap_workloads::{matmul, Bench, Scale};
use std::collections::HashMap;

/// The processor counts of every scaling experiment ("1, 2, 4, 8, 16,
/// and 32 processors").
pub const PROCS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Caches translated traces: the same 1-processor measurement feeds many
/// parameter sets (the whole point of extrapolation).
#[derive(Default)]
pub struct TraceCache {
    traces: HashMap<(&'static str, usize), TraceSet>,
    scale: Scale,
}

impl TraceCache {
    /// A cache for one problem scale.
    pub fn new(scale: Scale) -> TraceCache {
        TraceCache {
            traces: HashMap::new(),
            scale,
        }
    }

    /// The translated trace of `bench` at `n` threads.
    pub fn get(&mut self, bench: Bench, n: usize) -> &TraceSet {
        let scale = self.scale;
        self.traces.entry((bench.name(), n)).or_insert_with(|| {
            translate(&bench.trace(n, scale), Default::default())
                .expect("benchmark produced an untranslatable trace")
        })
    }
}

/// Extrapolates one benchmark at one processor count.
pub fn predict(cache: &mut TraceCache, bench: Bench, n: usize, params: &SimParams) -> Prediction {
    extrapolate(cache.get(bench, n), params).expect("extrapolation failed")
}

/// Execution-time series (milliseconds) across [`PROCS`].
pub fn time_series(
    cache: &mut TraceCache,
    label: impl Into<String>,
    bench: Bench,
    params: &SimParams,
) -> Series {
    let mut s = Series::new(label);
    for &n in &PROCS {
        let pred = predict(cache, bench, n, params);
        s.push(n, pred.exec_time().as_ms());
    }
    s
}

/// Speedup series (relative to the same parameter set at one processor).
pub fn speedup_series(
    cache: &mut TraceCache,
    label: impl Into<String>,
    bench: Bench,
    params: &SimParams,
) -> Series {
    let base = predict(cache, bench, 1, params).exec_time();
    let mut s = Series::new(label);
    for &n in &PROCS {
        let pred = predict(cache, bench, n, params);
        s.push(n, pred.speedup_vs(base));
    }
    s
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/// Table 1: the barrier model parameters with their defaults.
pub fn table1() -> String {
    let b = extrap_core::BarrierParams::default();
    let mut out = String::from("## Table 1 — Barrier model parameters\n");
    let rows = [
        ("EntryTime", format!("{:.1} usec", b.entry.as_us()),
         "Time for each thread to enter a barrier."),
        ("ExitTime", format!("{:.1} usec", b.exit.as_us()),
         "Time for each thread to come out of the barrier after it has been lowered."),
        ("CheckTime", format!("{:.1} usec", b.check.as_us()),
         "Delay incurred by the master thread every time it checks if all the threads have reached the barrier."),
        ("ExitCheckTime", format!("{:.1} usec", b.exit_check.as_us()),
         "Delay incurred by a slave thread every time it checks to see if the master has released the barrier."),
        ("ModelTime", format!("{:.1} usec", b.model.as_us()),
         "Time taken by the master thread to start lowering the barrier after all the slaves have reached the barrier."),
        ("BarrierByMsgs", format!("{}", u8::from(b.by_msgs)),
         "1 - use actual messages for barrier synchronization; 0 - do not."),
        ("BarrierMsgSize", format!("{}", b.msg_size),
         "Size of a message used for barrier synchronization."),
    ];
    for (name, value, desc) in rows {
        out.push_str(&format!("{name:16} {value:>10}   {desc}\n"));
    }
    out
}

/// Table 2: the benchmark suite.
pub fn table2() -> String {
    let mut out = String::from("## Table 2 — pC++ benchmark codes\n");
    for b in Bench::all() {
        out.push_str(&format!("{:10} {}\n", b.name(), b.description()));
    }
    out
}

/// Table 3: the CM-5 parameter set.
pub fn table3() -> String {
    let p = machine::cm5();
    let mut out = String::from("## Table 3 — Parameters used for matching CM-5 characteristics\n");
    out.push_str(&format!(
        "BarrierModelTime  {:>8.1} usec\n",
        p.barrier.model.as_us()
    ));
    out.push_str(&format!(
        "CommStartupTime   {:>8.1} usec\n",
        p.comm.startup.as_us()
    ));
    out.push_str(&format!(
        "ByteTransferTime  {:>8.3} usec ({:.1} Mbytes/second)\n",
        p.comm.byte_transfer.as_us(),
        extrap_time::us_per_byte_to_mbps(p.comm.byte_transfer.as_us())
    ));
    out.push_str(&format!("MipsRatio         {:>8.2}\n", p.mips_ratio));
    out
}

// ---------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------

/// Figure 4: speedup curves for all benchmarks on the distributed-memory
/// parameter set (20 MB/s links, high overheads).  Also returns the raw
/// execution times.
pub fn fig4(scale: Scale) -> (Vec<Series>, Vec<Series>) {
    let mut cache = TraceCache::new(scale);
    let params = machine::default_distributed();
    let mut speedups = Vec::new();
    let mut times = Vec::new();
    for bench in Bench::all() {
        speedups.push(speedup_series(&mut cache, bench.name(), bench, &params));
        times.push(time_series(&mut cache, bench.name(), bench, &params));
    }
    (speedups, times)
}

/// Figure 5: Grid under different extrapolations — base, 200 MB/s
/// bandwidth, ideal (zero-cost) environment, actual message sizes, and
/// actual sizes with reduced start-up.  Returns (times, speedups).
pub fn fig5(scale: Scale) -> (Vec<Series>, Vec<Series>) {
    let mut cache = TraceCache::new(scale);
    let base = machine::default_distributed();

    let mut high_bw = base.clone();
    high_bw.comm = high_bw.comm.with_bandwidth_mbps(200.0);

    let mut actual = base.clone();
    actual.size_mode = SizeMode::Actual;

    let mut actual_low_startup = actual.clone();
    actual_low_startup.comm = actual_low_startup.comm.with_startup_us(10.0);

    let ideal = machine::ideal();

    let variants: [(&str, &SimParams); 5] = [
        ("base (declared size)", &base),
        ("200 MB/s bandwidth", &high_bw),
        ("actual msg size", &actual),
        ("actual size + low startup", &actual_low_startup),
        ("ideal (zero cost)", &ideal),
    ];
    let mut times = Vec::new();
    let mut speedups = Vec::new();
    for (label, params) in variants {
        times.push(time_series(&mut cache, label, Bench::Grid, params));
        speedups.push(speedup_series(&mut cache, label, Bench::Grid, params));
    }
    (times, speedups)
}

/// Figure 6's five panels: `(embar_times, cyclic_speedups,
/// sort_speedups, mgrid_speedups, poisson_speedups)`.
pub type Fig6Panels = (
    Vec<Series>,
    Vec<Series>,
    Vec<Series>,
    Vec<Series>,
    Vec<Series>,
);

/// Figure 6: the effect of `MipsRatio` ∈ {2.0, 1.0, 0.5}.
pub fn fig6(scale: Scale) -> Fig6Panels {
    let mut cache = TraceCache::new(scale);
    let ratios = [2.0, 1.0, 0.5];
    let with_ratio = |r: f64| {
        let mut p = machine::default_distributed();
        p.mips_ratio = r;
        p
    };
    let mut embar_times = Vec::new();
    let mut cyclic = Vec::new();
    let mut sort = Vec::new();
    let mut mgrid = Vec::new();
    let mut poisson = Vec::new();
    for r in ratios {
        let params = with_ratio(r);
        let label = format!("MipsRatio={r}");
        embar_times.push(time_series(&mut cache, label.clone(), Bench::Embar, &params));
        cyclic.push(speedup_series(&mut cache, label.clone(), Bench::Cyclic, &params));
        sort.push(speedup_series(&mut cache, label.clone(), Bench::Sort, &params));
        mgrid.push(speedup_series(&mut cache, label.clone(), Bench::Mgrid, &params));
        poisson.push(speedup_series(&mut cache, label, Bench::Poisson, &params));
    }
    (embar_times, cyclic, sort, mgrid, poisson)
}

/// Figure 7: Mgrid execution time for `MipsRatio` ∈ {1.0, 0.25} ×
/// `CommStartupTime` ∈ {5, 100, 200} µs.
pub fn fig7(scale: Scale) -> Vec<Series> {
    let mut cache = TraceCache::new(scale);
    let mut out = Vec::new();
    for ratio in [1.0, 0.25] {
        for startup in [5.0, 100.0, 200.0] {
            let mut params = machine::default_distributed();
            params.mips_ratio = ratio;
            params.comm = params.comm.with_startup_us(startup);
            let label = format!("ratio={ratio} startup={startup}us");
            out.push(time_series(&mut cache, label, Bench::Mgrid, &params));
        }
    }
    out
}

/// Figure 8: remote-data-request service policies on Cyclic and Grid
/// with `CommStartupTime = 100 µs`.  Returns `(cyclic_times,
/// grid_times)`.
pub fn fig8(scale: Scale) -> (Vec<Series>, Vec<Series>) {
    let mut cache = TraceCache::new(scale);
    let policies: [(&str, ServicePolicy); 4] = [
        ("no-interrupt/poll", ServicePolicy::NoInterrupt),
        ("interrupt", ServicePolicy::Interrupt),
        ("poll 100us", ServicePolicy::poll_us(100.0)),
        ("poll 500us", ServicePolicy::poll_us(500.0)),
    ];
    let mut cyclic = Vec::new();
    let mut grid = Vec::new();
    for (label, policy) in policies {
        let mut params = machine::default_distributed();
        params.comm = params.comm.with_startup_us(100.0);
        params.policy = policy;
        cyclic.push(time_series(&mut cache, label, Bench::Cyclic, &params));
        grid.push(time_series(&mut cache, label, Bench::Grid, &params));
    }
    (cyclic, grid)
}

/// Figure 9: Matmul with the nine distribution combinations —
/// extrapolated (ExtraP, analytic model) vs "measured" (link-level
/// reference machine), both on the Table 3 CM-5 parameters.  Returns
/// `(predicted_times, measured_times)`.
pub fn fig9(scale: Scale) -> (Vec<Series>, Vec<Series>) {
    let n = match scale {
        Scale::Tiny => 12,
        Scale::Small => 32,
        Scale::Paper => 48,
    };
    let params = machine::cm5();
    let refmachine = extrap_refsim::RefMachine::new(params.clone());
    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    for dist in matmul::nine_distributions() {
        let label = format!("({},{})", dist.0.letter(), dist.1.letter());
        let mut pred_series = Series::new(label.clone());
        let mut meas_series = Series::new(label);
        for &procs in &PROCS {
            let cfg = matmul::MatmulConfig { n, dist };
            let (trace, _) = matmul::run(procs, &cfg);
            let ts = translate(&trace, Default::default()).expect("matmul trace");
            let pred = extrapolate(&ts, &params).expect("extrapolation failed");
            let meas = refmachine.measure(&ts).expect("reference run failed");
            pred_series.push(procs, pred.exec_time().as_ms());
            meas_series.push(procs, meas.exec_time().as_ms());
        }
        predicted.push(pred_series);
        measured.push(meas_series);
    }
    (predicted, measured)
}

/// Scalability analysis (speedup / efficiency / Karp–Flatt) of one
/// benchmark on a machine preset, across [`PROCS`].
pub fn scalability(bench: Bench, scale: Scale, params: &SimParams) -> extrap_core::Scalability {
    let mut cache = TraceCache::new(scale);
    let samples = PROCS
        .iter()
        .map(|&n| (n, predict(&mut cache, bench, n, params).exec_time()))
        .collect();
    extrap_core::Scalability::from_times(samples)
}

/// Extension report: barrier-algorithm ablation — every benchmark at 32
/// processors under linear-with-messages, 4-ary tree, and hardware
/// barriers (the §3.3.3 substitution study).
pub fn ablation_barriers(scale: Scale) -> Vec<Series> {
    let mut cache = TraceCache::new(scale);
    let variants: [(&str, extrap_core::BarrierAlgorithm, bool); 3] = [
        ("linear (messages)", extrap_core::BarrierAlgorithm::Linear, true),
        ("tree arity 4", extrap_core::BarrierAlgorithm::Tree { arity: 4 }, false),
        ("hardware 5us", extrap_core::BarrierAlgorithm::Hardware, false),
    ];
    let mut out = Vec::new();
    for (label, algorithm, by_msgs) in variants {
        let mut params = machine::default_distributed();
        params.barrier.algorithm = algorithm;
        params.barrier.by_msgs = by_msgs;
        params.barrier.hardware_latency = extrap_time::DurationNs::from_us(5.0);
        let mut series = Series::new(label);
        for (i, bench) in Bench::all().into_iter().enumerate() {
            // x-axis doubles as a benchmark index here.
            let pred = predict(&mut cache, bench, 32, &params);
            series.push(i + 1, pred.exec_time().as_ms());
        }
        out.push(series);
    }
    out
}

/// Extension report: analytic vs link-level contention on identical
/// traces (the speed/accuracy trade-off of §3.3.2), per benchmark at 16
/// processors on the CM-5 parameters.
pub fn ablation_contention(scale: Scale) -> (Vec<(String, f64, f64)>, f64) {
    let mut cache = TraceCache::new(scale);
    let params = machine::cm5();
    let reference = extrap_refsim::RefMachine::new(params.clone());
    let mut rows = Vec::new();
    let mut worst_ratio: f64 = 1.0;
    for bench in Bench::all() {
        let ts = cache.get(bench, 16).clone();
        let analytic = extrapolate(&ts, &params).expect("extrapolation").exec_time();
        let detailed = reference.measure(&ts).expect("reference run").exec_time();
        let ratio = detailed.as_ns() as f64 / analytic.as_ns().max(1) as f64;
        worst_ratio = worst_ratio.max(ratio);
        rows.push((bench.name().to_string(), analytic.as_ms(), detailed.as_ms()));
    }
    (rows, worst_ratio)
}

/// Extension report (§6 future work): n-thread programs on m <= n
/// processors, block placement.
pub fn multithread_sweep(scale: Scale, bench: Bench) -> Vec<Series> {
    let n_threads = 16usize;
    let ts = translate(&bench.trace(n_threads, scale), Default::default())
        .expect("trace translates");
    let mut series = Series::new(format!("{} ({n_threads} threads)", bench.name()));
    for m in [1usize, 2, 4, 8, 16] {
        let mut params = machine::default_distributed();
        params.multithread.mapping = extrap_core::ThreadMapping::Block { procs: m };
        let pred = extrapolate(&ts, &params).expect("extrapolation");
        series.push(m, pred.exec_time().as_ms());
    }
    vec![series]
}

/// For Fig. 9 analysis: at each processor count, does extrapolation pick
/// the same best distribution as the reference machine?  Returns
/// `(procs, predicted_best, measured_best, within)` where `within` is
/// the relative gap of the predicted choice's *measured* time to the
/// measured optimum.
pub fn fig9_ranking(predicted: &[Series], measured: &[Series]) -> Vec<(usize, String, String, f64)> {
    let mut out = Vec::new();
    for &procs in &PROCS {
        let best_pred = predicted
            .iter()
            .min_by(|a, b| {
                a.at(procs)
                    .unwrap()
                    .partial_cmp(&b.at(procs).unwrap())
                    .unwrap()
            })
            .unwrap();
        let best_meas = measured
            .iter()
            .min_by(|a, b| {
                a.at(procs)
                    .unwrap()
                    .partial_cmp(&b.at(procs).unwrap())
                    .unwrap()
            })
            .unwrap();
        // Measured time of the predicted choice vs the measured optimum.
        let meas_of_pred = measured
            .iter()
            .find(|s| s.label == best_pred.label)
            .unwrap()
            .at(procs)
            .unwrap();
        let optimum = best_meas.at(procs).unwrap();
        let within = (meas_of_pred - optimum) / optimum;
        out.push((procs, best_pred.label.clone(), best_meas.label.clone(), within));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_cache_reuses_traces() {
        let mut cache = TraceCache::new(Scale::Tiny);
        let a = cache.get(Bench::Embar, 2).makespan();
        let b = cache.get(Bench::Embar, 2).makespan();
        assert_eq!(a, b);
        assert_eq!(cache.traces.len(), 1);
    }

    #[test]
    fn tables_render() {
        assert!(table1().contains("EntryTime"));
        assert!(table1().contains("10.0 usec"));
        assert!(table2().contains("Bitonic sort module"));
        assert!(table3().contains("MipsRatio"));
        assert!(table3().contains("0.41"));
    }

    #[test]
    fn embar_speedup_is_nearly_linear() {
        let mut cache = TraceCache::new(Scale::Tiny);
        let params = machine::default_distributed();
        let s = speedup_series(&mut cache, "Embar", Bench::Embar, &params);
        let s32 = s.at(32).unwrap();
        assert!(s32 > 15.0, "Embar speedup at 32 procs: {s32}");
        // Monotone growth.
        for w in s.points.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.95, "{:?}", s.points);
        }
    }

    #[test]
    fn grid_shows_no_gain_from_4_to_8() {
        let mut cache = TraceCache::new(Scale::Tiny);
        let params = machine::default_distributed();
        let s = speedup_series(&mut cache, "Grid", Bench::Grid, &params);
        let (s4, s8, s16) = (s.at(4).unwrap(), s.at(8).unwrap(), s.at(16).unwrap());
        // The (BLOCK,BLOCK) idle-processor artifact: 8 procs uses the
        // same 2x2 thread grid as 4 procs, so there is *no improvement*
        // (the extra barrier traffic can even make it slightly worse);
        // 16 procs (4x4 grid) recovers.
        assert!(
            s8 <= s4 * 1.02,
            "no speedup gain expected from 4 to 8: {s4} vs {s8}"
        );
        assert!(s16 > s8, "16 procs should beat 8: {s8} vs {s16}");
    }

    #[test]
    fn fig5_variant_ordering() {
        let (times, _) = fig5(Scale::Tiny);
        let at32 = |label: &str| {
            times
                .iter()
                .find(|s| s.label.starts_with(label))
                .unwrap()
                .at(32)
                .unwrap()
        };
        let base = at32("base");
        let high_bw = at32("200 MB/s");
        let actual = at32("actual msg size");
        let ideal = at32("ideal");
        assert!(high_bw < base, "more bandwidth helps: {high_bw} vs {base}");
        assert!(actual < base, "actual sizes help: {actual} vs {base}");
        assert!(ideal <= actual && ideal <= high_bw, "ideal is fastest");
    }

    #[test]
    fn fig6_embar_times_scale_with_ratio() {
        let (embar, _, _, _, _) = fig6(Scale::Tiny);
        let t = |label: &str, p: usize| {
            embar
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .at(p)
                .unwrap()
        };
        // Pure compute: time scales proportionally to MipsRatio.
        let slow = t("MipsRatio=2", 4);
        let base = t("MipsRatio=1", 4);
        let fast = t("MipsRatio=0.5", 4);
        assert!((slow / base - 2.0).abs() < 0.1, "slow {slow} base {base}");
        assert!((base / fast - 2.0).abs() < 0.2, "base {base} fast {fast}");
    }

    #[test]
    fn fig7_series_cover_the_full_grid() {
        let series = fig7(Scale::Tiny);
        assert_eq!(series.len(), 6, "2 ratios x 3 startups");
        for s in &series {
            assert_eq!(s.points.len(), PROCS.len(), "{}", s.label);
            assert!(s.points.iter().all(|p| p.1 > 0.0));
        }
        // Cheaper compute can only keep or lower the best processor
        // count at matching startup.
        let argmin = |label: &str| {
            series
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .argmin()
                .unwrap()
        };
        assert!(argmin("ratio=0.25 startup=200us") <= argmin("ratio=1 startup=200us"));
    }

    #[test]
    fn fig8_no_interrupt_is_never_the_best_policy() {
        let (cyclic, grid) = fig8(Scale::Tiny);
        for group in [&cyclic, &grid] {
            assert_eq!(group.len(), 4);
            let noint = group.iter().find(|s| s.label.contains("no-interrupt")).unwrap();
            let interrupt = group.iter().find(|s| s.label == "interrupt").unwrap();
            for &p in &PROCS {
                assert!(
                    noint.at(p).unwrap() >= interrupt.at(p).unwrap() * 0.999,
                    "P={p}: {} vs {}",
                    noint.at(p).unwrap(),
                    interrupt.at(p).unwrap()
                );
            }
        }
    }

    #[test]
    fn scalability_analysis_is_consistent_with_the_series() {
        let params = machine::default_distributed();
        let analysis = scalability(Bench::Embar, Scale::Tiny, &params);
        assert_eq!(analysis.points.len(), PROCS.len());
        // Embar at tiny scale still gets decent efficiency at 8 procs.
        assert!(analysis.max_procs_at_efficiency(0.8).unwrap() >= 8);
        assert!(analysis.mean_serial_fraction().unwrap() < 0.1);
    }

    #[test]
    fn fig9_predictions_rank_distributions() {
        let (pred, meas) = fig9(Scale::Tiny);
        assert_eq!(pred.len(), 9);
        assert_eq!(meas.len(), 9);
        let ranking = fig9_ranking(&pred, &meas);
        // The predicted best choice must be within 25% of the measured
        // optimum at every processor count (paper: within 3% at 32).
        for (procs, p, m, within) in &ranking {
            assert!(
                *within < 0.25,
                "P={procs}: predicted {p}, measured {m}, within {within}"
            );
        }
    }
}
