#![forbid(unsafe_code)]
//! `extrap-exp` — regenerate the paper's tables and figures.
//!
//! ```text
//! extrap-exp [--scale tiny|small|paper] [--jobs N] [--out DIR] \
//!            [--scheduler heap|calendar|auto] \
//!            [--strategy exact|repr[:K[:TOL]]] \
//!            [table1|table2|table3|fig4|...|fig9|repr|bounds|all]
//! ```
//!
//! `--jobs N` sets the sweep worker count (default: all available
//! cores); `--jobs 1` is the serial baseline and every other value
//! produces byte-identical output.  `--scheduler` forces the event
//! queue backend for every job (predictions are identical either way).
//! `--strategy` forces the epoch coverage strategy (repr changes
//! predictions within its tolerance); the opt-in `repr` target prints
//! the exact-vs-representative validation table and ignores the flag.

use extrap_core::{SchedulerKind, SimStrategy};
use extrap_exp::experiments::{self, fig9_ranking, ExpError, Harness};
use extrap_exp::series::{render_csv, render_table, Series};
use extrap_workloads::Scale;
use std::path::{Path, PathBuf};

fn main() {
    let mut scale = Scale::Small;
    let mut jobs = extrap_core::sweep::default_workers();
    let mut scheduler: Option<SchedulerKind> = None;
    let mut strategy: Option<SimStrategy> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut targets: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?} (tiny|small|paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--jobs" => {
                let v = args.next().unwrap_or_default();
                jobs = match v.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--jobs needs a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--scheduler" => {
                let v = args.next().unwrap_or_default();
                scheduler = match SchedulerKind::parse(&v) {
                    Some(kind) => Some(kind),
                    None => {
                        eprintln!("unknown scheduler {v:?} (heap|calendar|auto)");
                        std::process::exit(2);
                    }
                };
            }
            "--strategy" => {
                let v = args.next().unwrap_or_default();
                strategy = match SimStrategy::parse(&v) {
                    Some(s) => Some(s),
                    None => {
                        eprintln!("unknown strategy {v:?} (valid: {})", SimStrategy::VALID);
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                })));
            }
            "--help" | "-h" => {
                println!(
                    "usage: extrap-exp [--scale tiny|small|paper] [--jobs N] [--out DIR] \
                     [--scheduler heap|calendar|auto] [--strategy exact|repr[:K[:TOL]]] \
                     [table1|table2|table3|fig4|fig5|fig6|fig7|fig8|fig9|repr|bounds|all]..."
                );
                return;
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    let mut harness = Harness::new(scale, jobs);
    if let Some(kind) = scheduler {
        harness = harness.with_scheduler(kind);
    }
    if let Some(s) = strategy {
        harness = harness.with_strategy(s);
    }
    if let Err(err) = run(&harness, &targets, &out_dir) {
        eprintln!("extrap-exp: {err}");
        std::process::exit(1);
    }
}

fn run(h: &Harness, targets: &[String], out_dir: &Option<PathBuf>) -> Result<(), ExpError> {
    let all = targets.iter().any(|t| t == "all");
    let want = |name: &str| all || targets.iter().any(|t| t == name);

    if want("table1") {
        println!("{}", experiments::table1());
    }
    if want("table2") {
        println!("{}", experiments::table2());
    }
    if want("table3") {
        println!("{}", experiments::table3());
    }
    if want("fig4") {
        let (speedups, times) = experiments::fig4(h)?;
        println!(
            "{}",
            render_table(
                "Figure 4 — speedup, all benchmarks (distributed memory)",
                "x",
                &speedups
            )
        );
        println!(
            "{}",
            render_table("Figure 4 — execution time, all benchmarks", "ms", &times)
        );
        dump(out_dir, "fig4_speedup", &speedups);
        dump(out_dir, "fig4_time", &times);
    }
    if want("fig5") {
        let (times, speedups) = experiments::fig5(h)?;
        println!(
            "{}",
            render_table(
                "Figure 5 — Grid, comparison of different extrapolations",
                "ms",
                &times
            )
        );
        println!(
            "{}",
            render_table("Figure 5 — Grid speedups", "x", &speedups)
        );
        dump(out_dir, "fig5_time", &times);
        dump(out_dir, "fig5_speedup", &speedups);
    }
    if want("fig6") {
        let (embar, cyclic, sort, mgrid, poisson) = experiments::fig6(h)?;
        println!(
            "{}",
            render_table(
                "Figure 6(i) — Embar execution time vs MipsRatio",
                "ms",
                &embar
            )
        );
        println!(
            "{}",
            render_table("Figure 6(ii) — Cyclic speedup vs MipsRatio", "x", &cyclic)
        );
        println!(
            "{}",
            render_table("Figure 6(iii) — Sort speedup vs MipsRatio", "x", &sort)
        );
        println!(
            "{}",
            render_table("Figure 6(iv) — Mgrid speedup vs MipsRatio", "x", &mgrid)
        );
        println!(
            "{}",
            render_table("Figure 6(+) — Poisson speedup vs MipsRatio", "x", &poisson)
        );
        dump(out_dir, "fig6_embar_time", &embar);
        dump(out_dir, "fig6_cyclic_speedup", &cyclic);
        dump(out_dir, "fig6_sort_speedup", &sort);
        dump(out_dir, "fig6_mgrid_speedup", &mgrid);
        dump(out_dir, "fig6_poisson_speedup", &poisson);
    }
    if want("fig7") {
        let series = experiments::fig7(h)?;
        println!(
            "{}",
            render_table(
                "Figure 7 — Mgrid time: MipsRatio x CommStartupTime",
                "ms",
                &series
            )
        );
        for s in &series {
            println!(
                "  minimum execution time for {:28} at P={}",
                s.label,
                s.argmin().unwrap()
            );
        }
        println!();
        dump(out_dir, "fig7_mgrid_time", &series);
    }
    if want("fig8") {
        let (cyclic, grid) = experiments::fig8(h)?;
        println!(
            "{}",
            render_table(
                "Figure 8 — Cyclic, remote-request service policies",
                "ms",
                &cyclic
            )
        );
        println!(
            "{}",
            render_table(
                "Figure 8 — Grid, remote-request service policies",
                "ms",
                &grid
            )
        );
        dump(out_dir, "fig8_cyclic", &cyclic);
        dump(out_dir, "fig8_grid", &grid);
    }
    if targets.iter().any(|t| t == "scalability") {
        use extrap_workloads::Bench;
        let params = extrap_core::machine::default_distributed();
        for bench in Bench::all() {
            let analysis = experiments::scalability(h, bench, &params)?;
            println!("## Scalability — {} (distributed memory)", bench.name());
            print!("{}", analysis.render());
            println!(
                "  best P = {}; efficiency >= 50% up to P = {}; saturates: {}\n",
                analysis.best_procs(),
                analysis
                    .max_procs_at_efficiency(0.5)
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "-".into()),
                analysis.saturates()
            );
        }
    }
    if targets.iter().any(|t| t == "ablations") {
        let barriers = experiments::ablation_barriers(h)?;
        println!(
            "{}",
            render_table(
                "Ablation — barrier algorithms, all benchmarks at P=32 \
                 (columns = Table 2 order)",
                "ms",
                &barriers
            )
        );
        dump(out_dir, "ablation_barriers", &barriers);
        let (rows, worst) = experiments::ablation_contention(h)?;
        println!("## Ablation — analytic vs link-level contention (P=16, CM-5)");
        println!(
            "{:10} {:>14} {:>14} {:>8}",
            "benchmark", "analytic [ms]", "link [ms]", "ratio"
        );
        for (name, a, d) in &rows {
            println!("{name:10} {a:>14.3} {d:>14.3} {:>8.2}", d / a);
        }
        println!("  worst link/analytic ratio: {worst:.2}\n");
    }
    if targets.iter().any(|t| t == "multithread") {
        use extrap_workloads::Bench;
        for bench in [Bench::Cyclic, Bench::Grid, Bench::Embar] {
            let series = experiments::multithread_sweep(h, bench)?;
            println!(
                "{}",
                render_table(
                    &format!(
                        "Multithreaded extrapolation — {} on m processors",
                        bench.name()
                    ),
                    "ms",
                    &series
                )
            );
        }
    }
    if targets.iter().any(|t| t == "repr") {
        let rows = experiments::repr_validation(h)?;
        println!("## Representative-region validation — exact vs repr over P = 1..32");
        print!("{}", experiments::render_repr_validation(&rows));
        println!();
    }
    if targets.iter().any(|t| t == "bounds") {
        let rows = experiments::bounds_tightness(h)?;
        println!("## Static-bounds tightness — simulated time inside [span, upper] at P = 16");
        print!("{}", experiments::render_bounds_tightness(&rows));
        println!();
    }
    if want("fig9") {
        let (pred, meas) = experiments::fig9(h)?;
        println!(
            "{}",
            render_table(
                "Figure 9 — Matmul predicted times (ExtraP, CM-5 params)",
                "ms",
                &pred
            )
        );
        println!(
            "{}",
            render_table(
                "Figure 9 — Matmul measured times (link-level reference machine)",
                "ms",
                &meas
            )
        );
        println!("## Figure 9 — best-distribution agreement");
        for (procs, p, m, within) in fig9_ranking(&pred, &meas) {
            println!(
                "  P={procs:2}: predicted best {p}, measured best {m} \
                 (predicted choice within {:.1}% of optimum)",
                within * 100.0
            );
        }
        println!();
        dump(out_dir, "fig9_predicted", &pred);
        dump(out_dir, "fig9_measured", &meas);
    }
    Ok(())
}

fn dump(out_dir: &Option<PathBuf>, name: &str, series: &[Series]) {
    if let Some(dir) = out_dir {
        let path: &Path = dir.as_ref();
        std::fs::write(path.join(format!("{name}.csv")), render_csv(series))
            .expect("write CSV file");
    }
}
