//! Result series and table rendering for the experiment harness.

use std::fmt::Write as _;

/// A named series of (processors, value) points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Display label (e.g. `"Embar"` or `"MipsRatio=0.5"`).
    pub label: String,
    /// `(processor count, value)` points.
    pub points: Vec<(usize, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, procs: usize, value: f64) {
        self.points.push((procs, value));
    }

    /// The value at a given processor count.
    pub fn at(&self, procs: usize) -> Option<f64> {
        self.points.iter().find(|p| p.0 == procs).map(|p| p.1)
    }

    /// The processor count with the minimum value (e.g. best execution
    /// time — the Fig. 7 "minimum execution time" analysis).
    pub fn argmin(&self) -> Option<usize> {
        self.points
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN in series"))
            .map(|p| p.0)
    }

    /// The processor count with the maximum value.
    pub fn argmax(&self) -> Option<usize> {
        self.points
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN in series"))
            .map(|p| p.0)
    }
}

/// Renders series as an aligned text table with processor counts as
/// columns.
pub fn render_table(title: &str, unit: &str, series: &[Series]) -> String {
    let mut procs: Vec<usize> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    procs.sort_unstable();
    procs.dedup();

    let mut out = String::new();
    let _ = writeln!(out, "## {title} [{unit}]");
    let label_w = series
        .iter()
        .map(|s| s.label.len())
        .max()
        .unwrap_or(8)
        .max(8);
    let _ = write!(out, "{:label_w$}", "series");
    for p in &procs {
        let _ = write!(out, " {:>12}", format!("P={p}"));
    }
    let _ = writeln!(out);
    for s in series {
        let _ = write!(out, "{:label_w$}", s.label);
        for p in &procs {
            match s.at(*p) {
                Some(v) => {
                    let _ = write!(out, " {v:>12.3}");
                }
                None => {
                    let _ = write!(out, " {:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders series as CSV (`series,procs,value` rows).
pub fn render_csv(series: &[Series]) -> String {
    let mut out = String::from("series,procs,value\n");
    for s in series {
        for (p, v) in &s.points {
            let _ = writeln!(out, "{},{},{}", s.label, p, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Series {
        let mut s = Series::new("test");
        s.push(1, 10.0);
        s.push(2, 6.0);
        s.push(4, 8.0);
        s
    }

    #[test]
    fn at_and_argmin() {
        let s = sample();
        assert_eq!(s.at(2), Some(6.0));
        assert_eq!(s.at(8), None);
        assert_eq!(s.argmin(), Some(2));
        assert_eq!(s.argmax(), Some(1));
    }

    #[test]
    fn table_renders_all_points() {
        let t = render_table("demo", "ms", &[sample()]);
        assert!(t.contains("P=1"));
        assert!(t.contains("P=4"));
        assert!(t.contains("6.000"));
    }

    #[test]
    fn csv_rows() {
        let csv = render_csv(&[sample()]);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("test,2,6"));
    }
}
