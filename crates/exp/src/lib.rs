#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # extrap-exp — the experiment harness
//!
//! One function per table/figure of the paper; the `extrap-exp` binary
//! prints the same rows/series the paper reports and writes CSV files.
//! See EXPERIMENTS.md at the repository root for the paper-vs-measured
//! comparison these functions feed.

pub mod experiments;
pub mod series;

pub use experiments::{
    fig4, fig5, fig6, fig7, fig8, fig9, table1, table2, table3, ExpError, Harness, TraceCache,
    PROCS,
};
pub use series::{render_csv, render_table, Series};
