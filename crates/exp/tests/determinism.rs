//! The tentpole guarantee: sweeping a figure grid on a worker pool is
//! **byte-identical** to the serial path — same predictions, same CSV
//! bytes, no matter the worker count or scheduling interleavings.

use extrap_exp::experiments::{self, Harness};
use extrap_exp::render_csv;
use extrap_workloads::Scale;

fn csv_of(h: &Harness) -> String {
    let (speedups, times) = experiments::fig4(h).expect("fig4 runs");
    let (f5_times, f5_speedups) = experiments::fig5(h).expect("fig5 runs");
    let mut out = render_csv(&speedups);
    out.push_str(&render_csv(&times));
    out.push_str(&render_csv(&f5_times));
    out.push_str(&render_csv(&f5_speedups));
    out
}

#[test]
fn eight_workers_render_byte_identical_csv() {
    let serial = csv_of(&Harness::serial(Scale::Tiny));
    for workers in [2, 8] {
        let parallel = csv_of(&Harness::new(Scale::Tiny, workers));
        assert_eq!(
            serial, parallel,
            "CSV output with {workers} workers differs from serial"
        );
    }
    assert!(serial.lines().count() > 20, "sanity: CSV is non-trivial");
}

/// The figure sweeps run `MetricsOnly` over compiled programs; the
/// classic full-record trace path must predict the exact same numbers.
#[test]
fn figure_sweeps_match_the_classic_full_record_path() {
    use extrap_core::{machine, Extrapolator, RecordMode};
    use extrap_workloads::Bench;

    let h = Harness::serial(Scale::Tiny);
    let params = machine::cm5();
    for n in [2usize, 8] {
        // What the sweep engine computes (compiled + scratch + lean).
        let via_harness = experiments::predict(&h, Bench::Grid, n, &params).expect("predict");
        // The same job, classic path: translate → validate → run, Full.
        let traces = h.cache().get(Bench::Grid, n).expect("trace");
        let classic = Extrapolator::new(params.clone())
            .run(traces.traces().expect("whole-trace entry"))
            .expect("classic run");
        assert_eq!(classic.per_thread, via_harness.per_thread);
        assert_eq!(classic.exec_time(), via_harness.exec_time());
        assert_eq!(classic.events_dispatched, via_harness.events_dispatched);
        // And MetricsOnly over the same compiled program: same numbers,
        // no trace.
        let lean = Extrapolator::new(params.clone())
            .record_mode(RecordMode::MetricsOnly)
            .run(traces.program())
            .expect("lean run");
        assert_eq!(lean.per_thread, classic.per_thread);
        assert!(lean.predicted.threads.is_empty());
    }
}

#[test]
fn shared_cache_translates_each_key_once_across_figures() {
    let h = Harness::new(Scale::Tiny, 8);
    // fig4 and fig5 both touch Grid at every processor count; the
    // second figure must reuse the first one's translations.
    experiments::fig4(&h).expect("fig4 runs");
    let after_fig4 = h.cache().translations();
    experiments::fig5(&h).expect("fig5 runs");
    assert_eq!(
        h.cache().translations(),
        after_fig4,
        "fig5 re-translated traces fig4 already produced"
    );
    assert_eq!(h.cache().translations(), h.cache().len());
}
