//! Property tests of the distribution algebra: every (shape, attribute,
//! thread-count) combination must partition the index space, agree with
//! `local_indices`, and obey the pC++ thread-grid conventions.
//!
//! Driven by a deterministic SplitMix64 case generator instead of
//! `proptest` (crates.io is unreachable in the build environment).

use extrap_time::ThreadId;
use pcpp_rt::{Dist1, Distribution, Index2};

const CASES: u64 = 128;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo)
    }

    fn dist1(&mut self) -> Dist1 {
        match self.range(0, 3) {
            0 => Dist1::Block,
            1 => Dist1::Cyclic,
            _ => Dist1::Whole,
        }
    }
}

fn for_all(seed: u64, check: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng(seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
        check(&mut rng);
    }
}

#[test]
fn ownership_partitions_every_index() {
    for_all(0x0B0E, |rng| {
        let (rows, cols) = (rng.range(1, 20), rng.range(1, 20));
        let (d0, d1) = (rng.dist1(), rng.dist1());
        let n = rng.range(1, 33);
        let d = Distribution::new((rows, cols), (d0, d1), n);
        let mut counts = vec![0usize; n];
        for r in 0..rows {
            for c in 0..cols {
                let owner = d.owner(Index2(r, c));
                assert!(owner.index() < n, "{owner} out of range");
                counts[owner.index()] += 1;
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), rows * cols);
        // local_indices agrees with owner().
        for t in 0..n {
            let t = ThreadId::from_index(t);
            let local: Vec<Index2> = d.local_indices(t).collect();
            assert_eq!(local.len(), counts[t.index()]);
            for idx in local {
                assert_eq!(d.owner(idx), t);
            }
        }
    });
}

#[test]
fn thread_grid_never_exceeds_thread_count() {
    for_all(0x61D5, |rng| {
        let (rows, cols) = (rng.range(1, 20), rng.range(1, 20));
        let (d0, d1) = (rng.dist1(), rng.dist1());
        let n = rng.range(1, 33);
        let d = Distribution::new((rows, cols), (d0, d1), n);
        assert!(d.tgrid.0 * d.tgrid.1 <= n.max(1));
        assert!(d.busy_threads() <= n);
    });
}

#[test]
fn block_ownership_is_contiguous_per_thread() {
    for_all(0xB10C, |rng| {
        let rows = rng.range(1, 40);
        let n = rng.range(1, 17);
        let d = Distribution::block_1d(rows, n);
        for t in 0..n {
            let owned: Vec<usize> = d
                .local_indices(ThreadId::from_index(t))
                .map(|i| i.0)
                .collect();
            for w in owned.windows(2) {
                assert_eq!(w[1], w[0] + 1, "block must be contiguous");
            }
        }
    });
}

#[test]
fn cyclic_ownership_strides_by_thread_count() {
    for_all(0xC41C, |rng| {
        let rows = rng.range(1, 40);
        let n = rng.range(1, 17);
        let d = Distribution::cyclic_1d(rows, n);
        for i in 0..rows {
            assert_eq!(d.owner(Index2(i, 0)).index(), i % n);
        }
    });
}

#[test]
fn flat_is_a_bijection() {
    for_all(0xF1A7, |rng| {
        let (rows, cols) = (rng.range(1, 15), rng.range(1, 15));
        let d = Distribution::block_block(rows, cols, 4);
        let mut seen = vec![false; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                let f = d.flat(Index2(r, c));
                assert!(!seen[f]);
                seen[f] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    });
}

#[test]
fn block_block_busy_threads_is_floor_sqrt_squared() {
    for n in 1usize..33 {
        // A grid big enough that every grid position owns something.
        let side = 12usize; // divisible by 1,2,3,4,6; >= 5x5 blocks too
        let d = Distribution::block_block(side * 2, side * 2, n);
        let s = pcpp_rt::distribution::isqrt(n);
        assert_eq!(d.busy_threads(), s * s);
    }
}
