//! Property tests of the distribution algebra: every (shape, attribute,
//! thread-count) combination must partition the index space, agree with
//! `local_indices`, and obey the pC++ thread-grid conventions.

use extrap_time::ThreadId;
use pcpp_rt::{Dist1, Distribution, Index2};
use proptest::prelude::*;

fn dist1() -> impl Strategy<Value = Dist1> {
    prop_oneof![Just(Dist1::Block), Just(Dist1::Cyclic), Just(Dist1::Whole)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ownership_partitions_every_index(
        rows in 1usize..20,
        cols in 1usize..20,
        d0 in dist1(),
        d1 in dist1(),
        n in 1usize..33,
    ) {
        let d = Distribution::new((rows, cols), (d0, d1), n);
        let mut counts = vec![0usize; n];
        for r in 0..rows {
            for c in 0..cols {
                let owner = d.owner(Index2(r, c));
                prop_assert!(owner.index() < n, "{owner} out of range");
                counts[owner.index()] += 1;
            }
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), rows * cols);
        // local_indices agrees with owner().
        for t in 0..n {
            let t = ThreadId::from_index(t);
            let local: Vec<Index2> = d.local_indices(t).collect();
            prop_assert_eq!(local.len(), counts[t.index()]);
            for idx in local {
                prop_assert_eq!(d.owner(idx), t);
            }
        }
    }

    #[test]
    fn thread_grid_never_exceeds_thread_count(
        rows in 1usize..20,
        cols in 1usize..20,
        d0 in dist1(),
        d1 in dist1(),
        n in 1usize..33,
    ) {
        let d = Distribution::new((rows, cols), (d0, d1), n);
        prop_assert!(d.tgrid.0 * d.tgrid.1 <= n.max(1));
        prop_assert!(d.busy_threads() <= n);
    }

    #[test]
    fn block_ownership_is_contiguous_per_thread(
        rows in 1usize..40,
        n in 1usize..17,
    ) {
        let d = Distribution::block_1d(rows, n);
        for t in 0..n {
            let owned: Vec<usize> = d
                .local_indices(ThreadId::from_index(t))
                .map(|i| i.0)
                .collect();
            for w in owned.windows(2) {
                prop_assert_eq!(w[1], w[0] + 1, "block must be contiguous");
            }
        }
    }

    #[test]
    fn cyclic_ownership_strides_by_thread_count(
        rows in 1usize..40,
        n in 1usize..17,
    ) {
        let d = Distribution::cyclic_1d(rows, n);
        for i in 0..rows {
            prop_assert_eq!(d.owner(Index2(i, 0)).index(), i % n);
        }
    }

    #[test]
    fn flat_is_a_bijection(
        rows in 1usize..15,
        cols in 1usize..15,
    ) {
        let d = Distribution::block_block(rows, cols, 4);
        let mut seen = vec![false; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                let f = d.flat(Index2(r, c));
                prop_assert!(!seen[f]);
                seen[f] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn block_block_busy_threads_is_floor_sqrt_squared(
        n in 1usize..33,
    ) {
        // A grid big enough that every grid position owns something.
        let side = 12usize; // divisible by 1,2,3,4,6; >= 5x5 blocks too
        let d = Distribution::block_block(side * 2, side * 2, n);
        let s = pcpp_rt::distribution::isqrt(n);
        prop_assert_eq!(d.busy_threads(), s * s);
    }
}
