//! The trace recorder: a global virtual clock plus an append-only event
//! buffer, shared by all runtime threads.
//!
//! Because the scheduler guarantees exactly one thread executes at any
//! moment, the clock and buffer see strictly serialized access and the
//! recorded trace is deterministic.

use crate::sync::Mutex;
use extrap_time::{DurationNs, ThreadId, TimeNs};
use extrap_trace::{EventKind, ProgramTrace, TraceRecord};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Where timestamps come from.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TimeSource {
    /// The deterministic virtual clock driven by `charge(...)` calls
    /// (the default; bit-reproducible traces).
    #[default]
    Virtual,
    /// The host's wall clock, as the original instrumented runtime
    /// measured.  `charge(...)` is ignored; timestamps include real
    /// scheduling and instrumentation overheads (§3.2's intrusion),
    /// which `TranslateOptions` can compensate.
    Wall,
}

/// The shared instrumentation state of one program run.
#[derive(Debug)]
pub struct Recorder {
    clock: AtomicU64,
    records: Mutex<Vec<TraceRecord>>,
    /// Virtual cost charged for recording each event (lets experiments
    /// exercise the intrusion compensation of the translation algorithm).
    event_overhead: DurationNs,
    source: TimeSource,
    started: Instant,
}

impl Recorder {
    /// Creates a virtual-clock recorder with the given per-event
    /// recording overhead.
    pub fn new(event_overhead: DurationNs) -> Recorder {
        Recorder::with_source(event_overhead, TimeSource::Virtual)
    }

    /// Creates a recorder with an explicit time source.
    pub fn with_source(event_overhead: DurationNs, source: TimeSource) -> Recorder {
        Recorder {
            clock: AtomicU64::new(0),
            records: Mutex::new(Vec::new()),
            event_overhead,
            source,
            started: Instant::now(),
        }
    }

    /// Current time under the configured source.
    ///
    /// Under [`TimeSource::Wall`] the clock is monotone even against a
    /// badly behaved host timer (it never reports less than the last
    /// recorded timestamp).
    pub fn now(&self) -> TimeNs {
        match self.source {
            TimeSource::Virtual => TimeNs(self.clock.load(Ordering::Relaxed)),
            TimeSource::Wall => {
                let wall = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                let floor = self.clock.load(Ordering::Relaxed);
                TimeNs(wall.max(floor))
            }
        }
    }

    /// Advances the virtual clock (computation by the running thread).
    /// A no-op under [`TimeSource::Wall`] — real time advances itself.
    pub fn advance(&self, d: DurationNs) {
        if self.source == TimeSource::Virtual {
            self.clock.fetch_add(d.as_ns(), Ordering::Relaxed);
        }
    }

    /// Records an event for `thread` at the current clock, then charges
    /// the recording overhead (virtual mode only — in wall mode the real
    /// recording cost is already in the timestamps).
    pub fn record(&self, thread: ThreadId, kind: EventKind) {
        let time = self.now();
        self.records.lock().push(TraceRecord { time, thread, kind });
        if self.source == TimeSource::Wall {
            // Pin monotonicity for subsequent now() calls.
            self.clock.fetch_max(time.as_ns(), Ordering::Relaxed);
        }
        self.advance(self.event_overhead);
    }

    /// The per-event overhead this recorder charges.
    pub fn event_overhead(&self) -> DurationNs {
        self.event_overhead
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finishes the run and produces the validated program trace.
    pub fn into_trace(self, n_threads: usize) -> ProgramTrace {
        let pt = ProgramTrace {
            n_threads,
            records: self.records.into_inner(),
        };
        pt.validate().expect("runtime produced an invalid trace");
        pt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_stamps() {
        let r = Recorder::new(DurationNs::ZERO);
        r.record(ThreadId(0), EventKind::ThreadBegin);
        r.advance(DurationNs(500));
        r.record(ThreadId(0), EventKind::ThreadEnd);
        let t = r.into_trace(1);
        assert_eq!(t.records[0].time, TimeNs(0));
        assert_eq!(t.records[1].time, TimeNs(500));
    }

    #[test]
    fn event_overhead_is_charged_after_stamping() {
        let r = Recorder::new(DurationNs(7));
        r.record(ThreadId(0), EventKind::ThreadBegin);
        assert_eq!(r.now(), TimeNs(7));
        r.record(ThreadId(0), EventKind::ThreadEnd);
        let t = r.into_trace(1);
        assert_eq!(t.records[1].time, TimeNs(7));
    }

    #[test]
    fn len_counts_records() {
        let r = Recorder::new(DurationNs::ZERO);
        assert!(r.is_empty());
        r.record(ThreadId(0), EventKind::Marker { id: 1 });
        assert_eq!(r.len(), 1);
    }
}
