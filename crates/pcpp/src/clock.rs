//! The virtual clock's work model.
//!
//! Benchmarks charge abstract work units (floating-point operations,
//! integer/memory operations, per-element access overheads) and the work
//! model converts them to virtual nanoseconds of the *measurement host*.
//! The default host is calibrated to the paper's Sun 4 (≈1.136 scalar
//! MFLOPS), so virtual execution times land in the same regime as the
//! paper's measurements.

use extrap_time::DurationNs;

/// Conversion from abstract work to host time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkModel {
    /// Cost of one floating-point operation.
    pub flop: DurationNs,
    /// Cost of one integer/logic operation.
    pub int_op: DurationNs,
    /// Cost of one memory access (load or store) not overlapped with
    /// arithmetic.
    pub mem_op: DurationNs,
    /// Fixed overhead per collection-element access (index math, bounds
    /// and ownership checks in the runtime).
    pub elem_access: DurationNs,
}

impl Default for WorkModel {
    fn default() -> WorkModel {
        WorkModel::sun4()
    }
}

impl WorkModel {
    /// The paper's measurement host: a Sun 4 rated at 1.1360 MFLOPS by a
    /// simple floating-point benchmark (§3.3.1), i.e. ≈880 ns per flop.
    pub fn sun4() -> WorkModel {
        WorkModel {
            flop: DurationNs(880),
            int_op: DurationNs(120),
            mem_op: DurationNs(150),
            elem_access: DurationNs(400),
        }
    }

    /// A convenient fast host (1 ns per op) for tests that want small
    /// round numbers.
    pub fn unit() -> WorkModel {
        WorkModel {
            flop: DurationNs(1),
            int_op: DurationNs(1),
            mem_op: DurationNs(1),
            elem_access: DurationNs(1),
        }
    }

    /// Host time for `n` flops.
    pub fn flops(&self, n: u64) -> DurationNs {
        self.flop * n
    }

    /// Host time for `n` integer ops.
    pub fn int_ops(&self, n: u64) -> DurationNs {
        self.int_op * n
    }

    /// Host time for `n` memory ops.
    pub fn mem_ops(&self, n: u64) -> DurationNs {
        self.mem_op * n
    }

    /// Approximate MFLOPS rating of this host (for `MipsRatio`
    /// computations).
    pub fn mflops(&self) -> f64 {
        1e3 / self.flop.as_ns() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sun4_rating_matches_paper_scale() {
        let m = WorkModel::sun4();
        // 880ns/flop ~ 1.136 MFLOPS.
        assert!((m.mflops() - 1.136).abs() < 0.01);
    }

    #[test]
    fn work_accumulates_linearly() {
        let m = WorkModel::unit();
        assert_eq!(m.flops(10), DurationNs(10));
        assert_eq!(m.int_ops(3), DurationNs(3));
        assert_eq!(m.mem_ops(7), DurationNs(7));
    }
}
