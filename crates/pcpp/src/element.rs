//! The `Element` trait: what can live in a distributed collection.
//!
//! `size_bytes` is the *declared* element size — what the pC++ compiler
//! would report as the transfer size of a remote access to the whole
//! element (the measurement abstraction behind the §4.1 Grid anomaly).

/// A collection element.
pub trait Element: Send + Sync + 'static {
    /// Declared (whole-element) size in bytes, as the compiler's
    /// high-level information would report it.
    fn size_bytes(&self) -> u32;
}

macro_rules! scalar_element {
    ($($t:ty),*) => {
        $(impl Element for $t {
            fn size_bytes(&self) -> u32 {
                std::mem::size_of::<$t>() as u32
            }
        })*
    };
}

scalar_element!(f32, f64, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: Element + Copy, const N: usize> Element for [T; N] {
    fn size_bytes(&self) -> u32 {
        (std::mem::size_of::<T>() * N) as u32
    }
}

impl<T: Send + Sync + 'static> Element for Vec<T> {
    fn size_bytes(&self) -> u32 {
        (std::mem::size_of::<T>() * self.len()) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(1.0f64.size_bytes(), 8);
        assert_eq!(1.0f32.size_bytes(), 4);
        assert_eq!(7u32.size_bytes(), 4);
    }

    #[test]
    fn array_and_vec_sizes() {
        assert_eq!([0f64; 16].size_bytes(), 128);
        assert_eq!(vec![0u8; 231_456].size_bytes(), 231_456);
        assert_eq!(vec![0f64; 4].size_bytes(), 32);
    }
}
