//! The model-checking scheduler behind the `model-check` feature.
//!
//! When a scenario runs under [`run_scenario`], every thread it spawns
//! through the [`Handle`] becomes a *model thread*: each operation on a
//! [`crate::sync`] primitive announces itself here and blocks until this
//! cooperative scheduler grants it the next turn.  Exactly one model
//! thread runs between scheduling points, so an execution is fully
//! described by the sequence of thread ids chosen at each point — the
//! *decision string* — and replaying a decision string reproduces the
//! execution byte-identically.
//!
//! The scheduler is loom/shuttle-style stateless model checking by
//! re-execution: the driver (`extrap-check`) re-runs the scenario once
//! per schedule, steering each run with a [`RunSpec`] prefix and
//! harvesting the [`Choice`] points the run exposed.  Within one run
//! this module
//!
//! * tracks the virtual ownership state of every mutex/rwlock/condvar
//!   the model threads touch (objects are numbered in first-use order,
//!   which is deterministic because only one thread runs at a time);
//! * maintains a *sleep set* (Godefroid-style partial-order reduction):
//!   threads whose alternatives were already explored at an earlier
//!   sibling stay asleep until a dependent operation executes, so
//!   commuting interleavings are enumerated once;
//! * enforces an optional *preemption bound*: once a run has exhausted
//!   its budget of involuntary context switches it keeps running the
//!   current thread until it blocks (the CHESS iterated-bounding
//!   strategy — the driver ladders the bound 0, 1, 2, ∞);
//! * models time: timed condvar waits fire only at quiescence (no other
//!   transition enabled), advancing a virtual clock that
//!   [`crate::sync::Instant`] reads, so timeout-based protocols are
//!   explored without wall-clock sleeps;
//! * detects failure states — deadlock, lost wakeups (every live thread
//!   parked on an untimed condvar wait), re-entrant double-lock, waiting
//!   on a condvar without holding its mutex, scenario panics, and
//!   step-limit livelock — and aborts the run, unwinding every model
//!   thread with a private panic payload.
//!
//! The *real* operation always happens too (the real lock is taken after
//! the virtual grant, the real notify is sent after the virtual wake), so
//! code paths that mix checked and unchecked threads degrade gracefully;
//! the one unsupported direction is an unchecked thread notifying a
//! virtually parked waiter.  [`crate::sync::unchecked_scope`] opts a
//! region out entirely — [`crate::Program::run`] uses it because the
//! traced program's run-token scheduler is not the object under test.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, Once};
use std::time::Duration;

// ---------------------------------------------------------------------
// Thread-local context
// ---------------------------------------------------------------------

#[derive(Clone)]
enum Ctx {
    /// A thread spawned through [`Handle::spawn`], scheduled by the
    /// session.
    Model { session: Arc<Session>, tid: u32 },
    /// The thread driving [`run_scenario`]: reads the virtual clock but
    /// bypasses scheduling (it only touches shared state while every
    /// model thread is parked).
    Controller { session: Arc<Session> },
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The panic payload used to unwind model threads when a run aborts.
/// Never surfaces to user code: the wrapper around every model thread
/// swallows it, and the process panic hook suppresses its report.
struct CheckAbort;

fn with_model<R>(f: impl FnOnce(&Arc<Session>, u32) -> R) -> Option<R> {
    let ctx = CTX.with(|c| c.borrow().clone());
    match ctx {
        Some(Ctx::Model { session, tid }) => Some(f(&session, tid)),
        _ => None,
    }
}

/// Whether the calling thread is a scheduled model thread that should
/// route sync operations through the checker.  Unwinding threads opt
/// out: their virtual state is torn down by the abort protocol, and a
/// panic inside a panic would abort the process.
pub(crate) fn on_checked_thread() -> bool {
    !std::thread::panicking() && CTX.with(|c| matches!(&*c.borrow(), Some(Ctx::Model { .. })))
}

/// The session's virtual clock in nanoseconds, if the calling thread
/// belongs to a session (model *or* controller).  `None` means wall
/// clocks apply.
pub(crate) fn virtual_now() -> Option<u64> {
    let ctx = CTX.with(|c| c.borrow().clone());
    let session = match ctx {
        Some(Ctx::Model { session, .. }) | Some(Ctx::Controller { session }) => session,
        None => return None,
    };
    let ns = session
        .st
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clock_ns;
    Some(ns)
}

/// Runs `f` with the checker context cleared: sync operations inside go
/// straight to std.  See [`crate::sync::unchecked_scope`].
pub(crate) fn unchecked_scope<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Ctx>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let saved = self.0.take();
            CTX.with(|c| *c.borrow_mut() = saved);
        }
    }
    let _restore = Restore(CTX.with(|c| c.borrow_mut().take()));
    f()
}

// ---------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------

/// One checker-visible transition, on objects numbered in first-use
/// order within the run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// A spawned thread's first scheduling point (before user code).
    Start,
    /// Acquire a mutex.
    Lock(u64),
    /// Release a mutex.
    Unlock(u64),
    /// Acquire a read lock.
    RwRead(u64),
    /// Acquire a write lock.
    RwWrite(u64),
    /// Release either kind of rwlock guard.
    RwUnlock(u64),
    /// Atomically release `mutex` and park on `cv`.
    Wait {
        /// The condvar parked on.
        cv: u64,
        /// The mutex released while parked.
        mutex: u64,
    },
    /// Reacquire `mutex` after being woken from `cv`.
    Relock {
        /// The mutex being reacquired.
        mutex: u64,
        /// The condvar the thread was parked on.
        cv: u64,
    },
    /// Wake one (`all = false`) or every waiter of a condvar.
    Notify {
        /// The condvar notified.
        cv: u64,
        /// Whether this is `notify_all`.
        all: bool,
    },
    /// A checked atomic load ([`crate::sync::AtomicFlag`]).
    Load(u64),
    /// A checked atomic store or swap.
    Store(u64),
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Start => write!(f, "start"),
            Op::Lock(m) => write!(f, "lock(o{m})"),
            Op::Unlock(m) => write!(f, "unlock(o{m})"),
            Op::RwRead(o) => write!(f, "read(o{o})"),
            Op::RwWrite(o) => write!(f, "write(o{o})"),
            Op::RwUnlock(o) => write!(f, "rw-unlock(o{o})"),
            Op::Wait { cv, mutex } => write!(f, "wait(o{cv}, o{mutex})"),
            Op::Relock { mutex, cv } => write!(f, "relock(o{mutex}, after o{cv})"),
            Op::Notify { cv, all: true } => write!(f, "notify-all(o{cv})"),
            Op::Notify { cv, all: false } => write!(f, "notify-one(o{cv})"),
            Op::Load(a) => write!(f, "load(o{a})"),
            Op::Store(a) => write!(f, "store(o{a})"),
        }
    }
}

fn touches(op: Op) -> [Option<u64>; 2] {
    match op {
        Op::Start => [None, None],
        Op::Lock(m) | Op::Unlock(m) => [Some(m), None],
        Op::RwRead(o) | Op::RwWrite(o) | Op::RwUnlock(o) => [Some(o), None],
        Op::Wait { cv, mutex } | Op::Relock { mutex, cv } => [Some(cv), Some(mutex)],
        Op::Notify { cv, .. } => [Some(cv), None],
        Op::Load(a) | Op::Store(a) => [Some(a), None],
    }
}

/// Conservative dependence: two operations commute unless they touch a
/// common object; two atomic loads commute regardless.
fn dependent(a: Op, b: Op) -> bool {
    if let (Op::Load(_), Op::Load(_)) = (a, b) {
        return false;
    }
    let (ta, tb) = (touches(a), touches(b));
    ta.iter()
        .flatten()
        .any(|x| tb.iter().flatten().any(|y| x == y))
}

// ---------------------------------------------------------------------
// Run descriptions and outcomes
// ---------------------------------------------------------------------

/// How one execution should be steered.
#[derive(Clone, Debug, Default)]
pub struct RunSpec {
    /// Seed for the deterministic candidate ordering at each choice.
    pub seed: u64,
    /// Forced choices: at depth `d < prefix.len()` the scheduler picks
    /// thread `prefix[d]` (failing with
    /// [`FailureKind::ReplayDivergence`] if it is not enabled).
    pub prefix: Vec<u32>,
    /// Per-depth sleep-set seeds: at depth `d`, threads in
    /// `extra_sleep[d]` are put to sleep before selection (they were
    /// explored by sibling branches).
    pub extra_sleep: Vec<Vec<u32>>,
    /// Preemption budget beyond the prefix (`None` = unbounded).
    pub bound: Option<u32>,
    /// Abort the run as a livelock after this many transitions
    /// (`0` = the default of 50 000).
    pub max_steps: usize,
}

/// One enabled, non-sleeping thread at a choice point.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// The thread id.
    pub tid: u32,
    /// Its announced operation.
    pub op: Op,
    /// Whether picking it would preempt the previously running thread.
    pub preempts: bool,
}

/// One scheduling decision, as exposed to the exploration driver.
#[derive(Clone, Debug)]
pub struct Choice {
    /// The selectable candidates, in the seeded deterministic order the
    /// default policy consults.
    pub selectable: Vec<Candidate>,
    /// The thread that was scheduled.
    pub chosen: u32,
    /// The chosen thread's operation (it may be absent from
    /// `selectable` when a replay prefix forces a sleeping thread).
    pub chosen_op: Op,
    /// Preemptions consumed before this decision.
    pub preemptions_before: u32,
}

/// Why a run was declared a failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// No thread can ever run again and at least one is blocked on a
    /// lock acquisition.
    Deadlock,
    /// Every live thread is parked in an untimed condvar wait — nobody
    /// is left to notify.
    LostWakeup,
    /// A thread re-acquired a lock it already holds (or upgraded a read
    /// lock it holds to a write lock).
    DoubleLock,
    /// A thread waited on a condvar without holding the guard's mutex.
    WaitWithoutLock,
    /// A model thread (or the scenario's own assertions) panicked.
    Panic,
    /// The run exceeded its step budget — a livelock by decree.
    StepLimit,
    /// A replay prefix asked for a thread that was not enabled: the
    /// scenario is not deterministic given the schedule.
    ReplayDivergence,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureKind::Deadlock => "deadlock",
            FailureKind::LostWakeup => "lost wakeup",
            FailureKind::DoubleLock => "double lock",
            FailureKind::WaitWithoutLock => "wait without lock",
            FailureKind::Panic => "panic",
            FailureKind::StepLimit => "step limit (livelock?)",
            FailureKind::ReplayDivergence => "replay divergence",
        };
        f.write_str(s)
    }
}

/// A failed run's classification and diagnostic.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The failure class.
    pub kind: FailureKind,
    /// A human-readable account of the failing state.
    pub message: String,
}

/// How a run ended.
#[derive(Clone, Debug)]
pub enum RunStatus {
    /// Every model thread finished and the scenario's assertions held.
    Complete,
    /// The run was cut short by sleep sets or the preemption bound; an
    /// equivalent execution is (or was) explored elsewhere.
    Pruned,
    /// The run hit a failure state.
    Failed(Failure),
}

/// Everything the exploration driver learns from one execution.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Terminal status.
    pub status: RunStatus,
    /// Every scheduling decision, in order.
    pub choices: Vec<Choice>,
    /// Transitions executed (choices plus timeout firings).
    pub steps: usize,
}

impl RunOutcome {
    /// The decision string: the chosen thread id at every choice point.
    /// Feeding it back as [`RunSpec::prefix`] replays this execution.
    pub fn decisions(&self) -> Vec<u32> {
        self.choices.iter().map(|c| c.chosen).collect()
    }
}

// ---------------------------------------------------------------------
// Session state
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Ready,
    Running,
    Blocked,
    Finished,
}

#[derive(Clone, Debug)]
struct ThreadSt {
    status: Status,
    pending: Option<Op>,
    /// Set when the thread's timed wait fired instead of being notified.
    timed_out: bool,
    /// Virtual-clock deadline of an in-progress timed wait.
    deadline: Option<u64>,
    /// The mutex to relock when woken from a condvar wait.
    wait_mutex: u64,
    /// The condvar currently parked on.
    wait_cv: u64,
}

impl ThreadSt {
    fn new() -> ThreadSt {
        ThreadSt {
            status: Status::Ready,
            pending: Some(Op::Start),
            timed_out: false,
            deadline: None,
            wait_mutex: 0,
            wait_cv: 0,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Mutex,
    Rw,
    Cv,
    Atomic,
}

#[derive(Debug)]
enum Obj {
    Mutex {
        owner: Option<u32>,
    },
    Rw {
        writer: Option<u32>,
        readers: Vec<u32>,
    },
    Cv {
        waiters: VecDeque<u32>,
    },
    Atomic,
}

impl Obj {
    fn kind(&self) -> Kind {
        match self {
            Obj::Mutex { .. } => Kind::Mutex,
            Obj::Rw { .. } => Kind::Rw,
            Obj::Cv { .. } => Kind::Cv,
            Obj::Atomic => Kind::Atomic,
        }
    }

    fn fresh(kind: Kind) -> Obj {
        match kind {
            Kind::Mutex => Obj::Mutex { owner: None },
            Kind::Rw => Obj::Rw {
                writer: None,
                readers: Vec::new(),
            },
            Kind::Cv => Obj::Cv {
                waiters: VecDeque::new(),
            },
            Kind::Atomic => Obj::Atomic,
        }
    }
}

struct State {
    seed: u64,
    prefix: Vec<u32>,
    extra_sleep: Vec<Vec<u32>>,
    bound: Option<u32>,
    max_steps: usize,

    threads: Vec<ThreadSt>,
    ids: HashMap<usize, u64>,
    objects: HashMap<u64, Obj>,
    next_obj: u64,

    started: bool,
    live: u32,
    running: Option<u32>,
    last_running: Option<u32>,
    clock_ns: u64,
    steps: usize,
    preemptions: u32,
    sleep: Vec<(u32, Op)>,
    choices: Vec<Choice>,
    failure: Option<Failure>,
    pruned: bool,
    aborting: bool,
}

impl State {
    fn new(spec: RunSpec) -> State {
        State {
            seed: spec.seed,
            prefix: spec.prefix,
            extra_sleep: spec.extra_sleep,
            bound: spec.bound,
            max_steps: if spec.max_steps == 0 {
                50_000
            } else {
                spec.max_steps
            },
            threads: Vec::new(),
            ids: HashMap::new(),
            objects: HashMap::new(),
            next_obj: 0,
            started: false,
            live: 0,
            running: None,
            last_running: None,
            clock_ns: 0,
            steps: 0,
            preemptions: 0,
            sleep: Vec::new(),
            choices: Vec::new(),
            failure: None,
            pruned: false,
            aborting: false,
        }
    }

    /// The stable per-run id for the primitive at `addr`, minted in
    /// first-use order (deterministic: one thread runs at a time).  An
    /// address recycled as a different primitive kind gets a fresh id.
    fn obj_id(&mut self, addr: usize, kind: Kind) -> u64 {
        if let Some(&id) = self.ids.get(&addr) {
            if self.objects.get(&id).is_some_and(|o| o.kind() == kind) {
                return id;
            }
        }
        let id = self.next_obj;
        self.next_obj += 1;
        self.ids.insert(addr, id);
        self.objects.insert(id, Obj::fresh(kind));
        id
    }

    fn enabled(&self, op: Op) -> bool {
        match op {
            Op::Lock(m) | Op::Relock { mutex: m, .. } => {
                matches!(self.objects.get(&m), Some(Obj::Mutex { owner: None }))
            }
            Op::RwRead(o) => matches!(self.objects.get(&o), Some(Obj::Rw { writer: None, .. })),
            Op::RwWrite(o) => matches!(
                self.objects.get(&o),
                Some(Obj::Rw { writer: None, readers }) if readers.is_empty()
            ),
            _ => true,
        }
    }

    fn fail(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Failure { kind, message });
        }
        self.aborting = true;
    }

    /// Misuse checks run when an operation is announced, before
    /// scheduling: a re-entrant acquisition would otherwise present as a
    /// plain deadlock, losing the diagnosis.
    fn misuse(&self, tid: u32, op: Op) -> Option<Failure> {
        let fail = |kind, message: String| Some(Failure { kind, message });
        match op {
            Op::Lock(m) | Op::Relock { mutex: m, .. } => match self.objects.get(&m) {
                Some(Obj::Mutex { owner: Some(o) }) if *o == tid => fail(
                    FailureKind::DoubleLock,
                    format!("T{tid} locks o{m} which it already holds"),
                ),
                _ => None,
            },
            Op::RwWrite(o) | Op::RwRead(o) => match self.objects.get(&o) {
                Some(Obj::Rw {
                    writer: Some(w), ..
                }) if *w == tid => fail(
                    FailureKind::DoubleLock,
                    format!("T{tid} acquires o{o} while holding its write lock"),
                ),
                Some(Obj::Rw { readers, .. })
                    if matches!(op, Op::RwWrite(_)) && readers.contains(&tid) =>
                {
                    fail(
                        FailureKind::DoubleLock,
                        format!("T{tid} upgrades o{o} read lock to write (self-deadlock)"),
                    )
                }
                _ => None,
            },
            Op::Wait { cv, mutex } => match self.objects.get(&mutex) {
                Some(Obj::Mutex { owner: Some(o) }) if *o == tid => None,
                _ => fail(
                    FailureKind::WaitWithoutLock,
                    format!("T{tid} waits on o{cv} without holding o{mutex}"),
                ),
            },
            _ => None,
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn order_key(seed: u64, depth: usize, tid: u32) -> u64 {
    splitmix(seed ^ splitmix(((depth as u64) << 32) | u64::from(tid)))
}

fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The scheduler shared by one scenario execution.
pub struct Session {
    st: StdMutex<State>,
    cv: StdCondvar,
}

type Guard<'a> = std::sync::MutexGuard<'a, State>;

impl Session {
    fn lock(&self) -> Guard<'_> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Parks the calling model thread after announcing `op`; returns
    /// once the scheduler grants it the turn (for waits: once its relock
    /// is granted).  The return value is the timed-out flag of a timed
    /// wait.  Unwinds with `CheckAbort` if the run aborts meanwhile.
    fn yield_op(&self, tid: u32, timeout: Option<Duration>, op: Op) -> bool {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            abort_unwind();
            return false;
        }
        if let Some(f) = st.misuse(tid, op) {
            st.failure = Some(f);
            st.aborting = true;
            self.cv.notify_all();
            drop(st);
            abort_unwind();
            return false;
        }
        debug_assert_eq!(st.running, Some(tid), "only the running thread yields");
        let deadline = timeout.map(|d| st.clock_ns.saturating_add(dur_ns(d)));
        {
            let t = &mut st.threads[tid as usize];
            t.pending = Some(op);
            t.status = Status::Ready;
            t.timed_out = false;
            if let Op::Wait { cv, mutex } = op {
                t.deadline = deadline;
                t.wait_mutex = mutex;
                t.wait_cv = cv;
            }
        }
        st.running = None;
        self.schedule(&mut st);
        loop {
            if st.aborting {
                drop(st);
                abort_unwind();
                return false;
            }
            if st.running == Some(tid) {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[tid as usize].timed_out
    }

    /// Advances the schedule until a thread is running, the run is over,
    /// or it aborted.  Called with the state lock held, by whichever
    /// thread changed the state.
    fn schedule(&self, st: &mut State) {
        if !st.started {
            return;
        }
        loop {
            if st.failure.is_some() {
                st.aborting = true;
            }
            if st.aborting || st.live == 0 || st.running.is_some() {
                self.cv.notify_all();
                return;
            }
            st.steps += 1;
            if st.steps > st.max_steps {
                st.fail(
                    FailureKind::StepLimit,
                    format!("run exceeded {} transitions", st.max_steps),
                );
                continue;
            }
            let mut candidates: Vec<(u32, Op)> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match (t.status, t.pending) {
                    (Status::Ready, Some(op)) if st.enabled(op) => Some((i as u32, op)),
                    _ => None,
                })
                .collect();
            if candidates.is_empty() {
                if self.fire_earliest_timeout(st) {
                    continue;
                }
                let f = classify_deadlock(st);
                st.fail(f.kind, f.message);
                continue;
            }
            // Seed the sleep set for this depth from the driver: those
            // threads' continuations were explored by sibling branches.
            let depth = st.choices.len();
            if depth < st.extra_sleep.len() {
                let extras = st.extra_sleep[depth].clone();
                for tid in extras {
                    if let Some(op) = st.threads.get(tid as usize).and_then(|t| t.pending) {
                        if !st.sleep.iter().any(|&(t, _)| t == tid) {
                            st.sleep.push((tid, op));
                        }
                    }
                }
            }
            let (seed, sleep) = (st.seed, &st.sleep);
            candidates.sort_by_key(|&(tid, _)| (order_key(seed, depth, tid), tid));
            let selectable: Vec<(u32, Op)> = candidates
                .iter()
                .filter(|&&(tid, _)| !sleep.iter().any(|&(s, _)| s == tid))
                .copied()
                .collect();
            // `prev` is the last-running thread *if* it could continue:
            // scheduling anyone else then counts as a preemption.
            let prev = st
                .last_running
                .filter(|p| candidates.iter().any(|&(t, _)| t == *p));
            let view: Vec<Candidate> = selectable
                .iter()
                .map(|&(tid, op)| Candidate {
                    tid,
                    op,
                    preempts: prev.is_some_and(|p| p != tid),
                })
                .collect();

            let chosen: u32 = if depth < st.prefix.len() {
                let want = st.prefix[depth];
                if !candidates.iter().any(|&(t, _)| t == want) {
                    let enabled: Vec<u32> = candidates.iter().map(|&(t, _)| t).collect();
                    st.fail(
                        FailureKind::ReplayDivergence,
                        format!("prefix wants T{want} at step {depth}, enabled: {enabled:?}"),
                    );
                    continue;
                }
                want
            } else if selectable.is_empty() {
                // Every enabled thread is asleep: this execution is a
                // reordering of one explored elsewhere.
                st.pruned = true;
                st.aborting = true;
                self.cv.notify_all();
                return;
            } else if st.bound.is_some_and(|b| st.preemptions >= b) {
                match prev {
                    // Budget spent: keep running the previous thread...
                    Some(p) if selectable.iter().any(|&(t, _)| t == p) => p,
                    // ...unless it is asleep, in which case continuing
                    // would both preempt and duplicate a sibling: prune.
                    Some(_) => {
                        st.pruned = true;
                        st.aborting = true;
                        self.cv.notify_all();
                        return;
                    }
                    // A forced switch (prev blocked/finished) is free.
                    None => selectable[0].0,
                }
            } else {
                selectable[0].0
            };

            let chosen_op = candidates
                .iter()
                .find(|&&(t, _)| t == chosen)
                .map(|&(_, op)| op)
                .expect("chosen is a candidate");
            let preempted = prev.is_some_and(|p| p != chosen);
            st.choices.push(Choice {
                selectable: view,
                chosen,
                chosen_op,
                preemptions_before: st.preemptions,
            });
            st.preemptions += u32::from(preempted);
            // Executing a dependent operation wakes sleeping threads.
            st.sleep
                .retain(|&(t, op)| t != chosen && !dependent(op, chosen_op));
            self.apply(st, chosen, chosen_op);
        }
    }

    /// Applies `op`'s effect on the virtual state.  Most operations
    /// leave the chosen thread running; `Wait` parks it, sending the
    /// loop in [`schedule`](Session::schedule) around again.
    fn apply(&self, st: &mut State, tid: u32, op: Op) {
        let mut still_running = true;
        match op {
            Op::Start | Op::Load(_) | Op::Store(_) => {}
            Op::Lock(m) | Op::Relock { mutex: m, .. } => {
                if let Some(Obj::Mutex { owner }) = st.objects.get_mut(&m) {
                    *owner = Some(tid);
                }
            }
            Op::Unlock(m) => {
                if let Some(Obj::Mutex { owner }) = st.objects.get_mut(&m) {
                    *owner = None;
                }
            }
            Op::RwRead(o) => {
                if let Some(Obj::Rw { readers, .. }) = st.objects.get_mut(&o) {
                    readers.push(tid);
                }
            }
            Op::RwWrite(o) => {
                if let Some(Obj::Rw { writer, .. }) = st.objects.get_mut(&o) {
                    *writer = Some(tid);
                }
            }
            Op::RwUnlock(o) => {
                if let Some(Obj::Rw { writer, readers }) = st.objects.get_mut(&o) {
                    if *writer == Some(tid) {
                        *writer = None;
                    } else {
                        readers.retain(|&r| r != tid);
                    }
                }
            }
            Op::Wait { cv, mutex } => {
                if let Some(Obj::Mutex { owner }) = st.objects.get_mut(&mutex) {
                    *owner = None;
                }
                if let Some(Obj::Cv { waiters }) = st.objects.get_mut(&cv) {
                    waiters.push_back(tid);
                }
                still_running = false;
            }
            Op::Notify { cv, all } => {
                let woken: Vec<u32> = match st.objects.get_mut(&cv) {
                    Some(Obj::Cv { waiters }) => {
                        if all {
                            waiters.drain(..).collect()
                        } else {
                            waiters.pop_front().into_iter().collect()
                        }
                    }
                    _ => Vec::new(),
                };
                for w in woken {
                    let t = &mut st.threads[w as usize];
                    t.status = Status::Ready;
                    t.pending = Some(Op::Relock {
                        mutex: t.wait_mutex,
                        cv,
                    });
                    t.timed_out = false;
                    t.deadline = None;
                }
            }
        }
        let t = &mut st.threads[tid as usize];
        t.pending = None;
        if still_running {
            t.status = Status::Running;
            st.running = Some(tid);
            st.last_running = Some(tid);
        } else {
            t.status = Status::Blocked;
            st.last_running = None;
        }
    }

    /// At quiescence, fires the earliest timed condvar wait (ties broken
    /// by thread id), advancing the virtual clock to its deadline.
    /// Returns whether anything fired.
    fn fire_earliest_timeout(&self, st: &mut State) -> bool {
        let victim = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Blocked)
            .filter_map(|(i, t)| t.deadline.map(|d| (d, i as u32)))
            .min();
        let Some((deadline, tid)) = victim else {
            return false;
        };
        st.clock_ns = st.clock_ns.max(deadline);
        let (cv, mutex) = {
            let t = &st.threads[tid as usize];
            (t.wait_cv, t.wait_mutex)
        };
        if let Some(Obj::Cv { waiters }) = st.objects.get_mut(&cv) {
            waiters.retain(|&w| w != tid);
        }
        let t = &mut st.threads[tid as usize];
        t.status = Status::Ready;
        t.pending = Some(Op::Relock { mutex, cv });
        t.timed_out = true;
        t.deadline = None;
        true
    }

    /// A model thread's exit path (normal completion, abort, or panic).
    fn thread_exit(&self, tid: u32, panic_msg: Option<String>) {
        let mut st = self.lock();
        {
            let t = &mut st.threads[tid as usize];
            t.status = Status::Finished;
            t.pending = None;
        }
        st.live = st.live.saturating_sub(1);
        if st.running == Some(tid) {
            st.running = None;
        }
        if st.last_running == Some(tid) {
            st.last_running = None;
        }
        if let Some(msg) = panic_msg {
            st.fail(FailureKind::Panic, format!("T{tid} panicked: {msg}"));
        }
        self.schedule(&mut st);
        self.cv.notify_all();
    }
}

fn classify_deadlock(st: &State) -> Failure {
    let mut parked = Vec::new();
    let mut lock_blocked = Vec::new();
    for (i, t) in st.threads.iter().enumerate() {
        match (t.status, t.pending) {
            (Status::Blocked, _) => parked.push(format!("T{i} waits on o{}", t.wait_cv)),
            (Status::Ready, Some(op)) => lock_blocked.push(format!("T{i} blocked at {op}")),
            _ => {}
        }
    }
    if lock_blocked.is_empty() && !parked.is_empty() {
        Failure {
            kind: FailureKind::LostWakeup,
            message: format!(
                "every live thread is parked on an untimed condvar wait with no notifier: {}",
                parked.join("; ")
            ),
        }
    } else {
        Failure {
            kind: FailureKind::Deadlock,
            message: format!("no runnable thread: {}", {
                let mut all = lock_blocked;
                all.extend(parked);
                all.join("; ")
            }),
        }
    }
}

/// Unwinds the calling model thread out of an aborted run.  A thread
/// that is already unwinding just returns — the op is skipped and the
/// abort protocol owns the virtual state.
fn abort_unwind() {
    if !std::thread::panicking() {
        std::panic::panic_any(CheckAbort);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Installs the process-wide panic hook once: model/controller panics
/// are recorded into their session (so the failure *report* carries the
/// message) instead of being printed, and `CheckAbort` unwinds stay
/// silent.  Panics on unrelated threads keep the previous hook.
fn install_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CheckAbort>().is_some() {
                return;
            }
            let ctx = CTX.with(|c| c.borrow().clone());
            match ctx {
                Some(Ctx::Model { session, tid }) => {
                    // Record and begin the abort *now*, before unwinding
                    // runs drop code that may take real locks held by
                    // suspended siblings.
                    let msg = info
                        .payload()
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| info.payload().downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    let mut st = session.lock();
                    st.fail(FailureKind::Panic, format!("T{tid} panicked: {msg}"));
                    session.cv.notify_all();
                }
                Some(Ctx::Controller { .. }) => {}
                None => prev(info),
            }
        }));
    });
}

// ---------------------------------------------------------------------
// Public op entry points (called from `crate::sync`)
// ---------------------------------------------------------------------

pub(crate) fn mutex_lock(addr: usize) {
    if !on_checked_thread() {
        return;
    }
    with_model(|sess, tid| {
        let op = {
            let mut st = sess.lock();
            Op::Lock(st.obj_id(addr, Kind::Mutex))
        };
        sess.yield_op(tid, None, op);
    });
}

pub(crate) fn mutex_unlock(addr: usize) {
    if !on_checked_thread() {
        return;
    }
    with_model(|sess, tid| {
        let op = {
            let mut st = sess.lock();
            Op::Unlock(st.obj_id(addr, Kind::Mutex))
        };
        sess.yield_op(tid, None, op);
    });
}

pub(crate) fn rw_read(addr: usize) {
    if !on_checked_thread() {
        return;
    }
    with_model(|sess, tid| {
        let op = {
            let mut st = sess.lock();
            Op::RwRead(st.obj_id(addr, Kind::Rw))
        };
        sess.yield_op(tid, None, op);
    });
}

pub(crate) fn rw_write(addr: usize) {
    if !on_checked_thread() {
        return;
    }
    with_model(|sess, tid| {
        let op = {
            let mut st = sess.lock();
            Op::RwWrite(st.obj_id(addr, Kind::Rw))
        };
        sess.yield_op(tid, None, op);
    });
}

pub(crate) fn rw_unlock(addr: usize) {
    if !on_checked_thread() {
        return;
    }
    with_model(|sess, tid| {
        let op = {
            let mut st = sess.lock();
            Op::RwUnlock(st.obj_id(addr, Kind::Rw))
        };
        sess.yield_op(tid, None, op);
    });
}

/// Virtual condvar wait: release `mutex_addr`, park on `cv_addr`, and
/// return the timed-out flag once rescheduled.  The caller must have
/// dropped the real guard already and re-takes the real lock after.
pub(crate) fn cond_wait(cv_addr: usize, mutex_addr: usize, timeout: Option<Duration>) -> bool {
    if !on_checked_thread() {
        return false;
    }
    with_model(|sess, tid| {
        let op = {
            let mut st = sess.lock();
            let cv = st.obj_id(cv_addr, Kind::Cv);
            let mutex = st.obj_id(mutex_addr, Kind::Mutex);
            Op::Wait { cv, mutex }
        };
        sess.yield_op(tid, timeout, op)
    })
    .unwrap_or(false)
}

pub(crate) fn notify(cv_addr: usize, all: bool) {
    if !on_checked_thread() {
        return;
    }
    with_model(|sess, tid| {
        let op = {
            let mut st = sess.lock();
            Op::Notify {
                cv: st.obj_id(cv_addr, Kind::Cv),
                all,
            }
        };
        sess.yield_op(tid, None, op);
    });
}

pub(crate) fn atomic_load(addr: usize) {
    if !on_checked_thread() {
        return;
    }
    with_model(|sess, tid| {
        let op = {
            let mut st = sess.lock();
            Op::Load(st.obj_id(addr, Kind::Atomic))
        };
        sess.yield_op(tid, None, op);
    });
}

pub(crate) fn atomic_store(addr: usize) {
    if !on_checked_thread() {
        return;
    }
    with_model(|sess, tid| {
        let op = {
            let mut st = sess.lock();
            Op::Store(st.obj_id(addr, Kind::Atomic))
        };
        sess.yield_op(tid, None, op);
    });
}

// ---------------------------------------------------------------------
// Scenario harness
// ---------------------------------------------------------------------

/// The controller-side handle a scenario uses to spawn model threads and
/// start the schedule.
pub struct Handle {
    session: Arc<Session>,
    joins: RefCell<Vec<std::thread::JoinHandle<()>>>,
    went: Cell<bool>,
}

impl Handle {
    /// Registers and launches one model thread.  The thread parks
    /// immediately; no user code runs until [`go`](Handle::go).
    /// Registration order assigns thread ids `0, 1, 2, ...`.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        let session = Arc::clone(&self.session);
        let tid = {
            let mut st = session.lock();
            assert!(!st.started, "spawn after go()");
            st.threads.push(ThreadSt::new());
            st.live += 1;
            (st.threads.len() - 1) as u32
        };
        let handle = std::thread::Builder::new()
            .name(format!("chk-T{tid}"))
            .spawn(move || {
                CTX.with(|c| {
                    *c.borrow_mut() = Some(Ctx::Model {
                        session: Arc::clone(&session),
                        tid,
                    })
                });
                // Wait for the Start grant (or an abort before launch).
                {
                    let mut st = session.lock();
                    loop {
                        if st.aborting {
                            drop(st);
                            session.thread_exit(tid, None);
                            return;
                        }
                        if st.running == Some(tid) {
                            break;
                        }
                        st = session.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                }
                let result = catch_unwind(AssertUnwindSafe(f));
                let panic_msg = match result {
                    Ok(()) => None,
                    Err(p) if p.downcast_ref::<CheckAbort>().is_some() => None,
                    Err(p) => Some(panic_message(p.as_ref())),
                };
                session.thread_exit(tid, panic_msg);
            })
            .expect("spawn model thread");
        self.joins.borrow_mut().push(handle);
    }

    /// Starts the schedule and blocks until every model thread has
    /// finished (or the run aborted).  Returns whether the run completed
    /// cleanly — scenarios gate their teardown assertions on it.
    pub fn go(&self) -> bool {
        self.went.set(true);
        {
            let mut st = self.session.lock();
            st.started = true;
            self.session.schedule(&mut st);
            while st.live > 0 {
                st = self.session.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        for h in self.joins.borrow_mut().drain(..) {
            let _ = h.join();
        }
        let st = self.session.lock();
        st.failure.is_none() && !st.pruned
    }

    fn abort(&self) {
        let mut st = self.session.lock();
        st.aborting = true;
        self.session.cv.notify_all();
        drop(st);
        while self.session.lock().live > 0 {
            let st = self.session.lock();
            let _ = self
                .session
                .cv
                .wait_timeout(st, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner());
        }
        for h in self.joins.borrow_mut().drain(..) {
            let _ = h.join();
        }
    }
}

/// Executes `scenario` once under the schedule described by `spec`.
///
/// The scenario closure runs on the calling thread (the *controller*):
/// it sets up shared state, spawns model threads via [`Handle::spawn`],
/// calls [`Handle::go`], and — when `go` returns `true` — asserts
/// whatever invariants must hold in every terminal state.  Failures of
/// any kind (scheduler-detected or assertion panics) land in the
/// returned [`RunOutcome`].
pub fn run_scenario(spec: RunSpec, scenario: impl FnOnce(&Handle)) -> RunOutcome {
    install_hook();
    let session = Arc::new(Session {
        st: StdMutex::new(State::new(spec)),
        cv: StdCondvar::new(),
    });
    struct CtxGuard;
    impl Drop for CtxGuard {
        fn drop(&mut self) {
            CTX.with(|c| *c.borrow_mut() = None);
        }
    }
    let _ctx = CtxGuard;
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx::Controller {
            session: Arc::clone(&session),
        })
    });
    let handle = Handle {
        session: Arc::clone(&session),
        joins: RefCell::new(Vec::new()),
        went: Cell::new(false),
    };
    let result = catch_unwind(AssertUnwindSafe(|| scenario(&handle)));
    match &result {
        Ok(()) if !handle.went.get() => {
            // Scenario forgot go(): release (and drain) its threads.
            handle.go();
        }
        Ok(()) => {}
        Err(_) => {
            // Setup or teardown panicked; don't start user code, just
            // unwind whatever was spawned.
            handle.abort();
        }
    }
    let mut st = session.lock();
    if let Err(p) = result {
        if p.downcast_ref::<CheckAbort>().is_none() && st.failure.is_none() {
            let msg = panic_message(p.as_ref());
            st.failure = Some(Failure {
                kind: FailureKind::Panic,
                message: format!("scenario panicked: {msg}"),
            });
        }
    }
    let status = if let Some(f) = &st.failure {
        RunStatus::Failed(f.clone())
    } else if st.pruned {
        RunStatus::Pruned
    } else {
        RunStatus::Complete
    };
    RunOutcome {
        status,
        choices: st.choices.clone(),
        steps: st.steps,
    }
}
