//! HPF-style data distributions (§3.1): per-dimension `Block`, `Cyclic`,
//! and `Whole` attributes over a 2-D (or degenerate 1-D) collection
//! shape, mapped onto a grid of threads.
//!
//! The (BLOCK, BLOCK) mapping reproduces the pC++ behaviour the paper
//! highlights in §4.1: a `P×P` grid on `N` threads uses an `s×s` thread
//! grid with `s = ⌊√N⌋`, so when `N` is not a perfect square, `N − s²`
//! threads own **no elements at all** — the reason Grid/Mgrid show no
//! speedup from 4 to 8 processors.

use extrap_time::ThreadId;

/// A 2-D element index `(row, col)`.  1-D collections use `(i, 0)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Index2(pub usize, pub usize);

/// Per-dimension distribution attribute.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dist1 {
    /// Contiguous blocks of `ceil(extent / threads)` indices per thread.
    Block,
    /// Round-robin assignment of indices to threads.
    Cyclic,
    /// The dimension is not distributed (every index maps to thread
    /// coordinate 0).
    Whole,
}

impl Dist1 {
    /// Thread coordinate owning index `i` of a dimension of `extent`
    /// split over `t` thread coordinates.
    fn coord_of(&self, i: usize, extent: usize, t: usize) -> usize {
        debug_assert!(i < extent);
        match self {
            Dist1::Block => {
                let per = extent.div_ceil(t.max(1));
                (i / per).min(t - 1)
            }
            Dist1::Cyclic => i % t.max(1),
            Dist1::Whole => 0,
        }
    }

    /// Short name for display (`B`, `C`, `W`).
    pub fn letter(&self) -> char {
        match self {
            Dist1::Block => 'B',
            Dist1::Cyclic => 'C',
            Dist1::Whole => 'W',
        }
    }
}

/// A complete distribution: collection shape, per-dimension attributes,
/// and the thread grid.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Distribution {
    /// Collection shape `(rows, cols)`.
    pub shape: (usize, usize),
    /// Distribution attributes `(rows, cols)`.
    pub dist: (Dist1, Dist1),
    /// Thread grid `(rows, cols)`; `tgrid.0 * tgrid.1 <= n_threads`.
    pub tgrid: (usize, usize),
    /// Total threads in the program (≥ grid size; extras own nothing).
    pub n_threads: usize,
}

impl Distribution {
    /// Builds a distribution, choosing the pC++ thread grid for the
    /// attribute combination:
    ///
    /// * both dims distributed → `⌊√n⌋ × ⌊√n⌋`,
    /// * only rows distributed → `n × 1`,
    /// * only cols distributed → `1 × n`,
    /// * nothing distributed → `1 × 1`.
    pub fn new(shape: (usize, usize), dist: (Dist1, Dist1), n_threads: usize) -> Distribution {
        assert!(shape.0 > 0 && shape.1 > 0, "empty collection shape");
        assert!(n_threads > 0, "need at least one thread");
        let tgrid = match (dist.0, dist.1) {
            (Dist1::Whole, Dist1::Whole) => (1, 1),
            (_, Dist1::Whole) => (n_threads, 1),
            (Dist1::Whole, _) => (1, n_threads),
            (_, _) => {
                let s = isqrt(n_threads);
                (s, s)
            }
        };
        Distribution {
            shape,
            dist,
            tgrid,
            n_threads,
        }
    }

    /// Builds a distribution with an explicit thread grid (for scratch
    /// collections that must align with another collection's grid, e.g.
    /// per-thread-column reduction buffers).
    ///
    /// # Panics
    /// Panics if the grid needs more threads than the program has.
    pub fn with_tgrid(
        shape: (usize, usize),
        dist: (Dist1, Dist1),
        tgrid: (usize, usize),
        n_threads: usize,
    ) -> Distribution {
        assert!(shape.0 > 0 && shape.1 > 0, "empty collection shape");
        assert!(
            tgrid.0 * tgrid.1 <= n_threads,
            "thread grid {tgrid:?} exceeds {n_threads} threads"
        );
        Distribution {
            shape,
            dist,
            tgrid,
            n_threads,
        }
    }

    /// A 1-D block distribution of `n_elems` elements.
    pub fn block_1d(n_elems: usize, n_threads: usize) -> Distribution {
        Distribution::new((n_elems, 1), (Dist1::Block, Dist1::Whole), n_threads)
    }

    /// A 1-D cyclic distribution of `n_elems` elements.
    pub fn cyclic_1d(n_elems: usize, n_threads: usize) -> Distribution {
        Distribution::new((n_elems, 1), (Dist1::Cyclic, Dist1::Whole), n_threads)
    }

    /// The paper's (BLOCK, BLOCK) 2-D grid distribution.
    pub fn block_block(rows: usize, cols: usize, n_threads: usize) -> Distribution {
        Distribution::new((rows, cols), (Dist1::Block, Dist1::Block), n_threads)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.shape.0 * self.shape.1
    }

    /// True when the collection has no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattened (row-major) element id for an index.
    pub fn flat(&self, idx: Index2) -> usize {
        debug_assert!(idx.0 < self.shape.0 && idx.1 < self.shape.1);
        idx.0 * self.shape.1 + idx.1
    }

    /// The owning thread of an element.
    pub fn owner(&self, idx: Index2) -> ThreadId {
        let tr = self.dist.0.coord_of(idx.0, self.shape.0, self.tgrid.0);
        let tc = self.dist.1.coord_of(idx.1, self.shape.1, self.tgrid.1);
        ThreadId::from_index(tr * self.tgrid.1 + tc)
    }

    /// Iterates over the indices owned by `thread`, in row-major order.
    pub fn local_indices(&self, thread: ThreadId) -> impl Iterator<Item = Index2> + '_ {
        let shape = self.shape;
        (0..shape.0).flat_map(move |r| {
            (0..shape.1)
                .map(move |c| Index2(r, c))
                .filter(move |&i| self.owner(i) == thread)
        })
    }

    /// Number of elements owned by `thread`.
    pub fn local_count(&self, thread: ThreadId) -> usize {
        self.local_indices(thread).count()
    }

    /// Threads that own at least one element.
    pub fn busy_threads(&self) -> usize {
        (0..self.n_threads)
            .filter(|&t| self.local_count(ThreadId::from_index(t)) > 0)
            .count()
    }

    /// Display label like `(B,B)` used by the Matmul experiment.
    pub fn label(&self) -> String {
        format!("({},{})", self.dist.0.letter(), self.dist.1.letter())
    }
}

/// Integer square root (floor).
pub fn isqrt(n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let mut s = (n as f64).sqrt() as usize;
    while (s + 1) * (s + 1) <= n {
        s += 1;
    }
    while s * s > n {
        s -= 1;
    }
    s.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_values() {
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(3), 1);
        assert_eq!(isqrt(4), 2);
        assert_eq!(isqrt(8), 2);
        assert_eq!(isqrt(9), 3);
        assert_eq!(isqrt(16), 4);
        assert_eq!(isqrt(32), 5);
        assert_eq!(isqrt(36), 6);
    }

    #[test]
    fn block_1d_partitions_contiguously() {
        let d = Distribution::block_1d(8, 4);
        let owners: Vec<u32> = (0..8).map(|i| d.owner(Index2(i, 0)).0).collect();
        assert_eq!(owners, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn cyclic_1d_round_robins() {
        let d = Distribution::cyclic_1d(8, 3);
        let owners: Vec<u32> = (0..8).map(|i| d.owner(Index2(i, 0)).0).collect();
        assert_eq!(owners, vec![0, 1, 2, 0, 1, 2, 0, 1]);
    }

    #[test]
    fn ownership_is_a_partition() {
        // Every element is owned by exactly one thread, for every
        // distribution kind.
        for dist in [
            (Dist1::Block, Dist1::Block),
            (Dist1::Block, Dist1::Cyclic),
            (Dist1::Cyclic, Dist1::Block),
            (Dist1::Cyclic, Dist1::Cyclic),
            (Dist1::Whole, Dist1::Block),
            (Dist1::Block, Dist1::Whole),
            (Dist1::Whole, Dist1::Whole),
        ] {
            for n in [1, 2, 4, 7, 8, 16] {
                let d = Distribution::new((6, 6), dist, n);
                let total: usize = (0..n).map(|t| d.local_count(ThreadId::from_index(t))).sum();
                assert_eq!(total, 36, "dist {dist:?} n {n}");
            }
        }
    }

    #[test]
    fn block_block_idles_threads_when_not_square() {
        // The §4.1 artifact: with 8 threads the thread grid is 2x2, so
        // only 4 threads own elements.
        let d8 = Distribution::block_block(16, 16, 8);
        assert_eq!(d8.tgrid, (2, 2));
        assert_eq!(d8.busy_threads(), 4);
        // With 4 threads everyone works; the per-thread share is the same
        // as with 8 -> no speedup from 4 to 8.
        let d4 = Distribution::block_block(16, 16, 4);
        assert_eq!(d4.local_count(ThreadId(0)), d8.local_count(ThreadId(0)));
        // 16 threads: 4x4 grid, all busy.
        let d16 = Distribution::block_block(16, 16, 16);
        assert_eq!(d16.busy_threads(), 16);
        // 32 threads: 5x5 grid, 25 busy.
        let d32 = Distribution::block_block(20, 20, 32);
        assert_eq!(d32.busy_threads(), 25);
    }

    #[test]
    fn whole_dimension_collapses_thread_grid() {
        let d = Distribution::new((8, 8), (Dist1::Block, Dist1::Whole), 4);
        assert_eq!(d.tgrid, (4, 1));
        // Rows 0..1 on thread 0, etc.
        assert_eq!(d.owner(Index2(0, 5)), ThreadId(0));
        assert_eq!(d.owner(Index2(7, 0)), ThreadId(3));

        let d = Distribution::new((8, 8), (Dist1::Whole, Dist1::Cyclic), 4);
        assert_eq!(d.tgrid, (1, 4));
        assert_eq!(d.owner(Index2(3, 5)), ThreadId(1));
    }

    #[test]
    fn whole_whole_is_thread_zero_only() {
        let d = Distribution::new((4, 4), (Dist1::Whole, Dist1::Whole), 8);
        assert_eq!(d.busy_threads(), 1);
        assert_eq!(d.local_count(ThreadId(0)), 16);
    }

    #[test]
    fn local_indices_match_owner() {
        let d = Distribution::block_block(10, 10, 9);
        for t in 0..9 {
            let t = ThreadId::from_index(t);
            for idx in d.local_indices(t) {
                assert_eq!(d.owner(idx), t);
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Distribution::block_block(4, 4, 4).label(), "(B,B)");
        assert_eq!(
            Distribution::new((4, 4), (Dist1::Cyclic, Dist1::Whole), 4).label(),
            "(C,W)"
        );
    }

    #[test]
    fn flat_is_row_major() {
        let d = Distribution::block_block(4, 5, 4);
        assert_eq!(d.flat(Index2(0, 0)), 0);
        assert_eq!(d.flat(Index2(1, 0)), 5);
        assert_eq!(d.flat(Index2(3, 4)), 19);
    }
}
