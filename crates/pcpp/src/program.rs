//! Program execution: spawn *n* runtime threads under the non-preemptive
//! scheduler, give each a [`ThreadCtx`], and collect the instrumented
//! 1-processor trace.

use crate::clock::WorkModel;
use crate::instrument::{Recorder, TimeSource};
use crate::scheduler::Scheduler;
use extrap_time::{BarrierId, DurationNs, ElementId, ThreadId};
use extrap_trace::{EventKind, ProgramTrace};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A configured data-parallel program: thread count, host work model,
/// and instrumentation overhead.
#[derive(Clone, Debug)]
pub struct Program {
    n_threads: usize,
    work: WorkModel,
    event_overhead: DurationNs,
    time_source: TimeSource,
}

impl Program {
    /// A program of `n_threads` threads on the default (Sun 4) host.
    pub fn new(n_threads: usize) -> Program {
        assert!(n_threads > 0, "need at least one thread");
        Program {
            n_threads,
            work: WorkModel::default(),
            event_overhead: DurationNs::ZERO,
            time_source: TimeSource::Virtual,
        }
    }

    /// Overrides the host work model.
    pub fn with_work_model(mut self, work: WorkModel) -> Program {
        self.work = work;
        self
    }

    /// Charges a virtual cost for recording each trace event (exercises
    /// the intrusion compensation in trace translation).
    pub fn with_event_overhead(mut self, overhead: DurationNs) -> Program {
        self.event_overhead = overhead;
        self
    }

    /// Measures with the host's wall clock instead of the virtual clock
    /// — the original paper's measurement mode.  Traces are then
    /// machine- and run-dependent (not bit-reproducible); the virtual
    /// clock remains the default for experiments.
    pub fn with_wall_time(mut self) -> Program {
        self.time_source = TimeSource::Wall;
        self
    }

    /// Thread count.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Runs `body` once per thread under the non-preemptive scheduler and
    /// returns the recorded 1-processor program trace.
    ///
    /// `body` is shared by all threads; per-thread state lives in the
    /// [`ThreadCtx`].  Panics in any thread are propagated.
    pub fn run<F>(&self, body: F) -> ProgramTrace
    where
        F: Fn(&mut ThreadCtx) + Sync,
    {
        // The run-token scheduler below is measurement substrate, not a
        // model-checking target: opt this thread out so a scenario that
        // drives `Program::run` doesn't try to schedule it.
        crate::sync::unchecked_scope(|| self.run_inner(body))
    }

    fn run_inner<F>(&self, body: F) -> ProgramTrace
    where
        F: Fn(&mut ThreadCtx) + Sync,
    {
        let recorder = Recorder::with_source(self.event_overhead, self.time_source);
        let scheduler = Arc::new(Scheduler::new(self.n_threads));
        let body = &body;
        let recorder_ref = &recorder;
        std::thread::scope(|s| {
            for i in 0..self.n_threads {
                let scheduler = Arc::clone(&scheduler);
                let work = self.work;
                s.spawn(move || {
                    scheduler.wait_first_turn(i);
                    let mut ctx = ThreadCtx {
                        id: ThreadId::from_index(i),
                        n_threads: scheduler.n_threads(),
                        work,
                        recorder: recorder_ref,
                        scheduler: &scheduler,
                        barriers: 0,
                    };
                    ctx.recorder.record(ctx.id, EventKind::ThreadBegin);
                    let result = catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
                    match result {
                        Ok(()) => {
                            ctx.recorder.record(ctx.id, EventKind::ThreadEnd);
                            scheduler.finish(i);
                        }
                        Err(payload) => {
                            scheduler.poison();
                            resume_unwind(payload);
                        }
                    }
                });
            }
        });
        recorder.into_trace(self.n_threads)
    }
}

/// Per-thread execution context handed to the program body.
pub struct ThreadCtx<'a> {
    id: ThreadId,
    n_threads: usize,
    work: WorkModel,
    recorder: &'a Recorder,
    scheduler: &'a Scheduler,
    barriers: usize,
}

impl ThreadCtx<'_> {
    /// This thread's id.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// Total threads in the program.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// The host work model.
    pub fn work(&self) -> &WorkModel {
        &self.work
    }

    /// Charges raw virtual time.
    pub fn charge(&mut self, d: DurationNs) {
        self.recorder.advance(d);
    }

    /// Charges `n` floating-point operations.
    pub fn charge_flops(&mut self, n: u64) {
        self.charge(self.work.flops(n));
    }

    /// Charges `n` integer/logic operations.
    pub fn charge_int_ops(&mut self, n: u64) {
        self.charge(self.work.int_ops(n));
    }

    /// Charges `n` memory operations.
    pub fn charge_mem_ops(&mut self, n: u64) {
        self.charge(self.work.mem_ops(n));
    }

    /// Charges one collection-element access overhead.
    pub fn charge_elem_access(&mut self) {
        self.charge(self.work.elem_access);
    }

    /// Enters the next global barrier (all threads must call `barrier`
    /// the same number of times — the data-parallel execution model).
    pub fn barrier(&mut self) {
        let b = BarrierId::from_index(self.barriers);
        self.barriers += 1;
        self.recorder
            .record(self.id, EventKind::BarrierEnter { barrier: b });
        self.scheduler.barrier(self.id.index());
        self.recorder
            .record(self.id, EventKind::BarrierExit { barrier: b });
    }

    /// Barriers passed so far by this thread.
    pub fn barriers_passed(&self) -> usize {
        self.barriers
    }

    /// Records a user marker event.
    pub fn marker(&mut self, id: u32) {
        self.recorder.record(self.id, EventKind::Marker { id });
    }

    /// Records a remote element read (used by [`crate::Collection`];
    /// public so custom containers can instrument themselves).
    pub fn record_remote_read(
        &mut self,
        owner: ThreadId,
        element: ElementId,
        declared_bytes: u32,
        actual_bytes: u32,
    ) {
        debug_assert_ne!(owner, self.id, "remote read of a local element");
        self.recorder.record(
            self.id,
            EventKind::RemoteRead {
                owner,
                element,
                declared_bytes,
                actual_bytes,
            },
        );
    }

    /// Records a remote element write.
    pub fn record_remote_write(
        &mut self,
        owner: ThreadId,
        element: ElementId,
        declared_bytes: u32,
        actual_bytes: u32,
    ) {
        debug_assert_ne!(owner, self.id, "remote write of a local element");
        self.recorder.record(
            self.id,
            EventKind::RemoteWrite {
                owner,
                element,
                declared_bytes,
                actual_bytes,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extrap_time::TimeNs;

    #[test]
    fn phase_structure_matches_phase_program_builder() {
        // A program where every thread charges 1000ns then barriers,
        // twice, must produce the same trace as the synthetic builder.
        let trace = Program::new(3)
            .with_work_model(WorkModel::unit())
            .run(|ctx| {
                for _ in 0..2 {
                    ctx.charge(DurationNs(1_000));
                    ctx.barrier();
                }
            });
        let mut synth = extrap_trace::PhaseProgram::new(3);
        synth.push_uniform_phase(DurationNs(1_000));
        synth.push_uniform_phase(DurationNs(1_000));
        assert_eq!(trace, synth.record());
    }

    #[test]
    fn translated_runtime_trace_collapses() {
        let trace = Program::new(4).run(|ctx| {
            ctx.charge(DurationNs(500));
            ctx.barrier();
        });
        let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
        assert_eq!(ts.makespan(), TimeNs(500));
    }

    #[test]
    fn skewed_work_is_recorded_per_thread() {
        let trace = Program::new(2).run(|ctx| {
            let mine = (ctx.id().0 as u64 + 1) * 100;
            ctx.charge(DurationNs(mine));
            ctx.barrier();
        });
        let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
        // Thread 1 computes 200ns; barrier releases then.
        assert_eq!(ts.makespan(), TimeNs(200));
    }

    #[test]
    fn charge_helpers_scale_by_work_model() {
        let trace = Program::new(1)
            .with_work_model(WorkModel {
                flop: DurationNs(10),
                int_op: DurationNs(2),
                mem_op: DurationNs(3),
                elem_access: DurationNs(5),
            })
            .run(|ctx| {
                ctx.charge_flops(4); // 40
                ctx.charge_int_ops(5); // 10
                ctx.charge_mem_ops(2); // 6
                ctx.charge_elem_access(); // 5
            });
        let end = trace.records.last().unwrap().time;
        assert_eq!(end, TimeNs(61));
    }

    #[test]
    fn markers_appear_in_trace() {
        let trace = Program::new(1).run(|ctx| {
            ctx.marker(42);
        });
        assert!(trace
            .records
            .iter()
            .any(|r| r.kind == EventKind::Marker { id: 42 }));
    }

    #[test]
    fn event_overhead_inflates_clock() {
        let trace = Program::new(1)
            .with_event_overhead(DurationNs(9))
            .run(|ctx| {
                ctx.charge(DurationNs(100));
            });
        // begin (overhead 9) + 100 compute -> end at 109.
        assert_eq!(trace.records.last().unwrap().time, TimeNs(109));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            Program::new(5).run(|ctx| {
                for p in 0..4 {
                    ctx.charge(DurationNs((ctx.id().0 as u64 + 1) * (p + 1) * 10));
                    ctx.barrier();
                }
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn wall_time_mode_produces_monotone_usable_traces() {
        let trace = Program::new(3).with_wall_time().run(|ctx| {
            // Burn some real time; charge() is a no-op in wall mode.
            let mut x = 0u64;
            for i in 0..200_000u64 {
                x = x.wrapping_mul(31).wrapping_add(i);
            }
            std::hint::black_box(x);
            ctx.charge(DurationNs(1)); // ignored
            ctx.barrier();
        });
        trace.validate().unwrap();
        let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
        assert!(ts.makespan().as_ns() > 0, "wall time advanced");
        // And the result extrapolates like any other trace.
        let stats = extrap_trace::TraceStats::from_set(&ts);
        assert_eq!(stats.barriers(), 1);
    }

    #[test]
    fn body_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Program::new(3).run(|ctx| {
                if ctx.id().0 == 1 {
                    panic!("boom");
                }
                ctx.barrier();
            });
        });
        assert!(result.is_err());
    }
}
