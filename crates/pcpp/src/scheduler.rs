//! The non-preemptive run-token scheduler.
//!
//! All program threads exist as OS threads, but a single *turn* token
//! decides which one executes; every other thread is parked on a condition
//! variable.  The token moves only at the pC++ scheduling points — program
//! start, barrier entry, barrier release, and thread completion — so the
//! execution is exactly the "n-thread program on a single processor using
//! a non-preemptive threads package" of §3.2, and fully deterministic.

use crate::sync::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};

#[derive(Debug)]
struct State {
    /// Which thread may run.
    turn: usize,
    /// Threads that entered the current barrier so far.
    arrived: usize,
    /// Barrier generation; bumps when the last thread enters.
    gen: u64,
}

/// The scheduler shared by all threads of one program run.
#[derive(Debug)]
pub struct Scheduler {
    n: usize,
    state: Mutex<State>,
    cv: Condvar,
    poisoned: AtomicBool,
}

impl Scheduler {
    /// Creates a scheduler for `n` threads; thread 0 holds the initial
    /// turn.
    pub fn new(n: usize) -> Scheduler {
        assert!(n > 0);
        Scheduler {
            n,
            state: Mutex::new(State {
                turn: 0,
                arrived: 0,
                gen: 0,
            }),
            cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Thread count.
    pub fn n_threads(&self) -> usize {
        self.n
    }

    fn check_poison(&self) {
        if self.poisoned.load(Ordering::Relaxed) {
            panic!("pcpp-rt scheduler poisoned: another program thread panicked");
        }
    }

    /// Marks the run as failed and wakes every parked thread so it can
    /// unwind.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
        let _guard = self.state.lock();
        self.cv.notify_all();
    }

    /// Blocks until it is thread `i`'s turn for the first time.
    pub fn wait_first_turn(&self, i: usize) {
        let mut st = self.state.lock();
        while st.turn != i {
            self.cv.wait(&mut st);
            self.check_poison();
        }
    }

    /// Enters the global barrier as thread `i` and blocks until the
    /// barrier is released *and* it is `i`'s turn again.
    pub fn barrier(&self, i: usize) {
        let mut st = self.state.lock();
        debug_assert_eq!(st.turn, i, "thread ran out of turn");
        let entered_gen = st.gen;
        st.arrived += 1;
        if st.arrived == self.n {
            st.arrived = 0;
            st.gen += 1;
            st.turn = 0;
        } else {
            st.turn = i + 1;
        }
        self.cv.notify_all();
        while !(st.gen > entered_gen && st.turn == i) {
            self.cv.wait(&mut st);
            self.check_poison();
        }
    }

    /// Thread `i` finished: hand the turn to the next thread.
    pub fn finish(&self, i: usize) {
        let mut st = self.state.lock();
        debug_assert_eq!(st.turn, i, "thread finished out of turn");
        st.turn = i + 1;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Runs `n` threads that each append (thread, step) markers around
    /// `phases` barriers; checks full serialization order.
    fn run_order(n: usize, phases: usize) -> Vec<(usize, usize)> {
        let sched = Arc::new(Scheduler::new(n));
        let log = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for i in 0..n {
                let sched = Arc::clone(&sched);
                let log = Arc::clone(&log);
                s.spawn(move || {
                    sched.wait_first_turn(i);
                    for ph in 0..phases {
                        log.lock().push((i, ph));
                        sched.barrier(i);
                    }
                    log.lock().push((i, phases));
                    sched.finish(i);
                });
            }
        });
        Arc::try_unwrap(log).unwrap().into_inner()
    }

    #[test]
    fn threads_run_in_id_order_per_phase() {
        let order = run_order(3, 2);
        let expected: Vec<(usize, usize)> = (0..=2usize)
            .flat_map(|ph| (0..3).map(move |t| (t, ph)))
            .collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn single_thread_needs_no_waiting() {
        let order = run_order(1, 3);
        assert_eq!(order, vec![(0, 0), (0, 1), (0, 2), (0, 3)]);
    }

    #[test]
    fn many_threads_many_phases_are_deterministic() {
        assert_eq!(run_order(8, 5), run_order(8, 5));
    }

    #[test]
    fn poison_unblocks_waiters() {
        let sched = Arc::new(Scheduler::new(2));
        let s2 = Arc::clone(&sched);
        let waiter = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                s2.wait_first_turn(1);
            }));
            result.is_err()
        });
        // Give the waiter time to park, then poison.
        std::thread::sleep(std::time::Duration::from_millis(20));
        sched.poison();
        assert!(waiter.join().unwrap(), "waiter should panic on poison");
    }
}
