//! Distributed collections: the pC++ object-parallel data structure.
//!
//! A collection owns a 2-D (or 1-D) array of elements distributed over
//! threads per a [`Distribution`].  Under the 1-processor runtime the
//! elements live in one global space, so remote reads are *directly
//! served* (identical timing to local reads, §3.2) — but they are
//! *recorded* as remote-access events carrying both the declared
//! (whole-element) size and the actual bytes the access needs.

use crate::distribution::{Distribution, Index2};
use crate::element::Element;
use crate::program::ThreadCtx;
use crate::sync::RwLock;
use extrap_time::{ElementId, ThreadId};

/// A distributed collection of elements.
pub struct Collection<T: Element> {
    dist: Distribution,
    data: Vec<RwLock<T>>,
}

impl<T: Element> Collection<T> {
    /// Builds a collection, initializing each element from its index.
    pub fn build(dist: Distribution, mut init: impl FnMut(Index2) -> T) -> Collection<T> {
        let (rows, cols) = dist.shape;
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(RwLock::new(init(Index2(r, c))));
            }
        }
        Collection { dist, data }
    }

    /// The collection's distribution.
    pub fn dist(&self) -> &Distribution {
        &self.dist
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Indices owned by `thread` (row-major order).
    pub fn local_indices(&self, thread: ThreadId) -> impl Iterator<Item = Index2> + '_ {
        self.dist.local_indices(thread)
    }

    /// The owner of an element.
    pub fn owner(&self, idx: Index2) -> ThreadId {
        self.dist.owner(idx)
    }

    fn slot(&self, idx: Index2) -> &RwLock<T> {
        &self.data[self.dist.flat(idx)]
    }

    /// Reads a whole element.  If the element is remote, a remote-read
    /// event is recorded with `actual == declared` (the access consumes
    /// the full element).
    pub fn read<R>(&self, ctx: &mut ThreadCtx<'_>, idx: Index2, f: impl FnOnce(&T) -> R) -> R {
        let guard = self.slot(idx).read();
        let declared = guard.size_bytes();
        self.note_read(ctx, idx, declared, declared);
        f(&guard)
    }

    /// Reads part of an element: `actual_bytes` is what the access really
    /// needs, while the declared size stays the whole element — exactly
    /// the compiler abstraction mismatch behind the §4.1 Grid anomaly.
    pub fn read_part<R>(
        &self,
        ctx: &mut ThreadCtx<'_>,
        idx: Index2,
        actual_bytes: u32,
        f: impl FnOnce(&T) -> R,
    ) -> R {
        let guard = self.slot(idx).read();
        let declared = guard.size_bytes();
        self.note_read(ctx, idx, declared, actual_bytes.min(declared).max(1));
        f(&guard)
    }

    /// Mutates a whole element.  Remote writes are recorded as one-way
    /// remote-write events (§5's "trivial extension"); the owner-computes
    /// benchmarks never use them, but Matmul-style broadcasts can.
    pub fn write(&self, ctx: &mut ThreadCtx<'_>, idx: Index2, f: impl FnOnce(&mut T)) {
        let mut guard = self.slot(idx).write();
        let declared = guard.size_bytes();
        self.note_write(ctx, idx, declared, declared);
        f(&mut guard);
    }

    /// Mutates part of an element (`actual_bytes` really transferred).
    pub fn write_part(
        &self,
        ctx: &mut ThreadCtx<'_>,
        idx: Index2,
        actual_bytes: u32,
        f: impl FnOnce(&mut T),
    ) {
        let mut guard = self.slot(idx).write();
        let declared = guard.size_bytes();
        self.note_write(ctx, idx, declared, actual_bytes.min(declared).max(1));
        f(&mut guard);
    }

    /// Copies a whole element out (records a remote read if needed).
    pub fn get(&self, ctx: &mut ThreadCtx<'_>, idx: Index2) -> T
    where
        T: Clone,
    {
        self.read(ctx, idx, |t| t.clone())
    }

    /// Reads an element *without* instrumentation (setup/verification
    /// code outside the measured program).
    pub fn peek<R>(&self, idx: Index2, f: impl FnOnce(&T) -> R) -> R {
        f(&self.slot(idx).read())
    }

    /// Writes an element *without* instrumentation (setup/verification).
    pub fn poke(&self, idx: Index2, f: impl FnOnce(&mut T)) {
        f(&mut self.slot(idx).write());
    }

    fn note_read(&self, ctx: &mut ThreadCtx<'_>, idx: Index2, declared: u32, actual: u32) {
        ctx.charge_elem_access();
        let owner = self.owner(idx);
        if owner != ctx.id() {
            ctx.record_remote_read(
                owner,
                ElementId::from_index(self.dist.flat(idx)),
                declared,
                actual,
            );
        }
    }

    fn note_write(&self, ctx: &mut ThreadCtx<'_>, idx: Index2, declared: u32, actual: u32) {
        ctx.charge_elem_access();
        let owner = self.owner(idx);
        if owner != ctx.id() {
            ctx.record_remote_write(
                owner,
                ElementId::from_index(self.dist.flat(idx)),
                declared,
                actual,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::WorkModel;
    use crate::program::Program;
    use extrap_trace::EventKind;

    #[test]
    fn local_reads_record_nothing() {
        let coll = Collection::<f64>::build(Distribution::block_1d(4, 2), |i| i.0 as f64);
        let trace = Program::new(2)
            .with_work_model(WorkModel::unit())
            .run(|ctx| {
                for idx in coll.local_indices(ctx.id()) {
                    let v = coll.read(ctx, idx, |v| *v);
                    assert_eq!(v, idx.0 as f64);
                }
            });
        assert!(!trace.records.iter().any(|r| r.kind.is_remote()));
    }

    #[test]
    fn remote_reads_record_owner_and_sizes() {
        let coll = Collection::<Vec<f64>>::build(Distribution::block_1d(2, 2), |_| vec![0.0; 16]);
        let trace = Program::new(2)
            .with_work_model(WorkModel::unit())
            .run(|ctx| {
                if ctx.id().0 == 0 {
                    // Element 1 belongs to thread 1: full read then a
                    // 8-byte partial read.
                    coll.read(ctx, Index2(1, 0), |v| v.len());
                    coll.read_part(ctx, Index2(1, 0), 8, |v| v.len());
                }
                ctx.barrier();
            });
        let remotes: Vec<_> = trace
            .records
            .iter()
            .filter(|r| r.kind.is_remote())
            .collect();
        assert_eq!(remotes.len(), 2);
        match remotes[0].kind {
            EventKind::RemoteRead {
                owner,
                declared_bytes,
                actual_bytes,
                ..
            } => {
                assert_eq!(owner.0, 1);
                assert_eq!(declared_bytes, 128);
                assert_eq!(actual_bytes, 128);
            }
            ref other => panic!("unexpected {other:?}"),
        }
        match remotes[1].kind {
            EventKind::RemoteRead {
                declared_bytes,
                actual_bytes,
                ..
            } => {
                assert_eq!(declared_bytes, 128);
                assert_eq!(actual_bytes, 8);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn remote_writes_record_events() {
        let coll = Collection::<f64>::build(Distribution::block_1d(2, 2), |_| 0.0);
        let trace = Program::new(2)
            .with_work_model(WorkModel::unit())
            .run(|ctx| {
                if ctx.id().0 == 0 {
                    coll.write(ctx, Index2(1, 0), |v| *v = 7.0);
                }
                ctx.barrier();
            });
        assert_eq!(
            trace
                .records
                .iter()
                .filter(|r| matches!(r.kind, EventKind::RemoteWrite { .. }))
                .count(),
            1
        );
        assert_eq!(coll.peek(Index2(1, 0), |v| *v), 7.0);
    }

    #[test]
    fn peek_and_poke_are_uninstrumented() {
        let coll = Collection::<f64>::build(Distribution::block_1d(4, 2), |_| 1.0);
        coll.poke(Index2(3, 0), |v| *v = 9.0);
        assert_eq!(coll.peek(Index2(3, 0), |v| *v), 9.0);
    }

    #[test]
    fn computation_results_are_correct_across_threads() {
        // A reduction computed through the runtime produces the right
        // numeric answer (the benchmarks rely on this).
        let n = 16;
        let coll = Collection::<f64>::build(Distribution::cyclic_1d(n, 4), |i| (i.0 + 1) as f64);
        let partial = Collection::<f64>::build(Distribution::block_1d(4, 4), |_| 0.0);
        let trace = Program::new(4)
            .with_work_model(WorkModel::unit())
            .run(|ctx| {
                let mut acc = 0.0;
                for idx in coll.local_indices(ctx.id()) {
                    acc += coll.read(ctx, idx, |v| *v);
                    ctx.charge_flops(1);
                }
                let me = Index2(ctx.id().index(), 0);
                partial.write(ctx, me, |v| *v = acc);
                ctx.barrier();
                // Thread 0 combines.
                if ctx.id().0 == 0 {
                    let mut total = 0.0;
                    for t in 0..4 {
                        total += partial.read(ctx, Index2(t, 0), |v| *v);
                        ctx.charge_flops(1);
                    }
                    partial.write(ctx, Index2(0, 0), |v| *v = total);
                }
                ctx.barrier();
            });
        assert_eq!(coll.peek(Index2(0, 0), |v| *v), 1.0);
        assert_eq!(partial.peek(Index2(0, 0), |v| *v), (n * (n + 1) / 2) as f64);
        // Thread 0 performed 3 remote reads in the combine phase.
        let remote_reads = trace
            .records
            .iter()
            .filter(|r| matches!(r.kind, EventKind::RemoteRead { .. }))
            .count();
        assert_eq!(remote_reads, 3);
    }
}
