//! Minimal `parking_lot`-style synchronization primitives over
//! [`std::sync`].
//!
//! The container this workspace builds in has no access to crates.io, so
//! the runtime uses these thin wrappers instead of `parking_lot`: locks
//! return guards directly (no poison `Result`s — a poisoned lock means a
//! program thread already panicked, and the scheduler's own poison flag
//! handles that case), and [`Condvar::wait`] takes the guard by `&mut`
//! like `parking_lot`'s does.

use std::sync;

/// A mutex whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// A guard for [`Mutex`]; releases the lock on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poison (the value stays accessible so
    /// sibling threads can unwind cleanly).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard holds the lock")
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Atomically releases the guarded lock and blocks until notified;
    /// re-acquires the lock before returning (spurious wakeups possible,
    /// as with any condvar).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard holds the lock");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

/// A reader–writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_wait_reacquires_the_lock() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(handle.join().unwrap());
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }
}
