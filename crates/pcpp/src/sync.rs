//! Minimal `parking_lot`-style synchronization primitives over
//! [`std::sync`] — with an optional model-checking backend.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the runtime uses these thin wrappers instead of `parking_lot`: locks
//! return guards directly (no poison `Result`s — a poisoned lock means a
//! program thread already panicked, and the scheduler's own poison flag
//! handles that case), and [`Condvar::wait`] takes the guard by `&mut`
//! like `parking_lot`'s does.
//!
//! Under the `model-check` feature every operation first announces
//! itself to the [`crate::chk`] cooperative scheduler; on threads it
//! controls, the announcement blocks until the checker grants the turn,
//! which is how `extrap-check` enumerates interleavings.  The *real*
//! std operation still happens afterwards, so unchecked threads (and
//! checked builds running outside a scenario) behave exactly like the
//! plain wrappers.  Release builds compile the feature out entirely —
//! these wrappers stay zero-cost.

use std::sync;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutex whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// A guard for [`Mutex`]; releases the lock on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    #[cfg_attr(not(feature = "model-check"), allow(dead_code))]
    lock: &'a Mutex<T>,
    /// `None` only transiently inside [`Condvar::wait`] (and after an
    /// aborted checked wait, where dropping without the lock is
    /// exactly right).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, ignoring poison (the value stays accessible so
    /// sibling threads can unwind cleanly).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "model-check")]
        crate::chk::mutex_lock(self as *const Mutex<T> as usize);
        MutexGuard {
            lock: self,
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before announcing the virtual unlock:
        // nobody else runs until the announcement is scheduled, and the
        // next virtual owner must find the real lock free.
        let held = self.inner.take().is_some();
        #[cfg(feature = "model-check")]
        if held {
            crate::chk::mutex_unlock(self.lock as *const Mutex<T> as usize);
        }
        #[cfg(not(feature = "model-check"))]
        let _ = held;
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded lock and blocks until notified;
    /// re-acquires the lock before returning (spurious wakeups possible,
    /// as with any condvar).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(feature = "model-check")]
        if crate::chk::on_checked_thread() {
            self.wait_checked(guard, None);
            return;
        }
        let inner = guard.inner.take().expect("guard holds the lock");
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Like [`wait`](Condvar::wait) with a timeout; returns whether the
    /// wait timed out.  Under the checker the timeout is virtual: it
    /// fires only when no other transition can run, advancing the
    /// checker's clock (see [`Instant`]).
    pub fn wait_timeout<T>(&self, guard: &mut MutexGuard<'_, T>, dur: Duration) -> bool {
        #[cfg(feature = "model-check")]
        if crate::chk::on_checked_thread() {
            return self.wait_checked(guard, Some(dur));
        }
        let inner = guard.inner.take().expect("guard holds the lock");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, dur)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        result.timed_out()
    }

    /// The checked wait: release the *real* lock first (a sibling the
    /// checker wakes must be able to take it while this thread is
    /// suspended), park virtually, then re-take the real lock once the
    /// virtual relock is granted (uncontended by construction — the
    /// virtual owner is this thread).
    #[cfg(feature = "model-check")]
    fn wait_checked<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Option<Duration>) -> bool {
        let mutex_addr = guard.lock as *const Mutex<T> as usize;
        drop(guard.inner.take().expect("guard holds the lock"));
        let timed_out = crate::chk::cond_wait(self as *const Condvar as usize, mutex_addr, timeout);
        guard.inner = Some(guard.lock.inner.lock().unwrap_or_else(|e| e.into_inner()));
        timed_out
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        #[cfg(feature = "model-check")]
        crate::chk::notify(self as *const Condvar as usize, true);
        self.inner.notify_all();
    }

    /// Wakes one waiting thread.  Under the checker the *oldest* virtual
    /// waiter is woken (deterministic; real condvars may pick any — a
    /// documented under-exploration).
    pub fn notify_one(&self) {
        #[cfg(feature = "model-check")]
        crate::chk::notify(self as *const Condvar as usize, false);
        self.inner.notify_one();
    }
}

/// A reader–writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// A shared guard for [`RwLock`]; releases the lock on drop.
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T> {
    #[cfg_attr(not(feature = "model-check"), allow(dead_code))]
    lock: &'a RwLock<T>,
    inner: Option<sync::RwLockReadGuard<'a, T>>,
}

/// An exclusive guard for [`RwLock`]; releases the lock on drop.
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T> {
    #[cfg_attr(not(feature = "model-check"), allow(dead_code))]
    lock: &'a RwLock<T>,
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "model-check")]
        crate::chk::rw_read(self as *const RwLock<T> as usize);
        RwLockReadGuard {
            lock: self,
            inner: Some(self.inner.read().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "model-check")]
        crate::chk::rw_write(self as *const RwLock<T> as usize);
        RwLockWriteGuard {
            lock: self,
            inner: Some(self.inner.write().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        let held = self.inner.take().is_some();
        #[cfg(feature = "model-check")]
        if held {
            crate::chk::rw_unlock(self.lock as *const RwLock<T> as usize);
        }
        #[cfg(not(feature = "model-check"))]
        let _ = held;
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        let held = self.inner.take().is_some();
        #[cfg(feature = "model-check")]
        if held {
            crate::chk::rw_unlock(self.lock as *const RwLock<T> as usize);
        }
        #[cfg(not(feature = "model-check"))]
        let _ = held;
    }
}

/// A checker-visible boolean flag (SeqCst [`AtomicBool`] underneath).
///
/// Cancellation tokens, shutdown flags, and similar cross-thread
/// booleans go through this type so the model checker sees — and can
/// reorder around — every load and store.
#[derive(Debug, Default)]
pub struct AtomicFlag {
    inner: AtomicBool,
}

impl AtomicFlag {
    /// Creates a flag with the given initial value.
    pub const fn new(value: bool) -> AtomicFlag {
        AtomicFlag {
            inner: AtomicBool::new(value),
        }
    }

    /// Reads the flag.
    pub fn load(&self) -> bool {
        #[cfg(feature = "model-check")]
        crate::chk::atomic_load(self as *const AtomicFlag as usize);
        self.inner.load(Ordering::SeqCst)
    }

    /// Writes the flag.
    pub fn store(&self, value: bool) {
        #[cfg(feature = "model-check")]
        crate::chk::atomic_store(self as *const AtomicFlag as usize);
        self.inner.store(value, Ordering::SeqCst);
    }

    /// Writes the flag, returning the previous value.
    pub fn swap(&self, value: bool) -> bool {
        #[cfg(feature = "model-check")]
        crate::chk::atomic_store(self as *const AtomicFlag as usize);
        self.inner.swap(value, Ordering::SeqCst)
    }
}

/// A point in time that is real on normal threads and *virtual* inside a
/// model-checking scenario.
///
/// Timeout-driven code (the serve layer's long-poll deadlines) measures
/// time through this type so the checker can model timeouts without
/// wall-clock sleeps: inside a scenario, `now()` reads the scheduler's
/// virtual clock, which advances only when a timed wait fires at
/// quiescence.  Outside a scenario (and always without the
/// `model-check` feature) it is a plain [`std::time::Instant`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Instant(Repr);

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Repr {
    Real(std::time::Instant),
    #[cfg(feature = "model-check")]
    Virtual(u64),
}

impl Instant {
    /// The current time — virtual inside a checking scenario.
    pub fn now() -> Instant {
        #[cfg(feature = "model-check")]
        if let Some(ns) = crate::chk::virtual_now() {
            return Instant(Repr::Virtual(ns));
        }
        Instant(Repr::Real(std::time::Instant::now()))
    }

    /// Time elapsed since this instant (zero if it is in the future or
    /// from a different clock domain).
    pub fn elapsed(&self) -> Duration {
        Instant::now().saturating_duration_since(*self)
    }

    /// `self - earlier`, clamped at zero.  Instants from different
    /// clock domains (one real, one virtual) compare as zero apart.
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        match (self.0, earlier.0) {
            (Repr::Real(a), Repr::Real(b)) => a.saturating_duration_since(b),
            #[cfg(feature = "model-check")]
            (Repr::Virtual(a), Repr::Virtual(b)) => Duration::from_nanos(a.saturating_sub(b)),
            #[cfg(feature = "model-check")]
            _ => Duration::ZERO,
        }
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, d: Duration) -> Instant {
        match self.0 {
            Repr::Real(t) => Instant(Repr::Real(t + d)),
            #[cfg(feature = "model-check")]
            Repr::Virtual(ns) => Instant(Repr::Virtual(
                ns.saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
            )),
        }
    }
}

/// Runs `f` with model-checking suspended on the calling thread: every
/// sync operation inside goes straight to std, and threads spawned
/// inside are ordinary OS threads.  [`crate::Program::run`] wraps its
/// body in this — the traced program's run-token scheduler is part of
/// the measurement substrate, not the object under test.  No-op without
/// the `model-check` feature.
pub fn unchecked_scope<R>(f: impl FnOnce() -> R) -> R {
    #[cfg(feature = "model-check")]
    {
        crate::chk::unchecked_scope(f)
    }
    #[cfg(not(feature = "model-check"))]
    {
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_wait_reacquires_the_lock() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(handle.join().unwrap());
    }

    #[test]
    fn wait_timeout_reports_expiry() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = lock.lock();
        assert!(cv.wait_timeout(&mut guard, Duration::from_millis(1)));
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn atomic_flag_swaps() {
        let f = AtomicFlag::new(false);
        assert!(!f.swap(true));
        assert!(f.load());
        f.store(false);
        assert!(!f.load());
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = Instant::now();
        let t1 = t0 + Duration::from_millis(5);
        assert!(t1 >= t0);
        assert!(t1.saturating_duration_since(t0) >= Duration::from_millis(5));
        assert_eq!(t0.saturating_duration_since(t1), Duration::ZERO);
    }
}
