#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # pcpp-rt — an object-parallel runtime in the style of pC++
//!
//! This crate is the measurement substrate of the reproduction: a small
//! data-parallel runtime whose programs are *n*-thread object-parallel
//! computations over distributed [`Collection`]s, executed on **one
//! processor** under a **non-preemptive** scheduler (§3.1–3.2 of the
//! paper), with every thread interaction — barrier entry/exit and remote
//! element access — recorded as a high-level trace event.
//!
//! Differences from the original pC++ stack are deliberate substitutions
//! (documented in DESIGN.md):
//!
//! * computation time is charged to a deterministic **virtual clock**
//!   through an explicit [`WorkModel`] instead of being measured with a
//!   wall clock, which makes traces bit-reproducible;
//! * the AWESIME threads package becomes a run-token scheduler over OS
//!   threads: exactly one thread executes at any time and switches happen
//!   only at barrier boundaries, exactly the scheduling points pC++ has.
//!
//! ## Example
//!
//! ```
//! use pcpp_rt::{Program, Collection, Distribution, WorkModel};
//!
//! // 4 threads, 16 elements distributed blockwise.
//! let program = Program::new(4);
//! let coll = Collection::<f64>::build(Distribution::block_1d(16, 4), |i| i.0 as f64);
//! let trace = program.run(move |ctx| {
//!     let mut acc = 0.0;
//!     for idx in coll.local_indices(ctx.id()) {
//!         acc += coll.read(ctx, idx, |v| *v);
//!         ctx.charge_flops(1);
//!     }
//!     ctx.barrier();
//!     // Read one element from the right neighbour.
//!     let n = ctx.n_threads() as u32;
//!     let peer = (ctx.id().0 + 1) % n;
//!     let first = coll.dist().local_indices(pcpp_rt::tid(peer)).next().unwrap();
//!     let _ = coll.read(ctx, first, |v| *v);
//!     ctx.barrier();
//! });
//! assert_eq!(trace.n_threads, 4);
//! ```

#[cfg(feature = "model-check")]
pub mod chk;
pub mod clock;
pub mod collection;
pub mod collective;
pub mod distribution;
pub mod element;
pub mod instrument;
pub mod program;
pub mod scheduler;
pub mod sync;

pub use clock::WorkModel;
pub use collection::Collection;
pub use collective::Collectives;
pub use distribution::{Dist1, Distribution, Index2};
pub use element::Element;
pub use instrument::{Recorder, TimeSource};
pub use program::{Program, ThreadCtx};

/// Shorthand for building a [`extrap_time::ThreadId`].
pub fn tid(i: u32) -> extrap_time::ThreadId {
    extrap_time::ThreadId(i)
}
