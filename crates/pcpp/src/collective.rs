//! Collective operations in the pC++ style: master-combine reductions
//! and broadcast, built from the same primitives the benchmarks use
//! (per-thread slots + barriers + remote element accesses), so their
//! costs appear in traces exactly like hand-written code.

use crate::collection::Collection;
use crate::distribution::{Distribution, Index2};
use crate::program::ThreadCtx;

/// Reusable scratch state for scalar collectives over `n` threads.
///
/// One `Collectives` instance may be reused across phases and across
/// different operations; consecutive collectives are race-free (the
/// master only overwrites the result slot after every reader has passed
/// the barrier that follows its read).
pub struct Collectives {
    slots: Collection<f64>,
    result: Collection<f64>,
}

impl Collectives {
    /// Builds the scratch collections for `n_threads`.
    pub fn new(n_threads: usize) -> Collectives {
        Collectives {
            slots: Collection::build(Distribution::block_1d(n_threads, n_threads), |_| 0.0),
            result: Collection::build(Distribution::block_1d(1, n_threads), |_| 0.0),
        }
    }

    /// Generic master-combine reduction with operator `op` (must be
    /// associative and commutative).  Costs 2 barriers and `2(n−1)`
    /// remote accesses.
    pub fn reduce(
        &self,
        ctx: &mut ThreadCtx<'_>,
        partial: f64,
        op: impl Fn(f64, f64) -> f64,
    ) -> f64 {
        let me = ctx.id().index();
        let n = ctx.n_threads();
        self.slots.write(ctx, Index2(me, 0), |v| *v = partial);
        ctx.barrier();
        if me == 0 {
            let mut acc = self.slots.read(ctx, Index2(0, 0), |v| *v);
            for t in 1..n {
                let v = self.slots.read(ctx, Index2(t, 0), |v| *v);
                acc = op(acc, v);
                ctx.charge_flops(1);
            }
            self.result.write(ctx, Index2(0, 0), |r| *r = acc);
        }
        ctx.barrier();
        self.result.read(ctx, Index2(0, 0), |v| *v)
    }

    /// Global sum.
    pub fn sum(&self, ctx: &mut ThreadCtx<'_>, partial: f64) -> f64 {
        self.reduce(ctx, partial, |a, b| a + b)
    }

    /// Global maximum.
    pub fn max(&self, ctx: &mut ThreadCtx<'_>, partial: f64) -> f64 {
        self.reduce(ctx, partial, f64::max)
    }

    /// Global minimum.
    pub fn min(&self, ctx: &mut ThreadCtx<'_>, partial: f64) -> f64 {
        self.reduce(ctx, partial, f64::min)
    }

    /// Broadcast from `root`: every other thread remote-reads the value
    /// (1 barrier, `n−1` remote reads of the root's slot).
    pub fn broadcast(&self, ctx: &mut ThreadCtx<'_>, root: usize, value: f64) -> f64 {
        let me = ctx.id().index();
        if me == root {
            self.slots.write(ctx, Index2(root, 0), |v| *v = value);
        }
        ctx.barrier();
        self.slots.read(ctx, Index2(root, 0), |v| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::WorkModel;
    use crate::program::Program;
    use crate::sync::Mutex;

    fn run_collect(
        n: usize,
        f: impl Fn(&mut ThreadCtx<'_>, &Collectives) -> f64 + Sync,
    ) -> Vec<f64> {
        let coll = Collectives::new(n);
        let out = Mutex::new(vec![0.0; n]);
        Program::new(n)
            .with_work_model(WorkModel::unit())
            .run(|ctx| {
                let v = f(ctx, &coll);
                out.lock()[ctx.id().index()] = v;
            });
        out.into_inner()
    }

    #[test]
    fn sum_reduces_across_threads() {
        let got = run_collect(5, |ctx, c| c.sum(ctx, (ctx.id().0 + 1) as f64));
        assert_eq!(got, vec![15.0; 5]);
    }

    #[test]
    fn max_and_min() {
        let got = run_collect(4, |ctx, c| c.max(ctx, ctx.id().0 as f64 * 2.0));
        assert_eq!(got, vec![6.0; 4]);
        let got = run_collect(4, |ctx, c| c.min(ctx, 10.0 - ctx.id().0 as f64));
        assert_eq!(got, vec![7.0; 4]);
    }

    #[test]
    fn broadcast_delivers_roots_value() {
        let got = run_collect(4, |ctx, c| c.broadcast(ctx, 2, ctx.id().0 as f64 * 100.0));
        assert_eq!(got, vec![200.0; 4]);
    }

    #[test]
    fn consecutive_collectives_are_race_free() {
        let got = run_collect(4, |ctx, c| {
            let a = c.sum(ctx, 1.0);
            let b = c.sum(ctx, a);
            let m = c.max(ctx, b + ctx.id().0 as f64);
            c.broadcast(ctx, 0, m)
        });
        // a = 4, b = 16, m = max(16+id) = 19, broadcast of thread 0's 19.
        assert_eq!(got, vec![19.0; 4]);
    }

    #[test]
    fn reduction_traffic_appears_in_trace() {
        let n = 4;
        let coll = Collectives::new(n);
        let trace = Program::new(n)
            .with_work_model(WorkModel::unit())
            .run(|ctx| {
                let _ = coll.sum(ctx, 1.0);
            });
        let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
        let stats = extrap_trace::TraceStats::from_set(&ts);
        assert_eq!(stats.barriers(), 2);
        // Master reads n-1 slave slots; n-1 slaves read the result.
        assert_eq!(stats.total_remote_accesses(), 2 * (n - 1));
    }

    #[test]
    fn single_thread_collectives_are_trivial() {
        let got = run_collect(1, |ctx, c| c.sum(ctx, 42.0));
        assert_eq!(got, vec![42.0]);
    }
}
