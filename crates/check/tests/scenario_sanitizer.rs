//! Checked scenario: sanitizer installation racing a prediction
//! verification.  Kept in its own test binary because the sanitizer
//! registry is process-global state.

use extrap_check::{check_scenario, scenarios, CheckConfig};

#[test]
fn sanitizer_registration_race_is_torn_free() {
    let scenario = scenarios::find("sanitizer-race").expect("registered");
    let report = check_scenario(
        &scenario,
        &CheckConfig {
            max_schedules: 400,
            seed: 1,
            max_steps: 20_000,
        },
    );
    assert!(report.passed(), "{}", report.render());
    assert!(report.schedules > 1, "exploration must branch");
}
