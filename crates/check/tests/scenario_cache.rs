//! Checked scenario: `SharedTraceCache` single-flight under concurrent
//! miss / evict / `evict_to_budget`.

use extrap_check::{check_scenario, scenarios, CheckConfig};

#[test]
fn cache_single_flight_holds_in_every_explored_schedule() {
    let scenario = scenarios::find("cache-single-flight").expect("registered");
    let report = check_scenario(
        &scenario,
        &CheckConfig {
            max_schedules: 400,
            seed: 1,
            max_steps: 20_000,
        },
    );
    assert!(report.passed(), "{}", report.render());
    assert!(report.schedules > 1, "exploration must branch");
}
