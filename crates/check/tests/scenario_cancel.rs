//! Checked scenario: `sweep_cancellable` racing `CancelToken::cancel` —
//! in every explored schedule each job ends `Cancelled` or completed,
//! and nothing hangs (satellite requirement of the checker issue).

use extrap_check::{check_scenario, scenarios, CheckConfig};

#[test]
fn cancel_mid_sweep_always_cancels_cleanly_or_completes() {
    let scenario = scenarios::find("cancel-mid-sweep").expect("registered");
    let report = check_scenario(
        &scenario,
        &CheckConfig {
            max_schedules: 400,
            seed: 1,
            max_steps: 20_000,
        },
    );
    assert!(report.passed(), "{}", report.render());
    assert!(report.schedules > 1, "exploration must branch");
}
