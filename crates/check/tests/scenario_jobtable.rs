//! Checked scenario: the serving daemon's job table driven in process —
//! submit → coalesce → long-poll fetch → drain across one worker and
//! two client threads.

use extrap_check::{check_scenario, scenarios, CheckConfig};

#[test]
fn job_table_completes_every_job_in_every_explored_schedule() {
    let scenario = scenarios::find("job-table").expect("registered");
    let report = check_scenario(
        &scenario,
        &CheckConfig {
            max_schedules: 150,
            seed: 1,
            max_steps: 50_000,
        },
    );
    assert!(report.passed(), "{}", report.render());
    assert!(report.schedules > 1, "exploration must branch");
}
