//! Checker-runtime behavior: the failure detectors, the preemption
//! ladder, and certificate replay, exercised through tiny purpose-built
//! scenarios rather than the production ones.

use extrap_check::{check_scenario, replay, CheckConfig, FailureKind, Handle, RunStatus, Scenario};
use pcpp_rt::sync::Mutex;
use std::sync::Arc;

fn config(max_schedules: usize) -> CheckConfig {
    CheckConfig {
        max_schedules,
        seed: 1,
        max_steps: 5_000,
    }
}

/// The classic ABBA deadlock: needs one preemption (a thread must be
/// interrupted between its two acquisitions), so the ladder's bound-1
/// rung must find it.
fn abba(h: &Handle) {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    for flip in [false, true] {
        let (first, second) = if flip {
            (Arc::clone(&b), Arc::clone(&a))
        } else {
            (Arc::clone(&a), Arc::clone(&b))
        };
        h.spawn(move || {
            let mut g1 = first.lock();
            let mut g2 = second.lock();
            *g1 += 1;
            *g2 += 1;
        });
    }
    h.go();
}

#[test]
fn abba_deadlock_is_found() {
    let scenario = Scenario {
        name: "abba",
        about: "",
        run: abba,
    };
    let report = check_scenario(&scenario, &config(500));
    let failure = report.failure.expect("ABBA must deadlock in some schedule");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(failure.message.contains("no runnable thread"));
}

fn relock_self(h: &Handle) {
    let m = Arc::new(Mutex::new(0u32));
    h.spawn(move || {
        let _g1 = m.lock();
        let _g2 = m.lock();
    });
    h.go();
}

#[test]
fn double_lock_is_diagnosed_not_reported_as_deadlock() {
    let scenario = Scenario {
        name: "relock",
        about: "",
        run: relock_self,
    };
    let report = check_scenario(&scenario, &config(50));
    let failure = report.failure.expect("re-entrant lock must be flagged");
    assert_eq!(failure.kind, FailureKind::DoubleLock);
    assert!(failure.message.contains("already holds"));
}

/// Two independent increments under one mutex: no bug, and small enough
/// that the unbounded rung exhausts the reduced schedule space.
fn two_increments(h: &Handle) {
    let m = Arc::new(Mutex::new(0u32));
    for _ in 0..2 {
        let m = Arc::clone(&m);
        h.spawn(move || {
            *m.lock() += 1;
        });
    }
    if h.go() {
        assert_eq!(*m.lock(), 2);
    }
}

#[test]
fn clean_scenario_passes_exhaustively() {
    let scenario = Scenario {
        name: "two-increments",
        about: "",
        run: two_increments,
    };
    let report = check_scenario(&scenario, &config(1_000));
    assert!(report.passed(), "{}", report.render());
    assert!(
        report.exhaustive,
        "a 2-thread 1-lock scenario must be exhaustible, ran {} schedules",
        report.schedules
    );
}

#[test]
fn lost_wakeup_demo_is_caught_and_replays_identically() {
    let scenario = extrap_check::scenarios::find("demo-lost-wakeup").expect("demo scenario exists");
    let report = check_scenario(&scenario, &config(200));
    let failure = report
        .failure
        .expect("the deliberately buggy demo must fail");
    assert_eq!(failure.kind, FailureKind::LostWakeup);
    assert_eq!(failure.certificate.scenario, "demo-lost-wakeup");

    // Replaying the certificate reproduces the same failure with the
    // same decision string — twice, to pin determinism.
    for _ in 0..2 {
        let outcome = replay(&scenario, &failure.certificate, 5_000);
        match &outcome.status {
            RunStatus::Failed(f) => assert_eq!(f.kind, FailureKind::LostWakeup),
            other => panic!("replay must reproduce the failure, got {other:?}"),
        }
        assert_eq!(outcome.decisions(), failure.certificate.decisions);
    }
}

#[test]
fn exploration_is_deterministic_across_runs() {
    let scenario = Scenario {
        name: "two-increments",
        about: "",
        run: two_increments,
    };
    let a = check_scenario(&scenario, &config(1_000));
    let b = check_scenario(&scenario, &config(1_000));
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.exhaustive, b.exhaustive);
}

#[test]
fn scenario_registry_names_are_unique() {
    let all = extrap_check::scenarios::all_scenarios();
    let mut names: Vec<&str> = all.iter().map(|s| s.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), all.len());
    assert_eq!(extrap_check::scenarios::scenarios().len() + 1, all.len());
}
