//! Depth-first exploration over schedule prefixes with sleep-set
//! pruning.
//!
//! One node per scheduling decision of the current path.  A node
//! remembers which thread the path runs (`chosen`), which alternatives
//! remain to be tried (`alts`), and which siblings have already been
//! fully explored (`explored`).  Backtracking to a node replays the
//! path's prefix up to it, forces the next alternative, and seeds the
//! runtime's sleep set with the explored siblings — at every depth `d`
//! of the new run, `extra_sleep[d]` tells the scheduler "these threads'
//! continuations from here were covered by an earlier branch", so the
//! run prunes itself the moment it would only permute independent
//! operations of an already-explored interleaving.
//!
//! The search is deterministic: alternatives come from the runtime's
//! seeded candidate ordering, and re-running the same scenario with the
//! same seed and budget explores the identical schedule sequence.

use pcpp_rt::chk::{RunOutcome, RunSpec, RunStatus};

/// What one ladder rung's search learned.
pub(crate) struct Exploration {
    /// Schedules executed by this rung.
    pub schedules: usize,
    /// Whether the rung's (reduced) search space was exhausted before
    /// the budget ran out.
    pub exhausted: bool,
    /// The first failing run, if any.
    pub failure: Option<RunOutcome>,
}

/// One decision point on the current DFS path.
struct Node {
    /// The thread the current path schedules here.
    chosen: u32,
    /// Siblings whose subtrees are fully explored (they seed the sleep
    /// set of later branches at this depth).
    explored: Vec<u32>,
    /// Siblings still to explore.
    alts: Vec<u32>,
}

/// Builds fresh DFS nodes for the tail of a run, starting at choice
/// index `from`.  An alternative is recorded only if taking it would
/// respect the rung's preemption bound — flipping the decision costs
/// one preemption exactly when the first run's `preempts` flag says so.
fn nodes_from(outcome: &RunOutcome, from: usize, bound: Option<u32>) -> Vec<Node> {
    outcome
        .choices
        .get(from..)
        .unwrap_or(&[])
        .iter()
        .map(|c| Node {
            chosen: c.chosen,
            explored: Vec::new(),
            alts: c
                .selectable
                .iter()
                .filter(|cand| cand.tid != c.chosen)
                .filter(|cand| {
                    bound.is_none_or(|b| c.preemptions_before + u32::from(cand.preempts) <= b)
                })
                .map(|cand| cand.tid)
                .collect(),
        })
        .collect()
}

/// Runs the DFS for one preemption-bound rung, decrementing the shared
/// `budget` once per executed schedule.  Stops at the first failure,
/// when the rung's search space is exhausted, or when the budget runs
/// dry — whichever comes first.
pub(crate) fn explore(
    mut exec: impl FnMut(RunSpec) -> RunOutcome,
    seed: u64,
    bound: Option<u32>,
    max_steps: usize,
    budget: &mut usize,
) -> Exploration {
    let mut schedules = 0;
    if *budget == 0 {
        return Exploration {
            schedules,
            exhausted: false,
            failure: None,
        };
    }

    *budget -= 1;
    schedules += 1;
    let first = exec(RunSpec {
        seed,
        prefix: Vec::new(),
        extra_sleep: Vec::new(),
        bound,
        max_steps,
    });
    if matches!(first.status, RunStatus::Failed(_)) {
        return Exploration {
            schedules,
            exhausted: false,
            failure: Some(first),
        };
    }
    let mut stack = nodes_from(&first, 0, bound);

    loop {
        while stack.last().is_some_and(|n| n.alts.is_empty()) {
            stack.pop();
        }
        if stack.is_empty() {
            return Exploration {
                schedules,
                exhausted: true,
                failure: None,
            };
        }
        if *budget == 0 {
            return Exploration {
                schedules,
                exhausted: false,
                failure: None,
            };
        }

        let depth = stack.len() - 1;
        let alt = stack[depth].alts.pop().expect("top node has alternatives");
        // Prefix: the current path up to `depth`, then the alternative.
        let mut prefix: Vec<u32> = stack[..depth].iter().map(|n| n.chosen).collect();
        prefix.push(alt);
        // Sleep seeds: at every earlier depth the already-explored
        // siblings; at `depth` also the branch we are leaving, whose
        // subtree is now fully explored.
        let mut extra_sleep: Vec<Vec<u32>> =
            stack[..depth].iter().map(|n| n.explored.clone()).collect();
        let mut now_explored = stack[depth].explored.clone();
        if !now_explored.contains(&stack[depth].chosen) {
            now_explored.push(stack[depth].chosen);
        }
        extra_sleep.push(now_explored.clone());

        *budget -= 1;
        schedules += 1;
        let outcome = exec(RunSpec {
            seed,
            prefix,
            extra_sleep,
            bound,
            max_steps,
        });
        if matches!(outcome.status, RunStatus::Failed(_)) {
            return Exploration {
                schedules,
                exhausted: false,
                failure: Some(outcome),
            };
        }
        // The path now runs `alt` here; grow the tail from what the new
        // run revealed.  Pruned runs contribute their (shorter) tail
        // exactly like complete ones.
        stack[depth].explored = now_explored;
        stack[depth].chosen = alt;
        stack.truncate(depth + 1);
        let tail = nodes_from(&outcome, depth + 1, bound);
        stack.extend(tail);
    }
}
