#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `extrap-check`: a deterministic schedule-exploration model checker
//! for the pipeline's concurrent core.
//!
//! The simulator's concurrency surface — the shared trace cache, the
//! cancellable sweep pool, the serving daemon's job table, the
//! sanitizer registry — synchronizes exclusively through
//! [`pcpp_rt::sync`].  Under the `model-check` feature those primitives
//! grow a *checked* backend ([`pcpp_rt::chk`]): every lock, condvar and
//! checker-visible atomic operation yields to a cooperative scheduler,
//! so one execution of a scenario is fully described by the sequence of
//! thread ids chosen at each scheduling point.  This crate is the
//! *driver* on top of that runtime: it re-executes a scenario once per
//! schedule, steering each run down a different interleaving, and
//! reports the first schedule (if any) that deadlocks, loses a wakeup,
//! misuses a lock, trips an assertion, or livelocks.
//!
//! Exploration is a depth-first search over schedule prefixes with two
//! classic reductions:
//!
//! * **sleep sets** (Godefroid-style partial-order reduction): once a
//!   thread's continuation from a state has been explored, sibling
//!   branches put it to sleep until a dependent operation runs, so
//!   commuting interleavings are enumerated once;
//! * **iterated preemption bounding** (the CHESS strategy): the search
//!   ladders the involuntary-context-switch budget through
//!   [`BOUND_LADDER`] — most concurrency bugs need only a couple of
//!   preemptions, so shallow rungs find them in seconds while the final
//!   unbounded rung keeps the search complete when the budget allows.
//!
//! Every schedule is a pure function of the SplitMix64 `seed` and the
//! decision string, so a failure is reported as a replayable
//! [`Certificate`] (`scenario:seed:d0.d1.d2...`): feeding it back
//! through [`replay`] — or `extrap check --replay CERT` — reproduces
//! the failing execution byte-identically, turning "flaky hang" into a
//! deterministic unit test.

mod explorer;
pub mod scenarios;

use std::fmt;
use std::str::FromStr;

use pcpp_rt::chk::run_scenario;
pub use pcpp_rt::chk::{
    Candidate, Choice, Failure, FailureKind, Handle, Op, RunOutcome, RunSpec, RunStatus,
};

/// The iterated preemption-bound ladder: shallow rungs catch most bugs
/// cheaply, the final `None` rung makes the search complete (given
/// schedule budget).  Non-preemptive context switches — the previous
/// thread blocked or finished — are always free, so even the `Some(0)`
/// rung explores every "who runs after a block" ordering.
pub const BOUND_LADDER: [Option<u32>; 4] = [Some(0), Some(1), Some(2), None];

/// Exploration knobs, shared by the CLI and the checked test suites.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Total schedule budget across the whole [`BOUND_LADDER`].
    pub max_schedules: usize,
    /// Seed for the deterministic per-depth candidate ordering.  Part
    /// of the certificate: replay requires the same seed.
    pub seed: u64,
    /// Per-run transition budget before a run is declared a livelock.
    pub max_steps: usize,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            max_schedules: 1000,
            seed: 1,
            max_steps: 20_000,
        }
    }
}

/// A bounded concurrency scenario: a setup closure that spawns model
/// threads through the [`Handle`], starts the schedule with
/// [`Handle::go`], and asserts terminal-state invariants when `go`
/// reports a clean completion.
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Stable name, used in certificates and `--scenario` selection.
    pub name: &'static str,
    /// One-line description for `extrap check --scenarios`.
    pub about: &'static str,
    /// The scenario body, run once per explored schedule.
    pub run: fn(&Handle),
}

/// A replayable failure certificate: `scenario:seed:d0.d1.d2...`.
///
/// The decision string is the chosen thread id at every scheduling
/// point of the failing run; replaying it under the same seed
/// reproduces the execution exactly (the runtime flags any divergence
/// as [`FailureKind::ReplayDivergence`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// The scenario that failed.
    pub scenario: String,
    /// The ordering seed the exploration ran under.
    pub seed: u64,
    /// The chosen thread id at every scheduling point.
    pub decisions: Vec<u32>,
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:", self.scenario, self.seed)?;
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl FromStr for Certificate {
    type Err = String;

    fn from_str(s: &str) -> Result<Certificate, String> {
        let mut parts = s.splitn(3, ':');
        let (Some(scenario), Some(seed), Some(decisions)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "certificate `{s}` is not of the form scenario:seed:d0.d1.d2"
            ));
        };
        if scenario.is_empty() {
            return Err(format!("certificate `{s}` has an empty scenario name"));
        }
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("certificate seed `{seed}` is not a u64"))?;
        let decisions = if decisions.is_empty() {
            Vec::new()
        } else {
            decisions
                .split('.')
                .map(|d| {
                    d.parse::<u32>()
                        .map_err(|_| format!("certificate decision `{d}` is not a thread id"))
                })
                .collect::<Result<Vec<u32>, String>>()?
        };
        Ok(Certificate {
            scenario: scenario.to_string(),
            seed,
            decisions,
        })
    }
}

/// The first failing schedule a check found, with everything needed to
/// reproduce and understand it.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// The failure class.
    pub kind: FailureKind,
    /// The runtime's diagnostic for the failing state.
    pub message: String,
    /// The replayable certificate of the failing schedule.
    pub certificate: Certificate,
    /// The failing schedule rendered one scheduling decision per line.
    pub trace: Vec<String>,
}

/// The result of checking one scenario.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The scenario checked.
    pub scenario: &'static str,
    /// Schedules executed across all ladder rungs.
    pub schedules: usize,
    /// Whether the final unbounded rung exhausted its (sleep-set
    /// reduced) search space within the schedule budget — i.e. the pass
    /// is a proof for this scenario, not a sample.
    pub exhaustive: bool,
    /// The first failing schedule, if any.
    pub failure: Option<FailureReport>,
}

impl CheckReport {
    /// Whether no explored schedule failed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }

    /// Human-readable summary: one line on success, the certificate and
    /// the tail of the failing schedule otherwise.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match &self.failure {
            None => {
                let coverage = if self.exhaustive {
                    "exhaustive under partial-order reduction"
                } else {
                    "schedule budget reached"
                };
                out.push_str(&format!(
                    "scenario {}: ok ({} schedules, {coverage})\n",
                    self.scenario, self.schedules
                ));
            }
            Some(f) => {
                out.push_str(&format!(
                    "scenario {}: FAILED ({}) after {} schedules\n",
                    self.scenario, f.kind, self.schedules
                ));
                out.push_str(&format!("  {}\n", f.message));
                out.push_str(&format!("  certificate: {}\n", f.certificate));
                out.push_str(&format!(
                    "  replay: extrap check --replay '{}'\n",
                    f.certificate
                ));
                let tail = f.trace.len().saturating_sub(20);
                if tail > 0 {
                    out.push_str(&format!("  ... {tail} earlier steps elided ...\n"));
                }
                for line in &f.trace[tail..] {
                    out.push_str(&format!("  {line}\n"));
                }
            }
        }
        out
    }
}

/// Renders a run's decision sequence, one scheduling point per line:
/// the chosen thread, its operation, and the alternatives that were
/// also selectable.
pub fn render_trace(outcome: &RunOutcome) -> Vec<String> {
    outcome
        .choices
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let alts: Vec<String> = c
                .selectable
                .iter()
                .filter(|cand| cand.tid != c.chosen)
                .map(|cand| format!("T{}", cand.tid))
                .collect();
            let alts = if alts.is_empty() {
                String::new()
            } else {
                format!("   (also selectable: {})", alts.join(" "))
            };
            format!("step {i:>4}: T{} {}{alts}", c.chosen, c.chosen_op)
        })
        .collect()
}

/// Explores `scenario` under `config`, laddering the preemption bound
/// through [`BOUND_LADDER`] with one shared schedule budget, and
/// reports the first failing schedule (or that none was found).
pub fn check_scenario(scenario: &Scenario, config: &CheckConfig) -> CheckReport {
    let mut budget = config.max_schedules.max(1);
    let mut schedules = 0;
    let mut exhaustive = false;
    for bound in BOUND_LADDER {
        let exploration = explorer::explore(
            |spec| run_scenario(spec, scenario.run),
            config.seed,
            bound,
            config.max_steps,
            &mut budget,
        );
        schedules += exploration.schedules;
        if let Some(outcome) = exploration.failure {
            let RunStatus::Failed(failure) = &outcome.status else {
                unreachable!("explorer only surfaces failed outcomes");
            };
            return CheckReport {
                scenario: scenario.name,
                schedules,
                exhaustive: false,
                failure: Some(FailureReport {
                    kind: failure.kind,
                    message: failure.message.clone(),
                    certificate: Certificate {
                        scenario: scenario.name.to_string(),
                        seed: config.seed,
                        decisions: outcome.decisions(),
                    },
                    trace: render_trace(&outcome),
                }),
            };
        }
        if bound.is_none() && exploration.exhausted {
            exhaustive = true;
        }
        if budget == 0 {
            break;
        }
    }
    CheckReport {
        scenario: scenario.name,
        schedules,
        exhaustive,
        failure: None,
    }
}

/// Re-executes the schedule a certificate describes (under an unbounded
/// preemption budget — the prefix steers every choice) and returns the
/// resulting outcome.  On a genuine certificate this reproduces the
/// original failure; a diverging scenario surfaces as
/// [`FailureKind::ReplayDivergence`].
pub fn replay(scenario: &Scenario, certificate: &Certificate, max_steps: usize) -> RunOutcome {
    run_scenario(
        RunSpec {
            seed: certificate.seed,
            prefix: certificate.decisions.clone(),
            extra_sleep: Vec::new(),
            bound: None,
            max_steps,
        },
        scenario.run,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificate_round_trips_through_display() {
        let cert = Certificate {
            scenario: "job-table".to_string(),
            seed: 42,
            decisions: vec![0, 2, 1, 1],
        };
        let text = cert.to_string();
        assert_eq!(text, "job-table:42:0.2.1.1");
        assert_eq!(text.parse::<Certificate>().unwrap(), cert);
    }

    #[test]
    fn empty_decision_string_parses() {
        let cert: Certificate = "demo:7:".parse().unwrap();
        assert_eq!(cert.decisions, Vec::<u32>::new());
        assert_eq!(cert.to_string(), "demo:7:");
    }

    #[test]
    fn malformed_certificates_are_rejected() {
        assert!("no-colons".parse::<Certificate>().is_err());
        assert!("name:notanumber:0.1".parse::<Certificate>().is_err());
        assert!("name:1:0.x".parse::<Certificate>().is_err());
        assert!(":1:0".parse::<Certificate>().is_err());
    }
}
