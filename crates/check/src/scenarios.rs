//! The bounded scenarios the checker ships: each targets one concurrent
//! protocol of the real pipeline, spawning 2–3 model threads over the
//! actual production types (no mocks) and asserting terminal-state
//! invariants that must hold in *every* interleaving.
//!
//! Scenario bodies follow one shape: set up shared state on the
//! controller, spawn the racing threads through the [`Handle`], start
//! the schedule with [`Handle::go`], and — only when `go` reports a
//! clean completion — assert the terminal invariants.  Mid-run safety
//! (no deadlock, no lost wakeup, no lock misuse, no assertion failure
//! on any thread) is the runtime's job.

use crate::{Handle, Scenario};
use extrap_core::sweep::{sweep_cancellable, CancelToken, SharedTraceCache, SweepGrid};
use extrap_core::{machine, ExtrapError, Extrapolator, RecordMode};
use extrap_proto::{JobId, Request, Response, SweepRow, SweepSpec};
use extrap_serve::{ServeConfig, Service};
use extrap_time::DurationNs;
use extrap_trace::{translate, PhaseProgram, TraceError, TraceSet};
use pcpp_rt::sync::{AtomicFlag, Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// The production scenarios `extrap check` runs by default.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "cache-single-flight",
            about: "SharedTraceCache: concurrent misses share one translation while \
                    evict/evict_to_budget race them",
            run: cache_single_flight,
        },
        Scenario {
            name: "cancel-mid-sweep",
            about: "sweep_cancellable vs CancelToken::cancel: every job ends Cancelled \
                    or completed, never hung",
            run: cancel_mid_sweep,
        },
        Scenario {
            name: "job-table",
            about: "serve JobTable: submit, coalesce, long-poll fetch and drain across \
                    a worker and two clients",
            run: job_table,
        },
        Scenario {
            name: "sanitizer-race",
            about: "install_sanitizer/set_enabled racing a prediction verification",
            run: sanitizer_race,
        },
    ]
}

/// Every scenario, including `demo-lost-wakeup` — a deliberately buggy
/// producer/consumer kept out of the default suite so the default run
/// stays green; CI and the tests use it to prove the checker *fails*
/// when it should.
pub fn all_scenarios() -> Vec<Scenario> {
    let mut all = scenarios();
    all.push(Scenario {
        name: "demo-lost-wakeup",
        about: "(deliberately buggy) push without notify: the checker must find the \
                lost wakeup",
        run: demo_lost_wakeup,
    });
    all
}

/// Looks a scenario up by name (including the demo).
pub fn find(name: &str) -> Option<Scenario> {
    all_scenarios().into_iter().find(|s| s.name == name)
}

/// A two-phase uniform trace program — the smallest input the whole
/// pipeline accepts.
fn tiny_set(n_threads: usize) -> Result<TraceSet, TraceError> {
    let mut p = PhaseProgram::new(n_threads);
    p.push_uniform_phase(DurationNs::from_us(150.0));
    p.push_uniform_phase(DurationNs::from_us(60.0));
    translate(&p.record(), Default::default())
}

// ---------------------------------------------------------------------
// cache-single-flight
// ---------------------------------------------------------------------

/// Two threads miss on the same key while a third evicts: the cache's
/// slot state machine must keep translation single-flight (the
/// `building` flag proves no overlap), both requesters must get a
/// usable trace, and the terminal translation count must stay within
/// the miss/evict/re-miss envelope.
fn cache_single_flight(h: &Handle) {
    let cache: Arc<SharedTraceCache<u32>> = Arc::new(SharedTraceCache::new());
    let building = Arc::new(AtomicFlag::new(false));

    for _ in 0..2 {
        let cache = Arc::clone(&cache);
        let building = Arc::clone(&building);
        h.spawn(move || {
            let cached = cache
                .get_or_translate(7, || {
                    assert!(
                        !building.swap(true),
                        "single-flight violated: two threads translating key 7 at once"
                    );
                    let set = tiny_set(2);
                    building.store(false);
                    set
                })
                .expect("translation of a valid trace succeeds");
            assert_eq!(cached.n_threads(), 2);
        });
    }
    {
        let cache = Arc::clone(&cache);
        h.spawn(move || {
            let _ = cache.evict(&7);
            let _ = cache.evict_to_budget(0);
        });
    }

    if h.go() {
        let translations = cache.translations();
        assert!(
            (1..=2).contains(&translations),
            "expected 1..=2 translations (miss shared, or evict forced one rebuild), \
             got {translations}"
        );
    }
}

// ---------------------------------------------------------------------
// cancel-mid-sweep
// ---------------------------------------------------------------------

/// One thread runs a two-job sweep while another fires the
/// [`CancelToken`]: in every interleaving each job must end as a
/// completed prediction or `ExtrapError::Cancelled` — never anything
/// else, and (enforced by the runtime) never a hang.
fn cancel_mid_sweep(h: &Handle) {
    let mut params = machine::ideal();
    params.record_mode = RecordMode::MetricsOnly;
    let jobs = SweepGrid::new()
        .workloads(["uniform"])
        .procs([1, 2])
        .params(params)
        .jobs();
    let cancel = CancelToken::new();

    {
        let cancel = cancel.clone();
        h.spawn(move || {
            let cache: SharedTraceCache<(&'static str, usize)> = SharedTraceCache::new();
            let results = sweep_cancellable(&jobs, 1, &cache, |&(_, n)| tiny_set(n), &cancel);
            assert_eq!(results.len(), 2, "every job reports an outcome");
            for r in &results {
                match r {
                    Ok(_) => {}
                    Err(e) => assert!(
                        matches!(e.error, ExtrapError::Cancelled),
                        "cancelled sweep may only fail with Cancelled, got: {e}"
                    ),
                }
            }
        });
    }
    h.spawn(move || cancel.cancel());

    h.go();
}

// ---------------------------------------------------------------------
// job-table
// ---------------------------------------------------------------------

fn accepted(response: Response) -> JobId {
    match response {
        Response::Accepted { job } => job,
        other => panic!("expected Accepted, got {other:?}"),
    }
}

fn sweep_rows(response: Response) -> Vec<SweepRow> {
    match response {
        Response::SweepRows(rows) => rows,
        other => panic!("expected SweepRows, got {other:?}"),
    }
}

/// The serving core end to end, in process: one worker and two clients
/// race submit → (coalesce) → long-poll fetch → drain.  Client 1
/// uploads a trace and simulates it; client 2 submits two identical
/// sweeps (which may or may not coalesce depending on the schedule) and
/// requires byte-identical rows either way; whichever client finishes
/// last initiates shutdown.  In every interleaving all three jobs must
/// complete — a fetch answering `Pending` here means a wakeup was lost
/// (the long-poll timeout only fires at quiescence under the virtual
/// clock).
fn job_table(h: &Handle) {
    let service = Service::new_in_process(ServeConfig {
        addr: String::new(),
        workers: 1,
        sweep_workers: 1,
        mem_budget_bytes: 0,
        max_inflight_jobs: 16,
        max_inflight_per_conn: 8,
        max_connections: 8,
        request_timeout: Duration::from_secs(30),
        batch_window: Duration::ZERO,
        check_bounds: false,
    });
    let payload = extrap_trace::format::encode_set(&tiny_set(2).expect("tiny set translates"));
    let c1_done = Arc::new(AtomicFlag::new(false));
    let c2_done = Arc::new(AtomicFlag::new(false));

    {
        let service = Arc::clone(&service);
        h.spawn(move || service.run_worker());
    }
    {
        let service = Arc::clone(&service);
        let (mine, other) = (Arc::clone(&c1_done), Arc::clone(&c2_done));
        h.spawn(move || {
            let session = service.session();
            let trace = match session.handle(Request::SubmitTrace {
                name: "chk".to_string(),
                payload,
            }) {
                Response::Submitted {
                    trace, n_threads, ..
                } => {
                    assert_eq!(n_threads, 2);
                    trace
                }
                other => panic!("expected Submitted, got {other:?}"),
            };
            let job = accepted(session.handle(Request::Simulate {
                trace,
                params: String::new(),
            }));
            match session.handle(Request::FetchResult {
                job,
                wait_ms: 10_000,
            }) {
                Response::Prediction(_) => {}
                other => panic!("simulate fetch must deliver the prediction, got {other:?}"),
            }
            mine.store(true);
            if other.load() {
                assert_eq!(session.handle(Request::Shutdown), Response::Bye);
            }
        });
    }
    {
        let service = Arc::clone(&service);
        let (mine, other) = (Arc::clone(&c2_done), Arc::clone(&c1_done));
        h.spawn(move || {
            let session = service.session();
            let spec = SweepSpec {
                benches: vec!["poisson".to_string()],
                procs: vec![1, 2],
                scale: "tiny".to_string(),
                params: String::new(),
            };
            let first = accepted(session.handle(Request::Sweep(spec.clone())));
            let second = accepted(session.handle(Request::Sweep(spec)));
            let rows_a = sweep_rows(session.handle(Request::FetchResult {
                job: first,
                wait_ms: 10_000,
            }));
            let rows_b = sweep_rows(session.handle(Request::FetchResult {
                job: second,
                wait_ms: 10_000,
            }));
            assert_eq!(
                rows_a, rows_b,
                "identical sweeps must produce identical rows whether or not they \
                 coalesced"
            );
            mine.store(true);
            if other.load() {
                assert_eq!(session.handle(Request::Shutdown), Response::Bye);
            }
        });
    }

    if h.go() {
        assert!(service.drained(), "worker exited with work still queued");
        let stats = match service.session().handle(Request::Stats) {
            Response::Stats(stats) => stats,
            other => panic!("expected Stats, got {other:?}"),
        };
        assert_eq!(stats.jobs_done, 3, "sim + two sweeps all complete");
        assert_eq!(stats.jobs_failed, 0);
        assert_eq!(
            stats.sweep_batches + stats.coalesced_sweeps,
            2,
            "two sweep jobs ran as separate batches or one coalesced batch"
        );
    }
}

// ---------------------------------------------------------------------
// sanitizer-race
// ---------------------------------------------------------------------

/// Sanitizer registration racing a prediction verification: one thread
/// installs and enables the bounds checker while another verifies a
/// known-good prediction.  Every interleaving must end with the
/// sanitizer active and no spurious violation — `check` may observe
/// any prefix of install/enable, but never a torn registration.
fn sanitizer_race(h: &Handle) {
    let mut params = machine::default_distributed();
    params.record_mode = RecordMode::MetricsOnly;
    let cached = Arc::new(
        extrap_core::CachedTrace::new(tiny_set(2).expect("tiny set translates"))
            .expect("tiny set compiles"),
    );
    let prediction = Arc::new(
        Extrapolator::new(params.clone())
            .run_compiled(cached.program())
            .expect("tiny program simulates"),
    );
    let params = Arc::new(params);

    h.spawn(|| {
        extrap_analyze::install_sanitizer();
        extrap_core::sanitizer::set_enabled(true);
    });
    h.spawn(move || {
        // A no-op before enable lands, a real envelope check after;
        // a violation panics and the runtime reports the schedule.
        extrap_core::sanitizer::check(cached.program(), &params, &prediction);
    });

    let ok = h.go();
    if ok {
        assert!(
            extrap_core::sanitizer::is_active(),
            "after both threads finish the sanitizer must be installed and enabled"
        );
    }
    // Reset process-global state for the next schedule of this run (and
    // for any scenario checked after this one in the same process).
    extrap_core::sanitizer::set_enabled(false);
}

// ---------------------------------------------------------------------
// demo-lost-wakeup
// ---------------------------------------------------------------------

/// The canonical lost wakeup, on purpose: the producer pushes without
/// notifying, so any schedule that parks the consumer first strands it
/// forever.  The checker must report `LostWakeup` with a replayable
/// certificate — tests and the CI mutation gate assert exactly that.
fn demo_lost_wakeup(h: &Handle) {
    let shared = Arc::new((Mutex::new(VecDeque::<u32>::new()), Condvar::new()));

    {
        let shared = Arc::clone(&shared);
        h.spawn(move || {
            let (queue, _notify) = &*shared;
            queue.lock().push_back(1);
            // BUG (deliberate): no notify_one() after the push.
        });
    }
    {
        let shared = Arc::clone(&shared);
        h.spawn(move || {
            let (queue, notify) = &*shared;
            let mut q = queue.lock();
            while q.is_empty() {
                notify.wait(&mut q);
            }
            assert_eq!(q.pop_front(), Some(1));
        });
    }

    h.go();
}
