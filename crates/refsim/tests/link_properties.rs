//! Property tests of the link-level network model.
//!
//! Driven by a deterministic SplitMix64 case generator instead of
//! `proptest` (crates.io is unreachable in the build environment).

use extrap_core::network::state::NetModel;
use extrap_core::{ContentionParams, NetworkParams, Topology};
use extrap_refsim::link::{LinkNetwork, LinkParams};
use extrap_refsim::route::{route, Link};
use extrap_time::{DurationNs, ProcId, TimeNs};

const CASES: u64 = 64;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn topology(&mut self) -> Topology {
        match self.range(0, 5) {
            0 => Topology::Bus,
            1 => Topology::Crossbar,
            2 => Topology::Mesh2D,
            3 => Topology::Hypercube,
            _ => Topology::FatTree {
                arity: self.range(2, 5) as u32,
            },
        }
    }
}

fn for_all(seed: u64, check: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng(seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
        check(&mut rng);
    }
}

fn network(topology: Topology, n: usize) -> LinkNetwork {
    LinkNetwork::new(
        n,
        NetworkParams {
            topology,
            hop: DurationNs(200),
            contention: ContentionParams::default(),
        },
        DurationNs(5),
        LinkParams::default(),
    )
}

#[test]
fn routes_are_finite_and_terminate_at_ingress() {
    for_all(0x2077E, |rng| {
        let topology = rng.topology();
        let n = rng.range(2, 33) as usize;
        let a = ProcId(rng.range(0, 33) as u32 % n as u32);
        let b = ProcId(rng.range(0, 33) as u32 % n as u32);
        let r = route(topology, n, a, b);
        if a == b {
            assert!(r.is_empty());
        } else {
            assert!(!r.is_empty());
            assert!(r.len() <= 2 * n + 2, "{topology:?}: route {r:?}");
            assert_eq!(*r.last().unwrap(), Link::Ingress(b.0));
        }
    });
}

#[test]
fn route_length_is_symmetric() {
    for_all(0x5EE5, |rng| {
        let topology = rng.topology();
        let n = rng.range(2, 33) as usize;
        let a = ProcId(rng.range(0, 33) as u32 % n as u32);
        let b = ProcId(rng.range(0, 33) as u32 % n as u32);
        assert_eq!(
            route(topology, n, a, b).len(),
            route(topology, n, b, a).len()
        );
    });
}

#[test]
fn arrivals_are_never_earlier_than_injection() {
    for_all(0xA221, |rng| {
        let topology = rng.topology();
        let n = rng.range(2, 17) as usize;
        let mut net = network(topology, n);
        let mut injected = 0u64;
        for _ in 0..rng.range(1, 40) {
            let src = ProcId(rng.range(0, 17) as u32 % n as u32);
            let dst = ProcId(rng.range(0, 17) as u32 % n as u32);
            let bytes = rng.range(1, 10_000) as u32;
            let now = TimeNs(rng.range(0, 50_000));
            let arrival = net.inject(now, src, dst, bytes);
            assert!(arrival >= now, "arrival {arrival} before injection {now}");
            injected += 1;
        }
        assert_eq!(NetModel::stats(&net).messages, injected);
    });
}

#[test]
fn sequential_messages_on_one_path_do_not_contend() {
    for_all(0x5E01, |rng| {
        let topology = rng.topology();
        let n = rng.range(2, 17) as usize;
        // Messages spaced far apart in time find every link free: each
        // transfer takes exactly the unloaded time of the first.
        let mut net = network(topology, n);
        let src = ProcId(0);
        let dst = ProcId((n - 1) as u32);
        let first = net.inject(TimeNs(0), src, dst, 100).since(TimeNs(0));
        for i in 1..5u64 {
            let start = TimeNs(i * 10_000_000);
            let took = net.inject(start, src, dst, 100).since(start);
            assert_eq!(took, first);
        }
        assert_eq!(net.link_wait(), DurationNs::ZERO);
    });
}

#[test]
fn simultaneous_messages_through_one_bus_serialize() {
    for count in 2usize..10 {
        let mut net = network(Topology::Bus, 16);
        let mut arrivals = Vec::new();
        for i in 0..count {
            let src = ProcId((i % 8) as u32);
            let dst = ProcId((8 + i % 8) as u32);
            arrivals.push(net.inject(TimeNs(0), src, dst, 64));
        }
        // All distinct: the single bus admits one transfer at a time.
        let mut sorted = arrivals.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), arrivals.len());
        assert!(net.link_wait() > DurationNs::ZERO);
    }
}
