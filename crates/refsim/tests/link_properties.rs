//! Property tests of the link-level network model.

use extrap_core::network::state::NetModel;
use extrap_core::{ContentionParams, NetworkParams, Topology};
use extrap_refsim::link::{LinkNetwork, LinkParams};
use extrap_refsim::route::{route, Link};
use extrap_time::{DurationNs, ProcId, TimeNs};
use proptest::prelude::*;

fn topologies() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::Bus),
        Just(Topology::Crossbar),
        Just(Topology::Mesh2D),
        Just(Topology::Hypercube),
        (2u32..5).prop_map(|arity| Topology::FatTree { arity }),
    ]
}

fn network(topology: Topology, n: usize) -> LinkNetwork {
    LinkNetwork::new(
        n,
        NetworkParams {
            topology,
            hop: DurationNs(200),
            contention: ContentionParams::default(),
        },
        DurationNs(5),
        LinkParams::default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn routes_are_finite_and_terminate_at_ingress(
        topology in topologies(),
        n in 2usize..33,
        a in 0u32..33,
        b in 0u32..33,
    ) {
        let a = ProcId(a % n as u32);
        let b = ProcId(b % n as u32);
        let r = route(topology, n, a, b);
        if a == b {
            prop_assert!(r.is_empty());
        } else {
            prop_assert!(!r.is_empty());
            prop_assert!(r.len() <= 2 * n + 2, "{topology:?}: route {r:?}");
            prop_assert_eq!(*r.last().unwrap(), Link::Ingress(b.0));
        }
    }

    #[test]
    fn route_length_is_symmetric(
        topology in topologies(),
        n in 2usize..33,
        a in 0u32..33,
        b in 0u32..33,
    ) {
        let a = ProcId(a % n as u32);
        let b = ProcId(b % n as u32);
        prop_assert_eq!(
            route(topology, n, a, b).len(),
            route(topology, n, b, a).len()
        );
    }

    #[test]
    fn arrivals_are_never_earlier_than_injection(
        topology in topologies(),
        n in 2usize..17,
        msgs in proptest::collection::vec((0u32..17, 0u32..17, 1u32..10_000, 0u64..50_000), 1..40),
    ) {
        let mut net = network(topology, n);
        let mut injected = 0u64;
        for (src, dst, bytes, at) in msgs {
            let src = ProcId(src % n as u32);
            let dst = ProcId(dst % n as u32);
            let now = TimeNs(at);
            let arrival = net.inject(now, src, dst, bytes);
            prop_assert!(arrival >= now, "arrival {arrival} before injection {now}");
            injected += 1;
        }
        prop_assert_eq!(NetModel::stats(&net).messages, injected);
    }

    #[test]
    fn sequential_messages_on_one_path_do_not_contend(
        topology in topologies(),
        n in 2usize..17,
    ) {
        // Messages spaced far apart in time find every link free: each
        // transfer takes exactly the unloaded time of the first.
        let mut net = network(topology, n);
        let src = ProcId(0);
        let dst = ProcId((n - 1) as u32);
        let first = net.inject(TimeNs(0), src, dst, 100).since(TimeNs(0));
        for i in 1..5u64 {
            let start = TimeNs(i * 10_000_000);
            let took = net.inject(start, src, dst, 100).since(start);
            prop_assert_eq!(took, first);
        }
        prop_assert_eq!(net.link_wait(), DurationNs::ZERO);
    }

    #[test]
    fn simultaneous_messages_through_one_bus_serialize(
        count in 2usize..10,
    ) {
        let mut net = network(Topology::Bus, 16);
        let mut arrivals = Vec::new();
        for i in 0..count {
            let src = ProcId((i % 8) as u32);
            let dst = ProcId((8 + i % 8) as u32);
            arrivals.push(net.inject(TimeNs(0), src, dst, 64));
        }
        // All distinct: the single bus admits one transfer at a time.
        let mut sorted = arrivals.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), arrivals.len());
        prop_assert!(net.link_wait() > DurationNs::ZERO);
    }
}
