//! The link-level network: per-channel occupancy with store-and-forward
//! transfers and packetization.

use crate::route::{route, Link};
use extrap_core::network::{state::NetModel, NetworkStats};
use extrap_core::{NetworkParams, Topology};
use extrap_time::{DurationNs, ProcId, TimeNs};
use std::collections::BTreeMap;

/// Link-level model parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkParams {
    /// Payload bytes per packet; each packet adds `packet_header_bytes`.
    pub packet_bytes: u32,
    /// Header bytes added per packet.
    pub packet_header_bytes: u32,
    /// Parallel channels multiplier per fat-tree level above the leaves
    /// (a fat tree's capacity growth; the CM-5 data network roughly
    /// doubles per level).
    pub fat_channel_growth: u32,
    /// Channels on every non-tree link.
    pub base_channels: u32,
}

impl Default for LinkParams {
    fn default() -> LinkParams {
        LinkParams {
            packet_bytes: 20, // CM-5 data-network packets carry 20 bytes
            packet_header_bytes: 4,
            fat_channel_growth: 2,
            base_channels: 1,
        }
    }
}

/// The link-occupancy network model.
///
/// Each link owns a set of channels with `free_at` times; a message
/// reserves, hop by hop, the earliest-free channel: it starts crossing a
/// link no earlier than it arrived at the switch and no earlier than the
/// channel frees up (store-and-forward).  The returned arrival time thus
/// reflects *direct* queuing contention rather than an analytic factor.
#[derive(Clone, Debug)]
pub struct LinkNetwork {
    topology: Topology,
    n_procs: usize,
    hop: DurationNs,
    byte_transfer: DurationNs,
    link_params: LinkParams,
    channels: BTreeMap<Link, Vec<TimeNs>>,
    stats: NetworkStats,
    in_flight: usize,
    /// Total time messages spent queued behind busy links.
    pub total_link_wait: DurationNs,
}

impl LinkNetwork {
    /// Builds the network for `n_procs` processors.
    pub fn new(
        n_procs: usize,
        network: NetworkParams,
        byte_transfer: DurationNs,
        link_params: LinkParams,
    ) -> LinkNetwork {
        LinkNetwork {
            topology: network.topology,
            n_procs,
            hop: network.hop,
            byte_transfer,
            link_params,
            channels: BTreeMap::new(),
            stats: NetworkStats::default(),
            in_flight: 0,
            total_link_wait: DurationNs::ZERO,
        }
    }

    fn channel_count(&self, link: &Link) -> usize {
        let level = link.tree_level();
        if level > 1 {
            (self.link_params.base_channels
                * self
                    .link_params
                    .fat_channel_growth
                    .pow(u32::from(level) - 1)) as usize
        } else {
            self.link_params.base_channels.max(1) as usize
        }
    }

    /// Wire bytes after packetization.
    fn wire_bytes(&self, payload: u32) -> u64 {
        let pb = self.link_params.packet_bytes.max(1);
        let packets = payload.div_ceil(pb).max(1);
        u64::from(payload) + u64::from(packets) * u64::from(self.link_params.packet_header_bytes)
    }

    /// Accumulated link-wait time (contention observed directly).
    pub fn link_wait(&self) -> DurationNs {
        self.total_link_wait
    }
}

impl NetModel for LinkNetwork {
    fn inject(&mut self, now: TimeNs, src: ProcId, dst: ProcId, bytes: u32) -> TimeNs {
        self.stats.messages += 1;
        self.stats.bytes += u64::from(bytes);
        if src == dst {
            self.stats.factor_sum += 1.0;
            return now;
        }
        let path = route(self.topology, self.n_procs, src, dst);
        let tx = self.hop + self.byte_transfer * self.wire_bytes(bytes);
        let mut t = now;
        let mut waited = DurationNs::ZERO;
        for link in path {
            let n_ch = self.channel_count(&link);
            let slots = self
                .channels
                .entry(link)
                .or_insert_with(|| vec![TimeNs::ZERO; n_ch]);
            // Earliest-free channel.
            let (best, _) = slots
                .iter()
                .enumerate()
                .min_by_key(|(_, &free)| free)
                .expect("links have at least one channel");
            let start = t.max(slots[best]);
            waited += start.since(t);
            let end = start + tx;
            slots[best] = end;
            t = end;
        }
        self.total_link_wait += waited;
        // Report the effective slowdown as a factor for comparability
        // with the analytic model's statistics.
        let unloaded = self.hop.as_ns().max(1) + tx.as_ns();
        let actual = t.since(now).as_ns();
        self.stats.factor_sum += actual as f64 / unloaded.max(1) as f64;
        self.in_flight += 1;
        self.stats.max_in_flight = self.stats.max_in_flight.max(self.in_flight);
        t
    }

    fn complete(&mut self, _src: ProcId, _dst: ProcId) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    fn stats(&self) -> NetworkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extrap_core::ContentionParams;

    fn net(topology: Topology, n: usize) -> LinkNetwork {
        LinkNetwork::new(
            n,
            NetworkParams {
                topology,
                hop: DurationNs(100),
                contention: ContentionParams::default(),
            },
            DurationNs(10),
            LinkParams {
                packet_bytes: 16,
                packet_header_bytes: 0,
                fat_channel_growth: 2,
                base_channels: 1,
            },
        )
    }

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn unloaded_transfer_is_per_hop_serialized() {
        let mut n = net(Topology::Crossbar, 4);
        // Route: port + ingress = 2 links; each costs hop(100) + 32B*10.
        let arrival = n.inject(TimeNs(0), p(0), p(1), 32);
        assert_eq!(arrival, TimeNs(2 * (100 + 320)));
        assert_eq!(n.link_wait(), DurationNs::ZERO);
    }

    #[test]
    fn contention_queues_behind_busy_links() {
        let mut n = net(Topology::Bus, 4);
        let a1 = n.inject(TimeNs(0), p(0), p(1), 16);
        // Second message to a different destination still shares the bus.
        let a2 = n.inject(TimeNs(0), p(2), p(3), 16);
        assert!(a2 > a1 - DurationNs(1), "bus serializes messages");
        assert!(n.link_wait() > DurationNs::ZERO);
    }

    #[test]
    fn ingress_port_serializes_fan_in() {
        let mut n = net(Topology::Crossbar, 8);
        // Many senders to one destination: ingress forces queuing even
        // though crossbar ports differ... same dst port is shared too.
        let mut last = TimeNs::ZERO;
        for s in 1..5 {
            let a = n.inject(TimeNs(0), p(s), p(0), 16);
            assert!(a > last, "each arrival lands after the previous");
            last = a;
        }
    }

    #[test]
    fn fat_tree_upper_links_are_wider() {
        let mut n = net(Topology::FatTree { arity: 2 }, 8);
        // Two simultaneous messages crossing the root level in disjoint
        // subtrees but sharing no physical channel: both should be
        // unaffected by each other.
        let a1 = n.inject(TimeNs(0), p(0), p(4), 16);
        let a2 = n.inject(TimeNs(0), p(1), p(5), 16);
        // They share the level-3 (root) links only if channels run out;
        // growth 2 gives the root 4 channels, so no queuing there.
        // p0 and p1 share the level-1 switch uplink though: some wait is
        // expected but bounded by one transfer.
        let tx = DurationNs(100 + 160);
        assert!(a2 <= a1 + tx + tx, "a1 {a1} a2 {a2}");
    }

    #[test]
    fn packetization_adds_header_bytes() {
        let mut n = LinkNetwork::new(
            4,
            NetworkParams {
                topology: Topology::Crossbar,
                hop: DurationNs::ZERO,
                contention: ContentionParams::default(),
            },
            DurationNs(1),
            LinkParams {
                packet_bytes: 10,
                packet_header_bytes: 5,
                fat_channel_growth: 2,
                base_channels: 1,
            },
        );
        // 25 payload bytes -> 3 packets -> 25 + 15 = 40 wire bytes per
        // link, 2 links.
        let arrival = n.inject(TimeNs(0), p(0), p(1), 25);
        assert_eq!(arrival, TimeNs(80));
    }

    #[test]
    fn local_messages_bypass_links() {
        let mut n = net(Topology::Bus, 4);
        assert_eq!(n.inject(TimeNs(7), p(2), p(2), 1_000), TimeNs(7));
    }

    #[test]
    fn stats_track_messages() {
        let mut n = net(Topology::Crossbar, 4);
        n.inject(TimeNs(0), p(0), p(1), 16);
        n.inject(TimeNs(0), p(1), p(2), 16);
        assert_eq!(NetModel::stats(&n).messages, 2);
        assert_eq!(NetModel::stats(&n).bytes, 32);
        n.complete(p(0), p(1));
        n.complete(p(1), p(2));
    }
}
