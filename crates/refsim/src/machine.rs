//! The reference machine: the trace-driven engine with the link-level
//! network substituted.

use crate::link::{LinkNetwork, LinkParams};
use extrap_core::{ExtrapError, Prediction, SimParams};
use extrap_trace::TraceSet;

/// A target machine simulated at link level — the "measured" side of the
/// validation experiments.
#[derive(Clone, Debug)]
pub struct RefMachine {
    /// The machine's model parameters (same structure as extrapolation
    /// parameters, so an identical machine description drives both
    /// simulators).
    pub params: SimParams,
    /// Link-level detail parameters.
    pub link: LinkParams,
}

impl RefMachine {
    /// Builds a reference machine from extrapolation parameters with
    /// default link detail.
    pub fn new(params: SimParams) -> RefMachine {
        RefMachine {
            params,
            link: LinkParams::default(),
        }
    }

    /// Overrides the link detail parameters.
    pub fn with_link(mut self, link: LinkParams) -> RefMachine {
        self.link = link;
        self
    }

    /// "Measures" the program on this machine (runs the detailed
    /// simulation over the translated traces).
    pub fn measure(&self, traces: &TraceSet) -> Result<Prediction, ExtrapError> {
        let n_procs = self
            .params
            .multithread
            .mapping
            .n_procs(traces.n_threads().max(1));
        let net = LinkNetwork::new(
            n_procs,
            self.params.network,
            self.params.comm.byte_transfer,
            self.link,
        );
        extrap_core::run_with_network(traces, &self.params, net)
    }
}

/// Convenience: measure `traces` on a machine described by `params` with
/// default link detail.
pub fn measure(traces: &TraceSet, params: &SimParams) -> Result<Prediction, ExtrapError> {
    RefMachine::new(params.clone()).measure(traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use extrap_core::{extrapolate, machine};
    use extrap_time::{DurationNs, ElementId, ThreadId};
    use extrap_trace::{PhaseAccess, PhaseProgram, PhaseWork};

    fn ring(n: usize, phases: usize, us: f64, bytes: u32) -> TraceSet {
        let mut p = PhaseProgram::new(n);
        for _ in 0..phases {
            let work = (0..n)
                .map(|t| PhaseWork {
                    compute: DurationNs::from_us(us),
                    accesses: vec![PhaseAccess {
                        after: DurationNs::from_us(us / 2.0),
                        owner: ThreadId::from_index((t + 1) % n),
                        element: ElementId::from_index(t),
                        declared_bytes: bytes,
                        actual_bytes: bytes,
                        write: false,
                    }],
                })
                .collect();
            p.push_phase(work);
        }
        extrap_trace::translate(&p.record(), Default::default()).unwrap()
    }

    #[test]
    fn reference_measurement_completes_and_is_deterministic() {
        let ts = ring(8, 3, 50.0, 4_096);
        let m = RefMachine::new(machine::cm5());
        let a = m.measure(&ts).unwrap();
        let b = m.measure(&ts).unwrap();
        assert_eq!(a.exec_time(), b.exec_time());
        assert!(a.exec_time().as_ns() > 0);
        a.predicted.validate().unwrap();
    }

    #[test]
    fn metrics_only_changes_nothing_but_the_predicted_trace() {
        // The record-mode split applies to the link-level simulator too:
        // "measured" sides of validation runs only consume exec_time().
        let ts = ring(8, 3, 50.0, 4_096);
        let full = RefMachine::new(machine::cm5()).measure(&ts).unwrap();
        let mut params = machine::cm5();
        params.record_mode = extrap_core::RecordMode::MetricsOnly;
        let lean = RefMachine::new(params).measure(&ts).unwrap();
        assert_eq!(full.exec_time(), lean.exec_time());
        assert_eq!(full.per_thread, lean.per_thread);
        assert_eq!(full.barriers, lean.barriers);
        assert_eq!(full.network, lean.network);
        assert!(lean.predicted.threads.is_empty(), "no predicted trace");
        assert!(!full.predicted.threads.is_empty());
    }

    #[test]
    fn link_level_and_analytic_agree_on_order_of_magnitude() {
        // The two simulators model the same machine; on a lightly loaded
        // pattern their predictions should be close (within 2x), since
        // contention is mild.
        let ts = ring(4, 3, 200.0, 1_024);
        let params = machine::cm5();
        let high = extrapolate(&ts, &params).unwrap().exec_time();
        let refm = measure(&ts, &params).unwrap().exec_time();
        let ratio = refm.as_ns() as f64 / high.as_ns() as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "analytic {high} vs link-level {refm} (ratio {ratio})"
        );
    }

    #[test]
    fn link_level_penalizes_hot_spots_harder() {
        // All-to-one fan-in: every thread reads from thread 0 each phase.
        let n = 8;
        let mut p = PhaseProgram::new(n);
        for _ in 0..2 {
            let work = (0..n)
                .map(|t| PhaseWork {
                    compute: DurationNs::from_us(20.0),
                    accesses: if t == 0 {
                        vec![]
                    } else {
                        vec![PhaseAccess {
                            after: DurationNs::from_us(10.0),
                            owner: ThreadId(0),
                            element: ElementId(0),
                            declared_bytes: 16_384,
                            actual_bytes: 16_384,
                            write: false,
                        }]
                    },
                })
                .collect();
            p.push_phase(work);
        }
        let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
        let params = machine::cm5();
        let analytic = extrapolate(&ts, &params).unwrap().exec_time();
        let linklevel = measure(&ts, &params).unwrap().exec_time();
        // Fan-in serializes at thread 0's ingress; the detailed model
        // must not be faster than the analytic one here.
        assert!(
            linklevel.as_ns() >= analytic.as_ns() * 9 / 10,
            "analytic {analytic} link {linklevel}"
        );
    }
}
