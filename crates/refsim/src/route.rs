//! Deterministic routes through each topology as sequences of link ids.
//!
//! A link id identifies one contention resource (a directed physical
//! channel or a switch port).  Fat-tree links carry a `level` so the
//! network can widen them (a fat tree's defining property).

use extrap_core::Topology;
use extrap_time::ProcId;

/// One contention resource on a route.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Link {
    /// The single shared bus.
    Bus,
    /// A crossbar output port toward a processor.
    Port(u32),
    /// A directed mesh channel from grid node `from` in direction `dir`
    /// (0 = +x, 1 = −x, 2 = +y, 3 = −y).
    Mesh {
        /// Source grid node (flat index).
        from: u32,
        /// Direction code.
        dir: u8,
    },
    /// A directed hypercube channel from `from` across dimension `dim`.
    Cube {
        /// Source node.
        from: u32,
        /// Flipped dimension.
        dim: u8,
    },
    /// A fat-tree edge between a level-`level−1` node and its parent
    /// switch, identified by the child subtree index, going up or down.
    Tree {
        /// Level of the parent switch (1 = leaf switches).
        level: u8,
        /// Index of the child node within level `level−1`.
        child: u32,
        /// Direction (true = toward the root).
        up: bool,
    },
    /// The destination node's ingress port (receive-queue serialization).
    Ingress(u32),
}

impl Link {
    /// Fat-tree level of this link (0 for non-tree links); used to widen
    /// high links.
    pub fn tree_level(&self) -> u8 {
        match self {
            Link::Tree { level, .. } => *level,
            _ => 0,
        }
    }
}

/// Computes the route for a message, ending with the destination ingress
/// port.  `src == dst` yields an empty route (no wire involved).
pub fn route(topology: Topology, n_procs: usize, src: ProcId, dst: ProcId) -> Vec<Link> {
    if src == dst {
        return Vec::new();
    }
    let mut links = match topology {
        Topology::Bus => vec![Link::Bus],
        Topology::Crossbar => vec![Link::Port(dst.0)],
        Topology::Mesh2D => mesh_route(n_procs, src, dst),
        Topology::Hypercube => cube_route(src, dst),
        Topology::FatTree { arity } => tree_route(arity.max(2), src, dst),
    };
    links.push(Link::Ingress(dst.0));
    links
}

fn mesh_route(n_procs: usize, src: ProcId, dst: ProcId) -> Vec<Link> {
    let cols = extrap_core::network::topology::mesh_cols(n_procs);
    let (mut x, mut y) = (src.index() % cols, src.index() / cols);
    let (dx, dy) = (dst.index() % cols, dst.index() / cols);
    let mut links = Vec::new();
    // Dimension-ordered (XY) routing.
    while x != dx {
        let from = (y * cols + x) as u32;
        if dx > x {
            links.push(Link::Mesh { from, dir: 0 });
            x += 1;
        } else {
            links.push(Link::Mesh { from, dir: 1 });
            x -= 1;
        }
    }
    while y != dy {
        let from = (y * cols + x) as u32;
        if dy > y {
            links.push(Link::Mesh { from, dir: 2 });
            y += 1;
        } else {
            links.push(Link::Mesh { from, dir: 3 });
            y -= 1;
        }
    }
    links
}

fn cube_route(src: ProcId, dst: ProcId) -> Vec<Link> {
    // E-cube routing: correct differing bits from lowest to highest.
    let mut cur = src.0;
    let mut links = Vec::new();
    let mut diff = cur ^ dst.0;
    while diff != 0 {
        let dim = diff.trailing_zeros() as u8;
        links.push(Link::Cube { from: cur, dim });
        cur ^= 1 << dim;
        diff = cur ^ dst.0;
    }
    links
}

fn tree_route(arity: u32, src: ProcId, dst: ProcId) -> Vec<Link> {
    let arity = arity as usize;
    let mut links = Vec::new();
    // Climb both leaves to the least common ancestor, collecting the up
    // path eagerly and the down path in reverse.
    let (mut s, mut d) = (src.index(), dst.index());
    let mut level = 1u8;
    let mut down = Vec::new();
    while s / arity != d / arity {
        links.push(Link::Tree {
            level,
            child: s as u32,
            up: true,
        });
        down.push(Link::Tree {
            level,
            child: d as u32,
            up: false,
        });
        s /= arity;
        d /= arity;
        level += 1;
    }
    // Cross the common switch at `level`.
    links.push(Link::Tree {
        level,
        child: s as u32,
        up: true,
    });
    down.push(Link::Tree {
        level,
        child: d as u32,
        up: false,
    });
    links.extend(down.into_iter().rev());
    links
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn self_route_is_empty() {
        for t in [
            Topology::Bus,
            Topology::Mesh2D,
            Topology::Hypercube,
            Topology::FatTree { arity: 4 },
        ] {
            assert!(route(t, 16, p(3), p(3)).is_empty());
        }
    }

    #[test]
    fn every_route_ends_at_ingress() {
        for t in [
            Topology::Bus,
            Topology::Crossbar,
            Topology::Mesh2D,
            Topology::Hypercube,
            Topology::FatTree { arity: 2 },
        ] {
            for a in 0..8u32 {
                for b in 0..8u32 {
                    if a == b {
                        continue;
                    }
                    let r = route(t, 8, p(a), p(b));
                    assert_eq!(*r.last().unwrap(), Link::Ingress(b), "{t:?} {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn mesh_route_length_matches_manhattan() {
        // 16 procs = 4x4 grid.
        let r = route(Topology::Mesh2D, 16, p(0), p(15));
        assert_eq!(r.len(), 6 + 1); // manhattan 6 + ingress
        let r = route(Topology::Mesh2D, 16, p(5), p(6));
        assert_eq!(r.len(), 1 + 1);
    }

    #[test]
    fn cube_route_flips_each_bit_once() {
        let r = route(Topology::Hypercube, 8, p(0), p(7));
        assert_eq!(r.len(), 3 + 1);
        assert_eq!(r[0], Link::Cube { from: 0, dim: 0 });
        assert_eq!(r[1], Link::Cube { from: 1, dim: 1 });
        assert_eq!(r[2], Link::Cube { from: 3, dim: 2 });
    }

    #[test]
    fn tree_route_goes_up_then_down() {
        // Arity 4: procs 0 and 5 share a level-2 switch.
        let r = route(Topology::FatTree { arity: 4 }, 16, p(0), p(5));
        let ups: Vec<bool> = r
            .iter()
            .filter_map(|l| match l {
                Link::Tree { up, .. } => Some(*up),
                _ => None,
            })
            .collect();
        assert_eq!(ups, vec![true, true, false, false]);
        // Siblings: one hop up, one down.
        let r = route(Topology::FatTree { arity: 4 }, 16, p(0), p(1));
        assert_eq!(r.len(), 2 + 1);
    }

    #[test]
    fn tree_levels_increase_toward_root() {
        let r = route(Topology::FatTree { arity: 2 }, 8, p(0), p(7));
        let levels: Vec<u8> = r
            .iter()
            .filter_map(|l| match l {
                Link::Tree {
                    level, up: true, ..
                } => Some(*level),
                _ => None,
            })
            .collect();
        assert_eq!(levels, vec![1, 2, 3]);
    }

    #[test]
    fn routes_are_deterministic() {
        let a = route(Topology::Mesh2D, 16, p(2), p(13));
        let b = route(Topology::Mesh2D, 16, p(2), p(13));
        assert_eq!(a, b);
    }
}
