#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # extrap-refsim — the link-level reference machine
//!
//! The paper validates extrapolated predictions against *measurements on
//! a real CM-5* (§4.2, Fig. 9).  No CM-5 being available, this crate
//! provides the substitution documented in DESIGN.md: a much more
//! detailed machine simulation that plays the same translated traces but
//! models the interconnect at **link level** — explicit switch-to-switch
//! links with per-channel occupancy, store-and-forward transfers,
//! packetization overhead, and a serialized ingress port per node (the
//! receive-queue contention the paper simulates directly).
//!
//! ExtraP deliberately avoids this level of detail for speed and instead
//! uses analytic contention factors; running both simulators on
//! identical traces therefore reproduces the methodological relationship
//! under study (cheap high-level prediction vs. expensive detailed
//! "measurement") *and* doubles as an ablation of the analytic
//! contention choice.

pub mod link;
pub mod machine;
pub mod route;

pub use link::{LinkNetwork, LinkParams};
pub use machine::{measure, RefMachine};
