//! A FIFO queue that tracks occupancy statistics.
//!
//! Used for message receive queues: the paper's remote-access model
//! simulates "concurrent access to message receive queues" directly, and
//! the queue-depth statistics feed the contention diagnosis.

use std::collections::VecDeque;

/// A `VecDeque` wrapper recording high-water mark and cumulative traffic.
#[derive(Clone, Debug)]
pub struct TrackedFifo<T> {
    items: VecDeque<T>,
    max_depth: usize,
    total_enqueued: u64,
}

impl<T> Default for TrackedFifo<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TrackedFifo<T> {
    /// Creates an empty queue.
    pub fn new() -> TrackedFifo<T> {
        TrackedFifo {
            items: VecDeque::new(),
            max_depth: 0,
            total_enqueued: 0,
        }
    }

    /// Appends an item.
    pub fn push(&mut self, item: T) {
        self.items.push_back(item);
        self.total_enqueued += 1;
        self.max_depth = self.max_depth.max(self.items.len());
    }

    /// Removes and returns the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest item.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Largest occupancy ever observed.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Total items ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }

    /// Drains all items in FIFO order.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.items.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = TrackedFifo::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.front(), Some(&2));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn statistics_track_high_water() {
        let mut q = TrackedFifo::new();
        q.push('a');
        q.push('b');
        q.pop();
        q.push('c');
        assert_eq!(q.max_depth(), 2);
        assert_eq!(q.total_enqueued(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_empties_in_order() {
        let mut q = TrackedFifo::new();
        q.push(10);
        q.push(20);
        let all: Vec<i32> = q.drain().collect();
        assert_eq!(all, vec![10, 20]);
        assert!(q.is_empty());
        assert_eq!(q.max_depth(), 2, "stats survive draining");
    }
}
