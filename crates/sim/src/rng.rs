//! A tiny deterministic RNG (SplitMix64) for simulator-internal choices.
//!
//! The extrapolation models are analytic and never need randomness; this
//! exists for optional jitter studies and for generating synthetic
//! workloads deterministically without pulling `rand` into the simulator
//! crates.

/// SplitMix64: fast, full-period, and trivially seedable.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift rejection-free mapping (bias negligible for
        // simulator purposes, and deterministic which is what matters).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn next_below_hits_all_residues() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
