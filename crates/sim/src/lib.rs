#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! A small, deterministic discrete-event simulation kernel.
//!
//! Both ExtraP's high-level trace-driven simulator (`extrap-core`) and the
//! link-level reference machine (`extrap-refsim`) are built on this engine.
//! Determinism is load-bearing for the whole reproduction: events at equal
//! timestamps pop in schedule order (FIFO tie-breaking), cancellation is
//! token-based, and no wall-clock or hash-iteration order leaks into
//! simulation results.

pub mod calendar;
pub mod engine;
pub mod fifo;
pub mod heap;
pub mod rng;
pub mod sched;

pub use calendar::CalendarScheduler;
pub use engine::{Engine, EventToken};
pub use fifo::TrackedFifo;
pub use heap::HeapScheduler;
pub use rng::SplitMix64;
pub use sched::{EventEntry, Scheduler, SchedulerKind};
