//! The calendar-queue scheduler backend (Brown, CACM 1988): pending
//! events hashed into time-bucketed "days" so that, when event times
//! are reasonably spread, schedule and dispatch are O(1) amortized
//! instead of the heap's O(log n).
//!
//! Layout: a power-of-two array of buckets, each a sorted run of
//! [`EventEntry`]s with a pop cursor (`head`) so dispatch from a bucket
//! is a cursor bump, not a memmove.  An event at time `t` lives in
//! bucket `(t / width) & mask`; the scan position (`current`,
//! `bucket_top`) walks bucket windows in time order, popping a bucket's
//! head whenever it falls inside the current window.
//!
//! Determinism: pops come out in exactly ascending `(time, seq)` key
//! order — equal timestamps always hash to the same bucket, where the
//! sorted run keeps them in seq (schedule) order, and across buckets
//! the window scan visits strictly increasing time windows.  The
//! property tests pin this against both the naive sorted-vec model and
//! the heap backend.
//!
//! Degenerate distributions degrade gracefully instead of collapsing:
//!
//! * width auto-sizing — every resize re-estimates the bucket width
//!   from a sample of pending inter-event gaps (outliers discarded),
//!   so the calendar adapts to the workload's actual time scale;
//! * resize-on-skew — if one bucket accumulates far more than its fair
//!   share, the queue re-spreads with a fresh width estimate (re-armed
//!   only after the queue doubles, so an all-equal-timestamp burst —
//!   which is already O(1) via append + cursor pop — cannot thrash);
//! * direct-search fallback — a full fruitless year of window scanning
//!   (a sparse far-future queue) jumps straight to the global minimum
//!   instead of creeping one window at a time.

use crate::sched::{EventEntry, Scheduler};

/// Smallest and largest bucket-array sizes (powers of two).  The floor
/// keeps the empty/near-empty queue cheap to scan; the cap bounds
/// resize cost and memory for extreme queue depths.
const MIN_BUCKETS: usize = 8;
const MAX_BUCKETS: usize = 1 << 16;

/// How many pending timestamps the width estimator samples per resize.
const WIDTH_SAMPLE: usize = 64;

/// One calendar day: a run of entries sorted ascending by `(time, seq)`
/// key, with everything before `head` already popped.  Popped prefixes
/// are compacted away once they dominate the allocation, so the cursor
/// keeps dispatch O(1) without leaking memory.
struct Bucket<E> {
    entries: Vec<EventEntry<E>>,
    head: usize,
}

impl<E> Default for Bucket<E> {
    fn default() -> Self {
        Bucket {
            entries: Vec::new(),
            head: 0,
        }
    }
}

impl<E> Bucket<E> {
    #[inline]
    fn first(&self) -> Option<&EventEntry<E>> {
        self.entries.get(self.head)
    }
}

/// A calendar queue over event payloads of type `E`.
///
/// See the module docs for the structure and the determinism argument;
/// see [`HeapScheduler`](crate::heap::HeapScheduler) for the backend it
/// competes with.
pub struct CalendarScheduler<E> {
    buckets: Vec<Bucket<E>>,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: usize,
    /// Time span of one bucket window, >= 1.  Always a power of two
    /// (`1 << shift`) so the bucket-index computation on the push/pop
    /// hot path is a shift, not a 64-bit division.
    width: u64,
    /// `width.trailing_zeros()`.
    shift: u32,
    /// Bucket index the window scan is parked on.
    current: usize,
    /// Exclusive end of `current`'s time window.  `u128` so the scan
    /// can run past `u64::MAX` timestamps without overflow.
    bucket_top: u128,
    len: usize,
    /// Queue length at the last resize; skew-triggered resizes re-arm
    /// only once the queue doubles past this, bounding resize churn.
    last_sizing_len: usize,
    /// Reused gather buffer for resizes.
    scratch: Vec<EventEntry<E>>,
}

impl<E: Copy> Default for CalendarScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Copy> CalendarScheduler<E> {
    /// Creates an empty calendar with the minimum bucket count and a
    /// width of 1; the first growth resize re-estimates both from the
    /// live event population.
    pub fn new() -> CalendarScheduler<E> {
        CalendarScheduler {
            buckets: (0..MIN_BUCKETS).map(|_| Bucket::default()).collect(),
            mask: MIN_BUCKETS - 1,
            width: 1,
            shift: 0,
            current: 0,
            bucket_top: 1,
            len: 0,
            last_sizing_len: 0,
            scratch: Vec::new(),
        }
    }

    /// Current bucket count (test/diagnostic hook).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Current bucket width in time units (test/diagnostic hook).
    pub fn bucket_width(&self) -> u64 {
        self.width
    }

    #[inline]
    fn bucket_of(&self, t: u64) -> usize {
        ((t >> self.shift) as usize) & self.mask
    }

    /// Parks the scan on the window containing time `t`.
    fn seek_to(&mut self, t: u64) {
        self.current = self.bucket_of(t);
        self.bucket_top = ((t as u128 >> self.shift) + 1) << self.shift;
    }

    /// Advances the scan to the bucket holding the minimum pending key
    /// and returns its index.  Requires `len > 0`.
    ///
    /// Correctness rests on the window invariant — no pending entry's
    /// time is ever below `bucket_top - width` — which pushes preserve
    /// (a below-window insert rewinds the scan) and which makes the
    /// first in-window bucket head the global minimum: every bucket
    /// scanned later covers a strictly later window, and equal times
    /// always share a bucket, where the sorted run breaks ties by seq.
    fn locate_min(&mut self) -> usize {
        debug_assert!(self.len > 0);
        for _ in 0..self.buckets.len() {
            if let Some(head) = self.buckets[self.current].first() {
                if (head.time.0 as u128) < self.bucket_top {
                    return self.current;
                }
            }
            self.current = (self.current + 1) & self.mask;
            self.bucket_top += self.width as u128;
        }
        // A full year scanned without a hit: the queue is sparse
        // relative to its horizon.  Jump straight to the global min.
        let (b, key) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, bk)| bk.first().map(|e| (i, e.key())))
            .min_by_key(|&(_, k)| k)
            .expect("locate_min on a non-empty calendar");
        self.seek_to((key >> 64) as u64);
        debug_assert_eq!(b, self.current);
        b
    }

    /// Re-spreads every pending entry across a recomputed bucket array
    /// and width.  O(n log n) worst case, amortized away by the
    /// doubling/halving triggers.
    fn resize(&mut self) {
        self.last_sizing_len = self.len;
        self.scratch.clear();
        for b in &mut self.buckets {
            self.scratch.extend_from_slice(&b.entries[b.head..]);
            b.entries.clear();
            b.head = 0;
        }
        debug_assert_eq!(self.scratch.len(), self.len);
        self.width = self.estimate_width().next_power_of_two();
        self.shift = self.width.trailing_zeros();
        let target = self.len.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        if target != self.buckets.len() {
            self.buckets.resize_with(target, Bucket::default);
            self.mask = target - 1;
        }
        let scratch = std::mem::take(&mut self.scratch);
        for &entry in &scratch {
            let b = self.bucket_of(entry.time.0);
            self.buckets[b].entries.push(entry);
        }
        self.scratch = scratch;
        let mut min_time = None;
        for b in &mut self.buckets {
            b.entries.sort_unstable_by_key(|e| e.key());
            if let Some(head) = b.first() {
                min_time = Some(min_time.map_or(head.time.0, |m: u64| m.min(head.time.0)));
            }
        }
        match min_time {
            Some(t) => self.seek_to(t),
            None => {
                self.current = 0;
                self.bucket_top = self.width as u128;
            }
        }
    }

    /// Estimates a bucket width from the pending population: sample up
    /// to [`WIDTH_SAMPLE`] timestamps, take the average of the nonzero
    /// sorted gaps with far outliers (> 2x the first-pass average)
    /// discarded, scale from an inter-*sample* gap back to an
    /// inter-*event* gap (adjacent samples are `step` events apart, so
    /// the raw gap overstates event spacing by that factor), and give
    /// each bucket three average gaps' worth of span — Brown's classic
    /// rule.  Falls back to the current width when there are too few
    /// events or all timestamps coincide.
    fn estimate_width(&self) -> u64 {
        if self.scratch.len() < 2 {
            return self.width.max(1);
        }
        let step = (self.scratch.len() / WIDTH_SAMPLE).max(1);
        let mut sample: Vec<u64> = self
            .scratch
            .iter()
            .step_by(step)
            .take(WIDTH_SAMPLE)
            .map(|e| e.time.0)
            .collect();
        sample.sort_unstable();
        let gaps: Vec<u128> = sample
            .windows(2)
            .map(|w| (w[1] - w[0]) as u128)
            .filter(|&g| g > 0)
            .collect();
        if gaps.is_empty() {
            return self.width.max(1);
        }
        let avg = gaps.iter().sum::<u128>() / gaps.len() as u128;
        let kept: Vec<u128> = gaps.iter().copied().filter(|&g| g <= 2 * avg).collect();
        let avg = if kept.is_empty() {
            avg
        } else {
            kept.iter().sum::<u128>() / kept.len() as u128
        };
        (avg / step as u128).saturating_mul(3).clamp(1, 1 << 62) as u64
    }
}

impl<E: Copy> Scheduler<E> for CalendarScheduler<E> {
    fn push(&mut self, entry: EventEntry<E>) {
        let t = entry.time.0;
        // The engine never schedules into the simulated past, but a
        // standalone user may insert below the current window; rewind
        // the scan so the window invariant (and with it the pop order)
        // survives.
        if (t as u128) < self.bucket_top - self.width as u128 {
            self.seek_to(t);
        }
        let b = self.bucket_of(t);
        let bucket = &mut self.buckets[b];
        if bucket.head == bucket.entries.len() {
            bucket.entries.clear();
            bucket.head = 0;
        }
        let key = entry.key();
        if bucket.entries.last().is_none_or(|e| e.key() <= key) {
            // Fast path: new bucket maximum (seq grows monotonically,
            // so FIFO bursts at one timestamp always append).
            bucket.entries.push(entry);
        } else {
            let pos = bucket.entries[bucket.head..].partition_point(|e| e.key() < key);
            bucket.entries.insert(bucket.head + pos, entry);
        }
        self.len += 1;
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.resize();
            return;
        }
        let bucket_live = self.buckets[b].entries.len() - self.buckets[b].head;
        let fair_share = 64.max(4 * self.len / self.buckets.len());
        if bucket_live > fair_share && self.len >= 2 * self.last_sizing_len {
            self.resize();
        }
    }

    fn pop_min(&mut self) -> Option<EventEntry<E>> {
        if self.len == 0 {
            return None;
        }
        let b = self.locate_min();
        let bucket = &mut self.buckets[b];
        let entry = bucket.entries[bucket.head];
        bucket.head += 1;
        if bucket.head == bucket.entries.len() {
            bucket.entries.clear();
            bucket.head = 0;
        } else if bucket.head > 32 && bucket.head * 2 > bucket.entries.len() {
            // The popped prefix dominates the allocation: compact.
            bucket.entries.drain(..bucket.head);
            bucket.head = 0;
        }
        self.len -= 1;
        if self.buckets.len() > MIN_BUCKETS && self.len * 4 < self.buckets.len() {
            self.resize();
        }
        Some(entry)
    }

    fn peek_min(&mut self) -> Option<&EventEntry<E>> {
        if self.len == 0 {
            return None;
        }
        let b = self.locate_min();
        self.buckets[b].first()
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.entries.clear();
            b.head = 0;
        }
        self.len = 0;
        self.current = 0;
        self.bucket_top = self.width as u128;
        self.last_sizing_len = 0;
    }

    fn raw_len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use extrap_time::TimeNs;

    fn entry(time: u64, seq: u64) -> EventEntry<u64> {
        EventEntry {
            time: TimeNs(time),
            seq,
            slot: 0,
            payload: seq,
        }
    }

    fn drain_keys(cal: &mut CalendarScheduler<u64>) -> Vec<u128> {
        std::iter::from_fn(|| cal.pop_min().map(|e| e.key())).collect()
    }

    #[test]
    fn pops_in_key_order_across_resizes() {
        let mut cal = CalendarScheduler::new();
        let mut rng = SplitMix64::new(7);
        for seq in 0..4096u64 {
            cal.push(entry(rng.next_u64() % 1_000_000, seq));
        }
        assert!(cal.bucket_count() > MIN_BUCKETS, "growth resize happened");
        let keys = drain_keys(&mut cal);
        assert_eq!(keys.len(), 4096);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(cal.bucket_count(), MIN_BUCKETS, "shrunk back when drained");
    }

    #[test]
    fn equal_timestamps_pop_in_seq_order() {
        let mut cal = CalendarScheduler::new();
        for seq in 0..500u64 {
            cal.push(entry(42, seq));
        }
        let popped: Vec<u64> = std::iter::from_fn(|| cal.pop_min().map(|e| e.seq)).collect();
        assert_eq!(popped, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_far_future_uses_direct_search() {
        let mut cal = CalendarScheduler::new();
        // Two events an enormous gap apart: after the first pop the
        // window scan would otherwise creep width-by-width.
        cal.push(entry(3, 0));
        cal.push(entry(u64::MAX - 5, 1));
        assert_eq!(cal.pop_min().unwrap().time, TimeNs(3));
        assert_eq!(cal.pop_min().unwrap().time, TimeNs(u64::MAX - 5));
        assert!(cal.pop_min().is_none());
    }

    #[test]
    fn below_window_insert_rewinds_the_scan() {
        let mut cal = CalendarScheduler::new();
        cal.push(entry(1_000_000, 0));
        assert_eq!(cal.peek_min().unwrap().seq, 0); // scan parks far out
        cal.push(entry(5, 1)); // standalone use: below the window
        assert_eq!(cal.pop_min().unwrap().time, TimeNs(5));
        assert_eq!(cal.pop_min().unwrap().time, TimeNs(1_000_000));
    }

    #[test]
    fn interleaved_push_pop_matches_sorted_order() {
        let mut cal = CalendarScheduler::new();
        let mut rng = SplitMix64::new(99);
        let mut expect: Vec<u128> = Vec::new();
        let mut got: Vec<u128> = Vec::new();
        let mut seq = 0u64;
        let mut floor = 0u64; // emulate the engine's no-past guarantee
        for _ in 0..20_000 {
            if rng.next_below(3) != 0 || cal.raw_len() == 0 {
                let t = floor + rng.next_below(10_000);
                cal.push(entry(t, seq));
                expect.push(entry(t, seq).key());
                seq += 1;
            } else {
                let e = cal.pop_min().unwrap();
                floor = e.time.0;
                got.push(e.key());
            }
        }
        got.extend(drain_keys(&mut cal));
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn all_equal_burst_does_not_thrash_resizes() {
        let mut cal = CalendarScheduler::new();
        for seq in 0..50_000u64 {
            cal.push(entry(7, seq));
        }
        // Width cannot separate identical timestamps; the re-arm rule
        // must keep resize count logarithmic, and pops stay cursor
        // bumps.  This test is the O(n^2)-guard: it finishes instantly
        // or not at all.
        let popped = drain_keys(&mut cal);
        assert_eq!(popped.len(), 50_000);
        assert!(popped.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn clear_keeps_width_but_resets_scan() {
        let mut cal = CalendarScheduler::new();
        let mut rng = SplitMix64::new(1);
        for seq in 0..1000u64 {
            cal.push(entry(rng.next_u64() % 1_000_000, seq));
        }
        let width = cal.bucket_width();
        cal.clear();
        assert_eq!(cal.raw_len(), 0);
        assert!(cal.pop_min().is_none());
        assert_eq!(cal.bucket_width(), width, "learned width survives reuse");
        cal.push(entry(3, 0));
        assert_eq!(cal.pop_min().unwrap().time, TimeNs(3));
    }
}
