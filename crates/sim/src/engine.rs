//! The event queue and simulation clock.
//!
//! The engine layers a simulation clock and O(1) token cancellation on
//! top of a pluggable pending-event store (see [`crate::sched`]): a
//! binary heap ([`crate::heap`]) or a calendar queue
//! ([`crate::calendar`]), selected by [`SchedulerKind`].  Both backends
//! dispatch in identical `(time, seq)` order, so simulation outputs are
//! byte-identical across kinds.
//!
//! Cancellation state lives in a tiny slab of per-event `gen` + flag
//! records addressed by recycled slot indices.  Cancelling flags the
//! slot and goes through no queue surgery and no side table; cancelled
//! entries are purged lazily when they surface at the front, so the
//! per-pop cost is a flag check instead of the `HashSet` probe the
//! first implementation paid on every event.  Tokens are
//! generation-stamped: a slot's generation is bumped whenever its event
//! fires or is cancelled, so stale tokens can never cancel a recycled
//! slot.

use crate::calendar::CalendarScheduler;
use crate::heap::HeapScheduler;
use crate::sched::{EventEntry, Scheduler, SchedulerKind};
use extrap_time::{DurationNs, TimeNs};

/// A handle to a scheduled event, usable to cancel it before it fires.
///
/// Tokens are generation-stamped: once the event fires or is cancelled
/// the token goes stale, and cancelling a stale token is a `false` no-op
/// even if its slab slot has been reused by a later event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventToken {
    slot: u32,
    gen: u32,
}

#[cfg(test)]
impl EventToken {
    /// Test-only constructor for forging tokens.
    fn forged(slot: u32, gen: u32) -> EventToken {
        EventToken { slot, gen }
    }
}

/// Per-event cancellation state, one per outstanding queue entry.  Slots
/// are recycled through a free list once their entry leaves the queue;
/// the generation stamp stales every token handed out for the slot's
/// previous occupants.
struct Slot {
    gen: u32,
    cancelled: bool,
}

/// The concrete pending-event store, dispatched by match so the hot
/// path pays an enum branch instead of a vtable call.
enum Backend<E> {
    Heap(HeapScheduler<E>),
    Calendar(CalendarScheduler<E>),
}

impl<E: Copy> Backend<E> {
    fn for_kind(kind: SchedulerKind) -> Backend<E> {
        // Auto carries no occupancy estimate at this layer; callers
        // with one (extrap-core's compiled programs) resolve it first.
        match kind.resolve(0) {
            SchedulerKind::Calendar => Backend::Calendar(CalendarScheduler::new()),
            _ => Backend::Heap(HeapScheduler::new()),
        }
    }

    fn kind(&self) -> SchedulerKind {
        match self {
            Backend::Heap(_) => SchedulerKind::Heap,
            Backend::Calendar(_) => SchedulerKind::Calendar,
        }
    }

    #[inline]
    fn push(&mut self, entry: EventEntry<E>) {
        match self {
            Backend::Heap(s) => s.push(entry),
            Backend::Calendar(s) => s.push(entry),
        }
    }

    #[inline]
    fn pop_min(&mut self) -> Option<EventEntry<E>> {
        match self {
            Backend::Heap(s) => s.pop_min(),
            Backend::Calendar(s) => s.pop_min(),
        }
    }

    #[inline]
    fn peek_min(&mut self) -> Option<&EventEntry<E>> {
        match self {
            Backend::Heap(s) => s.peek_min(),
            Backend::Calendar(s) => s.peek_min(),
        }
    }

    fn clear(&mut self) {
        match self {
            Backend::Heap(s) => s.clear(),
            Backend::Calendar(s) => s.clear(),
        }
    }
}

/// A deterministic discrete-event engine over payloads of type `E`.
///
/// The driver loop is owned by the caller:
///
/// ```
/// use extrap_sim::Engine;
/// use extrap_time::{DurationNs, TimeNs};
///
/// let mut eng: Engine<&str> = Engine::new();
/// eng.schedule(TimeNs(30), "c");
/// eng.schedule(TimeNs(10), "a");
/// eng.schedule_after(DurationNs(10), "b"); // now = 0, so fires at 10 too
/// let mut order = Vec::new();
/// while let Some((t, e)) = eng.next() {
///     order.push((t.as_ns(), e));
/// }
/// assert_eq!(order, vec![(10, "a"), (10, "b"), (30, "c")]);
/// ```
pub struct Engine<E> {
    now: TimeNs,
    next_seq: u64,
    slots: Vec<Slot>,
    free: Vec<u32>,
    backend: Backend<E>,
    live: usize,
    tombstones: usize,
    dispatched: u64,
}

impl<E: Copy> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

// Payloads are `Copy`: simulator events are small value types, and the
// bound lets the heap backend move elements hole-style (one write per
// level) like `std::collections::BinaryHeap`.
impl<E: Copy> Engine<E> {
    /// Creates an engine with the clock at zero on the default binary
    /// heap backend.
    pub fn new() -> Engine<E> {
        Engine::with_scheduler(SchedulerKind::Heap)
    }

    /// Creates an engine with the clock at zero on the given backend.
    /// `Auto` resolves to the heap here — callers with an occupancy
    /// estimate resolve it via [`SchedulerKind::resolve`] first.
    pub fn with_scheduler(kind: SchedulerKind) -> Engine<E> {
        Engine {
            now: TimeNs::ZERO,
            next_seq: 0,
            slots: Vec::new(),
            free: Vec::new(),
            backend: Backend::for_kind(kind),
            live: 0,
            tombstones: 0,
            dispatched: 0,
        }
    }

    /// The backend this engine is running on (never `Auto`).
    pub fn scheduler(&self) -> SchedulerKind {
        self.backend.kind()
    }

    /// The current simulation time (the timestamp of the last dispatched
    /// event).
    #[inline]
    pub fn now(&self) -> TimeNs {
        self.now
    }

    /// Number of events dispatched so far (simulator work metric).
    #[inline]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Clears the clock, the queue, and all counters while keeping the
    /// slab/queue allocations, so one engine can be recycled across many
    /// simulations (the sweep engine's per-worker scratch does exactly
    /// this).
    pub fn reset(&mut self) {
        self.now = TimeNs::ZERO;
        self.next_seq = 0;
        self.slots.clear();
        self.free.clear();
        self.backend.clear();
        self.live = 0;
        self.tombstones = 0;
        self.dispatched = 0;
    }

    /// [`reset`](Engine::reset), additionally switching the backend to
    /// `kind` (`Auto` resolves to the heap).  When the backend already
    /// matches, its allocations are kept, so recycled engines pay the
    /// swap only when a sweep actually changes scheduler between runs.
    pub fn reset_with(&mut self, kind: SchedulerKind) {
        let kind = kind.resolve(0);
        if self.backend.kind() != kind {
            self.backend = Backend::for_kind(kind);
        }
        self.reset();
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past — schedules must never
    /// rewind the clock.
    pub fn schedule(&mut self, at: TimeNs, payload: E) -> EventToken {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let (slot, gen) = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.cancelled = false;
                (slot, s.gen)
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event slab exhausted u32 slots");
                self.slots.push(Slot {
                    gen: 0,
                    cancelled: false,
                });
                (slot, 0)
            }
        };
        self.live += 1;
        self.backend.push(EventEntry {
            time: at,
            seq,
            slot,
            payload,
        });
        EventToken { slot, gen }
    }

    /// Schedules `payload` after `delay` from now.
    pub fn schedule_after(&mut self, delay: DurationNs, payload: E) -> EventToken {
        self.schedule(self.now + delay, payload)
    }

    /// Cancels a scheduled event in O(1).  Returns `true` if the event
    /// had not yet fired (or been cancelled); tokens of already-fired
    /// events are stale and report `false` without leaving any residue.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let Some(slot) = self.slots.get_mut(token.slot as usize) else {
            return false;
        };
        // A matching generation means the token's event is still pending:
        // firing, cancelling, and recycling all bump the stamp, and a new
        // token is only handed out (with the bumped stamp) once the slot
        // is occupied again.
        if slot.gen != token.gen {
            return false;
        }
        debug_assert!(!slot.cancelled);
        slot.cancelled = true;
        slot.gen = slot.gen.wrapping_add(1);
        self.live -= 1;
        self.tombstones += 1;
        true
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    #[allow(clippy::should_implement_trait)] // the driver loop reads naturally as `while eng.next()`
    pub fn next(&mut self) -> Option<(TimeNs, E)> {
        while let Some(entry) = self.backend.pop_min() {
            if self.release(entry.slot) {
                self.tombstones -= 1;
                continue;
            }
            debug_assert!(entry.time >= self.now);
            self.now = entry.time;
            self.live -= 1;
            self.dispatched += 1;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The timestamp of the next live event, without dispatching it.
    pub fn peek_time(&mut self) -> Option<TimeNs> {
        loop {
            let entry = self.backend.peek_min()?;
            let (time, slot) = (entry.time, entry.slot);
            if !self.slots[slot as usize].cancelled {
                return Some(time);
            }
            self.backend.pop_min();
            self.release(slot);
            self.tombstones -= 1;
        }
    }

    /// Count of pending (live) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Cancelled events still occupying queue slots (drained lazily as
    /// they surface).  Diagnostic: after the queue runs dry this is
    /// always zero.
    pub fn tombstones(&self) -> usize {
        self.tombstones
    }

    // ----- slab internals ---------------------------------------------

    /// Returns `slot` to the free list once its queue entry has been
    /// popped, staling any outstanding token.  Reports whether the event
    /// had been cancelled (cancellation already bumped the stamp).
    fn release(&mut self, slot: u32) -> bool {
        let s = &mut self.slots[slot as usize];
        let cancelled = s.cancelled;
        if !cancelled {
            s.gen = s.gen.wrapping_add(1);
        }
        s.cancelled = false;
        self.free.push(slot);
        cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both concrete backends, so every behavioral test runs on each.
    const KINDS: [SchedulerKind; 2] = [SchedulerKind::Heap, SchedulerKind::Calendar];

    fn each_kind(test: impl Fn(SchedulerKind)) {
        for kind in KINDS {
            test(kind);
        }
    }

    #[test]
    fn fifo_at_equal_times() {
        each_kind(|kind| {
            let mut eng: Engine<u32> = Engine::with_scheduler(kind);
            for i in 0..10 {
                eng.schedule(TimeNs(5), i);
            }
            let got: Vec<u32> = std::iter::from_fn(|| eng.next().map(|(_, e)| e)).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn time_ordering_wins_over_insertion() {
        each_kind(|kind| {
            let mut eng: Engine<&str> = Engine::with_scheduler(kind);
            eng.schedule(TimeNs(100), "late");
            eng.schedule(TimeNs(1), "early");
            assert_eq!(eng.next().unwrap().1, "early");
            assert_eq!(eng.next().unwrap().1, "late");
            assert_eq!(eng.now(), TimeNs(100));
        });
    }

    #[test]
    fn cancel_prevents_dispatch() {
        each_kind(|kind| {
            let mut eng: Engine<&str> = Engine::with_scheduler(kind);
            let t1 = eng.schedule(TimeNs(10), "a");
            eng.schedule(TimeNs(20), "b");
            assert!(eng.cancel(t1));
            assert!(!eng.cancel(t1), "double cancel reports false");
            assert_eq!(eng.next().unwrap().1, "b");
            assert!(eng.next().is_none());
        });
    }

    #[test]
    fn cancel_unknown_token_is_false() {
        let mut eng: Engine<u8> = Engine::new();
        assert!(!eng.cancel(EventToken::forged(42, 0)));
    }

    #[test]
    fn cancel_after_fire_is_false_and_leaves_no_tombstone() {
        // Regression: the HashSet-based queue recorded a tombstone for
        // events cancelled *after* they fired and never drained it.
        let mut eng: Engine<u8> = Engine::new();
        let t = eng.schedule(TimeNs(1), 1);
        assert_eq!(eng.next(), Some((TimeNs(1), 1)));
        assert!(!eng.cancel(t), "event already fired");
        assert_eq!(eng.tombstones(), 0);
    }

    #[test]
    fn tombstones_drain_to_zero_on_pop() {
        each_kind(|kind| {
            let mut eng: Engine<u32> = Engine::with_scheduler(kind);
            let mut tokens = Vec::new();
            for i in 0..64 {
                tokens.push(eng.schedule(TimeNs(i % 9), i as u32));
            }
            for t in tokens.iter().step_by(2) {
                assert!(eng.cancel(*t));
            }
            assert_eq!(eng.tombstones(), 32);
            assert_eq!(eng.len(), 32);
            let mut popped = 0;
            while eng.next().is_some() {
                popped += 1;
            }
            assert_eq!(popped, 32);
            assert_eq!(eng.tombstones(), 0, "cancelled slots are purged lazily");
            assert_eq!(eng.len(), 0);
        });
    }

    #[test]
    fn stale_token_cannot_cancel_a_recycled_slot() {
        each_kind(|kind| {
            let mut eng: Engine<&str> = Engine::with_scheduler(kind);
            let stale = eng.schedule(TimeNs(1), "first");
            eng.next();
            // The slab now recycles the freed slot for a new event; the old
            // token must not be able to cancel it.
            let fresh = eng.schedule(TimeNs(2), "second");
            assert!(!eng.cancel(stale));
            assert_eq!(eng.next(), Some((TimeNs(2), "second")));
            assert!(!eng.cancel(fresh), "fresh token is stale after dispatch");
        });
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut eng: Engine<u8> = Engine::new();
        eng.schedule(TimeNs(10), 1);
        eng.next();
        eng.schedule(TimeNs(5), 2);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics_on_calendar() {
        let mut eng: Engine<u8> = Engine::with_scheduler(SchedulerKind::Calendar);
        eng.schedule(TimeNs(10), 1);
        eng.next();
        eng.schedule(TimeNs(5), 2);
    }

    #[test]
    fn peek_skips_cancelled() {
        each_kind(|kind| {
            let mut eng: Engine<u8> = Engine::with_scheduler(kind);
            let t = eng.schedule(TimeNs(1), 1);
            eng.schedule(TimeNs(2), 2);
            eng.cancel(t);
            assert_eq!(eng.peek_time(), Some(TimeNs(2)));
            assert_eq!(eng.len(), 1);
            assert_eq!(eng.next(), Some((TimeNs(2), 2)));
            assert_eq!(eng.peek_time(), None);
        });
    }

    #[test]
    fn dispatched_counts_only_live_events() {
        let mut eng: Engine<u8> = Engine::new();
        let t = eng.schedule(TimeNs(1), 1);
        eng.schedule(TimeNs(2), 2);
        eng.cancel(t);
        while eng.next().is_some() {}
        assert_eq!(eng.dispatched(), 1);
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut eng: Engine<u8> = Engine::new();
        eng.schedule(TimeNs(100), 1);
        eng.next();
        eng.schedule_after(DurationNs(50), 2);
        assert_eq!(eng.next(), Some((TimeNs(150), 2)));
    }

    #[test]
    fn reset_recycles_the_engine() {
        each_kind(|kind| {
            let mut eng: Engine<u8> = Engine::with_scheduler(kind);
            let t = eng.schedule(TimeNs(10), 1);
            eng.schedule(TimeNs(20), 2);
            eng.cancel(t);
            eng.next();
            eng.reset();
            assert_eq!(eng.now(), TimeNs::ZERO);
            assert_eq!(eng.dispatched(), 0);
            assert_eq!(eng.len(), 0);
            assert_eq!(eng.tombstones(), 0);
            // A full re-run behaves exactly like a fresh engine.
            eng.schedule(TimeNs(5), 7);
            assert_eq!(eng.next(), Some((TimeNs(5), 7)));
        });
    }

    #[test]
    fn reset_with_switches_backends() {
        let mut eng: Engine<u8> = Engine::new();
        assert_eq!(eng.scheduler(), SchedulerKind::Heap);
        eng.schedule(TimeNs(1), 1);
        eng.reset_with(SchedulerKind::Calendar);
        assert_eq!(eng.scheduler(), SchedulerKind::Calendar);
        assert_eq!(eng.len(), 0);
        eng.schedule(TimeNs(3), 3);
        assert_eq!(eng.next(), Some((TimeNs(3), 3)));
        // Auto without an estimate falls back to the heap.
        eng.reset_with(SchedulerKind::Auto);
        assert_eq!(eng.scheduler(), SchedulerKind::Heap);
    }

    #[test]
    fn backends_dispatch_identically() {
        // The same interleaved workload on both backends produces the
        // exact same (time, payload) sequence — the byte-identical
        // output contract the sweeps rely on.
        let run = |kind: SchedulerKind| {
            let mut eng: Engine<u64> = Engine::with_scheduler(kind);
            let mut out = Vec::new();
            let mut tokens = Vec::new();
            for i in 0..300u64 {
                tokens.push(eng.schedule(TimeNs((i * 37) % 101), i));
            }
            for t in tokens.iter().step_by(3) {
                eng.cancel(*t);
            }
            while let Some((t, e)) = eng.next() {
                out.push((t, e));
                if e % 7 == 0 && out.len() < 600 {
                    eng.schedule_after(DurationNs(5), e + 10_000);
                }
            }
            out
        };
        assert_eq!(run(SchedulerKind::Heap), run(SchedulerKind::Calendar));
    }

    #[test]
    fn interleaved_schedule_and_dispatch_is_deterministic() {
        // Two identical runs produce identical dispatch sequences.
        let run = || {
            let mut eng: Engine<u64> = Engine::new();
            let mut out = Vec::new();
            for i in 0..50u64 {
                eng.schedule(TimeNs(i % 7), i);
            }
            while let Some((t, e)) = eng.next() {
                out.push((t, e));
                if e % 5 == 0 && out.len() < 100 {
                    eng.schedule_after(DurationNs(3), e + 1000);
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}
