//! The event queue and simulation clock.

use extrap_time::{DurationNs, TimeNs};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// A handle to a scheduled event, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventToken(u64);

#[derive(PartialEq, Eq)]
struct Scheduled<E> {
    time: TimeNs,
    seq: u64,
    payload: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Order by (time, seq) only; payload never participates, so equal
        // timestamps pop strictly in schedule order.
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event engine over payloads of type `E`.
///
/// The driver loop is owned by the caller:
///
/// ```
/// use extrap_sim::Engine;
/// use extrap_time::{DurationNs, TimeNs};
///
/// let mut eng: Engine<&str> = Engine::new();
/// eng.schedule(TimeNs(30), "c");
/// eng.schedule(TimeNs(10), "a");
/// eng.schedule_after(DurationNs(10), "b"); // now = 0, so fires at 10 too
/// let mut order = Vec::new();
/// while let Some((t, e)) = eng.next() {
///     order.push((t.as_ns(), e));
/// }
/// assert_eq!(order, vec![(10, "a"), (10, "b"), (30, "c")]);
/// ```
pub struct Engine<E> {
    now: TimeNs,
    next_seq: u64,
    queue: BinaryHeap<Reverse<Scheduled<E>>>,
    cancelled: HashSet<u64>,
    dispatched: u64,
}

impl<E: Eq> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> Engine<E> {
    /// Creates an engine with the clock at zero.
    pub fn new() -> Engine<E> {
        Engine {
            now: TimeNs::ZERO,
            next_seq: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            dispatched: 0,
        }
    }

    /// The current simulation time (the timestamp of the last dispatched
    /// event).
    #[inline]
    pub fn now(&self) -> TimeNs {
        self.now
    }

    /// Number of events dispatched so far (simulator work metric).
    #[inline]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past — schedules must never
    /// rewind the clock.
    pub fn schedule(&mut self, at: TimeNs, payload: E) -> EventToken {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Scheduled {
            time: at,
            seq,
            payload,
        }));
        EventToken(seq)
    }

    /// Schedules `payload` after `delay` from now.
    pub fn schedule_after(&mut self, delay: DurationNs, payload: E) -> EventToken {
        self.schedule(self.now + delay, payload)
    }

    /// Cancels a scheduled event.  Returns `true` if the event had not yet
    /// fired (or been cancelled).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(token.0)
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    #[allow(clippy::should_implement_trait)] // the driver loop reads naturally as `while eng.next()`
    pub fn next(&mut self) -> Option<(TimeNs, E)> {
        while let Some(Reverse(ev)) = self.queue.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.time >= self.now);
            self.now = ev.time;
            self.dispatched += 1;
            return Some((ev.time, ev.payload));
        }
        None
    }

    /// The timestamp of the next live event, without dispatching it.
    pub fn peek_time(&mut self) -> Option<TimeNs> {
        while let Some(Reverse(ev)) = self.queue.peek() {
            if self.cancelled.contains(&ev.seq) {
                let seq = ev.seq;
                self.queue.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(ev.time);
        }
        None
    }

    /// Count of pending (live) events.
    pub fn len(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_at_equal_times() {
        let mut eng: Engine<u32> = Engine::new();
        for i in 0..10 {
            eng.schedule(TimeNs(5), i);
        }
        let got: Vec<u32> = std::iter::from_fn(|| eng.next().map(|(_, e)| e)).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn time_ordering_wins_over_insertion() {
        let mut eng: Engine<&str> = Engine::new();
        eng.schedule(TimeNs(100), "late");
        eng.schedule(TimeNs(1), "early");
        assert_eq!(eng.next().unwrap().1, "early");
        assert_eq!(eng.next().unwrap().1, "late");
        assert_eq!(eng.now(), TimeNs(100));
    }

    #[test]
    fn cancel_prevents_dispatch() {
        let mut eng: Engine<&str> = Engine::new();
        let t1 = eng.schedule(TimeNs(10), "a");
        eng.schedule(TimeNs(20), "b");
        assert!(eng.cancel(t1));
        assert!(!eng.cancel(t1), "double cancel reports false");
        assert_eq!(eng.next().unwrap().1, "b");
        assert!(eng.next().is_none());
    }

    #[test]
    fn cancel_unknown_token_is_false() {
        let mut eng: Engine<u8> = Engine::new();
        assert!(!eng.cancel(EventToken(42)));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut eng: Engine<u8> = Engine::new();
        eng.schedule(TimeNs(10), 1);
        eng.next();
        eng.schedule(TimeNs(5), 2);
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut eng: Engine<u8> = Engine::new();
        let t = eng.schedule(TimeNs(1), 1);
        eng.schedule(TimeNs(2), 2);
        eng.cancel(t);
        assert_eq!(eng.peek_time(), Some(TimeNs(2)));
        assert_eq!(eng.len(), 1);
        assert_eq!(eng.next(), Some((TimeNs(2), 2)));
        assert_eq!(eng.peek_time(), None);
    }

    #[test]
    fn dispatched_counts_only_live_events() {
        let mut eng: Engine<u8> = Engine::new();
        let t = eng.schedule(TimeNs(1), 1);
        eng.schedule(TimeNs(2), 2);
        eng.cancel(t);
        while eng.next().is_some() {}
        assert_eq!(eng.dispatched(), 1);
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut eng: Engine<u8> = Engine::new();
        eng.schedule(TimeNs(100), 1);
        eng.next();
        eng.schedule_after(DurationNs(50), 2);
        assert_eq!(eng.next(), Some((TimeNs(150), 2)));
    }

    #[test]
    fn interleaved_schedule_and_dispatch_is_deterministic() {
        // Two identical runs produce identical dispatch sequences.
        let run = || {
            let mut eng: Engine<u64> = Engine::new();
            let mut out = Vec::new();
            for i in 0..50u64 {
                eng.schedule(TimeNs(i % 7), i);
            }
            while let Some((t, e)) = eng.next() {
                out.push((t, e));
                if e % 5 == 0 && out.len() < 100 {
                    eng.schedule_after(DurationNs(3), e + 1000);
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}
