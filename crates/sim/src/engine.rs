//! The event queue and simulation clock.
//!
//! The queue is a binary heap of `(time, seq, payload)` entries — keys
//! and payloads inline, so scheduling and dispatching never leave the
//! heap's contiguous storage — paired with a tiny slab of per-event
//! cancellation state (`gen` + flag) addressed by recycled slot indices.
//! Cancellation is O(1) — it flags the slot and goes through no heap
//! surgery and no side table — and cancelled entries are purged lazily
//! when they surface at the top, so the per-pop cost is a flag check
//! instead of the `HashSet` probe the first implementation paid on every
//! event.  Tokens are generation-stamped: a slot's generation is bumped
//! whenever its event fires or is cancelled, so stale tokens can never
//! cancel a recycled slot.

use extrap_time::{DurationNs, TimeNs};

/// A handle to a scheduled event, usable to cancel it before it fires.
///
/// Tokens are generation-stamped: once the event fires or is cancelled
/// the token goes stale, and cancelling a stale token is a `false` no-op
/// even if its slab slot has been reused by a later event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventToken {
    slot: u32,
    gen: u32,
}

/// One heap entry: the ordering key, the slab slot carrying the event's
/// cancellation state, and the payload itself.  Everything a dispatch
/// needs is inline, so sift_up/sift_down stay within the heap's own
/// (contiguous) storage.
#[derive(Clone, Copy)]
struct HeapEntry<E> {
    time: TimeNs,
    seq: u64,
    slot: u32,
    payload: E,
}

impl<E> HeapEntry<E> {
    /// The `(time, seq)` ordering key packed into one `u128` so a sift
    /// comparison is a single wide compare.  `TimeNs` is a transparent
    /// `u64` with derived (numeric) ordering, so the packing is exactly
    /// lexicographic.
    #[inline]
    fn key(&self) -> u128 {
        ((self.time.0 as u128) << 64) | self.seq as u128
    }
}

/// Per-event cancellation state, one per outstanding heap entry.  Slots
/// are recycled through a free list once their entry leaves the heap;
/// the generation stamp stales every token handed out for the slot's
/// previous occupants.
struct Slot {
    gen: u32,
    cancelled: bool,
}

/// A deterministic discrete-event engine over payloads of type `E`.
///
/// The driver loop is owned by the caller:
///
/// ```
/// use extrap_sim::Engine;
/// use extrap_time::{DurationNs, TimeNs};
///
/// let mut eng: Engine<&str> = Engine::new();
/// eng.schedule(TimeNs(30), "c");
/// eng.schedule(TimeNs(10), "a");
/// eng.schedule_after(DurationNs(10), "b"); // now = 0, so fires at 10 too
/// let mut order = Vec::new();
/// while let Some((t, e)) = eng.next() {
///     order.push((t.as_ns(), e));
/// }
/// assert_eq!(order, vec![(10, "a"), (10, "b"), (30, "c")]);
/// ```
pub struct Engine<E> {
    now: TimeNs,
    next_seq: u64,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Min-heap ordered by `(time, seq)`, keys and payloads inline.
    heap: Vec<HeapEntry<E>>,
    live: usize,
    tombstones: usize,
    dispatched: u64,
}

impl<E: Copy> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

// Payloads are `Copy`: simulator events are small value types, and the
// bound lets the sifts move elements hole-style (one write per level)
// like `std::collections::BinaryHeap`.
impl<E: Copy> Engine<E> {
    /// Creates an engine with the clock at zero.
    pub fn new() -> Engine<E> {
        Engine {
            now: TimeNs::ZERO,
            next_seq: 0,
            slots: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
            live: 0,
            tombstones: 0,
            dispatched: 0,
        }
    }

    /// The current simulation time (the timestamp of the last dispatched
    /// event).
    #[inline]
    pub fn now(&self) -> TimeNs {
        self.now
    }

    /// Number of events dispatched so far (simulator work metric).
    #[inline]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Clears the clock, the queue, and all counters while keeping the
    /// slab/heap allocations, so one engine can be recycled across many
    /// simulations (the sweep engine's per-worker scratch does exactly
    /// this).
    pub fn reset(&mut self) {
        self.now = TimeNs::ZERO;
        self.next_seq = 0;
        self.slots.clear();
        self.free.clear();
        self.heap.clear();
        self.live = 0;
        self.tombstones = 0;
        self.dispatched = 0;
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past — schedules must never
    /// rewind the clock.
    pub fn schedule(&mut self, at: TimeNs, payload: E) -> EventToken {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let (slot, gen) = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.cancelled = false;
                (slot, s.gen)
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event slab exhausted u32 slots");
                self.slots.push(Slot {
                    gen: 0,
                    cancelled: false,
                });
                (slot, 0)
            }
        };
        self.live += 1;
        self.heap.push(HeapEntry {
            time: at,
            seq,
            slot,
            payload,
        });
        self.sift_up(self.heap.len() - 1);
        EventToken { slot, gen }
    }

    /// Schedules `payload` after `delay` from now.
    pub fn schedule_after(&mut self, delay: DurationNs, payload: E) -> EventToken {
        self.schedule(self.now + delay, payload)
    }

    /// Cancels a scheduled event in O(1).  Returns `true` if the event
    /// had not yet fired (or been cancelled); tokens of already-fired
    /// events are stale and report `false` without leaving any residue.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let Some(slot) = self.slots.get_mut(token.slot as usize) else {
            return false;
        };
        // A matching generation means the token's event is still pending:
        // firing, cancelling, and recycling all bump the stamp, and a new
        // token is only handed out (with the bumped stamp) once the slot
        // is occupied again.
        if slot.gen != token.gen {
            return false;
        }
        debug_assert!(!slot.cancelled);
        slot.cancelled = true;
        slot.gen = slot.gen.wrapping_add(1);
        self.live -= 1;
        self.tombstones += 1;
        true
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    #[allow(clippy::should_implement_trait)] // the driver loop reads naturally as `while eng.next()`
    pub fn next(&mut self) -> Option<(TimeNs, E)> {
        while let Some(entry) = self.pop_entry() {
            if self.release(entry.slot) {
                self.tombstones -= 1;
                continue;
            }
            debug_assert!(entry.time >= self.now);
            self.now = entry.time;
            self.live -= 1;
            self.dispatched += 1;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The timestamp of the next live event, without dispatching it.
    pub fn peek_time(&mut self) -> Option<TimeNs> {
        loop {
            let entry = self.heap.first()?;
            let (time, slot) = (entry.time, entry.slot);
            if !self.slots[slot as usize].cancelled {
                return Some(time);
            }
            self.pop_entry();
            self.release(slot);
            self.tombstones -= 1;
        }
    }

    /// Count of pending (live) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Cancelled events still occupying queue slots (drained lazily as
    /// they surface).  Diagnostic: after the queue runs dry this is
    /// always zero.
    pub fn tombstones(&self) -> usize {
        self.tombstones
    }

    // ----- slab + heap internals --------------------------------------

    /// Returns `slot` to the free list once its heap entry has been
    /// popped, staling any outstanding token.  Reports whether the event
    /// had been cancelled (cancellation already bumped the stamp).
    fn release(&mut self, slot: u32) -> bool {
        let s = &mut self.slots[slot as usize];
        let cancelled = s.cancelled;
        if !cancelled {
            s.gen = s.gen.wrapping_add(1);
        }
        s.cancelled = false;
        self.free.push(slot);
        cancelled
    }

    /// Removes and returns the root (minimum) heap entry.
    fn pop_entry(&mut self) -> Option<HeapEntry<E>> {
        let last = self.heap.pop()?;
        if self.heap.is_empty() {
            return Some(last);
        }
        let top = std::mem::replace(&mut self.heap[0], last);
        self.sift_down(0);
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize) {
        let moved = self.heap[i];
        let key = moved.key();
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent].key() <= key {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = moved;
    }

    /// Restores the heap after the root was replaced, `BinaryHeap`-style:
    /// walk a hole all the way to a leaf, always promoting the smaller
    /// child (one comparison per level instead of two), then sift the
    /// displaced element back up.  The displaced element came from the
    /// bottom of the heap, so the trailing sift-up almost always stops
    /// immediately.
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        let moved = self.heap[i];
        let start = i;
        loop {
            let child = 2 * i + 1;
            if child >= len {
                break;
            }
            let right = child + 1;
            let smaller = if right < len && self.heap[right].key() < self.heap[child].key() {
                right
            } else {
                child
            };
            self.heap[i] = self.heap[smaller];
            i = smaller;
        }
        let key = moved.key();
        while i > start {
            let parent = (i - 1) / 2;
            if self.heap[parent].key() <= key {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = moved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_at_equal_times() {
        let mut eng: Engine<u32> = Engine::new();
        for i in 0..10 {
            eng.schedule(TimeNs(5), i);
        }
        let got: Vec<u32> = std::iter::from_fn(|| eng.next().map(|(_, e)| e)).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn time_ordering_wins_over_insertion() {
        let mut eng: Engine<&str> = Engine::new();
        eng.schedule(TimeNs(100), "late");
        eng.schedule(TimeNs(1), "early");
        assert_eq!(eng.next().unwrap().1, "early");
        assert_eq!(eng.next().unwrap().1, "late");
        assert_eq!(eng.now(), TimeNs(100));
    }

    #[test]
    fn cancel_prevents_dispatch() {
        let mut eng: Engine<&str> = Engine::new();
        let t1 = eng.schedule(TimeNs(10), "a");
        eng.schedule(TimeNs(20), "b");
        assert!(eng.cancel(t1));
        assert!(!eng.cancel(t1), "double cancel reports false");
        assert_eq!(eng.next().unwrap().1, "b");
        assert!(eng.next().is_none());
    }

    #[test]
    fn cancel_unknown_token_is_false() {
        let mut eng: Engine<u8> = Engine::new();
        assert!(!eng.cancel(EventToken { slot: 42, gen: 0 }));
    }

    #[test]
    fn cancel_after_fire_is_false_and_leaves_no_tombstone() {
        // Regression: the HashSet-based queue recorded a tombstone for
        // events cancelled *after* they fired and never drained it.
        let mut eng: Engine<u8> = Engine::new();
        let t = eng.schedule(TimeNs(1), 1);
        assert_eq!(eng.next(), Some((TimeNs(1), 1)));
        assert!(!eng.cancel(t), "event already fired");
        assert_eq!(eng.tombstones(), 0);
    }

    #[test]
    fn tombstones_drain_to_zero_on_pop() {
        let mut eng: Engine<u32> = Engine::new();
        let mut tokens = Vec::new();
        for i in 0..64 {
            tokens.push(eng.schedule(TimeNs(i % 9), i as u32));
        }
        for t in tokens.iter().step_by(2) {
            assert!(eng.cancel(*t));
        }
        assert_eq!(eng.tombstones(), 32);
        assert_eq!(eng.len(), 32);
        let mut popped = 0;
        while eng.next().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 32);
        assert_eq!(eng.tombstones(), 0, "cancelled slots are purged lazily");
        assert_eq!(eng.len(), 0);
    }

    #[test]
    fn stale_token_cannot_cancel_a_recycled_slot() {
        let mut eng: Engine<&str> = Engine::new();
        let stale = eng.schedule(TimeNs(1), "first");
        eng.next();
        // The slab now recycles the freed slot for a new event; the old
        // token must not be able to cancel it.
        let fresh = eng.schedule(TimeNs(2), "second");
        assert!(!eng.cancel(stale));
        assert_eq!(eng.next(), Some((TimeNs(2), "second")));
        assert!(!eng.cancel(fresh), "fresh token is stale after dispatch");
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut eng: Engine<u8> = Engine::new();
        eng.schedule(TimeNs(10), 1);
        eng.next();
        eng.schedule(TimeNs(5), 2);
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut eng: Engine<u8> = Engine::new();
        let t = eng.schedule(TimeNs(1), 1);
        eng.schedule(TimeNs(2), 2);
        eng.cancel(t);
        assert_eq!(eng.peek_time(), Some(TimeNs(2)));
        assert_eq!(eng.len(), 1);
        assert_eq!(eng.next(), Some((TimeNs(2), 2)));
        assert_eq!(eng.peek_time(), None);
    }

    #[test]
    fn dispatched_counts_only_live_events() {
        let mut eng: Engine<u8> = Engine::new();
        let t = eng.schedule(TimeNs(1), 1);
        eng.schedule(TimeNs(2), 2);
        eng.cancel(t);
        while eng.next().is_some() {}
        assert_eq!(eng.dispatched(), 1);
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut eng: Engine<u8> = Engine::new();
        eng.schedule(TimeNs(100), 1);
        eng.next();
        eng.schedule_after(DurationNs(50), 2);
        assert_eq!(eng.next(), Some((TimeNs(150), 2)));
    }

    #[test]
    fn reset_recycles_the_engine() {
        let mut eng: Engine<u8> = Engine::new();
        let t = eng.schedule(TimeNs(10), 1);
        eng.schedule(TimeNs(20), 2);
        eng.cancel(t);
        eng.next();
        eng.reset();
        assert_eq!(eng.now(), TimeNs::ZERO);
        assert_eq!(eng.dispatched(), 0);
        assert_eq!(eng.len(), 0);
        assert_eq!(eng.tombstones(), 0);
        // A full re-run behaves exactly like a fresh engine.
        eng.schedule(TimeNs(5), 7);
        assert_eq!(eng.next(), Some((TimeNs(5), 7)));
    }

    #[test]
    fn interleaved_schedule_and_dispatch_is_deterministic() {
        // Two identical runs produce identical dispatch sequences.
        let run = || {
            let mut eng: Engine<u64> = Engine::new();
            let mut out = Vec::new();
            for i in 0..50u64 {
                eng.schedule(TimeNs(i % 7), i);
            }
            while let Some((t, e)) = eng.next() {
                out.push((t, e));
                if e % 5 == 0 && out.len() < 100 {
                    eng.schedule_after(DurationNs(3), e + 1000);
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}
