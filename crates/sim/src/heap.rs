//! The binary-heap scheduler backend: O(log n) per operation with keys
//! and payloads inline, so scheduling and dispatching never leave the
//! heap's contiguous storage.  This is the engine's default backend —
//! insensitive to the timestamp distribution and unbeatable at the
//! small queue depths typical of the paper's Fig-4 workloads.

use crate::sched::{EventEntry, Scheduler};

/// A min-heap of [`EventEntry`]s ordered by `(time, seq)`.
///
/// Payloads are `Copy`: simulator events are small value types, and the
/// bound lets the sifts move elements hole-style (one write per level)
/// like `std::collections::BinaryHeap`.
#[derive(Default)]
pub struct HeapScheduler<E> {
    heap: Vec<EventEntry<E>>,
}

impl<E: Copy> HeapScheduler<E> {
    /// Creates an empty heap.
    pub fn new() -> HeapScheduler<E> {
        HeapScheduler { heap: Vec::new() }
    }

    fn sift_up(&mut self, mut i: usize) {
        let moved = self.heap[i];
        let key = moved.key();
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent].key() <= key {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = moved;
    }

    /// Restores the heap after the root was replaced, `BinaryHeap`-style:
    /// walk a hole all the way to a leaf, always promoting the smaller
    /// child (one comparison per level instead of two), then sift the
    /// displaced element back up.  The displaced element came from the
    /// bottom of the heap, so the trailing sift-up almost always stops
    /// immediately.
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        let moved = self.heap[i];
        let start = i;
        loop {
            let child = 2 * i + 1;
            if child >= len {
                break;
            }
            let right = child + 1;
            let smaller = if right < len && self.heap[right].key() < self.heap[child].key() {
                right
            } else {
                child
            };
            self.heap[i] = self.heap[smaller];
            i = smaller;
        }
        let key = moved.key();
        while i > start {
            let parent = (i - 1) / 2;
            if self.heap[parent].key() <= key {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = moved;
    }
}

impl<E: Copy> Scheduler<E> for HeapScheduler<E> {
    fn push(&mut self, entry: EventEntry<E>) {
        self.heap.push(entry);
        self.sift_up(self.heap.len() - 1);
    }

    fn pop_min(&mut self) -> Option<EventEntry<E>> {
        let last = self.heap.pop()?;
        if self.heap.is_empty() {
            return Some(last);
        }
        let top = std::mem::replace(&mut self.heap[0], last);
        self.sift_down(0);
        Some(top)
    }

    fn peek_min(&mut self) -> Option<&EventEntry<E>> {
        self.heap.first()
    }

    fn clear(&mut self) {
        self.heap.clear();
    }

    fn raw_len(&self) -> usize {
        self.heap.len()
    }
}
