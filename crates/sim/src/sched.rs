//! The scheduler abstraction behind [`Engine`](crate::Engine): the
//! pending-event store, factored out so the engine can swap the classic
//! binary heap for a calendar queue (or anything else that honours the
//! ordering contract) without touching the slab/cancellation machinery.
//!
//! The contract every implementation must satisfy:
//!
//! * [`pop_min`](Scheduler::pop_min) removes entries in strictly
//!   ascending `(time, seq)` order — the engine's determinism (FIFO at
//!   equal timestamps) is defined in terms of this order, and the
//!   property tests in `tests/engine_properties.rs` pin every backend
//!   against a naive sorted-vec model;
//! * entries are opaque to the scheduler apart from their key — the
//!   engine layers cancellation (tombstones popped and discarded) and
//!   the simulation clock on top.

use extrap_time::TimeNs;

/// One pending event: the `(time, seq)` ordering key, the slab slot
/// carrying the event's cancellation state, and the payload itself.
/// Everything a dispatch needs is inline, so schedulers never chase a
/// side table while reordering their storage.
#[derive(Clone, Copy, Debug)]
pub struct EventEntry<E> {
    /// Absolute event timestamp.
    pub time: TimeNs,
    /// Schedule-order sequence number (the FIFO tie-breaker).
    pub seq: u64,
    /// Slab slot holding this event's cancellation state.
    pub slot: u32,
    /// The event payload.
    pub payload: E,
}

impl<E> EventEntry<E> {
    /// The `(time, seq)` ordering key packed into one `u128` so a
    /// comparison is a single wide compare.  `TimeNs` is a transparent
    /// `u64` with derived (numeric) ordering, so the packing is exactly
    /// lexicographic.
    #[inline]
    pub fn key(&self) -> u128 {
        ((self.time.0 as u128) << 64) | self.seq as u128
    }
}

/// A pending-event store ordered by `(time, seq)`.
///
/// Implementations: [`HeapScheduler`](crate::heap::HeapScheduler)
/// (O(log n) per op, insensitive to the timestamp distribution) and
/// [`CalendarScheduler`](crate::calendar::CalendarScheduler) (O(1)
/// amortized when event times are reasonably spread, the classic
/// DES-kernel structure).
pub trait Scheduler<E> {
    /// Inserts an entry.  Keys are not required to arrive in order, but
    /// the engine never schedules into the simulated past.
    fn push(&mut self, entry: EventEntry<E>);

    /// Removes and returns the entry with the minimum `(time, seq)` key.
    fn pop_min(&mut self) -> Option<EventEntry<E>>;

    /// The entry [`pop_min`](Scheduler::pop_min) would return, without
    /// removing it.  Takes `&mut self` because bucketed schedulers
    /// advance their scan position while locating the minimum.
    fn peek_min(&mut self) -> Option<&EventEntry<E>>;

    /// Removes every entry, keeping allocations for reuse.
    fn clear(&mut self);

    /// Number of stored entries (live + cancelled tombstones).
    fn raw_len(&self) -> usize;
}

/// Which pending-event store an [`Engine`](crate::Engine) runs on.
///
/// Both concrete backends dispatch in exactly the same `(time, seq)`
/// order, so simulation outputs are byte-identical across kinds; the
/// choice is purely a performance knob.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// The inline-key binary heap: O(log n) per operation, fully
    /// insensitive to how event times are distributed.
    Heap,
    /// The calendar queue: O(1) amortized schedule/dispatch when event
    /// times are reasonably spread across the simulated horizon, with
    /// bucket-width auto-sizing and resize-on-skew so degenerate
    /// distributions degrade to heap-like costs instead of O(n) scans.
    Calendar,
    /// Pick per run from the workload's expected queue occupancy (see
    /// [`SchedulerKind::resolve`]); callers that cannot estimate it get
    /// the heap.
    #[default]
    Auto,
}

/// Expected peak queue occupancy above which [`SchedulerKind::Auto`]
/// selects the calendar queue.  Below this the heap's log₂ factor is a
/// handful of comparisons on hot cache lines and the calendar queue's
/// bucket bookkeeping buys nothing.
pub const AUTO_CALENDAR_THRESHOLD: usize = 192;

impl SchedulerKind {
    /// Resolves `Auto` against an estimate of the peak number of events
    /// the queue will hold at once (`Heap` and `Calendar` pass through
    /// unchanged).
    pub fn resolve(self, expected_peak_events: usize) -> SchedulerKind {
        match self {
            SchedulerKind::Auto => {
                if expected_peak_events >= AUTO_CALENDAR_THRESHOLD {
                    SchedulerKind::Calendar
                } else {
                    SchedulerKind::Heap
                }
            }
            other => other,
        }
    }

    /// Stable config/CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Calendar => "calendar",
            SchedulerKind::Auto => "auto",
        }
    }

    /// Parses the config/CLI spelling.
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        match s {
            "heap" => Some(SchedulerKind::Heap),
            "calendar" => Some(SchedulerKind::Calendar),
            "auto" => Some(SchedulerKind::Auto),
            _ => None,
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_by_occupancy() {
        assert_eq!(
            SchedulerKind::Auto.resolve(AUTO_CALENDAR_THRESHOLD - 1),
            SchedulerKind::Heap
        );
        assert_eq!(
            SchedulerKind::Auto.resolve(AUTO_CALENDAR_THRESHOLD),
            SchedulerKind::Calendar
        );
        assert_eq!(SchedulerKind::Heap.resolve(1 << 20), SchedulerKind::Heap);
        assert_eq!(SchedulerKind::Calendar.resolve(0), SchedulerKind::Calendar);
    }

    #[test]
    fn spelling_round_trips() {
        for kind in [
            SchedulerKind::Heap,
            SchedulerKind::Calendar,
            SchedulerKind::Auto,
        ] {
            assert_eq!(SchedulerKind::parse(kind.as_str()), Some(kind));
            assert_eq!(format!("{kind}"), kind.as_str());
        }
        assert_eq!(SchedulerKind::parse("fifo"), None);
    }

    #[test]
    fn key_is_lexicographic() {
        let a = EventEntry {
            time: TimeNs(1),
            seq: u64::MAX,
            slot: 0,
            payload: (),
        };
        let b = EventEntry {
            time: TimeNs(2),
            seq: 0,
            slot: 0,
            payload: (),
        };
        assert!(a.key() < b.key());
    }
}
