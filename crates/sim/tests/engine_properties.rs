//! Property tests of the slab event queue: random schedule / cancel /
//! dispatch interleavings must pop in exactly the order a naive
//! sorted-vec reference model produces — on both the heap and the
//! calendar backends, which must also agree with each other step for
//! step — and lazy tombstone purging must always drain to zero once
//! the queue runs dry.
//!
//! Driven by a deterministic SplitMix64 case generator instead of
//! `proptest` (crates.io is unreachable in the build environment).

use extrap_sim::{Engine, EventToken, SchedulerKind, SplitMix64};
use extrap_time::TimeNs;

const CASES: u64 = 64;
const STEPS: usize = 400;

/// The naive reference model: a flat vector of `(time, seq, payload)`
/// scanned linearly for the minimum on every pop.
#[derive(Default)]
struct NaiveQueue {
    now: u64,
    next_seq: u64,
    pending: Vec<(u64, u64, u32)>,
}

/// A naive token is just the event's sequence number.
struct NaiveToken(u64);

impl NaiveQueue {
    fn schedule(&mut self, at: u64, payload: u32) -> NaiveToken {
        assert!(at >= self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push((at, seq, payload));
        NaiveToken(seq)
    }

    fn cancel(&mut self, token: &NaiveToken) -> bool {
        match self.pending.iter().position(|&(_, seq, _)| seq == token.0) {
            Some(i) => {
                self.pending.remove(i);
                true
            }
            None => false,
        }
    }

    fn next(&mut self) -> Option<(u64, u32)> {
        let i = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(time, seq, _))| (time, seq))
            .map(|(i, _)| i)?;
        let (time, _, payload) = self.pending.remove(i);
        self.now = time;
        Some((time, payload))
    }

    fn peek_time(&self) -> Option<u64> {
        self.pending
            .iter()
            .min_by_key(|&&(time, seq, _)| (time, seq))
            .map(|&(time, _, _)| time)
    }
}

fn for_all(seed: u64, mut check: impl FnMut(&mut SplitMix64)) {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
        check(&mut rng);
    }
}

/// Drives a random schedule / cancel / dispatch / peek interleaving
/// through the heap engine, the calendar engine, and the naive model
/// simultaneously, asserting all three agree at every step.  The delay
/// distribution mixes dense ties, mid-range spreads, and rare huge
/// jumps so the calendar backend exercises growth/shrink resizes, the
/// skew fallback, and the sparse-horizon direct search.
fn three_way_interleaving(rng: &mut SplitMix64) {
    let mut heap: Engine<u32> = Engine::with_scheduler(SchedulerKind::Heap);
    let mut cal: Engine<u32> = Engine::with_scheduler(SchedulerKind::Calendar);
    let mut naive = NaiveQueue::default();
    // Outstanding (heap-token, calendar-token, naive-token) triples;
    // cancellation picks one at random, sometimes an already-consumed
    // (stale) one.
    let mut tokens: Vec<(EventToken, EventToken, NaiveToken)> = Vec::new();
    let mut payload = 0u32;

    for _ in 0..STEPS {
        match rng.next_below(10) {
            // ~50%: schedule at now + random delay (0 allowed —
            // equal-time FIFO ordering is part of the contract).
            0..=4 => {
                let delay = match rng.next_below(16) {
                    // Dense: lots of collisions and small gaps.
                    0..=11 => rng.next_below(50),
                    // Mid-range spread.
                    12..=14 => rng.next_below(100_000),
                    // Rare huge jump: sparse far horizon.
                    _ => rng.next_below(1 << 40),
                };
                let at = naive.now + delay;
                payload += 1;
                let th = heap.schedule(TimeNs(at), payload);
                let tc = cal.schedule(TimeNs(at), payload);
                let n = naive.schedule(at, payload);
                tokens.push((th, tc, n));
            }
            // ~20%: cancel a random outstanding token (may be stale).
            5..=6 => {
                if !tokens.is_empty() {
                    let i = rng.next_below(tokens.len() as u64) as usize;
                    let (th, tc, n) = tokens.swap_remove(i);
                    let want = naive.cancel(&n);
                    assert_eq!(heap.cancel(th), want);
                    assert_eq!(cal.cancel(tc), want);
                }
            }
            // ~20%: dispatch one event.
            7..=8 => {
                let want_peek = naive.peek_time();
                assert_eq!(heap.peek_time().map(TimeNs::as_ns), want_peek);
                assert_eq!(cal.peek_time().map(TimeNs::as_ns), want_peek);
                let want = naive.next();
                assert_eq!(heap.next().map(|(t, p)| (t.as_ns(), p)), want);
                assert_eq!(cal.next().map(|(t, p)| (t.as_ns(), p)), want);
            }
            // ~10%: check the live-event count invariant.
            _ => {
                for eng in [&heap, &cal] {
                    assert_eq!(eng.len(), naive.pending.len());
                    assert_eq!(eng.is_empty(), naive.pending.is_empty());
                }
            }
        }
    }

    // Drain all three queues: the tails must agree element-for-element.
    loop {
        let want = naive.next();
        let got_heap = heap.next();
        let got_cal = cal.next();
        assert_eq!(got_heap.map(|(t, p)| (t.as_ns(), p)), want);
        assert_eq!(got_cal.map(|(t, p)| (t.as_ns(), p)), want);
        if want.is_none() {
            break;
        }
    }
    for eng in [&heap, &cal] {
        assert_eq!(
            eng.tombstones(),
            0,
            "tombstones must fully drain once the queue is dry"
        );
        assert_eq!(eng.len(), 0);
    }
}

#[test]
fn random_interleavings_match_the_naive_reference_model() {
    for_all(0x51AB, three_way_interleaving);
}

#[test]
fn reused_engines_still_match_the_model() {
    // The sweep scratch recycles one engine across many simulations via
    // reset_with, alternating backends; a recycled engine must behave
    // exactly like a fresh one.
    let mut heap: Engine<u32> = Engine::new();
    for_all(0x7E57, |rng| {
        let kind = if rng.next_below(2) == 0 {
            SchedulerKind::Heap
        } else {
            SchedulerKind::Calendar
        };
        heap.reset_with(kind);
        assert_eq!(heap.scheduler(), kind);
        let mut naive = NaiveQueue::default();
        let mut payload = 0u32;
        for _ in 0..100 {
            if rng.next_below(3) != 0 {
                let at = naive.now + rng.next_below(1000);
                payload += 1;
                heap.schedule(TimeNs(at), payload);
                naive.schedule(at, payload);
            } else {
                assert_eq!(heap.next().map(|(t, p)| (t.as_ns(), p)), naive.next());
            }
        }
        loop {
            let want = naive.next();
            assert_eq!(heap.next().map(|(t, p)| (t.as_ns(), p)), want);
            if want.is_none() {
                break;
            }
        }
    });
}

#[test]
fn dispatch_order_is_stable_across_identical_runs() {
    let run = |seed: u64, kind: SchedulerKind| {
        let mut rng = SplitMix64::new(seed);
        let mut eng: Engine<u64> = Engine::with_scheduler(kind);
        let mut out = Vec::new();
        for i in 0..200u64 {
            eng.schedule(TimeNs(rng.next_below(40)), i);
        }
        let mut cancels: Vec<EventToken> = Vec::new();
        while let Some((t, e)) = eng.next() {
            out.push((t, e));
            if e % 3 == 0 && out.len() < 400 {
                let tok = eng.schedule(TimeNs(t.as_ns() + rng.next_below(20)), e + 10_000);
                cancels.push(tok);
            }
            if e % 7 == 0 {
                if let Some(tok) = cancels.pop() {
                    eng.cancel(tok);
                }
            }
        }
        out
    };
    assert_eq!(
        run(0xDEAD, SchedulerKind::Heap),
        run(0xDEAD, SchedulerKind::Heap)
    );
    assert_eq!(
        run(0xDEAD, SchedulerKind::Heap),
        run(0xDEAD, SchedulerKind::Calendar),
        "backends produce byte-identical dispatch sequences"
    );
    assert_ne!(
        run(0xDEAD, SchedulerKind::Heap),
        run(0xBEEF, SchedulerKind::Heap),
        "different seeds diverge"
    );
}
