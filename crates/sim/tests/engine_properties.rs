//! Property tests of the slab event queue: random schedule / cancel /
//! dispatch interleavings must pop in exactly the order a naive
//! sorted-vec reference model produces, and lazy tombstone purging must
//! always drain to zero once the queue runs dry.
//!
//! Driven by a deterministic SplitMix64 case generator instead of
//! `proptest` (crates.io is unreachable in the build environment).

use extrap_sim::{Engine, EventToken, SplitMix64};
use extrap_time::TimeNs;

const CASES: u64 = 64;
const STEPS: usize = 400;

/// The naive reference model: a flat vector of `(time, seq, payload)`
/// scanned linearly for the minimum on every pop.
#[derive(Default)]
struct NaiveQueue {
    now: u64,
    next_seq: u64,
    pending: Vec<(u64, u64, u32)>,
}

/// A naive token is just the event's sequence number.
struct NaiveToken(u64);

impl NaiveQueue {
    fn schedule(&mut self, at: u64, payload: u32) -> NaiveToken {
        assert!(at >= self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push((at, seq, payload));
        NaiveToken(seq)
    }

    fn cancel(&mut self, token: &NaiveToken) -> bool {
        match self.pending.iter().position(|&(_, seq, _)| seq == token.0) {
            Some(i) => {
                self.pending.remove(i);
                true
            }
            None => false,
        }
    }

    fn next(&mut self) -> Option<(u64, u32)> {
        let i = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(time, seq, _))| (time, seq))
            .map(|(i, _)| i)?;
        let (time, _, payload) = self.pending.remove(i);
        self.now = time;
        Some((time, payload))
    }

    fn peek_time(&self) -> Option<u64> {
        self.pending
            .iter()
            .min_by_key(|&&(time, seq, _)| (time, seq))
            .map(|&(time, _, _)| time)
    }
}

fn for_all(seed: u64, check: impl Fn(&mut SplitMix64)) {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
        check(&mut rng);
    }
}

#[test]
fn random_interleavings_match_the_naive_reference_model() {
    for_all(0x51AB, |rng| {
        let mut eng: Engine<u32> = Engine::new();
        let mut naive = NaiveQueue::default();
        // Outstanding (token, naive-token) pairs; cancellation picks one
        // at random, sometimes an already-consumed (stale) one.
        let mut tokens: Vec<(EventToken, NaiveToken)> = Vec::new();
        let mut payload = 0u32;

        for _ in 0..STEPS {
            match rng.next_below(10) {
                // ~50%: schedule at now + random delay (0 allowed —
                // equal-time FIFO ordering is part of the contract).
                0..=4 => {
                    let delay = rng.next_below(50);
                    let at = naive.now + delay;
                    payload += 1;
                    let t = eng.schedule(TimeNs(at), payload);
                    let n = naive.schedule(at, payload);
                    tokens.push((t, n));
                }
                // ~20%: cancel a random outstanding token (may be stale).
                5..=6 => {
                    if !tokens.is_empty() {
                        let i = rng.next_below(tokens.len() as u64) as usize;
                        let (t, n) = tokens.swap_remove(i);
                        assert_eq!(eng.cancel(t), naive.cancel(&n));
                    }
                }
                // ~20%: dispatch one event.
                7..=8 => {
                    assert_eq!(eng.peek_time().map(TimeNs::as_ns), naive.peek_time());
                    let got = eng.next();
                    let want = naive.next();
                    assert_eq!(got.map(|(t, p)| (t.as_ns(), p)), want);
                }
                // ~10%: check the live-event count invariant.
                _ => {
                    assert_eq!(eng.len(), naive.pending.len());
                    assert_eq!(eng.is_empty(), naive.pending.is_empty());
                }
            }
        }

        // Drain both queues: the tails must agree element-for-element.
        loop {
            let got = eng.next();
            let want = naive.next();
            assert_eq!(got.map(|(t, p)| (t.as_ns(), p)), want);
            if got.is_none() {
                break;
            }
        }
        assert_eq!(
            eng.tombstones(),
            0,
            "tombstones must fully drain once the queue is dry"
        );
        assert_eq!(eng.len(), 0);
    });
}

#[test]
fn dispatch_order_is_stable_across_identical_runs() {
    let run = |seed: u64| {
        let mut rng = SplitMix64::new(seed);
        let mut eng: Engine<u64> = Engine::new();
        let mut out = Vec::new();
        for i in 0..200u64 {
            eng.schedule(TimeNs(rng.next_below(40)), i);
        }
        let mut cancels: Vec<EventToken> = Vec::new();
        while let Some((t, e)) = eng.next() {
            out.push((t, e));
            if e % 3 == 0 && out.len() < 400 {
                let tok = eng.schedule(TimeNs(t.as_ns() + rng.next_below(20)), e + 10_000);
                cancels.push(tok);
            }
            if e % 7 == 0 {
                if let Some(tok) = cancels.pop() {
                    eng.cancel(tok);
                }
            }
        }
        out
    };
    assert_eq!(run(0xDEAD), run(0xDEAD));
    assert_ne!(run(0xDEAD), run(0xBEEF), "different seeds diverge");
}
