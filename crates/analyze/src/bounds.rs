//! The bound computation: abstract interpretation of a
//! [`CompiledProgram`] under one [`SimParams`] into closed-form
//! lower/upper execution-time bounds.
//!
//! The derivation mirrors the engine's cost formulas term by term:
//!
//! * **Lower bound (span).**  Each thread's serial chain is replayed
//!   contention-free: every compute atom costs exactly
//!   `d.scale(MipsRatio)`, every remote read costs its minimum round
//!   trip (send overhead → wire at factor 1 → `receive + service` at the
//!   owner → send overhead → wire back → receive), every write costs one
//!   send overhead, and every barrier applies the coordinator's resume
//!   formulas with all waits collapsed to their floors (`quantize(a, t,
//!   q) ≥ max(a, t)`).  The engine can only ever *add* time to these
//!   chains — contention factors are ≥ 1, service backlog only delays,
//!   and quantization only rounds up — so the maximum per-thread chain
//!   end is a true execution-time floor.
//!
//! * **Upper bound.**  A scalar per-epoch chain `U`: after barrier
//!   `e−1`, every thread has resumed by `U`; the slowest thread's serial
//!   work (with each read charged its *worst* direct wait: the largest
//!   compute atom a request can land behind, the barrier entry stall,
//!   the previous barrier's release spread, one pending issue, or one
//!   in-progress reply receive) plus the barrier's worst-case
//!   completion (every quantization rounded fully up, every wire at the
//!   contention ceiling `fmax`) advances the chain.  Service *backlog*
//!   — requests queued behind other requests — is amortized separately:
//!   each service interval in the whole run can intersect one causal
//!   chain at most once, so the global sum `G` of all service costs is
//!   added exactly once at the end.
//!
//! Both bounds are monotone in `MipsRatio` (compute scaling is the only
//! ratio-dependent term and `DurationNs::scale` is monotone in its
//! factor), which the sanitizer checks as a tripwire.

use extrap_core::barrier::tree;
use extrap_core::processor::Op;
use extrap_core::{
    BarrierAlgorithm, CompiledProgram, Prediction, ReprPlan, SimParams, SimStrategy, ThreadMapping,
};
use extrap_time::{BarrierId, DurationNs, ProcId, ThreadId, TimeNs};

/// Why a program/parameter combination has no static envelope.
///
/// The analyzer covers the configuration space the paper's experiments
/// use; anything outside it is *skipped*, never guessed at — a bound
/// that might not hold is worse than no bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Unsupported {
    /// Human-readable reason the analysis declined.
    pub reason: String,
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "analysis unsupported: {}", self.reason)
    }
}

impl std::error::Error for Unsupported {}

fn unsupported(reason: impl Into<String>) -> Unsupported {
    Unsupported {
        reason: reason.into(),
    }
}

/// Per-epoch work/imbalance summary (one row of `extrap analyze`).
#[derive(Clone, Debug, PartialEq)]
pub struct EpochRow {
    /// Epoch index (epoch `e` ends at the `e`-th barrier; the last row
    /// is the tail epoch ending at thread end).
    pub index: usize,
    /// Terminating barrier, `None` for the tail epoch.
    pub barrier: Option<BarrierId>,
    /// Total scaled compute across threads.
    pub work: DurationNs,
    /// Scaled compute of the busiest thread.
    pub busiest: DurationNs,
    /// Load imbalance: busiest thread / mean thread (1.0 when idle).
    pub imbalance: f64,
    /// Remote reads issued in the epoch (all threads).
    pub reads: u64,
    /// Remote writes issued in the epoch (all threads).
    pub writes: u64,
}

/// The static analysis of one program under one parameter set.
#[derive(Clone, Debug, PartialEq)]
pub struct Analysis {
    /// Threads in the program.
    pub n_threads: usize,
    /// Processors of the target machine (from the thread mapping).
    pub n_procs: usize,
    /// Barriers every thread passes.
    pub n_barriers: usize,
    /// Total `MipsRatio`-scaled compute across all threads (the *work*
    /// term of the Brent-style bound).
    pub total_work: DurationNs,
    /// Critical-path lower bound on execution time (the *span*).
    pub span: TimeNs,
    /// Closed-form upper bound on execution time.
    pub upper: TimeNs,
    /// Per-thread end-time floors.
    pub thread_lower: Vec<TimeNs>,
    /// Per-thread end-time ceilings.
    pub thread_upper: Vec<TimeNs>,
    /// Per-epoch work/imbalance rows.
    pub epochs: Vec<EpochRow>,
    /// Contention delay-factor ceiling used by the upper bound.
    pub fmax: f64,
    /// Global service slack `G` (sum of every service action's cost),
    /// charged once in the upper bound.
    pub slack: DurationNs,
    /// Cross-processor message census backing `fmax`.
    pub messages: u64,
}

impl Analysis {
    /// Lower bound on achievable speedup (`work / upper`).
    pub fn speedup_lower(&self) -> f64 {
        ratio(self.total_work.as_ns(), self.upper.as_ns())
    }

    /// Upper bound on achievable speedup (`work / span`).
    pub fn speedup_upper(&self) -> f64 {
        ratio(self.total_work.as_ns(), self.span.as_ns())
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        if num == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        num as f64 / den as f64
    }
}

/// The validity envelope a simulation result is checked against.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Which result shape the envelope bounds.
    pub strategy: &'static str,
    /// Execution-time floor.
    pub exec_lower: TimeNs,
    /// Execution-time ceiling.
    pub exec_upper: TimeNs,
    /// Per-thread end-time floors.
    pub thread_lower: Vec<TimeNs>,
    /// Per-thread end-time ceilings.
    pub thread_upper: Vec<TimeNs>,
}

// ---------------------------------------------------------------------
// Epoch decomposition
// ---------------------------------------------------------------------

/// One thread's slice of one epoch.
#[derive(Default)]
struct Segment {
    /// Unscaled compute atoms (scaled per-atom at evaluation time, the
    /// way the engine scales each `Op::Compute` at dispatch).
    atoms: Vec<DurationNs>,
    /// `(owner, modelled transfer bytes)` per blocking read.
    reads: Vec<(ThreadId, u32)>,
    /// Non-blocking write count.
    writes: u64,
}

struct Decomp {
    n_threads: usize,
    n_procs: usize,
    barriers: Vec<BarrierId>,
    /// `segs[thread][epoch]`, `barriers.len() + 1` epochs per thread.
    segs: Vec<Vec<Segment>>,
}

fn decompose(program: &CompiledProgram, params: &SimParams) -> Result<Decomp, Unsupported> {
    if params.multithread.mapping != ThreadMapping::OnePerProc {
        return Err(unsupported(format!(
            "thread mapping {:?} multiplexes processors; bounds cover one-per-proc only",
            params.multithread.mapping
        )));
    }
    let n_threads = program.n_threads();
    let n_procs = params.multithread.mapping.n_procs(n_threads.max(1));

    let mut barriers: Option<Vec<BarrierId>> = None;
    let mut segs = Vec::with_capacity(n_threads);
    for (ti, th) in program.threads().iter().enumerate() {
        if th.thread != ThreadId(ti as u32) {
            return Err(unsupported(format!(
                "thread slot {ti} holds {:?}; bounds need identity thread order",
                th.thread
            )));
        }
        let mut my_barriers = Vec::new();
        let mut epochs = vec![Segment::default()];
        for op in &th.ops {
            match *op {
                Op::Compute(d) => epochs.last_mut().expect("nonempty").atoms.push(d),
                Op::RemoteRead {
                    owner,
                    declared_bytes,
                    actual_bytes,
                    ..
                } => {
                    if owner.index() >= n_threads {
                        return Err(unsupported(format!(
                            "read owner {owner:?} outside the {n_threads}-thread program"
                        )));
                    }
                    let bytes = match params.size_mode {
                        extrap_core::SizeMode::Declared => declared_bytes,
                        extrap_core::SizeMode::Actual => actual_bytes,
                    };
                    epochs
                        .last_mut()
                        .expect("nonempty")
                        .reads
                        .push((owner, bytes));
                }
                Op::RemoteWrite { owner, .. } => {
                    if owner.index() >= n_threads {
                        return Err(unsupported(format!(
                            "write owner {owner:?} outside the {n_threads}-thread program"
                        )));
                    }
                    epochs.last_mut().expect("nonempty").writes += 1;
                }
                Op::Barrier(b) => {
                    my_barriers.push(b);
                    epochs.push(Segment::default());
                }
                Op::End => break,
            }
        }
        match &barriers {
            None => barriers = Some(my_barriers),
            Some(b) if *b == my_barriers => {}
            Some(_) => {
                return Err(unsupported(
                    "threads disagree on the barrier sequence; per-epoch bounds need \
                     globally aligned barriers",
                ))
            }
        }
        segs.push(epochs);
    }
    Ok(Decomp {
        n_threads,
        n_procs,
        barriers: barriers.unwrap_or_default(),
        segs,
    })
}

// ---------------------------------------------------------------------
// Cost helpers
// ---------------------------------------------------------------------

struct Costs<'a> {
    p: &'a SimParams,
    n_procs: usize,
    /// Contention ceiling for the upper bound; exactly 1.0 for lower.
    fmax: f64,
}

impl Costs<'_> {
    fn send_oh(&self) -> DurationNs {
        self.p.comm.construct + self.p.comm.startup
    }

    fn svc(&self) -> DurationNs {
        self.p.comm.receive + self.p.comm.service
    }

    fn proc_of(&self, t: ThreadId) -> ProcId {
        // Gated to OnePerProc in `decompose`, where proc i serves
        // exactly thread i.
        ProcId(t.0)
    }

    /// Wire time `hop × hops + byte_transfer × bytes` scaled by
    /// `factor` — the same expression (and rounding) as
    /// `NetworkState::inject`; zero between co-resident endpoints.
    fn wire(&self, src: ThreadId, dst: ThreadId, bytes: u32, factor: f64) -> DurationNs {
        let (a, b) = (self.proc_of(src), self.proc_of(dst));
        if a == b {
            return DurationNs::ZERO;
        }
        let hops = self.p.network.topology.hops(self.n_procs, a, b);
        let wire =
            self.p.network.hop * u64::from(hops) + self.p.comm.byte_transfer * u64::from(bytes);
        wire.scale(factor)
    }

    /// Round-trip floor of one blocking read: request send overhead,
    /// contention-free request wire, owner service, reply send overhead,
    /// contention-free reply wire, receive.  Every engine service path
    /// (idle, interrupt, poll drain) charges at least this much.
    fn read_floor(&self, t: ThreadId, owner: ThreadId, bytes: u32) -> DurationNs {
        self.send_oh()
            + self.wire(t, owner, self.p.comm.request_bytes, 1.0)
            + self.svc()
            + self.send_oh()
            + self.wire(owner, t, bytes + self.p.comm.reply_header_bytes, 1.0)
            + self.p.comm.receive
    }

    /// Round-trip ceiling of one blocking read, excluding service
    /// *backlog* (amortized globally in `G`): wires at the contention
    /// ceiling plus the worst direct wait a request can land behind.
    fn read_ceiling(
        &self,
        t: ThreadId,
        owner: ThreadId,
        bytes: u32,
        wait_direct: DurationNs,
    ) -> DurationNs {
        self.send_oh()
            + self.wire(t, owner, self.p.comm.request_bytes, self.fmax)
            + wait_direct
            + self.svc()
            + self.send_oh()
            + self.wire(owner, t, bytes + self.p.comm.reply_header_bytes, self.fmax)
            + self.p.comm.receive
    }
}

/// Scaled serial cost of one segment under `eval`-supplied read costs.
fn segment_cost(
    seg: &Segment,
    mips_ratio: f64,
    send_oh: DurationNs,
    mut read_cost: impl FnMut(&(ThreadId, u32)) -> DurationNs,
) -> DurationNs {
    let mut total = DurationNs::ZERO;
    for &d in &seg.atoms {
        total += d.scale(mips_ratio);
    }
    for r in &seg.reads {
        total += read_cost(r);
    }
    total + send_oh * seg.writes
}

// ---------------------------------------------------------------------
// Message census (fmax) and global slack (G)
// ---------------------------------------------------------------------

/// Message census: `(total, concurrent)`.
///
/// `total` counts every cross-processor message the run will inject:
/// two per cross-proc read, one per cross-proc write, and — in
/// message-mode linear barriers — `2 × (n − 1)` per barrier (arrives +
/// releases).  Tree barriers are analytic (never injected) and
/// hardware/flag barriers send nothing.
///
/// `concurrent` bounds how many can be *in flight at once*, which is
/// what the engine's delay factor actually sees: a reading thread
/// blocks until its reply lands, so reads contribute at most one
/// message per reading thread; a message-mode barrier keeps at most one
/// arrive-or-release per slave in flight per adjacent barrier pair
/// (`2 × (n − 1)`); writes are fire-and-forget and keep their total.
fn message_census(dec: &Decomp, params: &SimParams) -> (u64, u64) {
    let mut total = 0u64;
    let mut concurrent = 0u64;
    let mut writes = 0u64;
    for (ti, epochs) in dec.segs.iter().enumerate() {
        let mut cross_reads = 0u64;
        for seg in epochs {
            for &(owner, _) in &seg.reads {
                if owner.index() != ti {
                    cross_reads += 1;
                }
            }
            // Writes to self stay on-proc; the segment stores only the
            // count, so all writes are conservatively counted as cross.
            writes += seg.writes;
        }
        total += 2 * cross_reads;
        concurrent += cross_reads.min(1);
    }
    total += writes;
    concurrent += writes;
    if params.barrier.by_msgs
        && matches!(params.barrier.algorithm, BarrierAlgorithm::Linear)
        && dec.n_threads > 1
        && !dec.barriers.is_empty()
    {
        total += dec.barriers.len() as u64 * 2 * (dec.n_threads as u64 - 1);
        concurrent += 2 * (dec.n_threads as u64 - 1);
    }
    (total, concurrent.min(total))
}

fn contention_ceiling(params: &SimParams, n_procs: usize, concurrent: u64) -> f64 {
    if !params.network.contention.enabled || concurrent <= 1 {
        return 1.0;
    }
    1.0 + params.network.contention.alpha * (concurrent - 1) as f64
        / params.network.topology.capacity(n_procs)
}

/// Global service slack: the summed cost of every service action in the
/// run.  Each service interval occupies one thread for one bounded span
/// and can intersect a single causal chain at most once, so charging
/// the full sum once bounds all backlog-induced stalls.
fn global_slack(dec: &Decomp, costs: &Costs<'_>) -> DurationNs {
    let mut reads = 0u64;
    let mut writes = 0u64;
    for epochs in &dec.segs {
        for seg in epochs {
            reads += seg.reads.len() as u64;
            writes += seg.writes;
        }
    }
    (costs.svc() + costs.send_oh()) * reads + costs.svc() * writes
}

// ---------------------------------------------------------------------
// Lower bound (span)
// ---------------------------------------------------------------------

/// Per-thread end-time floors via the contention-free critical path.
fn lower_chain(dec: &Decomp, costs: &Costs<'_>) -> Vec<TimeNs> {
    let n = dec.n_threads;
    let bp = &costs.p.barrier;
    let mut lam = vec![TimeNs::ZERO; n];
    let n_epochs = dec.barriers.len() + 1;
    for e in 0..n_epochs {
        // Serial floor of each thread's epoch-e segment.
        let mut done = vec![TimeNs::ZERO; n];
        for t in 0..n {
            let serial = segment_cost(
                &dec.segs[t][e],
                costs.p.mips_ratio,
                costs.send_oh(),
                |&(owner, bytes)| costs.read_floor(ThreadId(t as u32), owner, bytes),
            );
            done[t] = lam[t] + serial;
        }
        if e == dec.barriers.len() {
            return done;
        }
        // Entry-done floors, then the coordinator's resume floors.
        let ed: Vec<TimeNs> = done.iter().map(|&d| d + bp.entry).collect();
        let last_ed = ed.iter().copied().max().unwrap_or(TimeNs::ZERO);
        if n == 1 {
            let gap = match bp.algorithm {
                BarrierAlgorithm::Hardware => bp.hardware_latency,
                _ => bp.model,
            };
            lam[0] = ed[0] + gap + bp.exit;
            continue;
        }
        match bp.algorithm {
            BarrierAlgorithm::Linear if bp.by_msgs => {
                // Arrive floors: the master's own arrival is its entry
                // done; each slave's travels one send + one wire.
                let mut last_arrival = ed[0];
                for (i, &e_i) in ed.iter().enumerate().skip(1) {
                    let arr = e_i
                        + costs.send_oh()
                        + costs.wire(ThreadId(i as u32), ThreadId(0), bp.msg_size, 1.0);
                    last_arrival = last_arrival.max(arr);
                }
                let lower = last_arrival.max(ed[0]) + bp.model;
                // Releases depart serially in thread order; the master
                // resumes after the last departs.
                for (i, l) in lam.iter_mut().enumerate().skip(1) {
                    let arr = lower
                        + costs.send_oh() * i as u64
                        + costs.wire(ThreadId(0), ThreadId(i as u32), bp.msg_size, 1.0)
                        + costs.p.comm.receive;
                    *l = arr.max(ed[i]) + bp.exit;
                }
                lam[0] = lower + costs.send_oh() * (n as u64 - 1) + bp.exit;
            }
            BarrierAlgorithm::Linear => {
                // Flag mode: no messages; everyone resumes at or after
                // the flag-lowering floor.
                let lower = last_ed + bp.model;
                for l in lam.iter_mut() {
                    *l = lower + bp.exit;
                }
            }
            BarrierAlgorithm::Tree { arity } => {
                let per_level = if bp.by_msgs {
                    costs.send_oh() + costs.p.comm.byte_transfer * u64::from(bp.msg_size)
                } else {
                    bp.check
                };
                let depth = tree::levels(n, arity);
                let sweep = per_level * u64::from(depth);
                let lower = (last_ed + sweep).max(ed[0]) + bp.model;
                for l in lam.iter_mut() {
                    *l = lower + sweep + bp.exit;
                }
            }
            BarrierAlgorithm::Hardware => {
                let release = last_ed + bp.hardware_latency;
                for l in lam.iter_mut() {
                    *l = release + bp.exit;
                }
            }
        }
    }
    unreachable!("loop returns on the tail epoch")
}

// ---------------------------------------------------------------------
// Upper bound
// ---------------------------------------------------------------------

/// Worst-case barrier completion measured from the last entry-done,
/// plus the release *spread* (latest minus earliest possible resume)
/// the next epoch's direct-wait term must absorb.
fn barrier_ceiling(costs: &Costs<'_>, n: usize) -> (DurationNs, DurationNs) {
    let bp = &costs.p.barrier;
    if n == 1 {
        let completion = match bp.algorithm {
            BarrierAlgorithm::Hardware => bp.hardware_latency + bp.exit,
            BarrierAlgorithm::Tree { .. } => bp.model + bp.exit_check + bp.exit,
            BarrierAlgorithm::Linear => bp.model + bp.exit,
        };
        return (completion, DurationNs::ZERO);
    }
    match bp.algorithm {
        BarrierAlgorithm::Linear if bp.by_msgs => {
            let mut wire_arr = DurationNs::ZERO;
            let mut wire_rel = DurationNs::ZERO;
            for i in 1..n {
                wire_arr = wire_arr.max(costs.wire(
                    ThreadId(i as u32),
                    ThreadId(0),
                    bp.msg_size,
                    costs.fmax,
                ));
                wire_rel = wire_rel.max(costs.wire(
                    ThreadId(0),
                    ThreadId(i as u32),
                    bp.msg_size,
                    costs.fmax,
                ));
            }
            let tail =
                costs.send_oh() * (n as u64 - 1) + wire_rel + costs.p.comm.receive + bp.exit_check;
            (
                costs.send_oh() + wire_arr + bp.check + bp.model + tail + bp.exit,
                tail,
            )
        }
        BarrierAlgorithm::Linear => (bp.check + bp.model + bp.exit_check + bp.exit, bp.exit_check),
        BarrierAlgorithm::Tree { arity } => {
            let per_level = if bp.by_msgs {
                costs.send_oh() + costs.p.comm.byte_transfer * u64::from(bp.msg_size)
            } else {
                bp.check
            };
            let sweep = per_level * u64::from(tree::levels(n, arity));
            (
                sweep + bp.check + bp.model + sweep + bp.exit_check + bp.exit,
                bp.exit_check,
            )
        }
        BarrierAlgorithm::Hardware => (bp.hardware_latency + bp.exit, DurationNs::ZERO),
    }
}

/// Scalar epoch chain: `(per-thread ceilings, exec ceiling)`.
fn upper_chain(dec: &Decomp, costs: &Costs<'_>) -> (Vec<TimeNs>, TimeNs) {
    let n = dec.n_threads;
    let bp = &costs.p.barrier;
    let slack = global_slack(dec, costs);
    let (completion, barrier_spread) = barrier_ceiling(costs, n);
    let mut u = TimeNs::ZERO;
    let mut spread_prev = DurationNs::ZERO;
    let n_epochs = dec.barriers.len() + 1;
    for e in 0..n_epochs {
        // Largest single scaled compute atom in the epoch: the longest
        // an incoming request can wait on an owner's current segment
        // (NoInterrupt runs it out; Poll ticks within it).
        let mut segmax = DurationNs::ZERO;
        for epochs in &dec.segs {
            for &d in &epochs[e].atoms {
                segmax = segmax.max(d.scale(costs.p.mips_ratio));
            }
        }
        // Worst direct wait: owner mid-atom, owner's barrier-entry
        // bump, owner not yet resumed from the previous barrier, an
        // issue in progress, or a reply receive in progress.
        let wait_direct = segmax
            .max(bp.entry)
            .max(spread_prev)
            .max(costs.send_oh())
            .max(costs.p.comm.receive);
        let mut smax = DurationNs::ZERO;
        let mut serial = vec![DurationNs::ZERO; n];
        for (t, s) in serial.iter_mut().enumerate() {
            *s = segment_cost(
                &dec.segs[t][e],
                costs.p.mips_ratio,
                costs.send_oh(),
                |&(owner, bytes)| costs.read_ceiling(ThreadId(t as u32), owner, bytes, wait_direct),
            );
            smax = smax.max(*s);
        }
        if e == dec.barriers.len() {
            let per_thread = serial.iter().map(|&s| u + s + slack).collect();
            return (per_thread, u + smax + slack);
        }
        u = u + smax + bp.entry + completion;
        spread_prev = barrier_spread;
    }
    unreachable!("loop returns on the tail epoch")
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Statically analyzes `program` under `params`: per-epoch work and
/// imbalance, the contention-free critical path (span), and closed-form
/// lower/upper execution-time bounds.  No simulation is run.
pub fn analyze(program: &CompiledProgram, params: &SimParams) -> Result<Analysis, Unsupported> {
    let dec = decompose(program, params)?;
    if dec.n_threads == 0 {
        return Ok(Analysis {
            n_threads: 0,
            n_procs: dec.n_procs,
            n_barriers: 0,
            total_work: DurationNs::ZERO,
            span: TimeNs::ZERO,
            upper: TimeNs::ZERO,
            thread_lower: Vec::new(),
            thread_upper: Vec::new(),
            epochs: Vec::new(),
            fmax: 1.0,
            slack: DurationNs::ZERO,
            messages: 0,
        });
    }
    let (messages, concurrent) = message_census(&dec, params);
    let fmax = contention_ceiling(params, dec.n_procs, concurrent);
    let floor = Costs {
        p: params,
        n_procs: dec.n_procs,
        fmax: 1.0,
    };
    let ceil = Costs {
        p: params,
        n_procs: dec.n_procs,
        fmax,
    };
    let thread_lower = lower_chain(&dec, &floor);
    let (thread_upper, upper) = upper_chain(&dec, &ceil);
    let span = thread_lower.iter().copied().max().unwrap_or(TimeNs::ZERO);

    let mut epochs = Vec::with_capacity(dec.barriers.len() + 1);
    let mut total_work = DurationNs::ZERO;
    for e in 0..=dec.barriers.len() {
        let mut work = DurationNs::ZERO;
        let mut busiest = DurationNs::ZERO;
        let mut reads = 0u64;
        let mut writes = 0u64;
        for epochs_t in &dec.segs {
            let seg = &epochs_t[e];
            let mut mine = DurationNs::ZERO;
            for &d in &seg.atoms {
                mine += d.scale(params.mips_ratio);
            }
            busiest = busiest.max(mine);
            work += mine;
            reads += seg.reads.len() as u64;
            writes += seg.writes;
        }
        total_work += work;
        let mean = work.as_ns() as f64 / dec.n_threads as f64;
        epochs.push(EpochRow {
            index: e,
            barrier: dec.barriers.get(e).copied(),
            work,
            busiest,
            imbalance: if mean > 0.0 {
                busiest.as_ns() as f64 / mean
            } else {
                1.0
            },
            reads,
            writes,
        });
    }
    Ok(Analysis {
        n_threads: dec.n_threads,
        n_procs: dec.n_procs,
        n_barriers: dec.barriers.len(),
        total_work,
        span,
        upper,
        thread_lower,
        thread_upper,
        epochs,
        fmax,
        slack: global_slack(&dec, &ceil),
        messages,
    })
}

/// The envelope a simulation of `program` under `params` must land in,
/// or `None` when the combination is outside the analyzer's coverage.
///
/// Under [`SimStrategy::Representative`] with an applicable
/// [`ReprPlan`], results are weighted compositions `Σ w_c · (mini_c −
/// base)⁺` of representative mini-runs against a warmup baseline; the
/// envelope composes the per-program bounds the same way (mini floors
/// against the baseline ceiling and vice versa), because composed
/// results are *approximations* and may legitimately leave the exact
/// envelope.  Every other strategy/fallback gets the exact envelope.
pub fn envelope(program: &CompiledProgram, params: &SimParams) -> Option<Envelope> {
    if let SimStrategy::Representative {
        max_clusters,
        tolerance,
    } = params.strategy
    {
        if let Some(plan) = ReprPlan::from_program(program, max_clusters, tolerance) {
            return repr_envelope(&plan, params);
        }
    }
    let a = analyze(program, params).ok()?;
    Some(Envelope {
        strategy: "exact",
        exec_lower: a.span,
        exec_upper: a.upper,
        thread_lower: a.thread_lower,
        thread_upper: a.thread_upper,
    })
}

fn repr_envelope(plan: &ReprPlan, params: &SimParams) -> Option<Envelope> {
    let base = analyze(plan.baseline(), params).ok()?;
    let n = base.n_threads;
    let mut lower = vec![0u64; n];
    let mut upper = vec![0u64; n];
    for cluster in plan.clusters() {
        let mini = analyze(cluster.program(), params).ok()?;
        if mini.n_threads != n {
            return None;
        }
        for t in 0..n {
            // Composition is per-thread saturating deltas scaled by the
            // cluster weight; bound each delta by crossing the mini and
            // baseline bounds.
            let floor = mini.thread_lower[t]
                .as_ns()
                .saturating_sub(base.thread_upper[t].as_ns());
            let ceil = mini.thread_upper[t]
                .as_ns()
                .saturating_sub(base.thread_lower[t].as_ns());
            lower[t] = lower[t].saturating_add(floor.saturating_mul(cluster.weight));
            upper[t] = upper[t].saturating_add(ceil.saturating_mul(cluster.weight));
        }
    }
    let thread_lower: Vec<TimeNs> = lower.into_iter().map(TimeNs).collect();
    let thread_upper: Vec<TimeNs> = upper.into_iter().map(TimeNs).collect();
    Some(Envelope {
        strategy: "representative",
        exec_lower: thread_lower.iter().copied().max().unwrap_or(TimeNs::ZERO),
        exec_upper: thread_upper.iter().copied().max().unwrap_or(TimeNs::ZERO),
        thread_lower,
        thread_upper,
    })
}

/// Checks one simulation result against its static envelope and the
/// MipsRatio-monotonicity invariant.  `Ok(())` when the result is
/// consistent *or* the combination is outside analyzer coverage (no
/// envelope means nothing to violate).
pub fn verify_prediction(
    program: &CompiledProgram,
    params: &SimParams,
    pred: &Prediction,
) -> Result<(), String> {
    let Some(env) = envelope(program, params) else {
        return Ok(());
    };
    let exec = pred.exec_time();
    if exec < env.exec_lower || exec > env.exec_upper {
        return Err(format!(
            "exec time {} ns escapes its static {} envelope [{}, {}] ns",
            exec.as_ns(),
            env.strategy,
            env.exec_lower.as_ns(),
            env.exec_upper.as_ns()
        ));
    }
    if pred.per_thread.len() == env.thread_lower.len() {
        for (t, b) in pred.per_thread.iter().enumerate() {
            if b.end_time < env.thread_lower[t] || b.end_time > env.thread_upper[t] {
                return Err(format!(
                    "thread {t} end time {} ns escapes its static {} envelope [{}, {}] ns",
                    b.end_time.as_ns(),
                    env.strategy,
                    env.thread_lower[t].as_ns(),
                    env.thread_upper[t].as_ns()
                ));
            }
        }
    }
    // Monotonicity tripwire: both bounds must be nondecreasing in
    // MipsRatio (slower target processors cannot tighten the envelope).
    let mut probes = Vec::new();
    for factor in [0.5, 2.0] {
        let mut p = params.clone();
        p.mips_ratio = params.mips_ratio * factor;
        if let Some(e) = envelope(program, &p) {
            probes.push((factor, e));
        }
    }
    for (factor, e) in probes {
        let (lo_ok, hi_ok) = if factor < 1.0 {
            (
                e.exec_lower <= env.exec_lower,
                e.exec_upper <= env.exec_upper,
            )
        } else {
            (
                e.exec_lower >= env.exec_lower,
                e.exec_upper >= env.exec_upper,
            )
        };
        if !lo_ok || !hi_ok {
            return Err(format!(
                "bounds are not monotone in MipsRatio: ×{factor} gives [{}, {}] ns \
                 against [{}, {}] ns",
                e.exec_lower.as_ns(),
                e.exec_upper.as_ns(),
                env.exec_lower.as_ns(),
                env.exec_upper.as_ns()
            ));
        }
    }
    Ok(())
}
