//! Static work/span bound analysis over compiled ExtraP programs.
//!
//! This crate computes, *without running the discrete-event simulator*,
//! per-barrier-epoch work and load imbalance, the contention-free
//! critical path (span), and closed-form lower/upper bounds on
//! simulated execution time and speedup — a Brent-style envelope
//! `span ≤ T(n) ≤ upper` derived from the exact cost formulas the
//! `extrap-core` engine charges (processor scaling, network wires,
//! service round trips, barrier algorithms).
//!
//! Two consumers sit on top:
//!
//! * `extrap analyze` renders the analysis (text/JSON/CSV, with bound
//!   curves over processor counts), and
//! * the [`BoundsSanitizer`](install_sanitizer) asserts every
//!   simulation result — exact and representative — lands inside its
//!   static envelope, turning engine, clustering, or scheduler bugs
//!   into immediate hard failures.
//!
//! The bound model is deliberately *sound over tight*: lower bounds
//! collapse every wait to its floor, upper bounds charge every
//! quantization, contention factor, and service interval at its
//! ceiling.  Configurations the model does not cover (thread
//! multiplexing, divergent barrier sequences) report
//! [`Unsupported`] rather than guessing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod render;

pub use bounds::{analyze, envelope, verify_prediction, Analysis, Envelope, EpochRow, Unsupported};
pub use render::{render, CurvePoint, Format};

/// Installs [`verify_prediction`] as `extrap-core`'s bounds sanitizer
/// and enables it.  Once installed, every engine result (exact and
/// representative) is checked against its static envelope; a violation
/// panics with the diagnostic.  Idempotent.
pub fn install_sanitizer() {
    extrap_core::sanitizer::install(verify_prediction);
    extrap_core::sanitizer::set_enabled(true);
}
