//! Text / JSON / CSV renders of an [`Analysis`] plus bound curves over
//! processor counts.

use crate::bounds::Analysis;

/// Output format of `extrap analyze`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Human-readable tables.
    Text,
    /// Single-line machine-readable JSON.
    Json,
    /// Comma-separated epoch rows followed by curve rows.
    Csv,
}

impl Format {
    /// Parses a format name (`text` / `json` / `csv`); the one mapping
    /// `extrap analyze --format` and the serving protocol both use.
    pub fn parse(v: &str) -> Option<Format> {
        match v {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "csv" => Some(Format::Csv),
            _ => None,
        }
    }
}

/// One point of the bound-curve sweep: the same workload analyzed at a
/// different thread/processor count.
#[derive(Clone, Debug, PartialEq)]
pub struct CurvePoint {
    /// Thread count the workload was regenerated at.
    pub n: usize,
    /// The analysis at that count.
    pub analysis: Analysis,
}

/// Renders `analysis` (and optional scaling `curve`) in `format`.
pub fn render(label: &str, analysis: &Analysis, curve: &[CurvePoint], format: Format) -> String {
    match format {
        Format::Text => render_text(label, analysis, curve),
        Format::Json => render_json(label, analysis, curve),
        Format::Csv => render_csv(label, analysis, curve),
    }
}

fn render_text(label: &str, a: &Analysis, curve: &[CurvePoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "analysis: {label}\n\
         threads {t}  procs {p}  barriers {b}\n\
         work {w} ns  span {s} ns  upper {u} ns\n\
         speedup bounds [{sl:.3}, {su:.3}]  fmax {f:.3}  slack {g} ns  messages {m}\n",
        t = a.n_threads,
        p = a.n_procs,
        b = a.n_barriers,
        w = a.total_work.as_ns(),
        s = a.span.as_ns(),
        u = a.upper.as_ns(),
        sl = a.speedup_lower(),
        su = a.speedup_upper(),
        f = a.fmax,
        g = a.slack.as_ns(),
        m = a.messages,
    ));
    out.push_str("-- epochs --\n");
    out.push_str("epoch  barrier  work-ns  busiest-ns  imbalance  reads  writes\n");
    for e in &a.epochs {
        let barrier = e
            .barrier
            .map(|b| b.0.to_string())
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{:>5}  {:>7}  {:>7}  {:>10}  {:>9.3}  {:>5}  {:>6}\n",
            e.index,
            barrier,
            e.work.as_ns(),
            e.busiest.as_ns(),
            e.imbalance,
            e.reads,
            e.writes,
        ));
    }
    if !curve.is_empty() {
        out.push_str("-- bound curves --\n");
        out.push_str("n  span-ns  upper-ns  speedup-lo  speedup-hi\n");
        for p in curve {
            out.push_str(&format!(
                "{:>2}  {:>7}  {:>8}  {:>10.3}  {:>10.3}\n",
                p.n,
                p.analysis.span.as_ns(),
                p.analysis.upper.as_ns(),
                p.analysis.speedup_lower(),
                p.analysis.speedup_upper(),
            ));
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_analysis(a: &Analysis) -> String {
    let mut epochs = String::from("[");
    for (i, e) in a.epochs.iter().enumerate() {
        if i > 0 {
            epochs.push(',');
        }
        let barrier = e
            .barrier
            .map(|b| b.0.to_string())
            .unwrap_or_else(|| "null".to_string());
        epochs.push_str(&format!(
            "{{\"epoch\":{},\"barrier\":{},\"work_ns\":{},\"busiest_ns\":{},\
             \"imbalance\":{:.6},\"reads\":{},\"writes\":{}}}",
            e.index,
            barrier,
            e.work.as_ns(),
            e.busiest.as_ns(),
            e.imbalance,
            e.reads,
            e.writes,
        ));
    }
    epochs.push(']');
    format!(
        "{{\"threads\":{},\"procs\":{},\"barriers\":{},\"work_ns\":{},\"span_ns\":{},\
         \"upper_ns\":{},\"speedup_lower\":{:.6},\"speedup_upper\":{:.6},\"fmax\":{:.6},\
         \"slack_ns\":{},\"messages\":{},\"epochs\":{}}}",
        a.n_threads,
        a.n_procs,
        a.n_barriers,
        a.total_work.as_ns(),
        a.span.as_ns(),
        a.upper.as_ns(),
        a.speedup_lower(),
        a.speedup_upper(),
        a.fmax,
        a.slack.as_ns(),
        a.messages,
        epochs,
    )
}

fn render_json(label: &str, a: &Analysis, curve: &[CurvePoint]) -> String {
    let mut out = format!(
        "{{\"label\":\"{}\",\"analysis\":{}",
        json_escape(label),
        json_analysis(a)
    );
    out.push_str(",\"curve\":[");
    for (i, p) in curve.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"n\":{},\"analysis\":{}}}",
            p.n,
            json_analysis(&p.analysis)
        ));
    }
    out.push_str("]}\n");
    out
}

fn render_csv(label: &str, a: &Analysis, curve: &[CurvePoint]) -> String {
    let mut out = String::from(
        "kind,label,index,barrier,work_ns,busiest_ns,imbalance,reads,writes,\
         span_ns,upper_ns,speedup_lower,speedup_upper\n",
    );
    for e in &a.epochs {
        let barrier = e.barrier.map(|b| b.0.to_string()).unwrap_or_default();
        out.push_str(&format!(
            "epoch,{label},{},{barrier},{},{},{:.6},{},{},,,,\n",
            e.index,
            e.work.as_ns(),
            e.busiest.as_ns(),
            e.imbalance,
            e.reads,
            e.writes,
        ));
    }
    out.push_str(&format!(
        "total,{label},,,{},,,,,{},{},{:.6},{:.6}\n",
        a.total_work.as_ns(),
        a.span.as_ns(),
        a.upper.as_ns(),
        a.speedup_lower(),
        a.speedup_upper(),
    ));
    for p in curve {
        out.push_str(&format!(
            "curve,{label},{},,{},,,,,{},{},{:.6},{:.6}\n",
            p.n,
            p.analysis.total_work.as_ns(),
            p.analysis.span.as_ns(),
            p.analysis.upper.as_ns(),
            p.analysis.speedup_lower(),
            p.analysis.speedup_upper(),
        ));
    }
    out
}
