//! Property tests: the static envelope must sandwich simulated
//! execution time — `span ≤ T ≤ upper`, plus the speedup-bound
//! sandwich — for every paper benchmark and for randomized programs,
//! under both simulation strategies and both schedulers.

use extrap_analyze::{analyze, envelope, verify_prediction};
use extrap_core::SchedulerKind;
use extrap_core::{machine, run_compiled, CompiledProgram, SimParams, SimStrategy};
use extrap_time::{DurationNs, ElementId, ThreadId};
use extrap_trace::builder::{PhaseAccess, PhaseProgram, PhaseWork};
use extrap_trace::TraceSet;
use extrap_workloads::matmul::{self, MatmulConfig};
use extrap_workloads::{Bench, Scale};

fn compile(set: &TraceSet) -> CompiledProgram {
    CompiledProgram::compile(set).expect("compile")
}

fn machines() -> Vec<(&'static str, SimParams)> {
    vec![
        ("distributed", machine::default_distributed()),
        ("shared", machine::shared_memory()),
        ("cm5", machine::cm5()),
    ]
}

fn strategy_matrix() -> Vec<(&'static str, SimStrategy, SchedulerKind)> {
    vec![
        ("exact/heap", SimStrategy::Exact, SchedulerKind::Heap),
        (
            "exact/calendar",
            SimStrategy::Exact,
            SchedulerKind::Calendar,
        ),
        (
            "repr/heap",
            SimStrategy::Representative {
                max_clusters: SimStrategy::DEFAULT_MAX_CLUSTERS,
                tolerance: SimStrategy::DEFAULT_TOLERANCE,
            },
            SchedulerKind::Heap,
        ),
        (
            "repr/calendar",
            SimStrategy::Representative {
                max_clusters: SimStrategy::DEFAULT_MAX_CLUSTERS,
                tolerance: SimStrategy::DEFAULT_TOLERANCE,
            },
            SchedulerKind::Calendar,
        ),
    ]
}

/// Asserts the full sandwich for one compiled program under one
/// parameter set: envelope containment (via `verify_prediction`, which
/// also checks MipsRatio monotonicity) plus the explicit
/// `span ≤ T ≤ upper` and speedup inequalities.
fn assert_sandwich(label: &str, program: &CompiledProgram, params: &SimParams) {
    let pred = run_compiled(program, params).expect("simulate");
    if let Err(violation) = verify_prediction(program, params, &pred) {
        panic!("{label}: {violation}");
    }
    // The explicit inequality restated against the *exact* analysis
    // (only when the result is an exact simulation — representative
    // compositions are bounded by their own composed envelope above).
    let is_exact_shape = match params.strategy {
        SimStrategy::Exact => true,
        SimStrategy::Representative {
            max_clusters,
            tolerance,
        } => extrap_core::ReprPlan::from_program(program, max_clusters, tolerance).is_none(),
    };
    if !is_exact_shape {
        return;
    }
    let Ok(a) = analyze(program, params) else {
        return;
    };
    let t = pred.exec_time();
    assert!(
        a.span <= t && t <= a.upper,
        "{label}: exec {} outside [span {}, upper {}]",
        t.as_ns(),
        a.span.as_ns(),
        a.upper.as_ns()
    );
    if t.as_ns() > 0 && a.total_work.as_ns() > 0 {
        let speedup = a.total_work.as_ns() as f64 / t.as_ns() as f64;
        assert!(
            a.speedup_lower() <= speedup + 1e-9 && speedup <= a.speedup_upper() + 1e-9,
            "{label}: speedup {speedup} outside [{}, {}]",
            a.speedup_lower(),
            a.speedup_upper()
        );
    }
}

#[test]
fn registry_benches_sandwich() {
    for bench in Bench::all() {
        for n in [1usize, 2, 4, 8] {
            let set = extrap_trace::translate(&bench.trace(n, Scale::Small), Default::default())
                .expect("translate");
            let program = compile(&set);
            for (mname, base) in machines() {
                for (sname, strategy, scheduler) in strategy_matrix() {
                    let mut params = base.clone();
                    params.strategy = strategy;
                    params.scheduler = scheduler;
                    let label = format!("{}/{n}t/{mname}/{sname}", bench.name());
                    assert_sandwich(&label, &program, &params);
                }
            }
        }
    }
}

#[test]
fn matmul_sandwich() {
    for n in [1usize, 2, 4] {
        let (trace, _) = matmul::run(n, &MatmulConfig::default());
        let set = extrap_trace::translate(&trace, Default::default()).expect("translate");
        let program = compile(&set);
        for (mname, base) in machines() {
            for (sname, strategy, scheduler) in strategy_matrix() {
                let mut params = base.clone();
                params.strategy = strategy;
                params.scheduler = scheduler;
                assert_sandwich(&format!("matmul/{n}t/{mname}/{sname}"), &program, &params);
            }
        }
    }
}

#[test]
fn mips_ratio_sweep_sandwich() {
    // The fig4-style axis: bounds must track the simulator across the
    // MipsRatio sweep, not just at the preset point.
    let set = extrap_trace::translate(&Bench::all()[3].trace(4, Scale::Small), Default::default())
        .expect("translate");
    let program = compile(&set);
    for ratio in [0.25, 0.5, 1.0, 2.0, 5.0, 10.0] {
        for (mname, base) in machines() {
            let mut params = base.clone();
            params.mips_ratio = ratio;
            assert_sandwich(&format!("grid/r{ratio}/{mname}"), &program, &params);
        }
    }
}

// ---------------------------------------------------------------------
// Randomized programs
// ---------------------------------------------------------------------

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Builds a random phase-structured program: every thread performs the
/// same number of barrier-terminated phases (the analyzer's coverage),
/// with random per-phase compute and random remote reads/writes to
/// random owners at random transfer sizes.
fn random_program(rng: &mut SplitMix64) -> CompiledProgram {
    let n = 1 + rng.below(6) as usize;
    let n_phases = 1 + rng.below(8) as usize;
    let mut pp = PhaseProgram::new(n);
    let mut element = 0u32;
    for _ in 0..n_phases {
        let mut phase = Vec::with_capacity(n);
        for _ in 0..n {
            let compute = DurationNs(rng.below(5_000));
            let mut accesses = Vec::new();
            for _ in 0..rng.below(4) {
                let after = DurationNs(rng.below(compute.as_ns() + 1));
                let bytes = 1 + rng.below(4096) as u32;
                element += 1;
                accesses.push(PhaseAccess {
                    after,
                    owner: ThreadId(rng.below(n as u64) as u32),
                    element: ElementId(element),
                    declared_bytes: bytes,
                    actual_bytes: 1 + rng.below(u64::from(bytes)) as u32,
                    write: rng.below(2) == 0,
                });
            }
            accesses.sort_by_key(|a| a.after);
            phase.push(PhaseWork { compute, accesses });
        }
        pp.push_phase(phase);
    }
    let set = extrap_trace::translate(&pp.record(), Default::default()).expect("translate");
    compile(&set)
}

#[test]
fn random_programs_sandwich() {
    let mut rng = SplitMix64(0x5eed_1995_u64);
    for i in 0..60 {
        let program = random_program(&mut rng);
        for (mname, base) in machines() {
            for (sname, strategy, scheduler) in strategy_matrix() {
                let mut params = base.clone();
                params.strategy = strategy;
                params.scheduler = scheduler;
                assert_sandwich(&format!("rand{i}/{mname}/{sname}"), &program, &params);
            }
        }
    }
}

#[test]
fn empty_and_degenerate_programs() {
    let set = TraceSet { threads: vec![] };
    let program = compile(&set);
    let params = machine::default_distributed();
    let a = analyze(&program, &params).expect("empty program analyzes");
    assert_eq!(a.span, extrap_time::TimeNs::ZERO);
    assert_eq!(a.upper, extrap_time::TimeNs::ZERO);
    assert!(envelope(&program, &params).is_some());
}
