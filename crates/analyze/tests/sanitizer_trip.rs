//! Sanitizer end-to-end: installed and enabled, honest simulations pass
//! through silently while a deliberately corrupted cost model panics.
//!
//! Lives in its own integration-test binary because the sanitizer hook
//! is process-global: the tests here run in one process that *expects*
//! the hook installed, without racing the envelope tests.

use extrap_core::{machine, run_compiled, sanitizer, CompiledProgram};
use extrap_workloads::{Bench, Scale};

fn grid_program(n: usize) -> CompiledProgram {
    let set = extrap_trace::translate(&Bench::all()[3].trace(n, Scale::Small), Default::default())
        .expect("translate");
    CompiledProgram::compile(&set).expect("compile")
}

#[test]
fn honest_results_pass_and_corrupted_cost_model_trips() {
    extrap_analyze::install_sanitizer();
    assert!(sanitizer::is_active());

    // Honest engine + honest parameters: every strategy sails through.
    let program = grid_program(4);
    let mut params = machine::default_distributed();
    run_compiled(&program, &params).expect("exact under sanitizer");
    params.strategy = extrap_core::SimStrategy::Representative {
        max_clusters: extrap_core::SimStrategy::DEFAULT_MAX_CLUSTERS,
        tolerance: extrap_core::SimStrategy::DEFAULT_TOLERANCE,
    };
    run_compiled(&program, &params).expect("representative under sanitizer");

    // Corrupted cost model: the result was produced under a 50x slower
    // processor, but is presented as a run of the honest parameters.
    // Its exec time escapes the honest envelope and must panic.
    let mut corrupted = machine::default_distributed();
    corrupted.mips_ratio *= 50.0;
    sanitizer::set_enabled(false);
    let bogus = run_compiled(&program, &corrupted).expect("corrupted run");
    sanitizer::set_enabled(true);
    let honest = machine::default_distributed();
    let trip = std::panic::catch_unwind(|| {
        sanitizer::check(&program, &honest, &bogus);
    });
    let err = trip.expect_err("corrupted cost model must trip the sanitizer");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".to_string());
    assert!(
        msg.contains("bounds sanitizer"),
        "unexpected panic message: {msg}"
    );

    // Disabling makes `check` a no-op even for wild results.  Kept in
    // the same (single) test because the enable flag is process-global.
    let mut wild = run_compiled(&program, &honest).expect("simulate");
    for b in &mut wild.per_thread {
        b.end_time = extrap_time::TimeNs(u64::MAX / 2);
    }
    sanitizer::set_enabled(false);
    sanitizer::check(&program, &honest, &wild);
    assert!(!sanitizer::is_active());
}
