//! Property test: the out-of-core streaming pipeline is byte- and
//! metric-identical to the whole-trace path across random programs ×
//! stream chunk/window geometries × spill budgets (including a budget
//! so small every batch spills).
//!
//! Three equivalences are checked per case:
//! * spill/merge translate (`translate_stream` into a [`SpillSink`],
//!   replayed to an `XTPS` file) produces exactly the bytes
//!   `encode_set(translate(whole_trace))` produces;
//! * the fused translate+compile ([`compile_program_stream`]) produces
//!   a [`CompiledProgram`] equal to compiling the whole-trace set;
//! * compiling the translated set from a chunked stream
//!   ([`compile_set_stream`]) produces the same program — and, spot
//!   checked, the same extrapolated prediction.
//!
//! Driven by a deterministic SplitMix64 case generator instead of
//! `proptest` (crates.io is unreachable in the build environment).

use extrap_core::{compile_program_stream, compile_set_stream, machine, CompiledProgram};
use extrap_time::{DurationNs, ElementId, ThreadId};
use extrap_trace::stream::{ProgramStream, SetStream, SliceSource, StreamArena};
use extrap_trace::{
    format, translate, translate_stream, PhaseAccess, PhaseProgram, PhaseWork, ProgramTrace,
    SpillSink, TranslateOptions,
};

const CASES: u64 = 96;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// A random phase-structured program: 1–5 threads, 1–12 barrier
/// epochs, skewed per-thread compute, 0–3 remote accesses per thread
/// per phase (ordered offsets, random owner/element/size/direction).
fn random_program(rng: &mut Rng) -> ProgramTrace {
    let threads = rng.range(1, 6) as usize;
    let phases = rng.range(1, 13) as usize;
    let mut p = PhaseProgram::new(threads);
    for _ in 0..phases {
        let work: Vec<PhaseWork> = (0..threads)
            .map(|_| {
                let compute = rng.range(1_000, 50_000);
                let n_acc = rng.range(0, 4) as usize;
                let mut offsets: Vec<u64> = (0..n_acc).map(|_| rng.range(0, compute + 1)).collect();
                offsets.sort_unstable();
                let accesses = offsets
                    .into_iter()
                    .map(|after| PhaseAccess {
                        after: DurationNs(after),
                        owner: ThreadId::from_index(rng.range(0, threads as u64) as usize),
                        element: ElementId(rng.range(0, 8) as u32),
                        declared_bytes: rng.range(8, 4096) as u32,
                        actual_bytes: rng.range(1, 256) as u32,
                        write: rng.next().is_multiple_of(2),
                    })
                    .collect();
                PhaseWork {
                    compute: DurationNs(compute),
                    accesses,
                }
            })
            .collect();
        p.push_phase(work);
    }
    p.record()
}

fn random_options(rng: &mut Rng) -> TranslateOptions {
    TranslateOptions {
        event_overhead: DurationNs(rng.range(0, 3) * 500),
        switch_overhead: DurationNs(rng.range(0, 3) * 700),
    }
}

/// A spill budget per case: a third of the cases use 0 (every batch
/// spills), a third a tiny budget around one batch, a third unbounded.
fn random_budget(rng: &mut Rng) -> usize {
    match rng.next() % 3 {
        0 => 0,
        1 => rng.range(64, 2048) as usize,
        _ => usize::MAX,
    }
}

#[test]
fn streaming_pipeline_matches_whole_trace_path() {
    let out =
        std::env::temp_dir().join(format!("extrap-pipeline-prop-{}.xtps", std::process::id()));
    for case in 0..CASES {
        let mut rng = Rng(0x51_7EA4 ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
        let pt = random_program(&mut rng);
        let opts = random_options(&mut rng);
        let window = rng.range(32, 4096) as usize;
        let chunk = rng.range(1, 64) as usize;
        let budget = random_budget(&mut rng);
        let what = format!(
            "case {case}: {} threads, {} records, window {window}, chunk {chunk}, budget {budget}",
            pt.n_threads,
            pt.records.len()
        );

        // The whole-trace reference.
        let expected_set = translate(&pt, opts).unwrap();
        let expected_bytes = format::encode_set(&expected_set);
        let expected_program = CompiledProgram::compile(&expected_set).unwrap();
        let raw = format::encode_program(&pt);

        // Spill/merge translate to disk: byte-identical output file.
        let mut stream =
            ProgramStream::with_options(SliceSource(&raw), StreamArena::new(), window, chunk)
                .unwrap();
        let mut sink = SpillSink::new(stream.n_threads(), budget);
        translate_stream(&mut stream, opts, &mut sink).unwrap();
        if budget == 0 && !pt.records.is_empty() {
            assert!(
                sink.spill_count() > 0,
                "budget 0 must spill every batch ({what})"
            );
        }
        sink.write_set_file(&out).unwrap();
        assert_eq!(
            std::fs::read(&out).unwrap(),
            expected_bytes,
            "spilled set file differs from whole-trace bytes ({what})"
        );

        // Fused translate+compile: equal program, all records seen.
        let mut stream =
            ProgramStream::with_options(SliceSource(&raw), StreamArena::new(), window, chunk)
                .unwrap();
        let (program, stats) = compile_program_stream(&mut stream, opts).unwrap();
        assert_eq!(program, expected_program, "fused compile differs ({what})");
        assert_eq!(stats.records, pt.records.len() as u64, "{what}");

        // Set-stream compile over the translated bytes: equal program.
        let mut stream = SetStream::with_options(
            SliceSource(&expected_bytes),
            StreamArena::new(),
            window,
            chunk,
        )
        .unwrap();
        let from_set = compile_set_stream(&mut stream).unwrap();
        assert_eq!(
            from_set, expected_program,
            "set-stream compile differs ({what})"
        );

        // Spot-check metric identity end to end: the streamed program
        // extrapolates to the identical prediction.
        if case % 16 == 0 {
            let params = machine::default_distributed();
            let whole = extrap_core::Extrapolator::new(params.clone())
                .run(&expected_set)
                .unwrap();
            let streamed = extrap_core::Extrapolator::new(params)
                .run(&program)
                .unwrap();
            assert_eq!(
                whole.exec_time(),
                streamed.exec_time(),
                "prediction differs ({what})"
            );
            assert_eq!(whole.predicted, streamed.predicted, "{what}");
        }
    }
    let _ = std::fs::remove_file(&out);
}
