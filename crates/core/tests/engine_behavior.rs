//! Behavioural tests of the trace-driven engine: service policies,
//! barrier protocols, multithreaded scheduling, and failure modes.

use extrap_core::{
    extrapolate, machine, BarrierAlgorithm, ExtrapError, MultithreadParams, ServicePolicy,
    SimParams, ThreadMapping,
};
use extrap_time::{BarrierId, DurationNs, ElementId, ThreadId, TimeNs};
use extrap_trace::{
    EventKind, PhaseAccess, PhaseProgram, PhaseWork, ThreadTrace, TraceRecord, TraceSet,
};

/// Two threads; thread 0 reads from thread 1 early while thread 1
/// computes for a long time.  The request's service time depends
/// entirely on the policy.
fn requester_vs_busy_owner() -> TraceSet {
    let mut p = PhaseProgram::new(2);
    p.push_phase(vec![
        PhaseWork {
            compute: DurationNs::from_us(20.0),
            accesses: vec![PhaseAccess {
                after: DurationNs::from_us(10.0),
                owner: ThreadId(1),
                element: ElementId(0),
                declared_bytes: 64,
                actual_bytes: 64,
                write: false,
            }],
        },
        PhaseWork {
            compute: DurationNs::from_us(2_000.0),
            accesses: vec![],
        },
    ]);
    extrap_trace::translate(&p.record(), Default::default()).unwrap()
}

/// A zero-cost parameter set except for what each test enables.
fn quiet_params() -> SimParams {
    let mut p = machine::ideal();
    p.policy = ServicePolicy::NoInterrupt;
    p
}

#[test]
fn no_interrupt_blocks_until_the_owners_segment_ends() {
    let ts = requester_vs_busy_owner();
    let pred = extrapolate(&ts, &quiet_params()).unwrap();
    // Thread 0 waits from 10us until thread 1 finishes at 2000us.
    let wait = pred.per_thread[0].remote_wait;
    assert!(
        (wait.as_us() - 1_990.0).abs() < 1.0,
        "expected ~1990us wait, got {wait}"
    );
}

#[test]
fn interrupt_services_immediately() {
    let ts = requester_vs_busy_owner();
    let mut params = quiet_params();
    params.policy = ServicePolicy::Interrupt;
    let pred = extrapolate(&ts, &params).unwrap();
    assert_eq!(pred.per_thread[0].remote_wait, DurationNs::ZERO);
    // Thread 1's end time is unchanged (zero-cost service).
    assert_eq!(pred.per_thread[1].end_time, TimeNs::from_us(2_000.0));
}

#[test]
fn poll_services_at_the_next_tick() {
    let ts = requester_vs_busy_owner();
    let mut params = quiet_params();
    params.policy = ServicePolicy::poll_us(100.0);
    let pred = extrapolate(&ts, &params).unwrap();
    // Request arrives at 10us; owner's first poll tick is at 100us.
    let wait = pred.per_thread[0].remote_wait;
    assert!(
        (wait.as_us() - 90.0).abs() < 1.0,
        "expected ~90us wait, got {wait}"
    );
}

#[test]
fn poll_interval_bounds_the_service_delay() {
    let ts = requester_vs_busy_owner();
    for interval in [50.0, 200.0, 700.0] {
        let mut params = quiet_params();
        params.policy = ServicePolicy::poll_us(interval);
        let pred = extrapolate(&ts, &params).unwrap();
        let wait = pred.per_thread[0].remote_wait.as_us();
        assert!(
            wait <= interval + 1.0,
            "interval {interval}: wait {wait} exceeds one tick"
        );
    }
}

#[test]
fn interrupt_extends_the_owners_computation_by_service_costs() {
    let ts = requester_vs_busy_owner();
    let mut params = quiet_params();
    params.policy = ServicePolicy::Interrupt;
    params.comm.service = DurationNs::from_us(7.0);
    params.comm.receive = DurationNs::from_us(3.0);
    let pred = extrapolate(&ts, &params).unwrap();
    // Thread 1 absorbs 10us of service into its 2000us segment.
    assert_eq!(pred.per_thread[1].end_time, TimeNs::from_us(2_010.0));
    assert_eq!(pred.per_thread[1].service, DurationNs::from_us(10.0));
}

#[test]
fn waiting_threads_service_requests_in_every_policy() {
    // Thread 1 reaches the barrier first, then must serve thread 0's
    // late request: extrapolation cannot deadlock.
    let mut p = PhaseProgram::new(2);
    p.push_phase(vec![
        PhaseWork {
            compute: DurationNs::from_us(1_000.0),
            accesses: vec![PhaseAccess {
                after: DurationNs::from_us(900.0),
                owner: ThreadId(1),
                element: ElementId(0),
                declared_bytes: 64,
                actual_bytes: 64,
                write: false,
            }],
        },
        PhaseWork {
            compute: DurationNs::from_us(10.0),
            accesses: vec![],
        },
    ]);
    let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
    for policy in [
        ServicePolicy::NoInterrupt,
        ServicePolicy::Interrupt,
        ServicePolicy::poll_us(100.0),
    ] {
        let mut params = machine::default_distributed();
        params.policy = policy;
        let pred = extrapolate(&ts, &params).unwrap();
        assert!(pred.exec_time() > TimeNs::ZERO);
    }
}

#[test]
fn barrier_message_mode_charges_linear_release_cost() {
    let n = 16;
    let mut p = PhaseProgram::new(n);
    p.push_uniform_phase(DurationNs::from_us(10.0));
    let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();

    let mut msg_params = machine::ideal();
    msg_params.barrier.by_msgs = true;
    msg_params.barrier.algorithm = BarrierAlgorithm::Linear;
    msg_params.comm.startup = DurationNs::from_us(10.0);
    msg_params.comm.construct = DurationNs::from_us(1.0);

    let mut hw_params = msg_params.clone();
    hw_params.barrier.by_msgs = false;
    hw_params.barrier.algorithm = BarrierAlgorithm::Hardware;
    hw_params.barrier.hardware_latency = DurationNs::from_us(5.0);

    let linear = extrapolate(&ts, &msg_params).unwrap().exec_time();
    let hardware = extrapolate(&ts, &hw_params).unwrap().exec_time();
    // Linear release alone is (n-1) * 11us of sequential sends.
    assert!(
        linear.as_us() - hardware.as_us() > 100.0,
        "linear {linear} vs hardware {hardware}"
    );
}

#[test]
fn multithreaded_mapping_serializes_colocated_compute() {
    // 4 threads of pure compute; on 2 processors the work halves, on 1
    // it fully serializes.
    let mut p = PhaseProgram::new(4);
    p.push_uniform_phase(DurationNs::from_us(100.0));
    let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
    let time_on = |m: usize| {
        let mut params = machine::ideal();
        params.multithread = MultithreadParams {
            mapping: ThreadMapping::Block { procs: m },
            switch_cost: DurationNs::ZERO,
        };
        extrapolate(&ts, &params).unwrap().exec_time()
    };
    assert_eq!(time_on(4), TimeNs::from_us(100.0));
    assert_eq!(time_on(2), TimeNs::from_us(200.0));
    assert_eq!(time_on(1), TimeNs::from_us(400.0));
}

#[test]
fn context_switch_cost_is_charged_between_threads() {
    let mut p = PhaseProgram::new(2);
    p.push_uniform_phase(DurationNs::from_us(100.0));
    let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
    let mut params = machine::ideal();
    params.multithread = MultithreadParams {
        mapping: ThreadMapping::Block { procs: 1 },
        switch_cost: DurationNs::from_us(25.0),
    };
    let pred = extrapolate(&ts, &params).unwrap();
    // Thread 0 runs (100us), switch (25us), thread 1 runs (100us) and
    // releases the barrier at 225us; resuming each thread to retire its
    // final op costs one more switch each: 225 + 25 + 25.
    assert_eq!(pred.exec_time(), TimeNs::from_us(275.0));
    // Thread 1 queued 100us at program start and 25us at barrier resume.
    assert_eq!(pred.per_thread[1].sched_wait, DurationNs::from_us(125.0));
}

#[test]
fn colocated_remote_access_bypasses_the_network() {
    // Threads 0 and 1 on one processor: their exchange must not pay
    // wire costs.
    let mut p = PhaseProgram::new(2);
    p.push_phase(vec![
        PhaseWork {
            compute: DurationNs::from_us(50.0),
            accesses: vec![PhaseAccess {
                after: DurationNs::from_us(25.0),
                owner: ThreadId(1),
                element: ElementId(0),
                declared_bytes: 1_000_000,
                actual_bytes: 1_000_000,
                write: false,
            }],
        },
        PhaseWork {
            compute: DurationNs::from_us(50.0),
            accesses: vec![],
        },
    ]);
    let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
    let mut params = machine::default_distributed();
    params.multithread.mapping = ThreadMapping::Block { procs: 1 };
    params.multithread.switch_cost = DurationNs::ZERO;
    let colocated = extrapolate(&ts, &params).unwrap();
    let flat = extrapolate(&ts, &machine::default_distributed()).unwrap();
    // A megabyte at 20MB/s costs ~50ms on the wire; co-located it's free.
    assert!(
        colocated.exec_time().as_ms() < 5.0,
        "colocated {}",
        colocated.exec_time()
    );
    assert!(flat.exec_time().as_ms() > 40.0, "flat {}", flat.exec_time());
}

#[test]
fn mismatched_barrier_sequences_are_rejected() {
    let mk = |barrier: u32, thread: u32| ThreadTrace {
        thread: ThreadId(thread),
        records: vec![
            TraceRecord {
                time: TimeNs(0),
                thread: ThreadId(thread),
                kind: EventKind::ThreadBegin,
            },
            TraceRecord {
                time: TimeNs(10),
                thread: ThreadId(thread),
                kind: EventKind::BarrierEnter {
                    barrier: BarrierId(barrier),
                },
            },
            TraceRecord {
                time: TimeNs(10),
                thread: ThreadId(thread),
                kind: EventKind::BarrierExit {
                    barrier: BarrierId(barrier),
                },
            },
            TraceRecord {
                time: TimeNs(20),
                thread: ThreadId(thread),
                kind: EventKind::ThreadEnd,
            },
        ],
    };
    let ts = TraceSet {
        threads: vec![mk(0, 0), mk(1, 1)],
    };
    let err = extrapolate(&ts, &machine::ideal()).unwrap_err();
    assert!(matches!(err, ExtrapError::Trace(_)), "{err}");
}

#[test]
fn empty_trace_set_predicts_empty() {
    let ts = TraceSet { threads: vec![] };
    let pred = extrapolate(&ts, &machine::ideal()).unwrap();
    assert_eq!(pred.exec_time(), TimeNs::ZERO);
    assert_eq!(pred.n_threads, 0);
}

#[test]
fn remote_write_is_one_way() {
    let mut p = PhaseProgram::new(2);
    p.push_phase(vec![
        PhaseWork {
            compute: DurationNs::from_us(10.0),
            accesses: vec![PhaseAccess {
                after: DurationNs::from_us(5.0),
                owner: ThreadId(1),
                element: ElementId(0),
                declared_bytes: 1_024,
                actual_bytes: 1_024,
                write: true,
            }],
        },
        PhaseWork {
            compute: DurationNs::from_us(10.0),
            accesses: vec![],
        },
    ]);
    let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
    let pred = extrapolate(&ts, &machine::cm5()).unwrap();
    // Exactly one data message crosses the network (no reply) besides
    // nothing else: hardware barrier mode sends no messages.
    assert_eq!(pred.network.messages, 1);
    assert_eq!(pred.per_thread[0].remote_wait, DurationNs::ZERO);
    assert_eq!(pred.per_thread[0].remote_writes, 1);
}

#[test]
fn prediction_breakdown_accounts_for_the_whole_makespan() {
    // For a single-threaded run: end = compute + send + service + waits.
    let mut p = PhaseProgram::new(1);
    p.push_uniform_phase(DurationNs::from_us(100.0));
    p.push_uniform_phase(DurationNs::from_us(50.0));
    let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
    let pred = extrapolate(&ts, &machine::default_distributed()).unwrap();
    let b = &pred.per_thread[0];
    let accounted =
        b.compute + b.send_overhead + b.service + b.remote_wait + b.barrier_wait + b.sched_wait;
    assert_eq!(
        b.end_time.as_ns(),
        accounted.as_ns(),
        "breakdown {b:?} must sum to the end time"
    );
}
