//! Exact-arithmetic tests tying docs/MODELS.md to the implementation:
//! every term of the remote-access and barrier equations is pinned on a
//! hand-computed scenario.

use extrap_core::{
    extrapolate, machine, BarrierAlgorithm, CommParams, ServicePolicy, SimParams, Topology,
};
use extrap_time::{DurationNs, ElementId, ThreadId, TimeNs};
use extrap_trace::{PhaseAccess, PhaseProgram, PhaseWork};

/// S=10, B=0.1/byte, C=2, V=3, R=1 (µs); crossbar with H=0.5; no
/// contention; free hardware barrier; NoInterrupt.
fn pinned_params() -> SimParams {
    let mut p = machine::ideal();
    p.policy = ServicePolicy::NoInterrupt;
    p.comm = CommParams {
        startup: DurationNs::from_us(10.0),
        byte_transfer: DurationNs::from_us(0.1),
        construct: DurationNs::from_us(2.0),
        service: DurationNs::from_us(3.0),
        receive: DurationNs::from_us(1.0),
        request_bytes: 16,
        reply_header_bytes: 8,
    };
    p.network.topology = Topology::Crossbar;
    p.network.hop = DurationNs::from_us(0.5);
    p.network.contention.enabled = false;
    p.barrier.algorithm = BarrierAlgorithm::Hardware;
    p
}

/// Thread 0 computes 100µs with a 1000-byte remote read at 50µs from
/// thread 1, which computes only 30µs and is already waiting.
fn scenario() -> extrap_trace::TraceSet {
    let mut p = PhaseProgram::new(2);
    p.push_phase(vec![
        PhaseWork {
            compute: DurationNs::from_us(100.0),
            accesses: vec![PhaseAccess {
                after: DurationNs::from_us(50.0),
                owner: ThreadId(1),
                element: ElementId(0),
                declared_bytes: 1_000,
                actual_bytes: 1_000,
                write: false,
            }],
        },
        PhaseWork {
            compute: DurationNs::from_us(30.0),
            accesses: vec![],
        },
    ]);
    extrap_trace::translate(&p.record(), Default::default()).unwrap()
}

#[test]
fn remote_read_equation_is_exact() {
    // Hand computation (µs):
    //   issue             = 50
    //   depart request    = 50 + C(2) + S(10)                    = 62
    //   wire request      = H(0.5) + 16 B × 0.1                  = 2.1
    //   arrive at owner   = 64.1 (owner already waiting => immediate)
    //   depart reply      = 64.1 + R(1) + V(3) + C(2) + S(10)    = 80.1
    //   wire reply        = 0.5 + (1000+8) × 0.1                 = 101.3
    //   arrive at reader  = 181.4
    //   resume            = 181.4 + R(1)                         = 182.4
    //   remaining compute = 50 → barrier entry at 232.4
    //   hardware barrier, zero cost → exec = 232.4
    let pred = extrapolate(&scenario(), &pinned_params()).unwrap();
    assert_eq!(pred.exec_time(), TimeNs::from_us(232.4));
    // The reader's wait: resume(182.4) − issue(50).
    assert_eq!(pred.per_thread[0].remote_wait, DurationNs::from_us(132.4));
    // Reader paid C+S once; owner paid C+S for the reply.
    assert_eq!(pred.per_thread[0].send_overhead, DurationNs::from_us(12.0));
    assert_eq!(pred.per_thread[1].send_overhead, DurationNs::from_us(12.0));
    // Owner's service: R + V.
    assert_eq!(pred.per_thread[1].service, DurationNs::from_us(4.0));
    // Exactly two network messages (request + reply), 16 + 1008 bytes.
    assert_eq!(pred.network.messages, 2);
    assert_eq!(pred.network.bytes, 16 + 1_008);
}

#[test]
fn declared_vs_actual_term_only_changes_the_reply_payload() {
    let mut p = PhaseProgram::new(2);
    p.push_phase(vec![
        PhaseWork {
            compute: DurationNs::from_us(100.0),
            accesses: vec![PhaseAccess {
                after: DurationNs::from_us(50.0),
                owner: ThreadId(1),
                element: ElementId(0),
                declared_bytes: 1_000,
                actual_bytes: 100,
                write: false,
            }],
        },
        PhaseWork {
            compute: DurationNs::from_us(30.0),
            accesses: vec![],
        },
    ]);
    let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
    let declared = extrapolate(&ts, &pinned_params()).unwrap().exec_time();
    let mut actual_params = pinned_params();
    actual_params.size_mode = extrap_core::SizeMode::Actual;
    let actual = extrapolate(&ts, &actual_params).unwrap().exec_time();
    // Payload shrinks by 900 bytes => reply wire time shrinks by 90µs.
    assert_eq!(declared.since(actual), DurationNs::from_us(90.0));
}

#[test]
fn contention_factor_term_multiplies_wire_time() {
    // Two simultaneous 1000-byte transfers on a crossbar with alpha=0.8,
    // P=4: the second sees factor 1 + 0.8·(1/4) = 1.2.
    let mut p = PhaseProgram::new(4);
    let mk_access = |owner: u32| PhaseAccess {
        after: DurationNs::ZERO,
        owner: ThreadId(owner),
        element: ElementId(0),
        declared_bytes: 1_000,
        actual_bytes: 1_000,
        write: false,
    };
    p.push_phase(vec![
        PhaseWork {
            compute: DurationNs::from_us(10.0),
            accesses: vec![mk_access(2)],
        },
        PhaseWork {
            compute: DurationNs::from_us(10.0),
            accesses: vec![mk_access(3)],
        },
        PhaseWork {
            compute: DurationNs::from_us(10.0),
            accesses: vec![],
        },
        PhaseWork {
            compute: DurationNs::from_us(10.0),
            accesses: vec![],
        },
    ]);
    let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
    let mut params = pinned_params();
    params.network.contention.enabled = true;
    params.network.contention.alpha = 0.8;
    let with = extrapolate(&ts, &params).unwrap();
    params.network.contention.enabled = false;
    let without = extrapolate(&ts, &params).unwrap();
    assert!(with.exec_time() > without.exec_time());
    assert!(with.network.mean_factor() > 1.0);
    assert!(without.network.mean_factor() == 1.0);
}

#[test]
fn linear_message_barrier_equation_is_exact() {
    // 2 threads, both enter at 100µs (uniform phase).  Table-1-style
    // params: E=5, X=5, K=0 (immediate observation), M=10, msg 128B.
    // Comm: C=2, S=10; crossbar wire = 0.5 + 128×0.1 = 13.3.
    //   slave entry done   = 105; arrive msg departs 105+12 = 117
    //   arrives at master  = 130.3
    //   master entry done  = 105; observes at 130.3; lowers at 140.3
    //   release departs    = 140.3 + 12 = 152.3; arrives 165.6
    //   slave resumes      = 165.6 + R(1) + X(5) = 171.6
    //   master resumes     = 152.3 + X(5) = 157.3
    // exec = 171.6 (thread end immediately after).
    let mut p = PhaseProgram::new(2);
    p.push_uniform_phase(DurationNs::from_us(100.0));
    let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
    let mut params = pinned_params();
    params.barrier.algorithm = BarrierAlgorithm::Linear;
    params.barrier.by_msgs = true;
    params.barrier.msg_size = 128;
    params.barrier.entry = DurationNs::from_us(5.0);
    params.barrier.exit = DurationNs::from_us(5.0);
    params.barrier.check = DurationNs::ZERO;
    params.barrier.exit_check = DurationNs::ZERO;
    params.barrier.model = DurationNs::from_us(10.0);
    let pred = extrapolate(&ts, &params).unwrap();
    assert_eq!(pred.exec_time(), TimeNs::from_us(171.6));
    assert_eq!(pred.per_thread[0].end_time, TimeNs::from_us(157.3));
    assert_eq!(pred.per_thread[1].end_time, TimeNs::from_us(171.6));
}

#[test]
fn mips_ratio_term_scales_only_compute() {
    // Same scenario, ratio 0.5: compute deltas halve (50→25, 50→25),
    // message terms unchanged.
    //   issue 25; depart 37; arrive 39.1; owner waiting (its 30µs
    //   compute halves to 15); reply departs 55.1; arrives 156.4;
    //   resume 157.4; entry at 182.4.
    let mut params = pinned_params();
    params.mips_ratio = 0.5;
    let pred = extrapolate(&scenario(), &params).unwrap();
    assert_eq!(pred.exec_time(), TimeNs::from_us(182.4));
}
