//! Equivalence guarantees of the hot-path machinery: a compiled program
//! replayed through `run_compiled` (with or without reused scratch
//! buffers) must be indistinguishable from the classic trace path, and
//! `RecordMode::MetricsOnly` must change nothing but the predicted
//! trace.

use extrap_core::{
    machine, sweep::CachedTrace, CompiledProgram, Extrapolator, RecordMode, ServicePolicy,
    SimParams, SimScratch,
};
use extrap_time::{DurationNs, ElementId, ThreadId};
use extrap_trace::{PhaseAccess, PhaseProgram, PhaseWork, TraceSet};

/// A communicating workload: every thread reads from its right
/// neighbour, computes, and synchronizes — twice.
fn ring(n: usize) -> TraceSet {
    let mut p = PhaseProgram::new(n);
    for round in 0..2 {
        let works = (0..n)
            .map(|t| PhaseWork {
                compute: DurationNs::from_us(50.0 + (t as f64) * 3.0 + (round as f64)),
                accesses: vec![PhaseAccess {
                    after: DurationNs::from_us(10.0),
                    owner: ThreadId(((t + 1) % n) as u32),
                    element: ElementId(t as u32),
                    declared_bytes: 1024,
                    actual_bytes: 128,
                    write: round % 2 == 1,
                }],
            })
            .collect();
        p.push_phase(works);
    }
    extrap_trace::translate(&p.record(), Default::default()).unwrap()
}

fn param_grid() -> Vec<SimParams> {
    let mut poll = machine::cm5();
    poll.policy = ServicePolicy::poll_us(25.0);
    let mut slow = machine::default_distributed();
    slow.mips_ratio = 2.5;
    let mut fast = machine::default_distributed();
    fast.mips_ratio = 0.41;
    vec![machine::ideal(), machine::cm5(), poll, slow, fast]
}

#[test]
fn run_compiled_matches_run_exactly() {
    let ts = ring(6);
    let program = CompiledProgram::compile(&ts).unwrap();
    for params in param_grid() {
        let session = Extrapolator::new(params);
        let classic = session.run(&ts).unwrap();
        let compiled = session.run_compiled(&program).unwrap();
        assert_eq!(classic.per_thread, compiled.per_thread);
        assert_eq!(classic.predicted, compiled.predicted);
        assert_eq!(classic.events_dispatched, compiled.events_dispatched);
        assert_eq!(classic.barriers, compiled.barriers);
        assert_eq!(classic.network, compiled.network);
    }
}

#[test]
fn scratch_reuse_does_not_leak_state_between_runs() {
    // One scratch across different programs, sizes, and parameter sets —
    // every run must match its fresh-buffer twin.
    let mut scratch = SimScratch::default();
    for n in [2usize, 8, 3] {
        let ts = ring(n);
        let program = CompiledProgram::compile(&ts).unwrap();
        for params in param_grid() {
            let session = Extrapolator::new(params);
            let fresh = session.run_compiled(&program).unwrap();
            let reused = session
                .run_compiled_scratch(&program, &mut scratch)
                .unwrap();
            assert_eq!(fresh.per_thread, reused.per_thread);
            assert_eq!(fresh.predicted, reused.predicted);
            assert_eq!(fresh.events_dispatched, reused.events_dispatched);
        }
    }
}

#[test]
fn metrics_only_changes_nothing_but_the_predicted_trace() {
    let ts = ring(5);
    let program = CompiledProgram::compile(&ts).unwrap();
    for params in param_grid() {
        let full = Extrapolator::new(params.clone())
            .run_compiled(&program)
            .unwrap();
        let lean = Extrapolator::new(params)
            .record_mode(RecordMode::MetricsOnly)
            .run_compiled(&program)
            .unwrap();
        assert_eq!(
            full.per_thread, lean.per_thread,
            "metrics must be identical"
        );
        assert_eq!(full.exec_time(), lean.exec_time());
        assert_eq!(full.events_dispatched, lean.events_dispatched);
        assert_eq!(full.barriers, lean.barriers);
        assert_eq!(full.network, lean.network);
        assert!(lean.predicted.threads.is_empty(), "no predicted trace");
        assert!(!full.predicted.threads.is_empty());
    }
}

#[test]
fn full_mode_reserves_exact_predicted_capacity() {
    let ts = ring(4);
    let program = CompiledProgram::compile(&ts).unwrap();
    let pred = Extrapolator::new(machine::cm5())
        .run_compiled(&program)
        .unwrap();
    for (ct, tt) in program.threads().iter().zip(&pred.predicted.threads) {
        assert_eq!(
            ct.predicted_records,
            tt.records.len(),
            "compiler-counted capacity must equal the emitted record count"
        );
    }
}

#[test]
fn record_mode_round_trips_through_config_text() {
    let p = SimParams {
        record_mode: RecordMode::MetricsOnly,
        ..Default::default()
    };
    let text = p.to_config_text();
    assert!(text.contains("RecordMode = metrics-only"));
    let back = SimParams::from_config_text(&text).unwrap();
    assert_eq!(back, p);
}

#[test]
fn cached_trace_pairs_traces_with_their_program() {
    let ts = ring(3);
    let cached = CachedTrace::new(ring(3)).unwrap();
    assert_eq!(cached.traces().expect("whole-trace entry").n_threads(), 3);
    assert_eq!(cached.program().n_threads(), 3);
    assert_eq!(cached.n_threads(), ts.n_threads());
}
