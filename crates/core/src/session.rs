//! The builder-style extrapolation session.
//!
//! [`Extrapolator`] bundles everything one prediction needs — the target
//! machine's [`SimParams`] plus the [`TranslateOptions`] used when raw
//! 1-processor traces must first be translated — behind a fluent builder,
//! so call sites read as the what-if questions the paper poses:
//!
//! ```
//! use extrap_core::{machine, Extrapolator, ServicePolicy};
//! use extrap_trace::PhaseProgram;
//! use extrap_time::DurationNs;
//!
//! let mut p = PhaseProgram::new(4);
//! p.push_uniform_phase(DurationNs::from_us(100.0));
//!
//! let prediction = Extrapolator::new(machine::cm5())
//!     .policy(ServicePolicy::Interrupt)
//!     .mips_ratio(0.5)
//!     .run_program(&p.record())
//!     .unwrap();
//! assert_eq!(prediction.n_procs, 4);
//! ```
//!
//! The free functions [`extrapolate`](crate::extrapolate()) and
//! [`extrapolate_program`](crate::extrapolate_program()) remain as thin
//! wrappers over this type, and the [`sweep`](crate::sweep) engine runs
//! whole grids of sessions in parallel.

use crate::engine::{self, ExtrapError, SimScratch};
use crate::metrics::Prediction;
use crate::params::{
    BarrierParams, CommParams, RecordMode, ServicePolicy, SimParams, SimStrategy, SizeMode,
};
use crate::processor::CompiledProgram;
use extrap_sim::SchedulerKind;
use extrap_trace::{ProgramTrace, TraceSet, TranslateOptions};

/// The one input a [`run`](Extrapolator::run) call extrapolates, at
/// whatever pipeline stage the caller happens to hold it.
///
/// This is the job-oriented face of the session API: every entry point
/// that used to be its own `run*` method is now a variant, so in-process
/// callers, the `extrap` CLI, and the `extrap-serve` daemon all funnel
/// through the same `run(input)` request shape.  The common cases
/// convert implicitly (`&TraceSet`, `&CompiledProgram`, `&ProgramTrace`
/// all `Into<RunInput>`); the sweep hot path names its variant
/// explicitly to thread a scratch buffer through.
pub enum RunInput<'a> {
    /// Already-translated per-thread traces (simulated directly).
    Traces(&'a TraceSet),
    /// An already-compiled program (compile once with
    /// [`CompiledProgram::compile`], replay under many sessions).
    Compiled(&'a CompiledProgram),
    /// A compiled program replayed through the caller's recycled
    /// scratch buffers — the sweep hot path.
    CompiledScratch {
        /// The compiled program to replay.
        program: &'a CompiledProgram,
        /// Reused simulation buffers (one per worker, typically).
        scratch: &'a mut SimScratch,
    },
    /// A raw 1-processor program trace; translated with the session's
    /// [`TranslateOptions`] first.
    Program(&'a ProgramTrace),
}

impl<'a> From<&'a TraceSet> for RunInput<'a> {
    fn from(traces: &'a TraceSet) -> RunInput<'a> {
        RunInput::Traces(traces)
    }
}

impl<'a> From<&'a CompiledProgram> for RunInput<'a> {
    fn from(program: &'a CompiledProgram) -> RunInput<'a> {
        RunInput::Compiled(program)
    }
}

impl<'a> From<&'a ProgramTrace> for RunInput<'a> {
    fn from(trace: &'a ProgramTrace) -> RunInput<'a> {
        RunInput::Program(trace)
    }
}

/// A configured extrapolation session: target-machine parameters plus
/// translation options, applied to as many traces as you like.
#[derive(Clone, Debug, Default)]
pub struct Extrapolator {
    params: SimParams,
    translate: TranslateOptions,
}

impl Extrapolator {
    /// Starts a session targeting the machine described by `params`
    /// (usually one of the [`machine`](crate::machine) presets).
    pub fn new(params: SimParams) -> Extrapolator {
        Extrapolator {
            params,
            translate: TranslateOptions::default(),
        }
    }

    /// Sets the intrusion-compensation options used by
    /// [`run_program`](Extrapolator::run_program).
    pub fn translate_options(mut self, options: TranslateOptions) -> Extrapolator {
        self.translate = options;
        self
    }

    /// Sets the remote-request service policy.
    pub fn policy(mut self, policy: ServicePolicy) -> Extrapolator {
        self.params.policy = policy;
        self
    }

    /// Sets which recorded access size the communication model charges.
    pub fn size_mode(mut self, mode: SizeMode) -> Extrapolator {
        self.params.size_mode = mode;
        self
    }

    /// Sets the `MipsRatio` compute-speed scaling factor.
    pub fn mips_ratio(mut self, ratio: f64) -> Extrapolator {
        self.params.mips_ratio = ratio;
        self
    }

    /// Sets whether the predicted trace is materialized
    /// ([`RecordMode::MetricsOnly`] skips it; metrics stay identical).
    pub fn record_mode(mut self, mode: RecordMode) -> Extrapolator {
        self.params.record_mode = mode;
        self
    }

    /// Sets the simulation kernel's event-queue backend (heap, calendar,
    /// or auto).  Predictions are byte-identical across backends; this
    /// is purely a performance knob for large sweeps.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Extrapolator {
        self.params.scheduler = kind;
        self
    }

    /// Sets the epoch coverage strategy: exact replay of every barrier
    /// epoch, or representative-region simulation
    /// ([`SimStrategy::Representative`]) that clusters repeating epochs,
    /// simulates one representative per cluster, and composes full-run
    /// metrics from cluster weights — falling back to exact output when
    /// the trace does not repeat.
    pub fn strategy(mut self, strategy: SimStrategy) -> Extrapolator {
        self.params.strategy = strategy;
        self
    }

    /// Replaces the remote data access model parameters.
    pub fn comm(mut self, comm: CommParams) -> Extrapolator {
        self.params.comm = comm;
        self
    }

    /// Replaces the barrier model parameters.
    pub fn barrier(mut self, barrier: BarrierParams) -> Extrapolator {
        self.params.barrier = barrier;
        self
    }

    /// Applies an arbitrary edit to the parameter set — the escape hatch
    /// for fields without a dedicated builder method.
    pub fn with_params(mut self, edit: impl FnOnce(&mut SimParams)) -> Extrapolator {
        edit(&mut self.params);
        self
    }

    /// The session's current parameter set.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// The session's translation options.
    pub fn translation(&self) -> TranslateOptions {
        self.translate
    }

    /// Extrapolates one [`RunInput`] — translated traces, a compiled
    /// program (with or without caller-provided scratch buffers), or a
    /// raw 1-processor program trace.
    ///
    /// This is the session API's single entry point; the former
    /// `run_compiled` / `run_compiled_scratch` / `run_program` methods
    /// survive as thin wrappers over it.  `&TraceSet`,
    /// `&CompiledProgram`, and `&ProgramTrace` convert implicitly, so
    /// pre-redesign `run(&traces)` call sites compile unchanged.
    pub fn run<'a>(&self, input: impl Into<RunInput<'a>>) -> Result<Prediction, ExtrapError> {
        match input.into() {
            RunInput::Traces(traces) => engine::run(traces, &self.params),
            RunInput::Compiled(program) => engine::run_compiled(program, &self.params),
            RunInput::CompiledScratch { program, scratch } => {
                engine::run_compiled_scratch(program, &self.params, scratch)
            }
            RunInput::Program(trace) => {
                let set = extrap_trace::translate(trace, self.translate)?;
                engine::run(&set, &self.params)
            }
        }
    }

    /// Extrapolates an already-compiled program.
    ///
    /// Deprecated-by-doc: prefer `run(&program)` (or
    /// [`RunInput::Compiled`]); this wrapper remains for migration only.
    pub fn run_compiled(&self, program: &CompiledProgram) -> Result<Prediction, ExtrapError> {
        self.run(program)
    }

    /// Like [`run_compiled`](Extrapolator::run_compiled), reusing the
    /// caller's scratch buffers.
    ///
    /// Deprecated-by-doc: prefer `run(RunInput::CompiledScratch { .. })`;
    /// this wrapper remains for migration only.
    pub fn run_compiled_scratch(
        &self,
        program: &CompiledProgram,
        scratch: &mut SimScratch,
    ) -> Result<Prediction, ExtrapError> {
        self.run(RunInput::CompiledScratch { program, scratch })
    }

    /// Translates a raw 1-processor program trace with the session's
    /// [`TranslateOptions`] and extrapolates it.
    ///
    /// Deprecated-by-doc: prefer `run(&trace)` (or
    /// [`RunInput::Program`]); this wrapper remains for migration only.
    pub fn run_program(&self, trace: &ProgramTrace) -> Result<Prediction, ExtrapError> {
        self.run(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine;
    use extrap_time::DurationNs;
    use extrap_trace::PhaseProgram;

    fn program() -> ProgramTrace {
        let mut p = PhaseProgram::new(4);
        p.push_uniform_phase(DurationNs::from_us(50.0));
        p.push_uniform_phase(DurationNs::from_us(50.0));
        p.record()
    }

    #[test]
    fn builder_matches_hand_built_params() {
        let pt = program();
        let mut params = machine::cm5();
        params.policy = ServicePolicy::NoInterrupt;
        params.mips_ratio = 2.0;
        let by_hand = crate::extrapolate_program(&pt, TranslateOptions::default(), &params)
            .unwrap()
            .exec_time();
        let by_builder = Extrapolator::new(machine::cm5())
            .policy(ServicePolicy::NoInterrupt)
            .mips_ratio(2.0)
            .run_program(&pt)
            .unwrap()
            .exec_time();
        assert_eq!(by_hand, by_builder);
    }

    #[test]
    fn translate_options_flow_into_run_program() {
        let noisy = pt_with_overhead();
        let compensated = Extrapolator::new(machine::ideal())
            .translate_options(TranslateOptions {
                event_overhead: DurationNs::from_us(5.0),
                switch_overhead: DurationNs::ZERO,
            })
            .run_program(&noisy)
            .unwrap();
        let raw = Extrapolator::new(machine::ideal())
            .run_program(&noisy)
            .unwrap();
        assert!(compensated.exec_time() < raw.exec_time());
    }

    fn pt_with_overhead() -> ProgramTrace {
        // A phase program records zero overhead itself; emulate intrusion
        // by declaring it at translation time on a padded program.
        let mut p = PhaseProgram::new(2);
        for _ in 0..4 {
            p.push_uniform_phase(DurationNs::from_us(100.0));
        }
        p.record()
    }

    #[test]
    fn with_params_edits_arbitrary_fields() {
        let session = Extrapolator::new(machine::default_distributed())
            .with_params(|p| p.barrier.msg_size = 99);
        assert_eq!(session.params().barrier.msg_size, 99);
    }

    #[test]
    fn all_run_input_forms_agree() {
        use crate::processor::CompiledProgram;
        let pt = program();
        let ts = extrap_trace::translate(&pt, TranslateOptions::default()).unwrap();
        let compiled = CompiledProgram::compile(&ts).unwrap();
        let session = Extrapolator::new(machine::cm5());
        let via_traces = session.run(&ts).unwrap();
        let via_program = session.run(&pt).unwrap();
        let via_compiled = session.run(&compiled).unwrap();
        let mut scratch = SimScratch::default();
        let via_scratch = session
            .run(RunInput::CompiledScratch {
                program: &compiled,
                scratch: &mut scratch,
            })
            .unwrap();
        for p in [&via_program, &via_compiled, &via_scratch] {
            assert_eq!(via_traces.exec_time(), p.exec_time());
            assert_eq!(via_traces.per_thread, p.per_thread);
        }
        // The deprecated-doc'd wrappers stay behaviour-identical.
        assert_eq!(
            session.run_compiled(&compiled).unwrap().exec_time(),
            via_compiled.exec_time()
        );
        assert_eq!(
            session.run_program(&pt).unwrap().exec_time(),
            via_program.exec_time()
        );
    }

    #[test]
    fn run_equals_free_function() {
        let pt = program();
        let ts = extrap_trace::translate(&pt, TranslateOptions::default()).unwrap();
        let params = machine::default_distributed();
        let a = Extrapolator::new(params.clone()).run(&ts).unwrap();
        let b = crate::extrapolate(&ts, &params).unwrap();
        assert_eq!(a.exec_time(), b.exec_time());
        assert_eq!(a.predicted, b.predicted);
    }
}
