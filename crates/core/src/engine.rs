//! The trace-driven extrapolation engine (§3.3).
//!
//! The engine replays the translated per-thread traces on a model of the
//! target machine: each thread's op script executes on its processor,
//! remote element accesses become request/reply messages through the
//! network model, barriers follow the barrier model, and the configured
//! **service policy** decides when an owner thread handles incoming
//! remote requests:
//!
//! * `NoInterrupt` — requests queue; the owner services them when it
//!   blocks (remote-reply wait, barrier wait) or at compute-segment
//!   boundaries;
//! * `Interrupt` — a request preempts the owner's computation, which
//!   resumes after the service completes;
//! * `Poll { interval }` — compute segments are chopped into
//!   `interval`-sized chunks and queued requests are serviced at each
//!   chunk boundary.
//!
//! Threads waiting at a barrier or for a remote reply always continue to
//! service incoming requests (the pC++ runtime behaviour §3.3.3 calls
//! out), so request/reply chains can never deadlock.
//!
//! # Hot path
//!
//! The engine executes a borrowed [`CompiledProgram`] — the scripts are
//! compiled once per trace and shared across every parameter set of a
//! sweep, with `MipsRatio` applied to compute durations at dispatch
//! time.  All mutable simulation state (event queue, message log,
//! per-thread and per-processor records) lives in a [`SimScratch`] that
//! callers may reuse across runs, so a steady-state sweep job performs
//! no allocation beyond the predicted trace — and none at all under
//! [`RecordMode::MetricsOnly`].

use crate::barrier::{BarrierAction, BarrierCoordinator, BarrierMsg};
use crate::metrics::{Prediction, ProcBreakdown};
use crate::network::state::NetModel;
use crate::network::NetworkState;
use crate::params::{RecordMode, ServicePolicy, SimParams, SimStrategy, SizeMode};
use crate::processor::{CompiledProgram, Op};
use extrap_sim::Engine as EventQueue;
use extrap_time::{BarrierId, DurationNs, ProcId, ThreadId, TimeNs};
use extrap_trace::{EventKind, ThreadTrace, TraceError, TraceRecord, TraceSet};
use std::collections::VecDeque;
use std::fmt;
use std::mem;

/// Errors from the extrapolation pipeline.
#[derive(Debug)]
pub enum ExtrapError {
    /// The input trace set is malformed.
    Trace(TraceError),
    /// The parameter set is invalid.
    Params(String),
    /// The simulation stalled with threads unfinished (indicates an
    /// internally inconsistent trace, e.g. a barrier some threads never
    /// reach).
    Stuck {
        /// Threads that never completed.
        unfinished: Vec<ThreadId>,
    },
    /// The job was cancelled before it ran (sweep shutdown / drain).
    Cancelled,
}

impl fmt::Display for ExtrapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtrapError::Trace(e) => write!(f, "invalid trace: {e}"),
            ExtrapError::Params(e) => write!(f, "invalid parameters: {e}"),
            ExtrapError::Stuck { unfinished } => {
                write!(f, "simulation stalled; unfinished threads: {unfinished:?}")
            }
            ExtrapError::Cancelled => write!(f, "job cancelled before it ran"),
        }
    }
}

impl std::error::Error for ExtrapError {}

impl From<TraceError> for ExtrapError {
    fn from(e: TraceError) -> Self {
        ExtrapError::Trace(e)
    }
}

/// Queue events.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Ev {
    /// Thread was granted its processor.
    Granted(u32),
    /// A compute segment finished (generation-guarded).
    ComputeDone(u32, u64),
    /// A polling-policy chunk boundary (generation-guarded).
    PollTick(u32, u64),
    /// Message `idx` arrived at its destination.
    Arrive(u32),
}

/// In-flight message bookkeeping.
#[derive(Clone, Copy, Debug)]
struct Msg {
    from: ThreadId,
    to: ThreadId,
    payload: Payload,
    /// True if the message actually traversed the interconnect (false for
    /// co-located threads in multithreaded mode).
    wire: bool,
}

#[derive(Clone, Copy, Debug)]
enum Payload {
    /// Remote-read request; the reply will carry `reply_bytes`.
    Request { reply_bytes: u32 },
    /// Remote-read reply back to the requester.
    Reply,
    /// One-way remote-write data.
    Write,
    /// Barrier protocol message.
    Bar(BarrierMsg),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    /// Waiting to be granted the processor.
    WaitCpu,
    /// Executing a compute segment.
    Computing,
    /// Blocked on a remote-read reply.
    WaitReply,
    /// Waiting inside a barrier.
    AtBarrier,
    /// Finished.
    Done,
}

struct Th {
    pc: usize,
    state: TState,
    gen: u64,
    proc: ProcId,
    compute_until: TimeNs,
    /// Requests/writes queued while this thread computes (serviced per
    /// the policy).
    pending: VecDeque<u32>,
    /// When this thread's (idle-time) service capacity is next free.
    svc_avail: TimeNs,
    /// Start of the current wait (barrier or remote).
    waiting_since: TimeNs,
    /// When the thread asked for the CPU (for scheduler-wait stats).
    ready_since: TimeNs,
    stats: ProcBreakdown,
    predicted: Vec<TraceRecord>,
}

struct Pr {
    occupant: Option<u32>,
    queue: VecDeque<u32>,
    last: Option<u32>,
}

/// Reusable simulation state: the event queue, message log, and
/// per-thread/per-processor bookkeeping vectors.
///
/// A fresh `SimScratch` is just empty buffers; passing the same one to
/// [`run_compiled_scratch`] for every job of a sweep lets steady-state
/// jobs reuse all of them.  The sweep engine keeps one per worker
/// thread.  Contents are opaque — the engine resets everything it reads.
#[derive(Default)]
pub struct SimScratch {
    queue: EventQueue<Ev>,
    threads: Vec<Th>,
    procs: Vec<Pr>,
    msgs: Vec<Msg>,
}

/// Runs the extrapolation of `traces` on the machine described by
/// `params`, using the paper's analytic network contention model.
///
/// Convenience wrapper over [`CompiledProgram::compile`] +
/// [`run_compiled`]; sweeps should compile once and call
/// [`run_compiled_scratch`] per parameter set instead.
pub fn run(traces: &TraceSet, params: &SimParams) -> Result<Prediction, ExtrapError> {
    params.validate().map_err(ExtrapError::Params)?;
    let program = CompiledProgram::compile(traces)?;
    run_compiled(&program, params)
}

/// Runs the extrapolation with a caller-supplied network model (used by
/// `extrap-refsim` to substitute link-level contention simulation — the
/// model swap §3.3.2 anticipates).
pub fn run_with_network<N: NetModel>(
    traces: &TraceSet,
    params: &SimParams,
    net: N,
) -> Result<Prediction, ExtrapError> {
    params.validate().map_err(ExtrapError::Params)?;
    let program = CompiledProgram::compile(traces)?;
    run_compiled_with_network(&program, params, net, &mut SimScratch::default())
}

/// Runs the extrapolation of an already-compiled program.
pub fn run_compiled(
    program: &CompiledProgram,
    params: &SimParams,
) -> Result<Prediction, ExtrapError> {
    run_compiled_scratch(program, params, &mut SimScratch::default())
}

/// Runs the extrapolation of a compiled program, reusing the caller's
/// scratch buffers (the zero-allocation sweep hot path).
///
/// This is the strategy dispatch point: under
/// [`SimStrategy::Representative`] the program's repeating barrier
/// epochs are clustered and one representative per cluster is simulated
/// ([`ReprPlan`](crate::repr::ReprPlan)), falling back to the exact path
/// when the trace has no exploitable repetition.  The refsim entry point
/// [`run_with_network`] always simulates exactly — a caller-supplied
/// link-level network model carries state across epochs, which weighted
/// composition cannot honor.
pub fn run_compiled_scratch(
    program: &CompiledProgram,
    params: &SimParams,
    scratch: &mut SimScratch,
) -> Result<Prediction, ExtrapError> {
    let prediction = dispatch_compiled_scratch(program, params, scratch)?;
    crate::sanitizer::check(program, params, &prediction);
    Ok(prediction)
}

/// Strategy dispatch body of [`run_compiled_scratch`], separated so the
/// sanitizer sees the *final* result shape — the representative
/// composition rather than its internal mini-runs.
fn dispatch_compiled_scratch(
    program: &CompiledProgram,
    params: &SimParams,
    scratch: &mut SimScratch,
) -> Result<Prediction, ExtrapError> {
    if let SimStrategy::Representative {
        max_clusters,
        tolerance,
    } = params.strategy
    {
        params.validate().map_err(ExtrapError::Params)?;
        if let Some(plan) = crate::repr::ReprPlan::from_program(program, max_clusters, tolerance) {
            return plan.run(params, scratch);
        }
    }
    exact_compiled_scratch(program, params, scratch)
}

/// The exact (every-epoch) path of [`run_compiled_scratch`], and the
/// fallback target when representative clustering finds no repetition:
/// falling back lands on literally the same code the exact strategy
/// runs, so fallback output is byte-identical by construction.
pub(crate) fn exact_compiled_scratch(
    program: &CompiledProgram,
    params: &SimParams,
    scratch: &mut SimScratch,
) -> Result<Prediction, ExtrapError> {
    let n_procs = params
        .multithread
        .mapping
        .n_procs(program.n_threads().max(1));
    let net = NetworkState::new(n_procs, params.network, params.comm.byte_transfer);
    run_compiled_with_network(program, params, net, scratch)
}

/// Runs a compiled program with a caller-supplied network model and
/// scratch buffers.  Every other entry point funnels here.
pub fn run_compiled_with_network<N: NetModel>(
    program: &CompiledProgram,
    params: &SimParams,
    net: N,
    scratch: &mut SimScratch,
) -> Result<Prediction, ExtrapError> {
    params.validate().map_err(ExtrapError::Params)?;
    if program.is_empty() {
        return Ok(Prediction::empty());
    }
    let mut sim = Sim::new(program, params, net, scratch);
    sim.run()?;
    Ok(sim.into_prediction(scratch))
}

struct Sim<'p, N> {
    program: &'p CompiledProgram,
    params: &'p SimParams,
    /// Materialize the predicted trace? (`RecordMode::Full`)
    record: bool,
    n_threads: usize,
    n_procs: usize,
    queue: EventQueue<Ev>,
    threads: Vec<Th>,
    procs: Vec<Pr>,
    net: N,
    coord: BarrierCoordinator,
    msgs: Vec<Msg>,
}

impl<'p, N: NetModel> Sim<'p, N> {
    fn new(
        program: &'p CompiledProgram,
        params: &'p SimParams,
        net: N,
        scratch: &mut SimScratch,
    ) -> Sim<'p, N> {
        let n_threads = program.n_threads();
        let mapping = params.multithread.mapping;
        let n_procs = mapping.n_procs(n_threads);
        let record = params.record_mode == RecordMode::Full;

        let mut queue = mem::take(&mut scratch.queue);
        // Auto resolves against the compiled program's occupancy hint;
        // a recycled queue keeps its allocations unless the resolved
        // backend actually changes between runs.
        queue.reset_with(params.scheduler.resolve(program.peak_events()));
        let mut msgs = mem::take(&mut scratch.msgs);
        msgs.clear();

        let mut threads = mem::take(&mut scratch.threads);
        threads.truncate(n_threads);
        for (i, ct) in program.threads().iter().enumerate() {
            let proc = mapping.proc_of(ct.thread, n_threads);
            // Full mode reserves the exact predicted-trace capacity the
            // compiler counted; MetricsOnly never touches the vec.
            let cap = if record { ct.predicted_records } else { 0 };
            match threads.get_mut(i) {
                Some(th) => {
                    th.pc = 0;
                    th.state = TState::WaitCpu;
                    th.gen = 0;
                    th.proc = proc;
                    th.compute_until = TimeNs::ZERO;
                    th.pending.clear();
                    th.svc_avail = TimeNs::ZERO;
                    th.waiting_since = TimeNs::ZERO;
                    th.ready_since = TimeNs::ZERO;
                    th.stats = ProcBreakdown::default();
                    th.predicted.clear();
                    th.predicted.reserve_exact(cap);
                }
                None => threads.push(Th {
                    pc: 0,
                    state: TState::WaitCpu,
                    gen: 0,
                    proc,
                    compute_until: TimeNs::ZERO,
                    pending: VecDeque::new(),
                    svc_avail: TimeNs::ZERO,
                    waiting_since: TimeNs::ZERO,
                    ready_since: TimeNs::ZERO,
                    stats: ProcBreakdown::default(),
                    predicted: Vec::with_capacity(cap),
                }),
            }
        }

        let mut procs = mem::take(&mut scratch.procs);
        procs.truncate(n_procs);
        for p in &mut procs {
            p.occupant = None;
            p.queue.clear();
            p.last = None;
        }
        while procs.len() < n_procs {
            procs.push(Pr {
                occupant: None,
                queue: VecDeque::new(),
                last: None,
            });
        }

        Sim {
            program,
            params,
            record,
            n_threads,
            n_procs,
            queue,
            threads,
            procs,
            net,
            coord: BarrierCoordinator::new(n_threads, params.barrier, params.comm),
            msgs,
        }
    }

    fn run(&mut self) -> Result<(), ExtrapError> {
        for t in 0..self.n_threads {
            self.emit(t, TimeNs::ZERO, EventKind::ThreadBegin);
            self.request_cpu(t, TimeNs::ZERO);
        }
        while let Some((now, ev)) = self.queue.next() {
            match ev {
                Ev::Granted(t) => self.on_granted(t as usize, now),
                Ev::ComputeDone(t, gen) => self.on_compute_done(t as usize, gen, now),
                Ev::PollTick(t, gen) => self.on_poll_tick(t as usize, gen, now),
                Ev::Arrive(m) => self.on_arrive(m as usize, now),
            }
        }
        let unfinished: Vec<ThreadId> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, th)| th.state != TState::Done)
            .map(|(i, _)| ThreadId::from_index(i))
            .collect();
        if unfinished.is_empty() {
            Ok(())
        } else {
            Err(ExtrapError::Stuck { unfinished })
        }
    }

    /// Harvests the prediction and returns every buffer to `scratch` for
    /// the next run.
    fn into_prediction(mut self, scratch: &mut SimScratch) -> Prediction {
        let per_thread = self.threads.iter().map(|t| t.stats).collect();
        let predicted = if self.record {
            TraceSet {
                threads: self
                    .threads
                    .iter_mut()
                    .enumerate()
                    .map(|(i, th)| ThreadTrace {
                        thread: ThreadId::from_index(i),
                        records: mem::take(&mut th.predicted),
                    })
                    .collect(),
            }
        } else {
            TraceSet {
                threads: Vec::new(),
            }
        };
        let prediction = Prediction {
            n_threads: self.n_threads,
            n_procs: self.n_procs,
            per_thread,
            network: self.net.stats(),
            barriers: self.coord.completed(),
            events_dispatched: self.queue.dispatched(),
            predicted,
        };
        scratch.queue = self.queue;
        scratch.threads = self.threads;
        scratch.procs = self.procs;
        scratch.msgs = self.msgs;
        prediction
    }

    // ----- predicted-trace helper -------------------------------------

    fn emit(&mut self, t: usize, time: TimeNs, kind: EventKind) {
        if !self.record {
            return;
        }
        self.threads[t].predicted.push(TraceRecord {
            time,
            thread: ThreadId::from_index(t),
            kind,
        });
    }

    // ----- processor scheduling ---------------------------------------

    fn request_cpu(&mut self, t: usize, at: TimeNs) {
        self.threads[t].state = TState::WaitCpu;
        self.threads[t].ready_since = at;
        let p = self.threads[t].proc.index();
        if self.procs[p].occupant.is_none() {
            self.grant(p, t, at);
        } else {
            self.procs[p].queue.push_back(t as u32);
        }
    }

    fn grant(&mut self, p: usize, t: usize, at: TimeNs) {
        let switch = match self.procs[p].last {
            Some(prev) if prev != t as u32 => self.params.multithread.switch_cost,
            _ => DurationNs::ZERO,
        };
        self.procs[p].occupant = Some(t as u32);
        self.procs[p].last = Some(t as u32);
        self.queue.schedule(at + switch, Ev::Granted(t as u32));
    }

    fn release_cpu(&mut self, t: usize, at: TimeNs) {
        let p = self.threads[t].proc.index();
        debug_assert_eq!(self.procs[p].occupant, Some(t as u32));
        self.procs[p].occupant = None;
        if let Some(next) = self.procs[p].queue.pop_front() {
            let next = next as usize;
            let waited = at.saturating_since(self.threads[next].ready_since);
            self.threads[next].stats.sched_wait += waited;
            self.grant(p, next, at);
        }
    }

    fn on_granted(&mut self, t: usize, now: TimeNs) {
        // Service anything that queued up while this thread was off-CPU,
        // then proceed with the script.
        let delay = self.drain_pending(t, now);
        self.run_next(t, now + delay);
    }

    // ----- script execution -------------------------------------------

    fn run_next(&mut self, t: usize, mut now: TimeNs) {
        let ops: &[Op] = &self.program.threads()[t].ops;
        loop {
            let op = ops[self.threads[t].pc];
            match op {
                Op::Compute(d) => {
                    self.threads[t].pc += 1;
                    // Scripts carry host time; the target's speed ratio
                    // applies here, at dispatch.
                    let d = d.scale(self.params.mips_ratio);
                    if d.is_zero() {
                        continue;
                    }
                    let th = &mut self.threads[t];
                    th.stats.compute += d;
                    th.state = TState::Computing;
                    th.gen += 1;
                    th.compute_until = now + d;
                    let gen = th.gen;
                    match self.params.policy {
                        ServicePolicy::Poll { interval } => {
                            let first = now + interval.min(d);
                            self.queue.schedule(first, Ev::PollTick(t as u32, gen));
                        }
                        _ => {
                            self.queue.schedule(now + d, Ev::ComputeDone(t as u32, gen));
                        }
                    }
                    return;
                }
                Op::RemoteRead {
                    owner,
                    element,
                    declared_bytes,
                    actual_bytes,
                } => {
                    self.threads[t].pc += 1;
                    self.emit(
                        t,
                        now,
                        EventKind::RemoteRead {
                            owner,
                            element,
                            declared_bytes,
                            actual_bytes,
                        },
                    );
                    let data = self.pick_bytes(declared_bytes, actual_bytes);
                    let send = self.params.comm.construct + self.params.comm.startup;
                    let depart = now + send;
                    {
                        let th = &mut self.threads[t];
                        th.stats.send_overhead += send;
                        th.stats.remote_reads += 1;
                        th.state = TState::WaitReply;
                        th.waiting_since = now;
                        th.gen += 1;
                        // Idle service capacity opens once the request is out.
                        th.svc_avail = th.svc_avail.max(depart);
                    }
                    self.send_msg(
                        depart,
                        ThreadId::from_index(t),
                        owner,
                        self.params.comm.request_bytes,
                        Payload::Request {
                            reply_bytes: data + self.params.comm.reply_header_bytes,
                        },
                    );
                    self.release_cpu(t, depart);
                    return;
                }
                Op::RemoteWrite {
                    owner,
                    element,
                    declared_bytes,
                    actual_bytes,
                } => {
                    self.threads[t].pc += 1;
                    self.emit(
                        t,
                        now,
                        EventKind::RemoteWrite {
                            owner,
                            element,
                            declared_bytes,
                            actual_bytes,
                        },
                    );
                    let data = self.pick_bytes(declared_bytes, actual_bytes);
                    let send = self.params.comm.construct + self.params.comm.startup;
                    let depart = now + send;
                    {
                        let th = &mut self.threads[t];
                        th.stats.send_overhead += send;
                        th.stats.remote_writes += 1;
                    }
                    self.send_msg(
                        depart,
                        ThreadId::from_index(t),
                        owner,
                        data + self.params.comm.request_bytes,
                        Payload::Write,
                    );
                    // Non-blocking: the thread continues after the send
                    // overhead.
                    now = depart;
                }
                Op::Barrier(b) => {
                    self.threads[t].pc += 1;
                    self.emit(t, now, EventKind::BarrierEnter { barrier: b });
                    {
                        let th = &mut self.threads[t];
                        th.state = TState::AtBarrier;
                        th.waiting_since = now;
                        th.gen += 1;
                        th.svc_avail = th.svc_avail.max(now + self.params.barrier.entry);
                    }
                    let actions = self.coord.on_enter(b, ThreadId::from_index(t), now);
                    self.release_cpu(t, now + self.params.barrier.entry);
                    self.apply_barrier_actions(&actions);
                    return;
                }
                Op::End => {
                    self.emit(t, now, EventKind::ThreadEnd);
                    let th = &mut self.threads[t];
                    th.state = TState::Done;
                    th.stats.end_time = now;
                    th.gen += 1;
                    th.svc_avail = th.svc_avail.max(now);
                    self.release_cpu(t, now);
                    return;
                }
            }
        }
    }

    fn pick_bytes(&self, declared: u32, actual: u32) -> u32 {
        match self.params.size_mode {
            SizeMode::Declared => declared,
            SizeMode::Actual => actual,
        }
    }

    // ----- compute-segment events ---------------------------------------

    fn on_compute_done(&mut self, t: usize, gen: u64, now: TimeNs) {
        if self.threads[t].gen != gen || self.threads[t].state != TState::Computing {
            return;
        }
        // NoInterrupt (and Interrupt, whose queue is always empty here)
        // service queued requests at the segment boundary.
        let delay = self.drain_pending(t, now);
        self.run_next(t, now + delay);
    }

    fn on_poll_tick(&mut self, t: usize, gen: u64, now: TimeNs) {
        if self.threads[t].gen != gen || self.threads[t].state != TState::Computing {
            return;
        }
        let remaining = self.threads[t].compute_until.saturating_since(now);
        let delay = self.drain_pending(t, now);
        if remaining.is_zero() {
            self.run_next(t, now + delay);
            return;
        }
        self.threads[t].compute_until += delay;
        let interval = match self.params.policy {
            ServicePolicy::Poll { interval } => interval,
            _ => unreachable!("poll tick under non-poll policy"),
        };
        let next = now + delay + interval.min(remaining);
        self.queue.schedule(next, Ev::PollTick(t as u32, gen));
    }

    /// Services every queued request/write, returning the total time
    /// consumed.  Replies depart back-to-back.
    fn drain_pending(&mut self, t: usize, now: TimeNs) -> DurationNs {
        let mut total = DurationNs::ZERO;
        while let Some(mi) = self.threads[t].pending.pop_front() {
            let m = self.msgs[mi as usize];
            match m.payload {
                Payload::Request { reply_bytes } => {
                    let svc = self.params.comm.receive + self.params.comm.service;
                    let send = self.params.comm.construct + self.params.comm.startup;
                    self.threads[t].stats.service += svc;
                    self.threads[t].stats.send_overhead += send;
                    total += svc + send;
                    let depart = now + total;
                    self.send_msg(
                        depart,
                        ThreadId::from_index(t),
                        m.from,
                        reply_bytes,
                        Payload::Reply,
                    );
                }
                Payload::Write => {
                    let svc = self.params.comm.receive + self.params.comm.service;
                    self.threads[t].stats.service += svc;
                    total += svc;
                }
                other => unreachable!("only requests/writes queue: {other:?}"),
            }
        }
        total
    }

    // ----- messages -----------------------------------------------------

    fn send_msg(
        &mut self,
        depart: TimeNs,
        from: ThreadId,
        to: ThreadId,
        bytes: u32,
        payload: Payload,
    ) {
        let src = self.threads[from.index()].proc;
        let dst = self.threads[to.index()].proc;
        let arrival = self.net.inject(depart, src, dst, bytes);
        let idx = self.msgs.len() as u32;
        self.msgs.push(Msg {
            from,
            to,
            payload,
            wire: src != dst,
        });
        self.queue.schedule(arrival, Ev::Arrive(idx));
    }

    fn on_arrive(&mut self, mi: usize, now: TimeNs) {
        let m = self.msgs[mi];
        if m.wire {
            let src = self.threads[m.from.index()].proc;
            let dst = self.threads[m.to.index()].proc;
            self.net.complete(src, dst);
        }
        match m.payload {
            Payload::Request { .. } | Payload::Write => {
                self.handle_service(mi, m, now);
            }
            Payload::Reply => {
                let t = m.to.index();
                debug_assert_eq!(self.threads[t].state, TState::WaitReply);
                let start = now.max(self.threads[t].svc_avail);
                let resume = start + self.params.comm.receive;
                let th = &mut self.threads[t];
                th.svc_avail = resume;
                th.stats.remote_wait += resume.saturating_since(th.waiting_since);
                self.request_cpu(t, resume);
            }
            Payload::Bar(BarrierMsg::Arrive(b)) => {
                let actions = self.coord.on_arrive_msg(b, m.from, now);
                self.apply_barrier_actions(&actions);
            }
            Payload::Bar(BarrierMsg::Release(b)) => {
                let actions = self.coord.on_release_msg(b, m.to, now);
                self.apply_barrier_actions(&actions);
            }
        }
    }

    /// Dispatches an incoming request/write per the service policy and
    /// the owner's state.
    fn handle_service(&mut self, mi: usize, m: Msg, now: TimeNs) {
        let o = m.to.index();
        match self.threads[o].state {
            TState::Computing => match self.params.policy {
                ServicePolicy::Interrupt => self.interrupt_service(o, m, now),
                ServicePolicy::NoInterrupt | ServicePolicy::Poll { .. } => {
                    self.threads[o].pending.push_back(mi as u32);
                }
            },
            TState::WaitCpu => {
                // Serviced when the thread next gets the CPU.
                self.threads[o].pending.push_back(mi as u32);
            }
            TState::WaitReply | TState::AtBarrier | TState::Done => {
                self.idle_service(o, m, now);
            }
        }
    }

    /// Interrupt policy: the owner's computation is extended by the
    /// service time and the reply goes out immediately.
    fn interrupt_service(&mut self, o: usize, m: Msg, now: TimeNs) {
        let svc = self.params.comm.receive + self.params.comm.service;
        match m.payload {
            Payload::Request { reply_bytes } => {
                let send = self.params.comm.construct + self.params.comm.startup;
                let cost = svc + send;
                {
                    let th = &mut self.threads[o];
                    th.stats.service += svc;
                    th.stats.send_overhead += send;
                    th.compute_until += cost;
                    th.gen += 1;
                }
                let depart = now + cost;
                self.send_msg(
                    depart,
                    ThreadId::from_index(o),
                    m.from,
                    reply_bytes,
                    Payload::Reply,
                );
                let (until, gen) = {
                    let th = &self.threads[o];
                    (th.compute_until, th.gen)
                };
                self.queue.schedule(until, Ev::ComputeDone(o as u32, gen));
            }
            Payload::Write => {
                let th = &mut self.threads[o];
                th.stats.service += svc;
                th.compute_until += svc;
                th.gen += 1;
                let (until, gen) = (th.compute_until, th.gen);
                self.queue.schedule(until, Ev::ComputeDone(o as u32, gen));
            }
            other => unreachable!("not serviceable: {other:?}"),
        }
    }

    /// A waiting/finished thread services a request in its idle time.
    fn idle_service(&mut self, o: usize, m: Msg, now: TimeNs) {
        let start = now.max(self.threads[o].svc_avail);
        let svc = self.params.comm.receive + self.params.comm.service;
        match m.payload {
            Payload::Request { reply_bytes } => {
                let send = self.params.comm.construct + self.params.comm.startup;
                let depart = start + svc + send;
                self.threads[o].stats.service += svc;
                self.threads[o].stats.send_overhead += send;
                self.threads[o].svc_avail = depart;
                self.send_msg(
                    depart,
                    ThreadId::from_index(o),
                    m.from,
                    reply_bytes,
                    Payload::Reply,
                );
            }
            Payload::Write => {
                self.threads[o].stats.service += svc;
                self.threads[o].svc_avail = start + svc;
            }
            other => unreachable!("not serviceable: {other:?}"),
        }
    }

    // ----- barrier actions ------------------------------------------------

    fn apply_barrier_actions(&mut self, actions: &[BarrierAction]) {
        for a in actions {
            match *a {
                BarrierAction::Send {
                    depart,
                    from,
                    to,
                    bytes,
                    msg,
                } => {
                    self.send_msg(depart, from, to, bytes, Payload::Bar(msg));
                }
                BarrierAction::Resume { thread, at } => {
                    let t = thread.index();
                    debug_assert_eq!(self.threads[t].state, TState::AtBarrier);
                    let b = self.current_barrier_of(t);
                    let th = &mut self.threads[t];
                    th.stats.barrier_wait += at.saturating_since(th.waiting_since);
                    th.svc_avail = th.svc_avail.max(at);
                    self.emit(t, at, EventKind::BarrierExit { barrier: b });
                    self.request_cpu(t, at);
                }
            }
        }
    }

    /// The barrier the thread is currently waiting in: the `Barrier` op
    /// just before its program counter.
    fn current_barrier_of(&self, t: usize) -> BarrierId {
        let pc = self.threads[t].pc;
        debug_assert!(pc > 0);
        match self.program.threads()[t].ops[pc - 1] {
            Op::Barrier(b) => b,
            other => panic!("thread {t} at barrier but previous op is {other:?}"),
        }
    }
}
