//! Out-of-core trace→program compilation: one-pass pipelines that fold
//! a chunked trace stream straight into a [`CompiledProgram`].
//!
//! The whole-trace path materializes three containers on the way to a
//! simulation — `ProgramTrace` → `TraceSet` → `CompiledProgram` — so
//! trace size, not simulation cost, bounds the inputs a host can
//! extrapolate.  These entry points keep only the streaming machinery
//! resident (decode window + epoch translator + per-thread fold state,
//! O(threads + live-epoch)) plus the compiled program itself, which is
//! the pipeline's product:
//!
//! * [`compile_program_stream`] — raw 1-processor trace (`XTRP`) in,
//!   compiled program out, translation fused in ([`EpochTranslator`]
//!   feeding an [`IncrementalCompiler`]); nothing intermediate is held.
//! * [`compile_set_stream`] — already-translated set (`XTPS`) in,
//!   compiled program out, enforcing exactly the invariants
//!   `TraceSet::validate` enforces (and in the same order, so a corrupt
//!   file reports the same first error either way).
//!
//! Both produce programs byte-identical to the whole-trace path by
//! construction: the per-record fold is shared (see
//! [`IncrementalCompiler`]), and `extrap_trace::translate` is itself an
//! adapter over the same epoch translator.
//!
//! [`EpochTranslator`]: extrap_trace::EpochTranslator

use crate::processor::{CompiledProgram, IncrementalCompiler};
use extrap_time::{BarrierId, ThreadId, TimeNs};
use extrap_trace::stream::{ChunkSource, ProgramStream, SetChunk, SetStream};
use extrap_trace::{translate_stream, EventKind, TraceError, TranslateOptions, TranslateStats};

/// Translates and compiles a raw program-trace stream in one pass.
///
/// Equivalent to `translate(&stream.read_to_end()?, options)` followed
/// by [`CompiledProgram::compile`], without ever holding the
/// `ProgramTrace` or the `TraceSet`.  The returned [`TranslateStats`]
/// carry the translate machinery's peak residency (the part this
/// pipeline bounds; the compiled program is the output and scales with
/// program structure).
pub fn compile_program_stream<S: ChunkSource>(
    stream: &mut ProgramStream<S>,
    options: TranslateOptions,
) -> Result<(CompiledProgram, TranslateStats), TraceError> {
    let mut compiler = IncrementalCompiler::new(stream.n_threads());
    let stats = translate_stream(stream, options, &mut compiler)?;
    Ok((compiler.finish(), stats))
}

/// Compiles an already-translated trace-set stream in one pass.
///
/// Equivalent to [`CompiledProgram::compile`] on the fully decoded set:
/// the structural invariants (`TraceSet::validate`) are enforced
/// record-by-record in the same order, so an invalid file fails with
/// the identical first error, and a valid one compiles to the identical
/// program.
pub fn compile_set_stream<S: ChunkSource>(
    stream: &mut SetStream<S>,
) -> Result<CompiledProgram, TraceError> {
    let mut compiler = IncrementalCompiler::new(stream.n_threads());
    // `TraceSet::validate` state, maintained streamingly: thread 0's
    // barrier sequence is the reference every later segment is compared
    // against when it ends.
    let mut reference: Vec<BarrierId> = Vec::new();
    let mut seq: Vec<BarrierId> = Vec::new();
    let mut segment: Option<(usize, ThreadId)> = None;
    let mut prev = TimeNs::ZERO;
    let mut rec_idx = 0usize;
    loop {
        match stream.next_chunk()? {
            None => break,
            Some(SetChunk::Thread {
                position, thread, ..
            }) => {
                end_segment(&mut segment, &mut reference, &mut seq)?;
                if thread.index() != position {
                    return Err(TraceError::MisplacedThread { position, thread });
                }
                segment = Some((position, thread));
                prev = TimeNs::ZERO;
                rec_idx = 0;
            }
            Some(SetChunk::Records(recs)) => {
                let Some((position, thread)) = segment else {
                    return Err(TraceError::Format {
                        detail: "records before any segment header".to_string(),
                    });
                };
                for rec in recs {
                    if rec.time < prev {
                        return Err(TraceError::ThreadTimeRegression {
                            thread,
                            record: rec_idx,
                        });
                    }
                    prev = rec.time;
                    if rec.thread != thread {
                        return Err(TraceError::MisplacedThread {
                            position,
                            thread: rec.thread,
                        });
                    }
                    if let EventKind::BarrierEnter { barrier } = rec.kind {
                        seq.push(barrier);
                    }
                    compiler.emit_record(position, rec)?;
                    rec_idx += 1;
                }
            }
        }
    }
    end_segment(&mut segment, &mut reference, &mut seq)?;
    Ok(compiler.finish())
}

/// Closes out the current segment: thread 0's barrier sequence becomes
/// the reference, every later thread's must match it.
fn end_segment(
    segment: &mut Option<(usize, ThreadId)>,
    reference: &mut Vec<BarrierId>,
    seq: &mut Vec<BarrierId>,
) -> Result<(), TraceError> {
    let Some((position, thread)) = segment.take() else {
        return Ok(());
    };
    if position == 0 {
        *reference = std::mem::take(seq);
    } else if seq != reference {
        return Err(TraceError::BarrierMismatch { thread });
    }
    seq.clear();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use extrap_time::DurationNs;
    use extrap_trace::stream::SliceSource;
    use extrap_trace::{format, translate, PhaseProgram, PhaseWork};

    fn skewed_program(phases: usize) -> extrap_trace::ProgramTrace {
        let mut p = PhaseProgram::new(3);
        for i in 0..phases {
            p.push_phase(vec![
                PhaseWork {
                    compute: DurationNs(100 + 17 * i as u64),
                    accesses: vec![],
                },
                PhaseWork {
                    compute: DurationNs(250),
                    accesses: vec![],
                },
                PhaseWork {
                    compute: DurationNs(40 + 3 * i as u64),
                    accesses: vec![],
                },
            ]);
        }
        p.record()
    }

    #[test]
    fn program_stream_compiles_identically() {
        let pt = skewed_program(5);
        let opts = TranslateOptions::default();
        let expected = CompiledProgram::compile(&translate(&pt, opts).unwrap()).unwrap();
        let bytes = format::encode_program(&pt);
        let mut stream = ProgramStream::new(SliceSource(&bytes)).unwrap();
        let (program, stats) = compile_program_stream(&mut stream, opts).unwrap();
        assert_eq!(program, expected);
        assert_eq!(stats.records, pt.records.len() as u64);
    }

    #[test]
    fn set_stream_compiles_identically() {
        let pt = skewed_program(4);
        let set = translate(&pt, TranslateOptions::default()).unwrap();
        let expected = CompiledProgram::compile(&set).unwrap();
        let bytes = format::encode_set(&set);
        let mut stream = SetStream::new(SliceSource(&bytes)).unwrap();
        let program = compile_set_stream(&mut stream).unwrap();
        assert_eq!(program, expected);
    }

    /// The machinery-residency probe (mirroring the streaming-lint
    /// probe): growing the record count ~10x by adding epochs — same
    /// per-epoch structure — must not grow the translate machinery's
    /// peak residency.  The compiled program (the output) does grow;
    /// that is not what `TranslateStats` measures.
    #[test]
    fn streaming_residency_is_bounded_by_structure_not_records() {
        let probe = |phases: usize| -> (usize, usize) {
            let pt = skewed_program(phases);
            let bytes = format::encode_program(&pt);
            let mut stream = ProgramStream::new(SliceSource(&bytes)).unwrap();
            let (_, stats) = compile_program_stream(&mut stream, Default::default()).unwrap();
            (stats.peak_resident_bytes, pt.records.len())
        };
        let (small_peak, small_len) = probe(30);
        let (big_peak, big_len) = probe(300);
        assert!(
            big_len >= small_len * 9,
            "probe traces must differ by ~10x in record count"
        );
        assert!(
            (big_peak as f64) < small_peak as f64 * 1.5,
            "streaming pipeline residency grew with record count: \
             {small_peak} -> {big_peak} bytes for {small_len} -> {big_len} records"
        );
    }

    #[test]
    fn set_stream_rejects_what_validate_rejects() {
        let pt = skewed_program(2);
        let mut set = translate(&pt, TranslateOptions::default()).unwrap();
        // Corrupt thread 2's barrier sequence.
        for rec in &mut set.threads[2].records {
            if let EventKind::BarrierEnter { barrier } = &mut rec.kind {
                *barrier = BarrierId(barrier.0 + 7);
            }
        }
        let whole = CompiledProgram::compile(&set).unwrap_err();
        let bytes = format::encode_set(&set);
        let mut stream = SetStream::new(SliceSource(&bytes)).unwrap();
        let streamed = compile_set_stream(&mut stream).unwrap_err();
        assert_eq!(whole.to_string(), streamed.to_string());
        assert!(matches!(streamed, TraceError::BarrierMismatch { .. }));
    }
}
