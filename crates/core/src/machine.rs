//! Target machine presets.
//!
//! Each preset is a [`SimParams`] matching an execution environment the
//! paper uses: the Fig. 4 distributed-memory machine, the shared-memory
//! approximation, the ideal (zero-cost) environment, and the CM-5 of
//! Table 3.

use crate::network::topology::Topology;
use crate::params::{
    BarrierAlgorithm, BarrierParams, CommParams, ServicePolicy, SimParams, SizeMode,
};
use extrap_time::DurationNs;

/// The Fig. 4 experimental environment: a distributed-memory platform
/// with modest communication link bandwidth (20 MB/s) but relatively
/// high communication overheads and synchronization costs (5× the CM-5
/// start-up, message-based linear barriers).
pub fn default_distributed() -> SimParams {
    let mut p = SimParams::default();
    p.comm = CommParams::default()
        .with_bandwidth_mbps(20.0)
        .with_startup_us(50.0);
    p.network.topology = Topology::Mesh2D;
    // The pC++ runtime's usual configuration services remote requests
    // promptly (interrupts / active messages); Fig. 8 varies this.
    p.policy = ServicePolicy::Interrupt;
    p
}

/// An approximation of a shared-memory machine: remote data accesses run
/// at 200 MB/s with low start-up cost; barriers go through shared flags
/// rather than messages (the §3.3.2 "same protocol structure, different
/// sub-model parameters" approach).
pub fn shared_memory() -> SimParams {
    let mut p = SimParams::default();
    p.comm = CommParams {
        startup: DurationNs::from_us(2.0),
        construct: DurationNs::from_us(0.5),
        service: DurationNs::from_us(1.0),
        receive: DurationNs::from_us(0.5),
        request_bytes: 8,
        reply_header_bytes: 0,
        ..CommParams::default().with_bandwidth_mbps(200.0)
    };
    p.network.topology = Topology::Crossbar;
    p.network.hop = DurationNs::from_us(0.1);
    p.barrier = BarrierParams {
        by_msgs: false,
        entry: DurationNs::from_us(1.0),
        exit: DurationNs::from_us(1.0),
        check: DurationNs::from_us(0.5),
        exit_check: DurationNs::from_us(0.5),
        model: DurationNs::from_us(2.0),
        ..BarrierParams::default()
    };
    p.policy = ServicePolicy::Interrupt;
    p
}

/// The ideal execution environment of §4.1: all synchronization and
/// communication costs are null.  Extrapolation then reports the pure
/// (scaled) computation schedule.
pub fn ideal() -> SimParams {
    let mut p = SimParams::default();
    p.comm = CommParams::free();
    p.barrier = BarrierParams::free();
    p.network.hop = DurationNs::ZERO;
    p.network.contention.enabled = false;
    // Remote requests are serviced instantly even mid-computation —
    // otherwise a zero-cost machine could still block a reader behind
    // the owner's compute segment, which is not "all communication
    // costs null".
    p.policy = ServicePolicy::Interrupt;
    p
}

/// The Thinking Machines CM-5 parameter set of Table 3, used for the
/// Matmul validation (§4.2):
///
/// | Parameter          | Value                            |
/// |--------------------|----------------------------------|
/// | `BarrierModelTime` | 5.0 µs                           |
/// | `CommStartupTime`  | 10.0 µs                          |
/// | `ByteTransferTime` | 0.118 µs (8.5 MB/s)              |
/// | `MipsRatio`        | 0.41 (Sun 4 1.1360 / CM-5 2.7645)|
///
/// The CM-5 data network is a 4-ary fat tree; its active-message layer
/// supports interrupt-driven request servicing; its control network
/// provides a dedicated hardware barrier, modelled as
/// [`BarrierAlgorithm::Hardware`] with Table 3's `BarrierModelTime`
/// (5 µs) as the latency.
pub fn cm5() -> SimParams {
    let mut p = SimParams::default();
    p.mips_ratio = mips_ratio(SUN4_MFLOPS, CM5_SCALAR_MFLOPS);
    p.policy = ServicePolicy::Interrupt;
    p.size_mode = SizeMode::Actual;
    p.comm = CommParams {
        startup: DurationNs::from_us(10.0),
        byte_transfer: DurationNs::from_us(0.118),
        construct: DurationNs::from_us(1.0),
        service: DurationNs::from_us(2.0),
        receive: DurationNs::from_us(1.0),
        request_bytes: 16,
        reply_header_bytes: 8,
    };
    p.network.topology = Topology::FatTree { arity: 4 };
    p.network.hop = DurationNs::from_us(0.2);
    p.barrier = BarrierParams {
        model: DurationNs::from_us(5.0),
        entry: DurationNs::from_us(1.0),
        exit: DurationNs::from_us(1.0),
        check: DurationNs::from_us(0.5),
        exit_check: DurationNs::from_us(0.5),
        // The CM-5 control network provides a dedicated hardware
        // barrier: Table 3's BarrierModelTime (5 µs) is its latency.
        by_msgs: false,
        msg_size: 16,
        algorithm: BarrierAlgorithm::Hardware,
        hardware_latency: DurationNs::from_us(5.0),
    };
    p
}

/// Measured scalar MFLOPS of the experiment host (Sun 4) in the paper.
pub const SUN4_MFLOPS: f64 = 1.1360;
/// Measured scalar MFLOPS of the CM-5 node in the paper.
pub const CM5_SCALAR_MFLOPS: f64 = 2.7645;

/// `MipsRatio` from host and target processor ratings: the measured
/// compute times are multiplied by `host/target` (faster target ⇒ ratio
/// < 1 ⇒ compute shrinks).
pub fn mips_ratio(host_mflops: f64, target_mflops: f64) -> f64 {
    assert!(host_mflops > 0.0 && target_mflops > 0.0);
    host_mflops / target_mflops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm5_matches_table_3() {
        let p = cm5();
        assert_eq!(p.barrier.model, DurationNs::from_us(5.0));
        assert_eq!(p.comm.startup, DurationNs::from_us(10.0));
        assert_eq!(p.comm.byte_transfer, DurationNs::from_us(0.118));
        assert!((p.mips_ratio - 0.41).abs() < 0.002);
        assert_eq!(p.network.topology, Topology::FatTree { arity: 4 });
        assert!(p.validate().is_ok());
    }

    #[test]
    fn paper_mips_ratio_reproduced() {
        assert!((mips_ratio(SUN4_MFLOPS, CM5_SCALAR_MFLOPS) - 0.41).abs() < 0.002);
    }

    #[test]
    fn presets_validate() {
        for p in [default_distributed(), shared_memory(), ideal(), cm5()] {
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn default_distributed_is_20_mbps() {
        let p = default_distributed();
        assert_eq!(p.comm.byte_transfer, DurationNs::from_us(0.05));
        assert_eq!(p.comm.startup, DurationNs::from_us(50.0));
    }

    #[test]
    fn ideal_is_free() {
        let p = ideal();
        assert!(p.comm.startup.is_zero());
        assert!(p.barrier.entry.is_zero());
        assert!(!p.network.contention.enabled);
    }

    #[test]
    fn shared_memory_is_faster_than_distributed() {
        let s = shared_memory();
        let d = default_distributed();
        assert!(s.comm.byte_transfer < d.comm.byte_transfer);
        assert!(s.comm.startup < d.comm.startup);
    }
}
