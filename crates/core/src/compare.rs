//! Comparing two predictions — the heart of the "what if" workflow: run
//! the extrapolation twice with different parameters and see exactly
//! where the time moved.

use crate::metrics::Prediction;
use extrap_time::DurationNs;
use std::fmt::Write as _;

/// A signed nanosecond delta (`b − a`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaNs(pub i128);

impl DeltaNs {
    fn between(a: DurationNs, b: DurationNs) -> DeltaNs {
        DeltaNs(b.as_ns() as i128 - a.as_ns() as i128)
    }

    /// Delta in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

/// Where the time moved between two predictions of the same program.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictionDiff {
    /// Execution-time change (`b − a`).
    pub exec_time: DeltaNs,
    /// Change in total compute across threads.
    pub compute: DeltaNs,
    /// Change in total send overhead.
    pub send_overhead: DeltaNs,
    /// Change in total service time.
    pub service: DeltaNs,
    /// Change in total remote wait.
    pub remote_wait: DeltaNs,
    /// Change in total barrier wait.
    pub barrier_wait: DeltaNs,
    /// Change in total scheduler wait.
    pub sched_wait: DeltaNs,
    /// Message count change.
    pub messages: i128,
    /// Network byte change.
    pub bytes: i128,
}

/// Computes `b − a` for two predictions of the same traced program.
///
/// # Panics
/// Panics if the predictions have different thread counts (they would
/// not be comparable).
pub fn diff(a: &Prediction, b: &Prediction) -> PredictionDiff {
    assert_eq!(
        a.n_threads, b.n_threads,
        "predictions of different programs are not comparable"
    );
    let total = |p: &Prediction, f: fn(&crate::metrics::ProcBreakdown) -> DurationNs| {
        p.per_thread.iter().map(f).sum::<DurationNs>()
    };
    PredictionDiff {
        exec_time: DeltaNs(b.exec_time().as_ns() as i128 - a.exec_time().as_ns() as i128),
        compute: DeltaNs::between(total(a, |t| t.compute), total(b, |t| t.compute)),
        send_overhead: DeltaNs::between(
            total(a, |t| t.send_overhead),
            total(b, |t| t.send_overhead),
        ),
        service: DeltaNs::between(total(a, |t| t.service), total(b, |t| t.service)),
        remote_wait: DeltaNs::between(total(a, |t| t.remote_wait), total(b, |t| t.remote_wait)),
        barrier_wait: DeltaNs::between(total(a, |t| t.barrier_wait), total(b, |t| t.barrier_wait)),
        sched_wait: DeltaNs::between(total(a, |t| t.sched_wait), total(b, |t| t.sched_wait)),
        messages: b.network.messages as i128 - a.network.messages as i128,
        bytes: b.network.bytes as i128 - a.network.bytes as i128,
    }
}

impl PredictionDiff {
    /// Renders the diff as a small report (positive = B spends more).
    pub fn render(&self, label_a: &str, label_b: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "prediction diff: {label_b} - {label_a}");
        let rows = [
            ("exec time", self.exec_time),
            ("compute", self.compute),
            ("send overhead", self.send_overhead),
            ("service", self.service),
            ("remote wait", self.remote_wait),
            ("barrier wait", self.barrier_wait),
            ("sched wait", self.sched_wait),
        ];
        for (name, d) in rows {
            let _ = writeln!(out, "  {name:14} {:>+12.3} ms", d.as_ms());
        }
        let _ = writeln!(out, "  {:14} {:>+12}", "messages", self.messages);
        let _ = writeln!(out, "  {:14} {:>+12}", "bytes", self.bytes);
        out
    }

    /// The single largest contributor (by absolute wait-time change)
    /// among the non-compute categories — a crude bottleneck pointer.
    pub fn dominant_overhead_shift(&self) -> (&'static str, DeltaNs) {
        let candidates = [
            ("send overhead", self.send_overhead),
            ("service", self.service),
            ("remote wait", self.remote_wait),
            ("barrier wait", self.barrier_wait),
            ("sched wait", self.sched_wait),
        ];
        candidates
            .into_iter()
            .max_by_key(|(_, d)| d.0.abs())
            .expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extrapolate, machine};
    use extrap_time::{DurationNs, ElementId, ThreadId};
    use extrap_trace::{PhaseAccess, PhaseProgram, PhaseWork};

    fn traced() -> extrap_trace::TraceSet {
        let mut p = PhaseProgram::new(4);
        for _ in 0..3 {
            let work = (0..4)
                .map(|t| PhaseWork {
                    compute: DurationNs::from_us(100.0),
                    accesses: vec![PhaseAccess {
                        after: DurationNs::from_us(50.0),
                        owner: ThreadId::from_index((t + 1) % 4),
                        element: ElementId::from_index(t),
                        declared_bytes: 8_192,
                        actual_bytes: 8_192,
                        write: false,
                    }],
                })
                .collect();
            p.push_phase(work);
        }
        extrap_trace::translate(&p.record(), Default::default()).unwrap()
    }

    #[test]
    fn identical_predictions_diff_to_zero() {
        let ts = traced();
        let a = extrapolate(&ts, &machine::cm5()).unwrap();
        let b = extrapolate(&ts, &machine::cm5()).unwrap();
        let d = diff(&a, &b);
        assert_eq!(d.exec_time, DeltaNs(0));
        assert_eq!(d.messages, 0);
    }

    #[test]
    fn slower_network_shows_up_as_remote_wait() {
        let ts = traced();
        let fast = extrapolate(&ts, &machine::cm5()).unwrap();
        let mut slow_params = machine::cm5();
        slow_params.comm = slow_params.comm.with_bandwidth_mbps(1.0);
        let slow = extrapolate(&ts, &slow_params).unwrap();
        let d = diff(&fast, &slow);
        assert!(d.exec_time.0 > 0, "slower network, longer run");
        let (name, delta) = d.dominant_overhead_shift();
        assert_eq!(name, "remote wait");
        assert!(delta.0 > 0);
    }

    #[test]
    fn render_mentions_labels_and_signs() {
        let ts = traced();
        let a = extrapolate(&ts, &machine::cm5()).unwrap();
        let mut p2 = machine::cm5();
        p2.mips_ratio = 2.0;
        let b = extrapolate(&ts, &p2).unwrap();
        let text = diff(&a, &b).render("cm5", "cm5-slow-cpu");
        assert!(text.contains("cm5-slow-cpu - cm5"));
        assert!(text.contains('+'), "{text}");
    }

    #[test]
    #[should_panic(expected = "not comparable")]
    fn different_programs_are_rejected() {
        let ts = traced();
        let mut p2 = PhaseProgram::new(2);
        p2.push_uniform_phase(DurationNs(100));
        let ts2 = extrap_trace::translate(&p2.record(), Default::default()).unwrap();
        let a = extrapolate(&ts, &machine::cm5()).unwrap();
        let b = extrapolate(&ts2, &machine::cm5()).unwrap();
        let _ = diff(&a, &b);
    }
}
