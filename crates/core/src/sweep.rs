//! The parallel sweep engine.
//!
//! The paper's economics are that **one** 1-processor trace is cheap to
//! re-simulate under *many* `(machine × policy × P)` parameter sets, so
//! sweep-style pipelines dominate real use: every figure of §4 is a grid
//! of extrapolations over the same handful of traces.  This module turns
//! such grids into a declarative job list executed across a fixed worker
//! pool:
//!
//! * [`SweepGrid`] — a cartesian builder producing `(workload, n_procs,
//!   SimParams)` jobs in a deterministic order;
//! * [`SharedTraceCache`] — a concurrent, share-by-`&self` memo table
//!   that translates **and compiles** each `(workload, n)` trace exactly
//!   once (single-flight: two workers never build the same
//!   [`CachedTrace`] twice), so a P×params grid compiles P programs, not
//!   P×|params|;
//! * [`sweep`] / [`parallel_map`] / [`parallel_map_with`] — scoped worker
//!   threads over `std::sync::mpsc`, with results collected **by job
//!   index**, never by completion order, so the output is bit-identical
//!   to the serial loop (`workers = 1` *is* the serial loop).  The
//!   `_with` variant gives each worker a private scratch value; the sweep
//!   engine uses it to recycle one [`SimScratch`] of simulation buffers
//!   per worker across all of its jobs.
//!
//! The build container has no crates.io access, so the pool is plain
//! `std::thread::scope` + `std::sync::mpsc` and the cache synchronizes
//! through `pcpp_rt::sync` (std underneath) rather than the
//! crossbeam/parking_lot equivalents.  Going through `pcpp_rt::sync`
//! also puts every lock, condvar, and cancellation flag under the
//! `extrap-check` model checker's control in checked builds; the
//! interfaces are shaped so other backends could be swapped in without
//! touching callers.
//!
//! ```
//! use extrap_core::sweep::{sweep, SharedTraceCache, SweepGrid};
//! use extrap_core::machine;
//! use extrap_trace::{translate, PhaseProgram};
//! use extrap_time::DurationNs;
//!
//! let jobs = SweepGrid::new()
//!     .workloads(["uniform"])
//!     .procs([1, 2, 4])
//!     .param_sets([machine::cm5(), machine::ideal()])
//!     .jobs();
//! let cache = SharedTraceCache::new();
//! let results = sweep(&jobs, 4, &cache, |&(_, n)| {
//!     let mut p = PhaseProgram::new(n);
//!     p.push_uniform_phase(DurationNs::from_us(100.0));
//!     translate(&p.record(), Default::default())
//! });
//! assert_eq!(results.len(), 6);
//! assert_eq!(cache.translations(), 3); // one per distinct (workload, n)
//! ```

use crate::engine::{self, ExtrapError, SimScratch};
use crate::metrics::Prediction;
use crate::params::{SimParams, SimStrategy};
use crate::processor::CompiledProgram;
use crate::repr::ReprPlan;
use extrap_trace::{TraceError, TraceSet};
use pcpp_rt::sync::{AtomicFlag, Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

// ---------------------------------------------------------------------
// Concurrent trace cache
// ---------------------------------------------------------------------

/// A compiled program, optionally together with the translated trace
/// set it came from.
///
/// Compilation is parameter-independent (see [`CompiledProgram`]), so
/// the cache builds the entry once per key and every parameter set of
/// the grid replays the same `Arc<CachedTrace>`.  Entries built by the
/// out-of-core pipeline ([`SharedTraceCache::compile_streaming`]) carry
/// only the program — the [`TraceSet`] was never materialized — so
/// [`traces`](CachedTrace::traces) is an `Option`; the simulation paths
/// (exact and representative) read only the program.
#[derive(Debug)]
pub struct CachedTrace {
    traces: Option<TraceSet>,
    program: CompiledProgram,
    /// Representative-region plans, memoized per strategy knob pair
    /// `(max_clusters, tolerance.to_bits())`.  A plan depends only on
    /// the compiled program and those knobs, so the whole sweep — every
    /// parameter set, every worker — shares one clustering per trace,
    /// which also makes `repr` output trivially byte-stable across
    /// worker counts.  `None` records "clustering declined".
    repr_plans: ReprPlanMemo,
}

/// Memoized representative-region plans keyed by strategy knobs
/// (`tolerance` stored as its bit pattern for hashability).
type ReprPlanMemo = RwLock<HashMap<(u32, u64), Option<Arc<ReprPlan>>>>;

impl CachedTrace {
    /// Translates nothing — wraps an already-translated trace set,
    /// compiling its program.
    pub fn new(traces: TraceSet) -> Result<CachedTrace, TraceError> {
        let program = CompiledProgram::compile(&traces)?;
        Ok(CachedTrace::from_parts(traces, program))
    }

    /// Wraps a trace set with its already-compiled program.  The caller
    /// asserts the two halves correspond (`program` is what
    /// [`CompiledProgram::compile`] yields for `traces`).
    pub fn from_parts(traces: TraceSet, program: CompiledProgram) -> CachedTrace {
        CachedTrace {
            traces: Some(traces),
            program,
            repr_plans: RwLock::new(HashMap::new()),
        }
    }

    /// Wraps a program compiled out-of-core: no trace set was ever
    /// materialized, so [`traces`](CachedTrace::traces) is `None` and
    /// trace-level consumers (per-thread stats, phase analysis) are not
    /// served by this entry.
    pub fn from_program(program: CompiledProgram) -> CachedTrace {
        CachedTrace {
            traces: None,
            program,
            repr_plans: RwLock::new(HashMap::new()),
        }
    }

    /// The representative-region plan for the given strategy knobs,
    /// computed on first request and shared thereafter.  `None` means
    /// clustering found no exploitable repetition — simulate exactly.
    pub fn repr_plan(&self, max_clusters: u32, tolerance: f64) -> Option<Arc<ReprPlan>> {
        let key = (max_clusters, tolerance.to_bits());
        if let Some(plan) = self.repr_plans.read().get(&key) {
            return plan.clone();
        }
        // Racing computations produce identical plans (the clustering
        // is deterministic); first writer wins, duplicates are dropped.
        let plan = ReprPlan::from_program(&self.program, max_clusters, tolerance).map(Arc::new);
        self.repr_plans.write().entry(key).or_insert(plan).clone()
    }

    /// The translated per-thread traces, if this entry holds them
    /// (`None` for entries compiled out-of-core).
    pub fn traces(&self) -> Option<&TraceSet> {
        self.traces.as_ref()
    }

    /// The compiled per-thread op scripts.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// Number of threads in the program.
    pub fn n_threads(&self) -> usize {
        self.program.n_threads()
    }

    /// Approximate heap footprint (traces, when held, + compiled
    /// scripts) in bytes — what a cache memory budget is charged for
    /// holding this entry.
    pub fn resident_bytes(&self) -> usize {
        self.traces.as_ref().map_or(0, |t| t.resident_bytes()) + self.program.resident_bytes()
    }
}

/// A memoized translation outcome.  Translation errors are memoized as
/// their rendered message (the error types own `io::Error`s and cannot
/// be cloned); every later hit resurfaces the same failure.
///
/// The slot also carries the entry's last-touch stamp (a value drawn
/// from the cache's logical clock on every hit), which is what the LRU
/// eviction sweep orders entries by.
///
/// Single-flight is hand-rolled over a [`Mutex`] + [`Condvar`] state
/// machine rather than `std::sync::OnceLock` so the model checker can
/// suspend a builder while a loser is parked: `OnceLock::get_or_init`
/// blocks losers *inside* std, invisible to (and unschedulable by) the
/// checked backend.
#[derive(Debug)]
struct CacheSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
    last_used: AtomicU64,
}

/// Lifecycle of a slot's value: the first requester flips `Empty` →
/// `Building` and runs the translation; racers wait on the condvar
/// until `Ready` lands.  A builder that panics marks the slot
/// `Ready(Err(..))` on the way out so parked losers never hang.
#[derive(Debug)]
enum SlotState {
    Empty,
    Building,
    Ready(Result<Arc<CachedTrace>, String>),
}

impl Default for CacheSlot {
    fn default() -> CacheSlot {
        CacheSlot {
            state: Mutex::new(SlotState::Empty),
            ready: Condvar::new(),
            last_used: AtomicU64::new(0),
        }
    }
}

impl CacheSlot {
    /// The completed value, or `None` while empty or still translating.
    fn get(&self) -> Option<Result<Arc<CachedTrace>, String>> {
        match &*self.state.lock() {
            SlotState::Ready(v) => Some(v.clone()),
            _ => None,
        }
    }

    /// Single-flight initialization: the first caller runs `build`, all
    /// concurrent callers block until its value lands, every later
    /// caller gets the memoized value.
    fn get_or_init(
        &self,
        build: impl FnOnce() -> Result<Arc<CachedTrace>, String>,
    ) -> Result<Arc<CachedTrace>, String> {
        {
            let mut st = self.state.lock();
            loop {
                match &*st {
                    SlotState::Ready(v) => return v.clone(),
                    SlotState::Building => self.ready.wait(&mut st),
                    SlotState::Empty => {
                        *st = SlotState::Building;
                        break;
                    }
                }
            }
        }
        // If `build` unwinds, poison the slot instead of leaving losers
        // parked on a Building state nobody will ever finish.
        struct Finish<'a> {
            slot: &'a CacheSlot,
            value: Option<Result<Arc<CachedTrace>, String>>,
        }
        impl Drop for Finish<'_> {
            fn drop(&mut self) {
                let value = self
                    .value
                    .take()
                    .unwrap_or_else(|| Err("trace translation panicked".to_string()));
                *self.slot.state.lock() = SlotState::Ready(value);
                self.slot.ready.notify_all();
            }
        }
        let mut finish = Finish {
            slot: self,
            value: None,
        };
        let value = build();
        finish.value = Some(value.clone());
        value
    }
}

type SlotRef = Arc<CacheSlot>;

/// An opt-in validate-on-translate hook: runs over every freshly
/// translated [`TraceSet`] before it is compiled and cached.  Returning
/// `Err(detail)` fails the job (and every later job sharing the key)
/// with [`TraceError::Validation`] instead of feeding a bad trace to the
/// simulator.  `extrap-lint` provides the canonical implementation.
pub type TraceValidator = Arc<dyn Fn(&TraceSet) -> Result<(), String> + Send + Sync>;

/// A concurrent translate-once trace cache, shared by `&self`.
///
/// Workers race for the same `(workload, n)` all the time — a Fig-4 grid
/// asks for every benchmark's trace at six processor counts under one
/// parameter set per series.  Each distinct key is translated (and its
/// program compiled) exactly once: the per-key [`CacheSlot`] makes
/// initialization single-flight (losers of the race block until the
/// winner's value lands), and the outer [`RwLock`] is held only to look
/// up or insert the slot, never during translation.
pub struct SharedTraceCache<K = (&'static str, usize)> {
    entries: RwLock<HashMap<K, SlotRef>>,
    translations: AtomicUsize,
    evictions: AtomicUsize,
    clock: AtomicU64,
    validator: Option<TraceValidator>,
}

impl<K: Eq + Hash + Clone> SharedTraceCache<K> {
    /// An empty cache.
    pub fn new() -> SharedTraceCache<K> {
        SharedTraceCache {
            entries: RwLock::new(HashMap::new()),
            translations: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            validator: None,
        }
    }

    /// Installs a validate-on-translate hook (see [`TraceValidator`]).
    /// Every trace translated through this cache must pass the check
    /// before it is compiled; sweeps over a failing key fail fast with
    /// the hook's diagnostic instead of producing garbage metrics.
    pub fn with_validator(
        mut self,
        validator: impl Fn(&TraceSet) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        self.validator = Some(Arc::new(validator));
        self
    }

    /// The translated-and-compiled trace for `key`, building it with
    /// `translate` on the first request (all concurrent requesters share
    /// that one run).
    pub fn get_or_translate(
        &self,
        key: K,
        translate: impl FnOnce() -> Result<TraceSet, TraceError>,
    ) -> Result<Arc<CachedTrace>, ExtrapError> {
        let slot = self.slot(key);
        slot.last_used.store(
            self.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        let outcome = slot.get_or_init(|| {
            self.translations.fetch_add(1, Ordering::Relaxed);
            translate()
                .and_then(|ts| match &self.validator {
                    Some(check) => match check(&ts) {
                        Ok(()) => Ok(ts),
                        Err(detail) => Err(TraceError::Validation { detail }),
                    },
                    None => Ok(ts),
                })
                .and_then(CachedTrace::new)
                .map(Arc::new)
                .map_err(|e| e.to_string())
        });
        match outcome {
            Ok(ts) => Ok(ts),
            Err(detail) => Err(ExtrapError::Trace(TraceError::Format { detail })),
        }
    }

    /// The out-of-core sibling of
    /// [`get_or_translate`](Self::get_or_translate): the first requester
    /// runs `build` — conventionally a streaming pipeline producing a
    /// [`CompiledProgram`] without materializing the trace (see
    /// `crate::streaming`) — and every later requester shares the entry.
    ///
    /// Keys are shared with the whole-trace path: whichever of the two
    /// builds a key first wins, and the other path reuses its entry, so
    /// sweep/serve/repr consumers inherit streaming ingestion with no
    /// key-space changes.  The cache's [`TraceValidator`] hook does
    /// **not** run here (it takes a `&TraceSet`, which this path never
    /// holds) — streaming callers lint at ingestion with the streaming
    /// lint machines instead.
    pub fn compile_streaming(
        &self,
        key: K,
        build: impl FnOnce() -> Result<CompiledProgram, TraceError>,
    ) -> Result<Arc<CachedTrace>, ExtrapError> {
        let slot = self.slot(key);
        slot.last_used.store(
            self.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        let outcome = slot.get_or_init(|| {
            self.translations.fetch_add(1, Ordering::Relaxed);
            build()
                .map(CachedTrace::from_program)
                .map(Arc::new)
                .map_err(|e| e.to_string())
        });
        match outcome {
            Ok(ct) => Ok(ct),
            Err(detail) => Err(ExtrapError::Trace(TraceError::Format { detail })),
        }
    }

    /// Looks up or inserts the per-key slot; never blocks on translation.
    fn slot(&self, key: K) -> SlotRef {
        if let Some(slot) = self.entries.read().get(&key) {
            return Arc::clone(slot);
        }
        let mut map = self.entries.write();
        Arc::clone(map.entry(key).or_default())
    }

    /// How many translations actually ran (cache misses).
    pub fn translations(&self) -> usize {
        self.translations.load(Ordering::Relaxed)
    }

    /// How many entries have been evicted ([`evict`](Self::evict) and
    /// [`evict_to_budget`](Self::evict_to_budget) combined).
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total resident bytes of every *completed* entry (in-flight
    /// translations are not yet accounted; memoized errors count as
    /// their message).  This is the probe a memory budget compares
    /// against.
    pub fn resident_bytes(&self) -> usize {
        self.entries
            .read()
            .values()
            .map(|slot| slot_bytes(slot))
            .sum()
    }

    /// Drops one entry, returning the bytes it was holding (`None` if
    /// the key is absent or its translation is still in flight — an
    /// in-flight entry cannot be evicted out from under its builders).
    /// Workers already holding the entry's `Arc` keep it alive until
    /// they finish; eviction only forgets the cache's own reference, so
    /// the next request for the key re-translates.
    pub fn evict(&self, key: &K) -> Option<usize> {
        let mut map = self.entries.write();
        let slot = map.get(key)?;
        let _completed = slot.get()?;
        let bytes = slot_bytes(slot);
        map.remove(key);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        Some(bytes)
    }

    /// Evicts least-recently-used completed entries until the resident
    /// footprint is at or under `budget_bytes`, returning `(entries
    /// evicted, bytes freed)`.  In-flight entries are skipped, so a
    /// cache whose live translations alone exceed the budget simply
    /// frees what it can.
    pub fn evict_to_budget(&self, budget_bytes: usize) -> (usize, usize) {
        let mut map = self.entries.write();
        let mut resident: usize = map.values().map(|s| slot_bytes(s)).sum();
        let (mut evicted, mut freed) = (0usize, 0usize);
        while resident > budget_bytes {
            let victim = map
                .iter()
                .filter(|(_, slot)| slot.get().is_some())
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            let Some(key) = victim else { break };
            let bytes = map.remove(&key).map(|s| slot_bytes(&s)).unwrap_or(0);
            resident -= bytes;
            freed += bytes;
            evicted += 1;
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        (evicted, freed)
    }

    /// How many distinct keys have been requested.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash + Clone> Default for SharedTraceCache<K> {
    fn default() -> Self {
        SharedTraceCache::new()
    }
}

/// Resident footprint of one slot: the cached trace's bytes for
/// successes, the rendered message for memoized errors, zero while the
/// translation is still in flight.
fn slot_bytes(slot: &CacheSlot) -> usize {
    match &*slot.state.lock() {
        SlotState::Ready(Ok(ct)) => std::mem::size_of::<CacheSlot>() + ct.resident_bytes(),
        SlotState::Ready(Err(msg)) => std::mem::size_of::<CacheSlot>() + msg.len(),
        _ => 0,
    }
}

impl<K: Eq + Hash + Clone> fmt::Debug for SharedTraceCache<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedTraceCache")
            .field("keys", &self.len())
            .field("translations", &self.translations())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Deterministic parallel map
// ---------------------------------------------------------------------

/// Applies `f` to every item across `workers` scoped threads, returning
/// results **in item order** regardless of completion order.
///
/// Work is handed out through a shared atomic cursor in contiguous
/// range claims of [`claim_chunk`] items — one `fetch_add` buys a whole
/// run of jobs, so cursor contention stays flat as worker counts and
/// grid sizes grow, while the chunk cap keeps stragglers from
/// serializing a long tail.  Results travel back over an `mpsc` channel
/// tagged with their index, so ordering is unaffected by chunking.
/// `workers <= 1` degenerates to the plain serial loop on the calling
/// thread, which is the determinism baseline: parallel output is
/// defined to be whatever the serial loop produces.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(items, workers, || (), |_scratch, i, t| f(i, t))
}

/// [`parallel_map`] with a per-worker scratch value.
///
/// Each worker thread builds one `S` via `scratch` when it starts and
/// threads it through every job it picks up, so per-job state (buffers,
/// arenas, simulator scratch) is allocated once per *worker* rather than
/// once per *item*.  `scratch` must not influence results — the output
/// contract is still "whatever the serial loop produces", and the serial
/// path uses a single scratch for all items.  (`extrap lint` fans out
/// over files this way, recycling one trace-stream arena per worker.)
pub fn parallel_map_with<T, R, S, F>(
    items: &[T],
    workers: usize,
    scratch: impl Fn() -> S + Sync,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 {
        let mut s = scratch();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut s, i, t))
            .collect();
    }
    let chunk = claim_chunk(items.len(), workers);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            let scratch = &scratch;
            s.spawn(move || {
                let mut sc = scratch();
                'claims: loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    for (i, item) in items[start..end].iter().enumerate() {
                        let i = start + i;
                        // The receiver outlives the workers unless a
                        // sibling panicked; stop quietly in that case and
                        // let the scope propagate the panic.
                        if tx.send((i, f(&mut sc, i, item))).is_err() {
                            break 'claims;
                        }
                    }
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            out[i] = Some(r);
        }
    });
    out.into_iter()
        .map(|r| r.expect("every index was dispatched exactly once"))
        .collect()
}

/// The contiguous range size one cursor claim hands a worker: about
/// eight claims per worker over the whole grid, clamped to `[1, 64]`.
///
/// Eight claims apiece keeps the tail balanced — a worker stuck on a
/// slow chunk strands at most ~1/8 of its fair share — while cutting
/// `fetch_add` traffic by the chunk factor.  Small grids (like the 42-job
/// Fig-4 grid on a many-core host) get chunk 1, i.e. exactly the old
/// job-at-a-time behaviour.
pub fn claim_chunk(items: usize, workers: usize) -> usize {
    (items / (workers.max(1) * 8)).clamp(1, 64)
}

// ---------------------------------------------------------------------
// Jobs and grids
// ---------------------------------------------------------------------

/// One extrapolation job: which trace ([`SweepJob::key`], conventionally
/// `(workload, n_procs)`) under which parameter set.
#[derive(Clone, Debug)]
pub struct SweepJob<K> {
    /// Identity of the translated trace this job replays.
    pub key: K,
    /// Target-machine parameters for this job.
    pub params: SimParams,
}

/// A sweep failure, carrying the failing job's key for context.
#[derive(Debug)]
pub struct SweepError<K> {
    /// Key of the job that failed.
    pub key: K,
    /// The underlying pipeline error.
    pub error: ExtrapError,
}

impl<K: fmt::Debug> fmt::Display for SweepError<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep job {:?}: {}", self.key, self.error)
    }
}

impl<K: fmt::Debug> std::error::Error for SweepError<K> {}

/// Cartesian grid builder: `workloads × param_sets × procs`, flattened
/// into [`SweepJob`]s in exactly that (deterministic) nesting order —
/// jobs `[i * procs.len() .. (i + 1) * procs.len()]` are series `i`'s
/// points, matching how the experiment harness slices results back into
/// per-series rows.
#[derive(Clone, Debug)]
pub struct SweepGrid<W> {
    workloads: Vec<W>,
    procs: Vec<usize>,
    params: Vec<SimParams>,
}

impl<W: Clone> SweepGrid<W> {
    /// An empty grid.
    pub fn new() -> SweepGrid<W> {
        SweepGrid {
            workloads: Vec::new(),
            procs: Vec::new(),
            params: Vec::new(),
        }
    }

    /// Sets the workloads axis.
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = W>) -> Self {
        self.workloads = workloads.into_iter().collect();
        self
    }

    /// Sets the processor-count axis.
    pub fn procs(mut self, procs: impl IntoIterator<Item = usize>) -> Self {
        self.procs = procs.into_iter().collect();
        self
    }

    /// Sets the parameter axis to a single set.
    pub fn params(self, params: SimParams) -> Self {
        self.param_sets([params])
    }

    /// Sets the parameter axis.
    pub fn param_sets(mut self, params: impl IntoIterator<Item = SimParams>) -> Self {
        self.params = params.into_iter().collect();
        self
    }

    /// Flattens the grid into jobs keyed by `(workload, n_procs)`.
    pub fn jobs(self) -> Vec<SweepJob<(W, usize)>> {
        let mut out =
            Vec::with_capacity(self.workloads.len() * self.params.len() * self.procs.len());
        for w in &self.workloads {
            for p in &self.params {
                for &n in &self.procs {
                    out.push(SweepJob {
                        key: (w.clone(), n),
                        params: p.clone(),
                    });
                }
            }
        }
        out
    }
}

impl<W: Clone> Default for SweepGrid<W> {
    fn default() -> Self {
        SweepGrid::new()
    }
}

// ---------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------

/// Runs every job across `workers` threads, translating each distinct
/// key at most once through `cache` via `source`.
///
/// Results come back **indexed by job position**: `results[i]` is job
/// `i`'s prediction no matter which worker finished first, so output is
/// bit-identical to the `workers = 1` serial loop (extrapolation itself
/// is deterministic; the only nondeterminism a thread pool could add is
/// ordering, and that is removed here).
pub fn sweep<K, F>(
    jobs: &[SweepJob<K>],
    workers: usize,
    cache: &SharedTraceCache<K>,
    source: F,
) -> Vec<Result<Prediction, SweepError<K>>>
where
    K: Eq + Hash + Clone + Send + Sync,
    F: Fn(&K) -> Result<TraceSet, TraceError> + Sync,
{
    sweep_cancellable(jobs, workers, cache, source, &CancelToken::new())
}

/// A shared cooperative cancellation flag.
///
/// Workers check it between jobs, never mid-simulation, so cancelling a
/// sweep lets in-flight predictions finish (they stay deterministic)
/// while every not-yet-started job comes back as
/// [`ExtrapError::Cancelled`].  Cloning shares the flag.  The flag is a
/// checker-visible [`AtomicFlag`], so `extrap-check` explores every
/// placement of a cancel relative to the sweep's job claims.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicFlag>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raises the flag; every clone observes it.
    pub fn cancel(&self) {
        self.0.store(true);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load()
    }
}

/// [`sweep`] with cooperative cancellation: jobs not yet started when
/// `cancel` fires fail with [`ExtrapError::Cancelled`] (carrying their
/// key); jobs already simulating run to completion, so every returned
/// `Ok` prediction is exactly what the uncancelled sweep would have
/// produced.  The `extrap-serve` daemon drains in-flight work through
/// this on forced shutdown.
pub fn sweep_cancellable<K, F>(
    jobs: &[SweepJob<K>],
    workers: usize,
    cache: &SharedTraceCache<K>,
    source: F,
    cancel: &CancelToken,
) -> Vec<Result<Prediction, SweepError<K>>>
where
    K: Eq + Hash + Clone + Send + Sync,
    F: Fn(&K) -> Result<TraceSet, TraceError> + Sync,
{
    parallel_map_with(jobs, workers, SimScratch::default, |scratch, _, job| {
        if cancel.is_cancelled() {
            return Err(SweepError {
                key: job.key.clone(),
                error: ExtrapError::Cancelled,
            });
        }
        let cached = cache
            .get_or_translate(job.key.clone(), || source(&job.key))
            .map_err(|error| SweepError {
                key: job.key.clone(),
                error,
            })?;
        run_cached_job(&cached, job, scratch).map_err(|error| SweepError {
            key: job.key.clone(),
            error,
        })
    })
}

/// Runs one job against a cache entry.  Strategy dispatch mirrors
/// `run_compiled_scratch`, but through the cache's memoized plan:
/// clustering runs once per trace and is shared by every parameter set
/// and worker touching it.
fn run_cached_job<K>(
    cached: &CachedTrace,
    job: &SweepJob<K>,
    scratch: &mut SimScratch,
) -> Result<Prediction, ExtrapError> {
    match job.params.strategy {
        SimStrategy::Representative {
            max_clusters,
            tolerance,
        } => match cached.repr_plan(max_clusters, tolerance) {
            Some(plan) => job
                .params
                .validate()
                .map_err(ExtrapError::Params)
                .and_then(|()| plan.run(&job.params, scratch)),
            // The memoized "no repetition" verdict: go straight to
            // the exact path instead of re-running clustering.
            None => engine::exact_compiled_scratch(cached.program(), &job.params, scratch),
        },
        SimStrategy::Exact => engine::run_compiled_scratch(cached.program(), &job.params, scratch),
    }
}

/// [`sweep`] with out-of-core trace ingestion: `compile` builds each
/// distinct key's [`CompiledProgram`] through a streaming pipeline (see
/// `crate::streaming`) instead of materializing a [`TraceSet`], via
/// [`SharedTraceCache::compile_streaming`].  Everything downstream —
/// job order, strategy dispatch, memoized representative plans,
/// determinism — is shared with the whole-trace engine, so results are
/// identical for equivalent inputs.
pub fn sweep_streaming<K, F>(
    jobs: &[SweepJob<K>],
    workers: usize,
    cache: &SharedTraceCache<K>,
    compile: F,
) -> Vec<Result<Prediction, SweepError<K>>>
where
    K: Eq + Hash + Clone + Send + Sync,
    F: Fn(&K) -> Result<CompiledProgram, TraceError> + Sync,
{
    sweep_streaming_cancellable(jobs, workers, cache, compile, &CancelToken::new())
}

/// [`sweep_streaming`] with cooperative cancellation (the streaming
/// counterpart of [`sweep_cancellable`]).
pub fn sweep_streaming_cancellable<K, F>(
    jobs: &[SweepJob<K>],
    workers: usize,
    cache: &SharedTraceCache<K>,
    compile: F,
    cancel: &CancelToken,
) -> Vec<Result<Prediction, SweepError<K>>>
where
    K: Eq + Hash + Clone + Send + Sync,
    F: Fn(&K) -> Result<CompiledProgram, TraceError> + Sync,
{
    parallel_map_with(jobs, workers, SimScratch::default, |scratch, _, job| {
        if cancel.is_cancelled() {
            return Err(SweepError {
                key: job.key.clone(),
                error: ExtrapError::Cancelled,
            });
        }
        let cached = cache
            .compile_streaming(job.key.clone(), || compile(&job.key))
            .map_err(|error| SweepError {
                key: job.key.clone(),
                error,
            })?;
        run_cached_job(&cached, job, scratch).map_err(|error| SweepError {
            key: job.key.clone(),
            error,
        })
    })
}

/// The number of workers to use when the caller does not say: the
/// machine's available parallelism, capped so tiny grids do not spawn
/// idle threads.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine;
    use extrap_time::DurationNs;
    use extrap_trace::{translate, PhaseProgram};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn uniform(n: usize) -> Result<TraceSet, TraceError> {
        let mut p = PhaseProgram::new(n);
        p.push_uniform_phase(DurationNs::from_us(100.0));
        p.push_uniform_phase(DurationNs::from_us(40.0));
        translate(&p.record(), Default::default())
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<usize> = (0..257).collect();
        let doubled = parallel_map(&items, 8, |_, &x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_preserves_order_across_chunk_sizes() {
        // Large enough that range claims exceed one job (4096/(4*8) =
        // 128, clamped to 64) and don't divide the item count evenly.
        let items: Vec<usize> = (0..4097).collect();
        let got = parallel_map(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x + 1
        });
        assert_eq!(got, items.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn claim_chunk_scales_with_grid_and_workers() {
        assert_eq!(claim_chunk(42, 32), 1, "Fig-4 grid stays job-at-a-time");
        assert_eq!(claim_chunk(0, 8), 1);
        assert_eq!(claim_chunk(10_000, 8), 64, "big grids hit the cap");
        assert_eq!(claim_chunk(640, 8), 10, "~8 claims per worker");
        assert_eq!(claim_chunk(100, 0), 12, "degenerate worker count");
    }

    #[test]
    fn parallel_map_with_one_worker_is_the_serial_loop() {
        let items = [3usize, 1, 4, 1, 5];
        assert_eq!(
            parallel_map(&items, 1, |i, &x| (i, x)),
            items.iter().copied().enumerate().collect::<Vec<_>>()
        );
    }

    #[test]
    fn cache_translates_each_key_exactly_once_under_contention() {
        // 8 threads all demand the same two keys at the same instant; the
        // single-flight slot must run each translation exactly once.
        let cache: SharedTraceCache<(&'static str, usize)> = SharedTraceCache::new();
        let calls = AtomicUsize::new(0);
        let gate = Barrier::new(8);
        std::thread::scope(|s| {
            for t in 0..8usize {
                let cache = &cache;
                let calls = &calls;
                let gate = &gate;
                s.spawn(move || {
                    gate.wait();
                    for round in 0..10 {
                        let key = ("contended", (t + round) % 2 + 2);
                        let ts = cache
                            .get_or_translate(key, || {
                                calls.fetch_add(1, Ordering::Relaxed);
                                uniform(key.1)
                            })
                            .unwrap();
                        assert_eq!(ts.n_threads(), key.1);
                    }
                });
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 2, "one translation per key");
        assert_eq!(cache.translations(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_memoizes_errors() {
        let cache: SharedTraceCache<u32> = SharedTraceCache::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let err = cache.get_or_translate(7, || {
                calls.fetch_add(1, Ordering::Relaxed);
                Err(TraceError::Format {
                    detail: "synthetic".into(),
                })
            });
            assert!(err.is_err());
        }
        assert_eq!(
            calls.load(Ordering::Relaxed),
            1,
            "failures are memoized too"
        );
    }

    #[test]
    fn validator_rejects_and_memoizes() {
        let cache: SharedTraceCache<u32> = SharedTraceCache::new().with_validator(|ts| {
            if ts.n_threads() > 2 {
                Err(format!("too many threads: {}", ts.n_threads()))
            } else {
                Ok(())
            }
        });
        let calls = AtomicUsize::new(0);
        assert!(cache
            .get_or_translate(2, || {
                calls.fetch_add(1, Ordering::Relaxed);
                uniform(2)
            })
            .is_ok());
        for _ in 0..2 {
            let err = cache
                .get_or_translate(4, || {
                    calls.fetch_add(1, Ordering::Relaxed);
                    uniform(4)
                })
                .unwrap_err();
            assert!(
                err.to_string().contains("too many threads: 4"),
                "got: {err}"
            );
        }
        assert_eq!(
            calls.load(Ordering::Relaxed),
            2,
            "validator rejections are memoized like translation failures"
        );
    }

    #[test]
    fn grid_order_is_workload_params_procs() {
        let jobs = SweepGrid::new()
            .workloads(["a", "b"])
            .procs([1, 2])
            .param_sets([machine::ideal(), machine::cm5()])
            .jobs();
        let keys: Vec<(&str, usize)> = jobs.iter().map(|j| j.key).collect();
        assert_eq!(
            keys,
            [
                ("a", 1),
                ("a", 2),
                ("a", 1),
                ("a", 2),
                ("b", 1),
                ("b", 2),
                ("b", 1),
                ("b", 2),
            ]
        );
        assert_eq!(jobs[0].params.mips_ratio, machine::ideal().mips_ratio);
        assert_eq!(jobs[2].params.mips_ratio, machine::cm5().mips_ratio);
    }

    #[test]
    fn sweep_is_deterministic_across_worker_counts() {
        let jobs = SweepGrid::new()
            .workloads(["uniform"])
            .procs([1, 2, 4, 8])
            .param_sets([
                machine::ideal(),
                machine::cm5(),
                machine::default_distributed(),
            ])
            .jobs();
        let run = |workers| {
            let cache = SharedTraceCache::new();
            sweep(&jobs, workers, &cache, |&(_, n)| uniform(n))
        };
        let serial = run(1);
        for workers in [2, 4, 8] {
            let parallel = run(workers);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.exec_time(), b.exec_time());
                assert_eq!(a.predicted, b.predicted);
                assert_eq!(a.per_thread, b.per_thread);
            }
        }
    }

    #[test]
    fn sweep_shares_translations_across_param_sets() {
        let jobs = SweepGrid::new()
            .workloads(["u"])
            .procs([2, 4])
            .param_sets([machine::ideal(), machine::cm5(), machine::shared_memory()])
            .jobs();
        let cache = SharedTraceCache::new();
        let results = sweep(&jobs, 4, &cache, |&(_, n)| uniform(n));
        assert_eq!(results.len(), 6);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(cache.translations(), 2, "2 keys, 3 param sets each");
    }

    #[test]
    fn sweep_predictions_are_identical_across_schedulers() {
        // The same grid under heap, calendar, and auto backends must
        // produce byte-identical predictions — the SchedulerKind knob is
        // performance-only.
        use extrap_sim::SchedulerKind;
        let run = |kind: SchedulerKind| {
            let mut params = machine::default_distributed();
            params.scheduler = kind;
            let jobs = SweepGrid::new()
                .workloads(["uniform"])
                .procs([1, 2, 4, 8])
                .params(params)
                .jobs();
            let cache = SharedTraceCache::new();
            sweep(&jobs, 2, &cache, |&(_, n)| uniform(n))
        };
        let heap = run(SchedulerKind::Heap);
        for kind in [SchedulerKind::Calendar, SchedulerKind::Auto] {
            let other = run(kind);
            assert_eq!(heap.len(), other.len());
            for (a, b) in heap.iter().zip(&other) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.exec_time(), b.exec_time());
                assert_eq!(a.predicted, b.predicted);
                assert_eq!(a.per_thread, b.per_thread);
            }
        }
    }

    #[test]
    fn eviction_frees_lru_entries_and_retranslates_on_demand() {
        let cache: SharedTraceCache<usize> = SharedTraceCache::new();
        for n in [2usize, 4, 8] {
            cache.get_or_translate(n, || uniform(n)).unwrap();
        }
        assert_eq!(cache.len(), 3);
        let full = cache.resident_bytes();
        assert!(full > 0, "completed entries are accounted");

        // Touch 2 so 4 becomes the LRU victim.
        cache.get_or_translate(2, || uniform(2)).unwrap();
        let bytes_4 = {
            // Evicting a present key reports its footprint...
            let b = cache.evict(&4).expect("4 is resident");
            assert!(b > 0);
            b
        };
        // ...and the key re-translates on the next request.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        cache.get_or_translate(4, || uniform(4)).unwrap();
        assert_eq!(cache.translations(), 4, "4 was rebuilt after eviction");
        assert!(cache.resident_bytes() >= full - bytes_4);

        // A budget of zero clears everything; the cache stays usable.
        let (evicted, freed) = cache.evict_to_budget(0);
        assert_eq!(evicted, 3);
        assert!(freed > 0);
        assert_eq!(cache.resident_bytes(), 0);
        assert!(cache.is_empty());
        cache.get_or_translate(2, || uniform(2)).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evict_to_budget_drops_least_recently_used_first() {
        let cache: SharedTraceCache<usize> = SharedTraceCache::new();
        for n in [2usize, 4, 8] {
            cache.get_or_translate(n, || uniform(n)).unwrap();
        }
        // Refresh 2: eviction order must now be 4, then 8, then 2.
        cache.get_or_translate(2, || uniform(2)).unwrap();
        let target = cache.resident_bytes() - 1;
        let (evicted, _) = cache.evict_to_budget(target);
        assert_eq!(evicted, 1);
        assert!(cache.evict(&4).is_none(), "4 was the LRU victim");
        assert!(cache.evict(&2).is_some(), "2 was refreshed and survives");
    }

    #[test]
    fn cancelled_sweep_fails_pending_jobs_with_cancelled() {
        let jobs = SweepGrid::new()
            .workloads(["uniform"])
            .procs([1, 2, 4, 8])
            .params(machine::ideal())
            .jobs();
        let cache = SharedTraceCache::new();
        let cancel = CancelToken::new();
        cancel.cancel();
        let results = sweep_cancellable(&jobs, 2, &cache, |&(_, n)| uniform(n), &cancel);
        assert_eq!(results.len(), jobs.len());
        for r in &results {
            assert!(matches!(
                r.as_ref().unwrap_err().error,
                ExtrapError::Cancelled
            ));
        }
        assert_eq!(cache.translations(), 0, "no work after cancellation");
    }

    #[test]
    fn sweep_errors_carry_the_failing_key() {
        let jobs = vec![
            SweepJob {
                key: ("ok", 2usize),
                params: machine::ideal(),
            },
            SweepJob {
                key: ("broken", 2usize),
                params: machine::ideal(),
            },
        ];
        let cache = SharedTraceCache::new();
        let results = sweep(&jobs, 2, &cache, |&(name, n)| {
            if name == "broken" {
                Err(TraceError::Format {
                    detail: "no such workload".into(),
                })
            } else {
                uniform(n)
            }
        });
        assert!(results[0].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert_eq!(err.key, ("broken", 2));
        assert!(err.to_string().contains("broken"));
    }
}
