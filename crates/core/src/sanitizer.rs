//! The bounds-sanitizer hook: an optional invariant layer that checks
//! every simulation result against a statically derived validity
//! envelope.
//!
//! `extrap-core` cannot depend on `extrap-analyze` (the analyzer
//! depends on core's types), so the check itself is *injected*: callers
//! install a checker function — in practice
//! `extrap_analyze::install_sanitizer`, which registers
//! `verify_prediction` — and flip it on with [`set_enabled`].  When
//! installed and enabled, [`run_compiled_scratch`](crate::engine::
//! run_compiled_scratch) passes each result (exact *and* representative
//! composition) through the checker and panics on a violation: a
//! simulated time outside its physical work/span envelope means an
//! engine, clustering, or scheduler bug, and silently extrapolating
//! from it would be worse than crashing.
//!
//! The hook is process-global (sanitizing is a run-mode, not a
//! per-call concern) and costs one atomic load per simulation when
//! disabled.  Registration synchronizes through `pcpp_rt::sync`, so the
//! install/enable/check races are model-checkable (the `extrap-check`
//! `sanitizer-race` scenario drives exactly those).

use crate::metrics::Prediction;
use crate::params::SimParams;
use crate::processor::CompiledProgram;
use pcpp_rt::sync::{AtomicFlag, Mutex};

/// A bounds checker: `Ok(())` when `prediction` is consistent with the
/// static envelope of `program` under `params` (or no envelope exists).
pub type BoundsCheck = fn(&CompiledProgram, &SimParams, &Prediction) -> Result<(), String>;

static CHECKER: Mutex<Option<BoundsCheck>> = Mutex::new(None);
static ENABLED: AtomicFlag = AtomicFlag::new(false);

/// Installs (or replaces) the process-global bounds checker.  The
/// checker only runs once [`set_enabled`]`(true)` is also called.
pub fn install(check: BoundsCheck) {
    *CHECKER.lock() = Some(check);
}

/// Turns sanitizer checking on or off without touching the installed
/// checker.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled);
}

/// Whether a checker is installed *and* checking is enabled.
pub fn is_active() -> bool {
    ENABLED.load() && CHECKER.lock().is_some()
}

/// Runs the installed checker against one simulation result, panicking
/// on a violation.  A no-op when disabled or nothing is installed.
///
/// # Panics
///
/// Panics with the checker's diagnostic when the result escapes its
/// static envelope — by design: a bound violation is a simulator bug,
/// and every downstream number would inherit it.
pub fn check(program: &CompiledProgram, params: &SimParams, prediction: &Prediction) {
    if !ENABLED.load() {
        return;
    }
    let checker = *CHECKER.lock();
    if let Some(checker) = checker {
        if let Err(violation) = checker(program, params, prediction) {
            panic!("bounds sanitizer: {violation}");
        }
    }
}
