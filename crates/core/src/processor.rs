//! The processor model (§3.3.1): computation-time scaling by `MipsRatio`
//! and compilation of translated thread traces into the op scripts the
//! simulation engine executes.
//!
//! A thread's translated trace is a sequence of timestamped events; the
//! time *between* events is that thread's computation, which the target
//! processor executes scaled by `MipsRatio`.  Compilation turns the
//! event stream into an explicit op list:
//!
//! ```text
//! [Compute(d0), RemoteRead{..}, Compute(d1), Barrier(b0), Compute(d2), End]
//! ```
//!
//! Barrier-exit events are *resume points*: the enter→exit gap in the
//! idealized trace is wait, not work, so it never becomes a `Compute` op.

use crate::params::SimParams;
use extrap_time::{BarrierId, DurationNs, ElementId, ThreadId, TimeNs};
use extrap_trace::{EventKind, ThreadTrace, TraceError, TraceRecord, TraceSet, TranslateSink};

/// One step of a thread's script.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Compute for the given (already `MipsRatio`-scaled) duration.
    Compute(DurationNs),
    /// Issue a blocking remote element read owned by `owner`.  The engine
    /// selects the modelled transfer size from the two recorded sizes per
    /// its `SizeMode`.
    RemoteRead {
        /// Owning thread.
        owner: ThreadId,
        /// Accessed element (carried through to the predicted trace).
        element: ElementId,
        /// Compiler-declared (whole element) size.
        declared_bytes: u32,
        /// Actually required size.
        actual_bytes: u32,
    },
    /// Issue a non-blocking remote element write.
    RemoteWrite {
        /// Owning thread.
        owner: ThreadId,
        /// Accessed element.
        element: ElementId,
        /// Compiler-declared size.
        declared_bytes: u32,
        /// Actual size.
        actual_bytes: u32,
    },
    /// Enter the given global barrier (program-order id).
    Barrier(BarrierId),
    /// Thread completes.
    End,
}

/// Compiles one thread's translated trace into an op script with the
/// parameter set's `MipsRatio` baked into every `Compute` op.
///
/// Sweeps should prefer [`CompiledProgram::compile`], which compiles once
/// per trace (compute durations stay *unscaled*; the engine applies
/// `MipsRatio` at execution time) and is shared across parameter sets.
pub fn compile_thread(trace: &ThreadTrace, params: &SimParams) -> Vec<Op> {
    let mut ops = compile_thread_raw(trace);
    for op in &mut ops {
        if let Op::Compute(d) = op {
            *d = d.scale(params.mips_ratio);
        }
    }
    ops
}

/// Compiles one thread's translated trace into an op script with
/// **unscaled** compute durations (host time).  `MipsRatio` is a
/// per-parameter-set concern applied at execution time, which is what
/// lets one compilation serve a whole sweep grid.
pub fn compile_thread_raw(trace: &ThreadTrace) -> Vec<Op> {
    let mut ops = Vec::with_capacity(trace.records.len());
    let mut prev: Option<TimeNs> = None;
    for rec in &trace.records {
        fold_record(&mut ops, &mut prev, rec);
    }
    seal_script(&mut ops);
    ops
}

/// Appends the op(s) for one translated record — the single per-record
/// compilation step shared by the whole-trace and streaming compilers.
fn fold_record(ops: &mut Vec<Op>, prev: &mut Option<TimeNs>, rec: &TraceRecord) {
    // Time since the previous event is computation — except the gap
    // ending in a barrier exit, which is barrier wait.
    if let Some(p) = *prev {
        let is_exit = matches!(rec.kind, EventKind::BarrierExit { .. });
        let delta = rec.time.since(p);
        if !is_exit && !delta.is_zero() {
            ops.push(Op::Compute(delta));
        }
    }
    *prev = Some(rec.time);
    match rec.kind {
        EventKind::ThreadBegin | EventKind::Marker { .. } => {}
        EventKind::BarrierEnter { barrier } => ops.push(Op::Barrier(barrier)),
        EventKind::BarrierExit { .. } => {}
        EventKind::RemoteRead {
            owner,
            element,
            declared_bytes,
            actual_bytes,
        } => ops.push(Op::RemoteRead {
            owner,
            element,
            declared_bytes,
            actual_bytes,
        }),
        EventKind::RemoteWrite {
            owner,
            element,
            declared_bytes,
            actual_bytes,
        } => ops.push(Op::RemoteWrite {
            owner,
            element,
            declared_bytes,
            actual_bytes,
        }),
        EventKind::ThreadEnd => ops.push(Op::End),
    }
}

/// Every script ends in [`Op::End`], even for an empty thread.
fn seal_script(ops: &mut Vec<Op>) {
    if !matches!(ops.last(), Some(Op::End)) {
        ops.push(Op::End);
    }
}

/// Total scaled compute in a script (used by metrics and tests).
pub fn total_compute(ops: &[Op]) -> DurationNs {
    ops.iter()
        .filter_map(|op| match op {
            Op::Compute(d) => Some(*d),
            _ => None,
        })
        .sum()
}

/// One thread of a [`CompiledProgram`]: the op script (unscaled compute)
/// plus the counts the engine uses for exact buffer pre-reservation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledThread {
    /// The thread this script belongs to (drives processor placement).
    pub thread: ThreadId,
    /// The op script, compute durations in **host** (unscaled) time.
    pub ops: Vec<Op>,
    /// Exactly how many records this thread's predicted trace will hold
    /// (begin + end + one per remote op + two per barrier), so `Full`
    /// record mode reserves once and never regrows.
    pub predicted_records: usize,
}

/// A whole trace set compiled once into per-thread op scripts.
///
/// Compilation is parameter-independent (`MipsRatio` scaling happens at
/// execution time), so a sweep over P traces × K parameter sets compiles
/// P times instead of P×K times.  Wrap it in an `Arc` — the sweep cache
/// does — and hand it to `Extrapolator::run_compiled` as many times as
/// you like.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledProgram {
    threads: Vec<CompiledThread>,
    peak_events: usize,
}

impl CompiledProgram {
    /// Validates `traces` and compiles every thread's script.
    ///
    /// This is a thin adapter over the streaming
    /// [`IncrementalCompiler`]: the per-record fold is the same machine
    /// either way, so the whole-trace and out-of-core paths produce
    /// identical programs by construction.
    pub fn compile(traces: &TraceSet) -> Result<CompiledProgram, TraceError> {
        traces.validate()?;
        let mut compiler = IncrementalCompiler::new(traces.threads.len());
        for (i, tt) in traces.threads.iter().enumerate() {
            for rec in &tt.records {
                compiler.emit_record(i, rec)?;
            }
        }
        Ok(compiler.finish())
    }

    /// Assembles a program from already-compiled thread scripts.  The
    /// representative-region path slices a full compiled program at
    /// barrier boundaries into per-cluster mini-programs; callers must
    /// hand over scripts shaped like [`compile`](CompiledProgram::compile)
    /// produces them (trailing [`Op::End`], globally aligned barriers).
    pub fn from_threads(threads: Vec<CompiledThread>) -> CompiledProgram {
        // Per-epoch (between-barrier) remote-write counts, summed across
        // threads: non-blocking writes are the only ops that can pile up
        // in the event queue faster than they drain, and a barrier
        // flushes them, so the busiest epoch bounds the write backlog.
        let mut epoch_writes: Vec<usize> = Vec::new();
        for t in &threads {
            let mut epoch = 0usize;
            for op in &t.ops {
                match op {
                    Op::Barrier(_) => epoch += 1,
                    Op::RemoteWrite { .. } => {
                        if epoch_writes.len() <= epoch {
                            epoch_writes.resize(epoch + 1, 0);
                        }
                        epoch_writes[epoch] += 1;
                    }
                    _ => {}
                }
            }
        }
        let peak_events = 3 * threads.len() + epoch_writes.iter().copied().max().unwrap_or(0);
        CompiledProgram {
            threads,
            peak_events,
        }
    }

    /// The compiled per-thread scripts, in thread-index order.
    pub fn threads(&self) -> &[CompiledThread] {
        &self.threads
    }

    /// Number of threads in the program.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// True for the empty (zero-thread) program.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Total ops across all threads (a work-size metric).
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(|t| t.ops.len()).sum()
    }

    /// Approximate heap footprint of the compiled scripts in bytes —
    /// the accounting probe cache-eviction budgets are charged against.
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<CompiledProgram>()
            + self
                .threads
                .iter()
                .map(|t| {
                    std::mem::size_of::<CompiledThread>()
                        + t.ops.capacity() * std::mem::size_of::<Op>()
                })
                .sum::<usize>()
    }

    /// Estimated peak event-queue occupancy for a simulation of this
    /// program: a small constant per thread (grant + completion + poll
    /// tick) plus the busiest between-barrier burst of non-blocking
    /// remote writes.  `SchedulerKind::Auto` resolves against this to
    /// pick the heap for small queues and the calendar queue once the
    /// occupancy is deep enough to pay for its buckets.
    pub fn peak_events(&self) -> usize {
        self.peak_events
    }
}

/// Streaming program compiler: folds translated per-thread records into
/// op scripts **as they are emitted**, so a [`CompiledProgram`] is built
/// straight off a translate stream without ever holding the intermediate
/// [`TraceSet`].
///
/// It implements [`TranslateSink`], so it plugs directly into
/// `extrap_trace::translate_stream` — records may arrive interleaved
/// across threads (the epoch translator emits them in epoch-resolution
/// order) because each thread folds independently.
/// [`CompiledProgram::compile`] is an adapter over this machine, which is
/// what makes the whole-trace and out-of-core paths identical by
/// construction: same fold, same sealing, same `peak_events` census.
#[derive(Debug)]
pub struct IncrementalCompiler {
    threads: Vec<ThreadFold>,
}

/// One thread's in-progress script fold.
#[derive(Debug, Default)]
struct ThreadFold {
    ops: Vec<Op>,
    prev: Option<TimeNs>,
}

impl IncrementalCompiler {
    /// A compiler expecting records for threads `0..n_threads`.
    pub fn new(n_threads: usize) -> IncrementalCompiler {
        IncrementalCompiler {
            threads: (0..n_threads).map(|_| ThreadFold::default()).collect(),
        }
    }

    /// Folds one translated record of `thread` into its script.
    pub fn emit_record(&mut self, thread: usize, rec: &TraceRecord) -> Result<(), TraceError> {
        let Some(fold) = self.threads.get_mut(thread) else {
            return Err(TraceError::BadThread {
                record: 0,
                thread: ThreadId::from_index(thread),
                n_threads: self.threads.len(),
            });
        };
        fold_record(&mut fold.ops, &mut fold.prev, rec);
        Ok(())
    }

    /// Heap bytes currently held by the partially compiled scripts (the
    /// pipeline's *product*, which necessarily grows with distinct
    /// program structure — unlike the translate machinery, which stays
    /// O(threads + live-epoch)).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<IncrementalCompiler>()
            + self
                .threads
                .iter()
                .map(|t| {
                    std::mem::size_of::<ThreadFold>() + t.ops.capacity() * std::mem::size_of::<Op>()
                })
                .sum::<usize>()
    }

    /// Seals every script and assembles the program (identical to what
    /// [`CompiledProgram::compile`] yields for the equivalent
    /// [`TraceSet`]).
    pub fn finish(self) -> CompiledProgram {
        let threads: Vec<CompiledThread> = self
            .threads
            .into_iter()
            .enumerate()
            .map(|(i, mut fold)| {
                seal_script(&mut fold.ops);
                let predicted_records = 2 + fold
                    .ops
                    .iter()
                    .map(|op| match op {
                        Op::RemoteRead { .. } | Op::RemoteWrite { .. } => 1,
                        Op::Barrier(_) => 2,
                        Op::Compute(_) | Op::End => 0,
                    })
                    .sum::<usize>();
                CompiledThread {
                    thread: ThreadId::from_index(i),
                    ops: fold.ops,
                    predicted_records,
                }
            })
            .collect();
        CompiledProgram::from_threads(threads)
    }
}

impl TranslateSink for IncrementalCompiler {
    fn emit(&mut self, thread: usize, rec: TraceRecord) -> Result<(), TraceError> {
        self.emit_record(thread, &rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extrap_time::ElementId;
    use extrap_trace::{PhaseAccess, PhaseProgram, PhaseWork, TraceRecord};

    fn compile_first(params: &SimParams) -> Vec<Op> {
        let mut p = PhaseProgram::new(2);
        p.push_phase(vec![
            PhaseWork {
                compute: DurationNs(1_000),
                accesses: vec![PhaseAccess {
                    after: DurationNs(400),
                    owner: ThreadId(1),
                    element: ElementId(3),
                    declared_bytes: 2048,
                    actual_bytes: 16,
                    write: false,
                }],
            },
            PhaseWork {
                compute: DurationNs(1_000),
                accesses: vec![],
            },
        ]);
        let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
        compile_thread(&ts.threads[0], params)
    }

    #[test]
    fn script_shape() {
        let ops = compile_first(&SimParams::default());
        assert_eq!(
            ops,
            vec![
                Op::Compute(DurationNs(400)),
                Op::RemoteRead {
                    owner: ThreadId(1),
                    element: ElementId(3),
                    declared_bytes: 2048,
                    actual_bytes: 16,
                },
                Op::Compute(DurationNs(600)),
                Op::Barrier(BarrierId(0)),
                Op::End,
            ]
        );
    }

    #[test]
    fn mips_ratio_scales_compute() {
        let mut params = SimParams::default();
        params.mips_ratio = 0.5;
        let ops = compile_first(&params);
        assert_eq!(ops[0], Op::Compute(DurationNs(200)));
        assert_eq!(total_compute(&ops), DurationNs(500));
    }

    #[test]
    fn barrier_wait_gap_is_not_compute() {
        // Thread 0 finishes early and waits 600ns at the barrier; that gap
        // must not appear as compute.
        let mut p = PhaseProgram::new(2);
        p.push_phase(vec![
            PhaseWork {
                compute: DurationNs(400),
                accesses: vec![],
            },
            PhaseWork {
                compute: DurationNs(1_000),
                accesses: vec![],
            },
        ]);
        p.push_uniform_phase(DurationNs(100));
        let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
        let ops = compile_thread(&ts.threads[0], &SimParams::default());
        assert_eq!(total_compute(&ops), DurationNs(500));
    }

    #[test]
    fn markers_are_transparent() {
        let trace = ThreadTrace {
            thread: ThreadId(0),
            records: vec![
                TraceRecord {
                    time: TimeNs(0),
                    thread: ThreadId(0),
                    kind: EventKind::ThreadBegin,
                },
                TraceRecord {
                    time: TimeNs(100),
                    thread: ThreadId(0),
                    kind: EventKind::Marker { id: 1 },
                },
                TraceRecord {
                    time: TimeNs(300),
                    thread: ThreadId(0),
                    kind: EventKind::ThreadEnd,
                },
            ],
        };
        let ops = compile_thread(&trace, &SimParams::default());
        // Marker splits the compute but contributes no op.
        assert_eq!(
            ops,
            vec![
                Op::Compute(DurationNs(100)),
                Op::Compute(DurationNs(200)),
                Op::End
            ]
        );
    }

    #[test]
    fn compiled_program_is_parameter_independent() {
        let mut p = PhaseProgram::new(2);
        p.push_uniform_phase(DurationNs(1_000));
        let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
        let program = CompiledProgram::compile(&ts).unwrap();
        assert_eq!(program.n_threads(), 2);
        // Raw scripts carry host-time compute; scaling is execution-time.
        assert_eq!(
            program.threads()[0].ops[0],
            Op::Compute(DurationNs(1_000)),
            "compiled compute is unscaled"
        );
        // The per-params compiler is exactly raw + scale.
        let mut params = SimParams::default();
        params.mips_ratio = 0.5;
        let scaled = compile_thread(&ts.threads[0], &params);
        let raw = compile_thread_raw(&ts.threads[0]);
        assert_eq!(scaled.len(), raw.len());
        assert_eq!(scaled[0], Op::Compute(DurationNs(500)));
    }

    #[test]
    fn compiled_program_counts_predicted_records_exactly() {
        let params = SimParams::default();
        let ops = compile_first(&params);
        // compile_first's program: 1 read + 1 barrier + begin/end = 5.
        let mut p = PhaseProgram::new(2);
        p.push_phase(vec![
            PhaseWork {
                compute: DurationNs(1_000),
                accesses: vec![PhaseAccess {
                    after: DurationNs(400),
                    owner: ThreadId(1),
                    element: ElementId(3),
                    declared_bytes: 2048,
                    actual_bytes: 16,
                    write: false,
                }],
            },
            PhaseWork {
                compute: DurationNs(1_000),
                accesses: vec![],
            },
        ]);
        let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
        let program = CompiledProgram::compile(&ts).unwrap();
        assert_eq!(program.threads()[0].predicted_records, 5);
        assert!(program.total_ops() >= ops.len());
    }

    #[test]
    fn end_op_is_guaranteed() {
        let trace = ThreadTrace {
            thread: ThreadId(0),
            records: vec![],
        };
        let ops = compile_thread(&trace, &SimParams::default());
        assert_eq!(ops, vec![Op::End]);
    }
}
