//! The clustering extension (§3.3.1): "representing remote accesses
//! generically by messages allows us to easily accommodate a
//! multi-clustered system with shared memory access within a cluster and
//! message passing between clusters."
//!
//! [`ClusteredNetwork`] wraps two communication regimes behind the same
//! [`NetModel`] interface the engine uses: messages between processors
//! of the same cluster move at shared-memory speed (cheap fixed latency
//! plus a fast per-byte copy cost, no interconnect involvement), while
//! messages between clusters traverse the normal network model.

use crate::network::state::{NetModel, NetworkState, NetworkStats};
use crate::params::NetworkParams;
use extrap_time::{DurationNs, ProcId, TimeNs};

/// Parameters of the intra-cluster (shared-memory) regime.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ClusterParams {
    /// Processors per cluster (cluster of processor `p` is `p / size`).
    pub cluster_size: usize,
    /// Fixed latency of an intra-cluster transfer (cache-line ping,
    /// lock handoff).
    pub intra_latency: DurationNs,
    /// Per-byte cost of an intra-cluster copy.
    pub intra_byte: DurationNs,
}

impl Default for ClusterParams {
    fn default() -> ClusterParams {
        ClusterParams {
            cluster_size: 4,
            intra_latency: DurationNs::from_us(1.0),
            // ~800 MB/s shared-memory copy.
            intra_byte: DurationNs::from_us(0.00125),
        }
    }
}

impl ClusterParams {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.cluster_size == 0 {
            return Err("cluster size must be at least 1".to_string());
        }
        Ok(())
    }

    /// The cluster a processor belongs to.
    pub fn cluster_of(&self, p: ProcId) -> usize {
        p.index() / self.cluster_size.max(1)
    }
}

/// A two-level network: shared memory inside clusters, the wrapped
/// interconnect between them.
#[derive(Clone, Debug)]
pub struct ClusteredNetwork {
    params: ClusterParams,
    inter: NetworkState,
    intra_stats: NetworkStats,
}

impl ClusteredNetwork {
    /// Builds the clustered network for `n_procs` processors; `network`
    /// and `byte_transfer` describe the inter-cluster interconnect.
    pub fn new(
        n_procs: usize,
        params: ClusterParams,
        network: NetworkParams,
        byte_transfer: DurationNs,
    ) -> ClusteredNetwork {
        // The inter-cluster network sees one endpoint per *cluster*; we
        // keep per-processor addressing but scale the contention
        // capacity by the cluster count via the processor count we hand
        // the inner model.
        ClusteredNetwork {
            params,
            inter: NetworkState::new(n_procs, network, byte_transfer),
            intra_stats: NetworkStats::default(),
        }
    }

    /// Statistics of intra-cluster (shared-memory) transfers only.
    pub fn intra_stats(&self) -> NetworkStats {
        self.intra_stats
    }

    /// Statistics of inter-cluster (message) transfers only.
    pub fn inter_stats(&self) -> NetworkStats {
        self.inter.stats()
    }
}

impl NetModel for ClusteredNetwork {
    fn inject(&mut self, now: TimeNs, src: ProcId, dst: ProcId, bytes: u32) -> TimeNs {
        if self.params.cluster_of(src) == self.params.cluster_of(dst) {
            self.intra_stats.messages += 1;
            self.intra_stats.bytes += u64::from(bytes);
            self.intra_stats.factor_sum += 1.0;
            if src == dst {
                return now;
            }
            now + self.params.intra_latency + self.params.intra_byte * u64::from(bytes)
        } else {
            self.inter.inject(now, src, dst, bytes)
        }
    }

    fn complete(&mut self, src: ProcId, dst: ProcId) {
        // Intra-cluster transfers never entered the interconnect, so
        // only inter-cluster completions are forwarded.
        if self.params.cluster_of(src) != self.params.cluster_of(dst) {
            self.inter.complete();
        }
    }

    fn stats(&self) -> NetworkStats {
        let a = self.intra_stats;
        let b = self.inter.stats();
        NetworkStats {
            messages: a.messages + b.messages,
            bytes: a.bytes + b.bytes,
            max_in_flight: b.max_in_flight,
            factor_sum: a.factor_sum + b.factor_sum,
        }
    }
}

/// Extrapolates onto a clustered machine: `params` describes the
/// inter-cluster regime (and everything else), `cluster` the
/// shared-memory islands.
pub fn extrapolate_clustered(
    traces: &extrap_trace::TraceSet,
    params: &crate::params::SimParams,
    cluster: ClusterParams,
) -> Result<crate::metrics::Prediction, crate::engine::ExtrapError> {
    cluster
        .validate()
        .map_err(crate::engine::ExtrapError::Params)?;
    let n_procs = params
        .multithread
        .mapping
        .n_procs(traces.n_threads().max(1));
    let net = ClusteredNetwork::new(n_procs, cluster, params.network, params.comm.byte_transfer);
    crate::engine::run_with_network(traces, params, net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::topology::Topology;
    use crate::params::ContentionParams;

    fn net() -> ClusteredNetwork {
        ClusteredNetwork::new(
            8,
            ClusterParams {
                cluster_size: 4,
                intra_latency: DurationNs(1_000),
                intra_byte: DurationNs(1),
            },
            NetworkParams {
                topology: Topology::Crossbar,
                hop: DurationNs(100_000),
                contention: ContentionParams::default(),
            },
            DurationNs(50),
        )
    }

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn cluster_membership() {
        let c = ClusterParams {
            cluster_size: 4,
            ..ClusterParams::default()
        };
        assert_eq!(c.cluster_of(p(0)), 0);
        assert_eq!(c.cluster_of(p(3)), 0);
        assert_eq!(c.cluster_of(p(4)), 1);
        assert_eq!(c.cluster_of(p(7)), 1);
    }

    #[test]
    fn intra_cluster_is_fast_inter_is_slow() {
        let mut n = net();
        let intra = n.inject(TimeNs(0), p(0), p(3), 100);
        let inter = n.inject(TimeNs(0), p(0), p(4), 100);
        assert_eq!(intra, TimeNs(1_000 + 100));
        assert!(
            inter.as_ns() > intra.as_ns() * 10,
            "intra {intra} inter {inter}"
        );
        assert_eq!(n.intra_stats().messages, 1);
        assert_eq!(n.inter_stats().messages, 1);
    }

    #[test]
    fn same_proc_is_instant() {
        let mut n = net();
        assert_eq!(n.inject(TimeNs(9), p(2), p(2), 1_000_000), TimeNs(9));
    }

    #[test]
    fn zero_cluster_size_rejected() {
        let c = ClusterParams {
            cluster_size: 0,
            ..ClusterParams::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn clustered_extrapolation_beats_flat_network_for_local_patterns() {
        use extrap_time::{ElementId, ThreadId};
        use extrap_trace::{PhaseAccess, PhaseProgram, PhaseWork};
        // Neighbour exchange: thread t reads from t+1; with block
        // clustering most exchanges stay inside a cluster.
        let n = 8;
        let mut prog = PhaseProgram::new(n);
        for _ in 0..4 {
            let work = (0..n)
                .map(|t| PhaseWork {
                    compute: extrap_time::DurationNs::from_us(100.0),
                    accesses: vec![PhaseAccess {
                        after: extrap_time::DurationNs::from_us(50.0),
                        owner: ThreadId::from_index((t + 1) % n),
                        element: ElementId::from_index(t),
                        declared_bytes: 8_192,
                        actual_bytes: 8_192,
                        write: false,
                    }],
                })
                .collect();
            prog.push_phase(work);
        }
        let ts = extrap_trace::translate(&prog.record(), Default::default()).unwrap();
        let params = crate::machine::default_distributed();
        let flat = crate::extrapolate(&ts, &params).unwrap().exec_time();
        let clustered = extrapolate_clustered(
            &ts,
            &params,
            ClusterParams {
                cluster_size: 4,
                ..ClusterParams::default()
            },
        )
        .unwrap()
        .exec_time();
        assert!(
            clustered < flat,
            "clustering should help: {clustered} vs flat {flat}"
        );
    }

    #[test]
    fn cluster_size_one_matches_flat_network() {
        use extrap_time::{ElementId, ThreadId};
        use extrap_trace::{PhaseAccess, PhaseProgram, PhaseWork};
        let n = 4;
        let mut prog = PhaseProgram::new(n);
        let work = (0..n)
            .map(|t| PhaseWork {
                compute: extrap_time::DurationNs::from_us(10.0),
                accesses: vec![PhaseAccess {
                    after: extrap_time::DurationNs::from_us(5.0),
                    owner: ThreadId::from_index((t + 2) % n),
                    element: ElementId::from_index(t),
                    declared_bytes: 512,
                    actual_bytes: 512,
                    write: false,
                }],
            })
            .collect();
        prog.push_phase(work);
        let ts = extrap_trace::translate(&prog.record(), Default::default()).unwrap();
        let params = crate::machine::default_distributed();
        let flat = crate::extrapolate(&ts, &params).unwrap().exec_time();
        let clustered = extrapolate_clustered(
            &ts,
            &params,
            ClusterParams {
                cluster_size: 1,
                ..ClusterParams::default()
            },
        )
        .unwrap()
        .exec_time();
        assert_eq!(clustered, flat);
    }
}
