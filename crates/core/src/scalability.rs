//! Scalability analysis over a family of predictions.
//!
//! The paper frames performance metrics as artifacts derived from
//! performance information (§2) and cites automatic scalability analysis
//! as a companion technique.  This module computes the standard
//! scalability metrics from a processor-count sweep of extrapolations:
//! speedup, parallel efficiency, the Karp–Flatt experimentally
//! determined serial fraction, and the knee/saturation points a
//! performance debugger looks for.

use extrap_time::TimeNs;

/// One point of a processor sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalePoint {
    /// Processor count.
    pub procs: usize,
    /// Predicted execution time.
    pub time: TimeNs,
    /// Speedup vs the 1-processor point.
    pub speedup: f64,
    /// Parallel efficiency (`speedup / procs`).
    pub efficiency: f64,
    /// Karp–Flatt serial fraction `(1/S − 1/p) / (1 − 1/p)`; `None` at
    /// `p = 1` where it is undefined.
    pub karp_flatt: Option<f64>,
}

/// A full scalability analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct Scalability {
    /// The sweep, ordered by processor count.
    pub points: Vec<ScalePoint>,
}

impl Scalability {
    /// Builds the analysis from `(procs, time)` pairs.  The baseline is
    /// the smallest processor count in the input (normally 1).
    ///
    /// # Panics
    /// Panics on an empty input or a zero baseline time.
    pub fn from_times(mut samples: Vec<(usize, TimeNs)>) -> Scalability {
        assert!(!samples.is_empty(), "need at least one sample");
        samples.sort_by_key(|s| s.0);
        let (base_procs, base_time) = samples[0];
        assert!(base_time.as_ns() > 0, "zero baseline time");
        let points = samples
            .into_iter()
            .map(|(procs, time)| {
                let speedup = base_time.as_ns() as f64 / time.as_ns().max(1) as f64;
                let p = procs as f64 / base_procs as f64;
                let efficiency = speedup / p;
                let karp_flatt = if p > 1.0 {
                    Some(((1.0 / speedup) - (1.0 / p)) / (1.0 - 1.0 / p))
                } else {
                    None
                };
                ScalePoint {
                    procs,
                    time,
                    speedup,
                    efficiency,
                    karp_flatt,
                }
            })
            .collect();
        Scalability { points }
    }

    /// The processor count with minimum execution time.
    pub fn best_procs(&self) -> usize {
        self.points
            .iter()
            .min_by_key(|p| p.time.as_ns())
            .expect("non-empty")
            .procs
    }

    /// The largest processor count that still keeps efficiency at or
    /// above `threshold` (e.g. 0.5).
    pub fn max_procs_at_efficiency(&self, threshold: f64) -> Option<usize> {
        self.points
            .iter()
            .filter(|p| p.efficiency >= threshold)
            .map(|p| p.procs)
            .max()
    }

    /// True when execution time stops improving somewhere before the
    /// largest measured processor count (a saturation knee exists).
    pub fn saturates(&self) -> bool {
        self.best_procs() < self.points.last().expect("non-empty").procs
    }

    /// Mean Karp–Flatt serial fraction across the sweep (a rising serial
    /// fraction with `p` indicates overhead growth, not an inherently
    /// serial program part).
    pub fn mean_serial_fraction(&self) -> Option<f64> {
        let vals: Vec<f64> = self.points.iter().filter_map(|p| p.karp_flatt).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:>12} {:>9} {:>11} {:>11}",
            "procs", "time [ms]", "speedup", "efficiency", "karp-flatt"
        );
        for p in &self.points {
            let kf = p
                .karp_flatt
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "{:>6} {:>12.3} {:>9.2} {:>10.1}% {:>11}",
                p.procs,
                p.time.as_ms(),
                p.speedup,
                p.efficiency * 100.0,
                kf
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> TimeNs {
        TimeNs::from_us(v * 1_000.0)
    }

    #[test]
    fn perfect_scaling_has_unit_efficiency_and_zero_serial_fraction() {
        let s = Scalability::from_times(vec![
            (1, ms(100.0)),
            (2, ms(50.0)),
            (4, ms(25.0)),
            (8, ms(12.5)),
        ]);
        for p in &s.points {
            assert!((p.efficiency - 1.0).abs() < 1e-9, "{p:?}");
            if let Some(kf) = p.karp_flatt {
                assert!(kf.abs() < 1e-9, "{p:?}");
            }
        }
        assert!(!s.saturates());
        assert_eq!(s.best_procs(), 8);
    }

    #[test]
    fn amdahl_program_recovers_its_serial_fraction() {
        // T(p) = (0.2 + 0.8/p) * 100ms — 20% serial.
        let t = |p: f64| ms((0.2 + 0.8 / p) * 100.0);
        let s = Scalability::from_times(vec![(1, t(1.0)), (2, t(2.0)), (4, t(4.0)), (16, t(16.0))]);
        for p in s.points.iter().skip(1) {
            let kf = p.karp_flatt.unwrap();
            assert!((kf - 0.2).abs() < 0.01, "{p:?}");
        }
        assert_eq!(s.max_procs_at_efficiency(0.5), Some(4));
    }

    #[test]
    fn saturation_knee_is_detected() {
        let s = Scalability::from_times(vec![
            (1, ms(100.0)),
            (2, ms(60.0)),
            (4, ms(45.0)),
            (8, ms(50.0)),
            (16, ms(70.0)),
        ]);
        assert!(s.saturates());
        assert_eq!(s.best_procs(), 4);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let s = Scalability::from_times(vec![(4, ms(25.0)), (1, ms(100.0)), (2, ms(50.0))]);
        let procs: Vec<usize> = s.points.iter().map(|p| p.procs).collect();
        assert_eq!(procs, vec![1, 2, 4]);
    }

    #[test]
    fn render_contains_all_rows() {
        let s = Scalability::from_times(vec![(1, ms(10.0)), (2, ms(6.0))]);
        let text = s.render();
        assert!(text.contains("speedup"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_input_panics() {
        let _ = Scalability::from_times(vec![]);
    }
}
