//! Logarithmic combining-tree barrier (analytic approximation).
//!
//! Arrivals combine up a `k`-ary tree and the release fans back down, so
//! synchronization costs grow with `ceil(log_k n)` message rounds instead
//! of the linear algorithm's `n` sends.  The model is analytic: each
//! level costs one message construction + startup + wire time (one hop +
//! message bytes); contention is not applied to barrier traffic in this
//! variant (the combining pattern is designed to avoid hot spots).

use super::quantize;
use crate::params::{BarrierParams, CommParams};
use extrap_time::{DurationNs, TimeNs};

/// Number of combining levels for `n` participants with fan-in `arity`.
pub fn levels(n: usize, arity: u32) -> u32 {
    let arity = arity.max(2) as u64;
    let mut levels = 0u32;
    let mut span = 1u64;
    while span < n as u64 {
        span = span.saturating_mul(arity);
        levels += 1;
    }
    levels
}

/// Per-thread resume times.
pub fn resume_times(
    p: &BarrierParams,
    comm: &CommParams,
    arity: u32,
    entry_done: &[TimeNs],
) -> Vec<TimeNs> {
    let n = entry_done.len();
    let last = *entry_done.iter().max().expect("empty barrier");
    let depth = levels(n, arity);
    let per_level: DurationNs = if p.by_msgs {
        comm.construct + comm.startup + comm.byte_transfer * u64::from(p.msg_size)
    } else {
        // Flag-based combining still costs a check per level.
        p.check
    };
    let up = per_level * u64::from(depth);
    let root_ready = last + up;
    let lower = quantize(entry_done[0], root_ready, p.check) + p.model;
    let down = per_level * u64::from(depth);
    entry_done
        .iter()
        .map(|&done| {
            let seen = quantize(done, lower + down, p.exit_check);
            seen + p.exit
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BarrierAlgorithm;

    #[test]
    fn level_counts() {
        assert_eq!(levels(1, 2), 0);
        assert_eq!(levels(2, 2), 1);
        assert_eq!(levels(8, 2), 3);
        assert_eq!(levels(9, 2), 4);
        assert_eq!(levels(16, 4), 2);
        assert_eq!(levels(17, 4), 3);
    }

    fn p(by_msgs: bool) -> BarrierParams {
        BarrierParams {
            entry: DurationNs::ZERO,
            exit: DurationNs(1),
            check: DurationNs::ZERO,
            exit_check: DurationNs::ZERO,
            model: DurationNs(10),
            by_msgs,
            msg_size: 100,
            algorithm: BarrierAlgorithm::Tree { arity: 2 },
            hardware_latency: DurationNs::ZERO,
        }
    }

    fn comm() -> CommParams {
        CommParams {
            construct: DurationNs(2),
            startup: DurationNs(3),
            byte_transfer: DurationNs(1),
            ..CommParams::free()
        }
    }

    #[test]
    fn tree_scales_logarithmically() {
        // 4 threads, arity 2 -> 2 levels; per level = 2+3+100 = 105.
        let entries = vec![TimeNs(0); 4];
        let r = resume_times(&p(true), &comm(), 2, &entries);
        // up 210, lower = 210+10 = 220, down 210, +exit 1 = 431.
        assert_eq!(r, vec![TimeNs(431); 4]);
    }

    #[test]
    fn tree_cost_grows_with_depth_not_thread_count() {
        // 32 threads, arity 2 -> 5 levels; up 525 + model 10 + down 525
        // + exit 1 = 1061.  Doubling the thread count adds one level
        // (210ns), not 32 more sequential sends.
        let r32 = resume_times(&p(true), &comm(), 2, &vec![TimeNs(0); 32]);
        assert_eq!(r32[0], TimeNs(1_061));
        let r64 = resume_times(&p(true), &comm(), 2, &vec![TimeNs(0); 64]);
        assert_eq!(r64[0].since(r32[0]), DurationNs(210));
    }
}
