//! The barrier model (§3.3.3, Table 1).
//!
//! The paper's model is a **linear master–slave** barrier: thread 0 is the
//! master; every slave entering the barrier sends a message to the master
//! and waits for a release message.  The master waits for all slaves
//! (checking every `CheckTime`), waits `ModelTime`, then sends release
//! messages to every slave.  With `BarrierByMsgs = 1` the messages are
//! real network messages whose transfer time contributes to the barrier
//! time.  Hardware barriers and logarithmic combining trees are provided
//! as the "easily substituted" alternative algorithms.
//!
//! The coordinator is model logic only: it computes *when* things happen
//! and hands the engine a list of [`BarrierAction`]s (messages to inject,
//! threads to resume); the engine owns the event queue and the network.

pub mod hardware;
pub mod linear;
pub mod tree;

use crate::params::{BarrierAlgorithm, BarrierParams, CommParams};
use extrap_time::{BarrierId, DurationNs, ThreadId, TimeNs};

/// Barrier-protocol messages exchanged through the network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BarrierMsg {
    /// Slave → master: "I have reached barrier `b`".
    Arrive(BarrierId),
    /// Master → slave: "barrier `b` is lowered".
    Release(BarrierId),
}

/// What the engine must do on behalf of the barrier model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BarrierAction {
    /// Inject a barrier message into the network at `depart`.
    Send {
        /// Network departure time (sender-side costs already included).
        depart: TimeNs,
        /// Sending thread.
        from: ThreadId,
        /// Receiving thread.
        to: ThreadId,
        /// Message size in bytes.
        bytes: u32,
        /// Protocol content.
        msg: BarrierMsg,
    },
    /// Resume `thread` (its barrier-exit trace event timestamp) at `at`.
    Resume {
        /// The thread leaving the barrier.
        thread: ThreadId,
        /// Exit-event time (all barrier costs included).
        at: TimeNs,
    },
}

/// The master thread of the linear algorithm (thread 0, per the paper).
pub const MASTER: ThreadId = ThreadId(0);

/// Rounds `t` up to the polling grid anchored at `anchor` with period
/// `q` (used for `CheckTime` / `ExitCheckTime` quantization).  With a
/// zero period the state change is observed immediately.
pub fn quantize(anchor: TimeNs, t: TimeNs, q: DurationNs) -> TimeNs {
    if q.is_zero() || t <= anchor {
        return t.max(anchor);
    }
    let gap = t.since(anchor).as_ns();
    let period = q.as_ns();
    let ticks = gap.div_ceil(period);
    anchor + DurationNs(ticks * period)
}

/// Per-barrier bookkeeping.
#[derive(Clone, Debug)]
struct BarrierState {
    /// Per-thread entry-complete times (trace event time + `EntryTime`).
    entry_done: Vec<Option<TimeNs>>,
    /// Arrival times of slave messages at the master (message mode).
    arrivals: Vec<Option<TimeNs>>,
    /// Count of entry_done entries.
    entered: usize,
    /// Count of arrivals recorded at the master.
    arrived_msgs: usize,
    /// Set once the master has computed the lowering time.
    lowered: Option<TimeNs>,
}

impl BarrierState {
    fn new(n: usize) -> BarrierState {
        BarrierState {
            entry_done: vec![None; n],
            arrivals: vec![None; n],
            entered: 0,
            arrived_msgs: 0,
            lowered: None,
        }
    }
}

/// The barrier model's coordinator.  One instance serves all barriers of
/// a run (they are indexed by program-order [`BarrierId`]).
#[derive(Clone, Debug)]
pub struct BarrierCoordinator {
    n_threads: usize,
    params: BarrierParams,
    comm: CommParams,
    states: Vec<BarrierState>,
    /// Total barrier synchronization episodes completed.
    completed: usize,
}

impl BarrierCoordinator {
    /// Creates a coordinator for `n_threads` threads.
    pub fn new(n_threads: usize, params: BarrierParams, comm: CommParams) -> BarrierCoordinator {
        assert!(n_threads > 0);
        BarrierCoordinator {
            n_threads,
            params,
            comm,
            states: Vec::new(),
            completed: 0,
        }
    }

    /// Barriers fully released so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    fn state(&mut self, b: BarrierId) -> &mut BarrierState {
        let idx = b.index();
        while self.states.len() <= idx {
            self.states.push(BarrierState::new(self.n_threads));
        }
        &mut self.states[idx]
    }

    /// Sender-side message overhead (construct + startup).
    fn send_overhead(&self) -> DurationNs {
        self.comm.construct + self.comm.startup
    }

    /// Called when `thread`'s barrier-enter trace event fires at `now`.
    pub fn on_enter(&mut self, b: BarrierId, thread: ThreadId, now: TimeNs) -> Vec<BarrierAction> {
        let entry = self.params.entry;
        let n = self.n_threads;
        let use_msgs = self.params.by_msgs && self.params.algorithm == BarrierAlgorithm::Linear;
        let send_overhead = self.send_overhead();
        let msg_size = self.params.msg_size;
        let st = self.state(b);
        let done = now + entry;
        assert!(
            st.entry_done[thread.index()].is_none(),
            "{thread} entered {b} twice"
        );
        st.entry_done[thread.index()] = Some(done);
        st.entered += 1;

        let mut actions = Vec::new();
        if use_msgs {
            if thread != MASTER {
                // Slave announces itself to the master with a real message.
                actions.push(BarrierAction::Send {
                    depart: done + send_overhead,
                    from: thread,
                    to: MASTER,
                    bytes: msg_size,
                    msg: BarrierMsg::Arrive(b),
                });
            } else {
                // The master's own entry counts as an arrival at itself.
                st.arrivals[MASTER.index()] = Some(done);
                st.arrived_msgs += 1;
                if st.arrived_msgs == n {
                    return self.lower_with_msgs(b);
                }
            }
            return actions;
        }

        // Non-message algorithms resolve once the last thread enters.
        if st.entered == n {
            return self.resolve_without_msgs(b);
        }
        actions
    }

    /// Called when a slave's `Arrive` message reaches the master at
    /// `arrival` (message mode only).
    pub fn on_arrive_msg(
        &mut self,
        b: BarrierId,
        from: ThreadId,
        arrival: TimeNs,
    ) -> Vec<BarrierAction> {
        let n = self.n_threads;
        let st = self.state(b);
        assert!(
            st.arrivals[from.index()].is_none(),
            "duplicate barrier arrival from {from}"
        );
        st.arrivals[from.index()] = Some(arrival);
        st.arrived_msgs += 1;
        if st.arrived_msgs == n {
            self.lower_with_msgs(b)
        } else {
            Vec::new()
        }
    }

    /// Called when the master's `Release` message reaches slave `thread`
    /// at `arrival` (message mode only).  Returns the resume action.
    pub fn on_release_msg(
        &mut self,
        b: BarrierId,
        thread: ThreadId,
        arrival: TimeNs,
    ) -> Vec<BarrierAction> {
        let exit = self.params.exit;
        let exit_check = self.params.exit_check;
        let receive = self.comm.receive;
        let st = self.state(b);
        let waiting_since = st.entry_done[thread.index()]
            .expect("release for a thread that never entered the barrier");
        // The slave polls for the release every ExitCheckTime.
        let observed = quantize(waiting_since, arrival + receive, exit_check);
        vec![BarrierAction::Resume {
            thread,
            at: observed + exit,
        }]
    }

    /// Master has all arrivals (message mode): compute lowering time,
    /// resume the master, send release messages.
    fn lower_with_msgs(&mut self, b: BarrierId) -> Vec<BarrierAction> {
        let p = self.params;
        let send_overhead = self.send_overhead();
        let n = self.n_threads;
        let st = self.state(b);
        let master_ready = st.arrivals[MASTER.index()].expect("master not ready");
        let last = st
            .arrivals
            .iter()
            .map(|a| a.expect("missing arrival"))
            .max()
            .expect("no arrivals");
        // The master checks the arrival count every CheckTime.
        let observed = quantize(master_ready, last, p.check);
        let lower = observed + p.model;
        st.lowered = Some(lower);
        self.completed += 1;

        let mut actions = Vec::new();
        // Release messages go out one after another (linear algorithm).
        let mut depart = lower;
        for t in extrap_time::threads(n) {
            if t == MASTER {
                continue;
            }
            depart += send_overhead;
            actions.push(BarrierAction::Send {
                depart,
                from: MASTER,
                to: t,
                bytes: p.msg_size,
                msg: BarrierMsg::Release(b),
            });
        }
        // The master resumes after sending every release.
        actions.push(BarrierAction::Resume {
            thread: MASTER,
            at: depart + p.exit,
        });
        actions
    }

    /// Non-message resolution: hardware, tree, or linear-without-messages.
    fn resolve_without_msgs(&mut self, b: BarrierId) -> Vec<BarrierAction> {
        let p = self.params;
        let comm = self.comm;
        let n = self.n_threads;
        let st = self.state(b);
        let entry_done: Vec<TimeNs> = st
            .entry_done
            .iter()
            .map(|t| t.expect("missing entry"))
            .collect();
        let resumes = match p.algorithm {
            BarrierAlgorithm::Hardware => hardware::resume_times(&p, &entry_done),
            BarrierAlgorithm::Tree { arity } => tree::resume_times(&p, &comm, arity, &entry_done),
            BarrierAlgorithm::Linear => linear::resume_times_no_msgs(&p, &entry_done),
        };
        st.lowered = resumes.iter().copied().max();
        self.completed += 1;
        (0..n)
            .map(|i| BarrierAction::Resume {
                thread: ThreadId::from_index(i),
                at: resumes[i],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_grid() {
        let q = DurationNs(100);
        let anchor = TimeNs(1_000);
        assert_eq!(quantize(anchor, TimeNs(1_000), q), TimeNs(1_000));
        assert_eq!(quantize(anchor, TimeNs(1_001), q), TimeNs(1_100));
        assert_eq!(quantize(anchor, TimeNs(1_100), q), TimeNs(1_100));
        assert_eq!(quantize(anchor, TimeNs(1_101), q), TimeNs(1_200));
        // Zero period observes immediately.
        assert_eq!(
            quantize(anchor, TimeNs(1_101), DurationNs::ZERO),
            TimeNs(1_101)
        );
        // Times before the anchor clamp to the anchor.
        assert_eq!(quantize(anchor, TimeNs(500), q), anchor);
    }

    fn zeroish_params(algorithm: BarrierAlgorithm, by_msgs: bool) -> BarrierParams {
        BarrierParams {
            entry: DurationNs(10),
            exit: DurationNs(20),
            check: DurationNs::ZERO,
            exit_check: DurationNs::ZERO,
            model: DurationNs(100),
            by_msgs,
            msg_size: 64,
            algorithm,
            hardware_latency: DurationNs(7),
        }
    }

    #[test]
    fn hardware_barrier_releases_at_last_entry_plus_latency() {
        let mut c = BarrierCoordinator::new(
            3,
            zeroish_params(BarrierAlgorithm::Hardware, false),
            CommParams::free(),
        );
        let b = BarrierId(0);
        assert!(c.on_enter(b, ThreadId(0), TimeNs(100)).is_empty());
        assert!(c.on_enter(b, ThreadId(2), TimeNs(500)).is_empty());
        let actions = c.on_enter(b, ThreadId(1), TimeNs(300));
        // Last entry completes at 510; release 510+7; resume +exit 20.
        assert_eq!(actions.len(), 3);
        for a in &actions {
            match a {
                BarrierAction::Resume { at, .. } => assert_eq!(*at, TimeNs(537)),
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(c.completed(), 1);
    }

    #[test]
    fn linear_no_msgs_includes_model_and_check() {
        let mut p = zeroish_params(BarrierAlgorithm::Linear, false);
        p.check = DurationNs(30);
        let mut c = BarrierCoordinator::new(2, p, CommParams::free());
        let b = BarrierId(0);
        c.on_enter(b, ThreadId(0), TimeNs(0)); // master ready at 10
        let actions = c.on_enter(b, ThreadId(1), TimeNs(95)); // done at 105
                                                              // master observes on its 30ns grid from 10: 105 -> 130; lower at 230.
                                                              // resumes at 230 + exit(20) = 250 (exit_check = 0).
        let resumes: Vec<TimeNs> = actions
            .iter()
            .map(|a| match a {
                BarrierAction::Resume { at, .. } => *at,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(resumes, vec![TimeNs(250), TimeNs(250)]);
    }

    #[test]
    fn message_mode_emits_arrive_and_release_sends() {
        let p = zeroish_params(BarrierAlgorithm::Linear, true);
        let comm = CommParams {
            construct: DurationNs(5),
            startup: DurationNs(15),
            receive: DurationNs(2),
            ..CommParams::free()
        };
        let mut c = BarrierCoordinator::new(2, p, comm);
        let b = BarrierId(0);
        // Slave enters first: emits an Arrive send at entry_done + 20.
        let a1 = c.on_enter(b, ThreadId(1), TimeNs(0));
        assert_eq!(
            a1,
            vec![BarrierAction::Send {
                depart: TimeNs(30),
                from: ThreadId(1),
                to: MASTER,
                bytes: 64,
                msg: BarrierMsg::Arrive(b),
            }]
        );
        // Master enters; still waiting for the slave's message.
        assert!(c.on_enter(b, MASTER, TimeNs(50)).is_empty());
        // Arrive message lands at 100: master lowers at 100+model(100)=200,
        // sends release departing 200+20=220, resumes at 220+exit(20)=240.
        let a2 = c.on_arrive_msg(b, ThreadId(1), TimeNs(100));
        assert_eq!(
            a2,
            vec![
                BarrierAction::Send {
                    depart: TimeNs(220),
                    from: MASTER,
                    to: ThreadId(1),
                    bytes: 64,
                    msg: BarrierMsg::Release(b),
                },
                BarrierAction::Resume {
                    thread: MASTER,
                    at: TimeNs(240),
                },
            ]
        );
        // Release lands at slave at 300: + receive(2) + exit(20).
        let a3 = c.on_release_msg(b, ThreadId(1), TimeNs(300));
        assert_eq!(
            a3,
            vec![BarrierAction::Resume {
                thread: ThreadId(1),
                at: TimeNs(322),
            }]
        );
    }

    #[test]
    fn single_thread_barrier_is_cheap_but_not_free() {
        let p = zeroish_params(BarrierAlgorithm::Linear, true);
        let mut c = BarrierCoordinator::new(1, p, CommParams::free());
        let actions = c.on_enter(BarrierId(0), MASTER, TimeNs(0));
        // entry 10 + model 100 + exit 20 = resume at 130, no sends.
        assert_eq!(
            actions,
            vec![BarrierAction::Resume {
                thread: MASTER,
                at: TimeNs(130),
            }]
        );
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn double_entry_panics() {
        let p = zeroish_params(BarrierAlgorithm::Hardware, false);
        let mut c = BarrierCoordinator::new(2, p, CommParams::free());
        c.on_enter(BarrierId(0), ThreadId(0), TimeNs(0));
        c.on_enter(BarrierId(0), ThreadId(0), TimeNs(1));
    }
}
