//! Linear master–slave release-time computation for the
//! `BarrierByMsgs = 0` case (shared-memory flag barrier).
//!
//! Without messages the protocol runs through shared flags: slaves set an
//! arrival flag (visible at `entry_done`), the master polls the flags
//! every `CheckTime`, waits `ModelTime`, then sets the release flag that
//! slaves poll every `ExitCheckTime`.

use super::quantize;
use crate::params::BarrierParams;
use extrap_time::TimeNs;

/// Per-thread resume times (thread 0 is the master).
pub fn resume_times(p: &BarrierParams, entry_done: &[TimeNs]) -> Vec<TimeNs> {
    let master_ready = entry_done[0];
    let last = *entry_done.iter().max().expect("empty barrier");
    // Master observes the last arrival on its CheckTime grid.
    let observed = quantize(master_ready, last, p.check);
    let lower = observed + p.model;
    entry_done
        .iter()
        .enumerate()
        .map(|(i, &done)| {
            if i == 0 {
                lower + p.exit
            } else {
                // Each slave notices the lowered flag on its own
                // ExitCheckTime grid, anchored at its wait start.
                quantize(done, lower, p.exit_check) + p.exit
            }
        })
        .collect()
}

/// Alias used by the coordinator for clarity at the call site.
pub use resume_times as resume_times_no_msgs;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BarrierAlgorithm;
    use extrap_time::DurationNs;

    fn p() -> BarrierParams {
        BarrierParams {
            entry: DurationNs(0),
            exit: DurationNs(5),
            check: DurationNs(10),
            exit_check: DurationNs(4),
            model: DurationNs(50),
            by_msgs: false,
            msg_size: 0,
            algorithm: BarrierAlgorithm::Linear,
            hardware_latency: DurationNs::ZERO,
        }
    }

    #[test]
    fn master_quantizes_last_arrival() {
        // Master ready at 100, last at 133 -> observed on 10-grid: 140.
        let r = resume_times(&p(), &[TimeNs(100), TimeNs(133)]);
        // lower = 140 + 50 = 190. master: 190+5=195.
        assert_eq!(r[0], TimeNs(195));
        // slave anchored at 133: 190 -> grid 133+4k >= 190 -> 193; +5 = 198.
        assert_eq!(r[1], TimeNs(198));
    }

    #[test]
    fn simultaneous_arrivals_release_immediately() {
        let mut params = p();
        params.check = DurationNs::ZERO;
        params.exit_check = DurationNs::ZERO;
        let r = resume_times(&params, &[TimeNs(100), TimeNs(100), TimeNs(100)]);
        assert!(r.iter().all(|&t| t == TimeNs(155)));
    }

    #[test]
    fn all_resumes_at_or_after_lowering() {
        let entry = [TimeNs(10), TimeNs(500), TimeNs(20), TimeNs(499)];
        let r = resume_times(&p(), &entry);
        let lower = quantize(TimeNs(10), TimeNs(500), DurationNs(10)) + DurationNs(50);
        for &t in &r {
            assert!(t >= lower);
        }
    }
}
