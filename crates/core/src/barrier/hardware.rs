//! Hardware barrier: a dedicated synchronization network (e.g. the CM-5
//! control network) lowers the barrier a fixed latency after the last
//! arrival; every thread observes it simultaneously.

use crate::params::BarrierParams;
use extrap_time::TimeNs;

/// Per-thread resume times.
pub fn resume_times(p: &BarrierParams, entry_done: &[TimeNs]) -> Vec<TimeNs> {
    let last = *entry_done.iter().max().expect("empty barrier");
    let release = last + p.hardware_latency;
    entry_done.iter().map(|_| release + p.exit).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BarrierAlgorithm;
    use extrap_time::DurationNs;

    #[test]
    fn release_is_uniform() {
        let p = BarrierParams {
            entry: DurationNs::ZERO,
            exit: DurationNs(3),
            check: DurationNs(99),
            exit_check: DurationNs(99),
            model: DurationNs(99),
            by_msgs: false,
            msg_size: 0,
            algorithm: BarrierAlgorithm::Hardware,
            hardware_latency: DurationNs(11),
        };
        let r = resume_times(&p, &[TimeNs(5), TimeNs(70), TimeNs(40)]);
        assert_eq!(r, vec![TimeNs(84); 3]);
    }
}
