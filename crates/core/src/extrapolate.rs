//! The end-to-end extrapolation pipeline (Figure 2 of the paper):
//! measured 1-processor trace → translation → trace-driven simulation →
//! predicted performance information and metrics.

use crate::engine::ExtrapError;
use crate::metrics::Prediction;
use crate::params::SimParams;
use crate::session::Extrapolator;
use extrap_trace::{ProgramTrace, TraceSet, TranslateOptions};

/// Extrapolates already-translated per-thread traces to the target
/// machine described by `params`.
///
/// Thin wrapper over [`Extrapolator`]; prefer the builder when you
/// configure more than the parameter set or reuse a session across many
/// traces.
pub fn extrapolate(traces: &TraceSet, params: &SimParams) -> Result<Prediction, ExtrapError> {
    Extrapolator::new(params.clone()).run(traces)
}

/// Convenience wrapper: translates a raw 1-processor program trace and
/// extrapolates it in one call.
///
/// Thin wrapper over [`Extrapolator::run`].
pub fn extrapolate_program(
    trace: &ProgramTrace,
    translate_options: TranslateOptions,
    params: &SimParams,
) -> Result<Prediction, ExtrapError> {
    Extrapolator::new(params.clone())
        .translate_options(translate_options)
        .run(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine;
    use crate::params::{BarrierAlgorithm, ServicePolicy, SizeMode};
    use extrap_time::{DurationNs, ElementId, ThreadId, TimeNs};
    use extrap_trace::{PhaseAccess, PhaseProgram, PhaseWork};

    /// n threads, `phases` uniform compute phases of `us` microseconds.
    fn uniform(n: usize, phases: usize, us: f64) -> TraceSet {
        let mut p = PhaseProgram::new(n);
        for _ in 0..phases {
            p.push_uniform_phase(DurationNs::from_us(us));
        }
        extrap_trace::translate(&p.record(), Default::default()).unwrap()
    }

    /// Neighbor exchange: every thread reads one element from its right
    /// neighbor each phase.
    fn ring(n: usize, phases: usize, us: f64, declared: u32, actual: u32) -> TraceSet {
        let mut p = PhaseProgram::new(n);
        for _ in 0..phases {
            let work = (0..n)
                .map(|t| PhaseWork {
                    compute: DurationNs::from_us(us),
                    accesses: vec![PhaseAccess {
                        after: DurationNs::from_us(us / 2.0),
                        owner: ThreadId::from_index((t + 1) % n),
                        element: ElementId::from_index(t),
                        declared_bytes: declared,
                        actual_bytes: actual,
                        write: false,
                    }],
                })
                .collect();
            p.push_phase(work);
        }
        extrap_trace::translate(&p.record(), Default::default()).unwrap()
    }

    #[test]
    fn ideal_machine_reproduces_translated_makespan() {
        let ts = uniform(4, 3, 100.0);
        let pred = extrapolate(&ts, &machine::ideal()).unwrap();
        assert_eq!(pred.exec_time(), ts.makespan());
        assert_eq!(pred.barriers, 3);
        assert_eq!(pred.n_procs, 4);
    }

    #[test]
    fn mips_ratio_scales_pure_compute_exactly() {
        let ts = uniform(2, 2, 100.0);
        let mut params = machine::ideal();
        params.mips_ratio = 2.0;
        let slow = extrapolate(&ts, &params).unwrap();
        params.mips_ratio = 0.5;
        let fast = extrapolate(&ts, &params).unwrap();
        assert_eq!(slow.exec_time(), TimeNs::from_us(400.0));
        assert_eq!(fast.exec_time(), TimeNs::from_us(100.0));
    }

    #[test]
    fn barrier_costs_accumulate_per_phase() {
        let ts = uniform(2, 10, 10.0);
        let mut params = machine::ideal();
        params.barrier.algorithm = BarrierAlgorithm::Hardware;
        params.barrier.hardware_latency = DurationNs::from_us(3.0);
        let pred = extrapolate(&ts, &params).unwrap();
        // 10 phases of 10us compute + 10 barriers of 3us latency.
        assert_eq!(pred.exec_time(), TimeNs::from_us(130.0));
        assert_eq!(pred.barriers, 10);
    }

    #[test]
    fn remote_reads_cost_time_and_are_counted() {
        let ts = ring(4, 2, 100.0, 1024, 1024);
        let ideal = extrapolate(&ts, &machine::ideal()).unwrap();
        let dist = extrapolate(&ts, &machine::default_distributed()).unwrap();
        assert!(dist.exec_time() > ideal.exec_time());
        let reads: u64 = dist.per_thread.iter().map(|t| t.remote_reads).sum();
        assert_eq!(reads, 8);
        assert!(dist.network.messages >= 16, "requests + replies at least");
        assert!(dist.total_remote_wait() > DurationNs::ZERO);
    }

    #[test]
    fn size_mode_changes_transfer_cost() {
        // Declared size is 100x the actual size; with a slow network the
        // declared-mode prediction must be slower.
        let ts = ring(4, 2, 50.0, 100_000, 1_000);
        let mut params = machine::default_distributed();
        params.size_mode = SizeMode::Declared;
        let declared = extrapolate(&ts, &params).unwrap();
        params.size_mode = SizeMode::Actual;
        let actual = extrapolate(&ts, &params).unwrap();
        assert!(
            declared.exec_time() > actual.exec_time(),
            "declared {} vs actual {}",
            declared.exec_time(),
            actual.exec_time()
        );
    }

    #[test]
    fn more_bandwidth_is_never_slower() {
        let ts = ring(8, 3, 20.0, 65_536, 65_536);
        let mut slow_p = machine::default_distributed();
        slow_p.comm = slow_p.comm.with_bandwidth_mbps(5.0);
        let mut fast_p = machine::default_distributed();
        fast_p.comm = fast_p.comm.with_bandwidth_mbps(200.0);
        let slow = extrapolate(&ts, &slow_p).unwrap();
        let fast = extrapolate(&ts, &fast_p).unwrap();
        assert!(fast.exec_time() <= slow.exec_time());
    }

    #[test]
    fn all_policies_complete_and_order_sanely() {
        let ts = ring(4, 3, 100.0, 4_096, 4_096);
        let mut params = machine::default_distributed();
        let mut times = Vec::new();
        for policy in [
            ServicePolicy::NoInterrupt,
            ServicePolicy::Interrupt,
            ServicePolicy::poll_us(100.0),
        ] {
            params.policy = policy;
            let pred = extrapolate(&ts, &params).unwrap();
            times.push(pred.exec_time());
        }
        // No-interrupt can never beat interrupt on this communication-
        // bound pattern: requests to busy threads wait longer.
        assert!(
            times[1] <= times[0],
            "interrupt {} vs no-interrupt {}",
            times[1],
            times[0]
        );
    }

    #[test]
    fn predicted_trace_is_valid_and_matches_exec_time() {
        let ts = ring(4, 2, 100.0, 1024, 1024);
        let pred = extrapolate(&ts, &machine::cm5()).unwrap();
        pred.predicted.validate().unwrap();
        assert_eq!(pred.predicted.makespan(), pred.exec_time());
        // Same barrier structure as the input.
        assert_eq!(
            pred.predicted.threads[0].barrier_sequence(),
            ts.threads[0].barrier_sequence()
        );
    }

    #[test]
    fn extrapolation_is_deterministic() {
        let ts = ring(8, 4, 30.0, 8_192, 8_192);
        let params = machine::default_distributed();
        let a = extrapolate(&ts, &params).unwrap();
        let b = extrapolate(&ts, &params).unwrap();
        assert_eq!(a.exec_time(), b.exec_time());
        assert_eq!(a.predicted, b.predicted);
        assert_eq!(a.per_thread, b.per_thread);
    }

    #[test]
    fn program_pipeline_matches_manual_pipeline() {
        let mut p = PhaseProgram::new(3);
        p.push_uniform_phase(DurationNs::from_us(10.0));
        let pt = p.record();
        let params = machine::cm5();
        let a = extrapolate_program(&pt, Default::default(), &params).unwrap();
        let set = extrap_trace::translate(&pt, Default::default()).unwrap();
        let b = extrapolate(&set, &params).unwrap();
        assert_eq!(a.exec_time(), b.exec_time());
    }

    #[test]
    fn single_thread_run_works() {
        let ts = uniform(1, 2, 10.0);
        let pred = extrapolate(&ts, &machine::default_distributed()).unwrap();
        assert!(pred.exec_time() >= TimeNs::from_us(20.0));
        assert_eq!(pred.n_procs, 1);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let ts = uniform(1, 1, 1.0);
        let mut params = SimParams::default();
        params.mips_ratio = -1.0;
        assert!(matches!(
            extrapolate(&ts, &params),
            Err(ExtrapError::Params(_))
        ));
    }

    #[test]
    fn remote_writes_are_nonblocking_but_cost_send_overhead() {
        let mut p = PhaseProgram::new(2);
        p.push_phase(vec![
            PhaseWork {
                compute: DurationNs::from_us(100.0),
                accesses: vec![PhaseAccess {
                    after: DurationNs::from_us(50.0),
                    owner: ThreadId(1),
                    element: ElementId(0),
                    declared_bytes: 4_096,
                    actual_bytes: 4_096,
                    write: true,
                }],
            },
            PhaseWork {
                compute: DurationNs::from_us(100.0),
                accesses: vec![],
            },
        ]);
        let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
        let pred = extrapolate(&ts, &machine::default_distributed()).unwrap();
        let writes: u64 = pred.per_thread.iter().map(|t| t.remote_writes).sum();
        assert_eq!(writes, 1);
        assert!(pred.per_thread[0].send_overhead > DurationNs::ZERO);
        assert_eq!(pred.per_thread[0].remote_wait, DurationNs::ZERO);
    }
}
