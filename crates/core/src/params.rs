//! Simulation parameters.
//!
//! Every knob the paper exposes is here, in the paper's own units
//! (microseconds), grouped by the model that consumes it.  `SimParams`
//! composes the three models plus the multithreading extension and can be
//! round-tripped through a simple `key = value` text form (see
//! [`SimParams::to_config_text`] / [`SimParams::from_config_text`]).

use crate::multithread::MultithreadParams;
use crate::network::topology::Topology;
use extrap_sim::SchedulerKind;
use extrap_time::DurationNs;
use std::fmt;

/// How the owner thread services incoming remote-data requests (§3.3.1).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum ServicePolicy {
    /// Messages are processed only when the thread waits — for a barrier
    /// release or a remote data access reply — or at compute-phase
    /// boundaries.
    #[default]
    NoInterrupt,
    /// A message arrival interrupts the owner's computation; after the
    /// message is processed the computation resumes.
    Interrupt,
    /// Computation is split into chunks of `interval`; at the end of each
    /// chunk the thread processes messages received during that time.
    Poll {
        /// Polling interval.
        interval: DurationNs,
    },
}

impl ServicePolicy {
    /// A polling policy with the interval given in microseconds.
    pub fn poll_us(interval_us: f64) -> ServicePolicy {
        ServicePolicy::Poll {
            interval: DurationNs::from_us(interval_us),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            ServicePolicy::NoInterrupt => "no-interrupt".to_string(),
            ServicePolicy::Interrupt => "interrupt".to_string(),
            ServicePolicy::Poll { interval } => format!("poll({:.0}us)", interval.as_us()),
        }
    }
}

/// Which recorded transfer size drives the communication model (§4.1's
/// Grid investigation: declared whole-element size vs actual bytes).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SizeMode {
    /// Use the compiler-declared (whole collection element) size — the
    /// paper's original measurement abstraction.
    #[default]
    Declared,
    /// Use the actual number of bytes the access requires.
    Actual,
}

/// Whether a run materializes the full predicted event trace or only the
/// scalar metrics.
///
/// Building `Prediction::predicted` costs one `TraceRecord` push per
/// simulated event per thread; sweep grids that only read `exec_time`
/// and the per-thread breakdowns pay that allocation for nothing, so
/// they run `MetricsOnly`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RecordMode {
    /// Build the full predicted trace (the paper's `PI₂ᵖ`) with exact
    /// capacity pre-reservation from the compiled program's stats.
    #[default]
    Full,
    /// Skip the predicted trace entirely; `Prediction::predicted` comes
    /// back empty.  Timing and metrics are bit-identical to `Full`.
    MetricsOnly,
}

/// Remote data access model parameters (§3.3.2).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CommParams {
    /// `CommStartupTime`: fixed software overhead to send any message.
    pub startup: DurationNs,
    /// `ByteTransferTime`: per-byte network transfer time (inverse
    /// bandwidth).
    pub byte_transfer: DurationNs,
    /// `MsgConstructTime`: cost of assembling a message (header packing,
    /// buffer management) before the startup cost.
    pub construct: DurationNs,
    /// Cost for the owner to service one remote request (lookup + copy
    /// initiation), excluding the reply's construct/startup costs.
    pub service: DurationNs,
    /// Receive-side handling overhead per message (dequeue from the NI
    /// receive queue).
    pub receive: DurationNs,
    /// Size of a remote-read *request* message in bytes (headers only).
    pub request_bytes: u32,
    /// Extra header bytes added to every reply in addition to the data.
    pub reply_header_bytes: u32,
}

impl Default for CommParams {
    fn default() -> CommParams {
        // The Fig. 4 environment: modest bandwidth (20 MB/s) and
        // relatively high communication overheads.
        CommParams {
            startup: DurationNs::from_us(100.0),
            byte_transfer: DurationNs::from_us(0.05),
            construct: DurationNs::from_us(5.0),
            service: DurationNs::from_us(5.0),
            receive: DurationNs::from_us(2.0),
            request_bytes: 16,
            reply_header_bytes: 8,
        }
    }
}

impl CommParams {
    /// Sets the bandwidth in MB/s (converted to `ByteTransferTime`).
    pub fn with_bandwidth_mbps(mut self, mbps: f64) -> CommParams {
        self.byte_transfer = DurationNs::from_us(extrap_time::mbps_to_us_per_byte(mbps));
        self
    }

    /// Sets `CommStartupTime` in microseconds.
    pub fn with_startup_us(mut self, us: f64) -> CommParams {
        self.startup = DurationNs::from_us(us);
        self
    }

    /// A zero-cost communication system (the "ideal execution environment"
    /// of §4.1).
    pub fn free() -> CommParams {
        CommParams {
            startup: DurationNs::ZERO,
            byte_transfer: DurationNs::ZERO,
            construct: DurationNs::ZERO,
            service: DurationNs::ZERO,
            receive: DurationNs::ZERO,
            request_bytes: 0,
            reply_header_bytes: 0,
        }
    }
}

/// Analytic network contention model parameters (§3.3.2): remote access
/// delay expressions involve the intensity of concurrent use of the
/// interconnect, tracked from simulation state.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ContentionParams {
    /// Master switch.
    pub enabled: bool,
    /// Delay growth per unit of excess concurrent load: a message's wire
    /// time is multiplied by `1 + alpha * excess / capacity` where
    /// `excess` is the number of other messages in flight and `capacity`
    /// is the topology's concurrency capacity.
    pub alpha: f64,
}

impl Default for ContentionParams {
    fn default() -> ContentionParams {
        ContentionParams {
            enabled: true,
            alpha: 0.5,
        }
    }
}

/// Interconnection network parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct NetworkParams {
    /// Topology used for hop counts and contention capacity.
    pub topology: Topology,
    /// Per-hop switch latency.
    pub hop: DurationNs,
    /// Contention model.
    pub contention: ContentionParams,
}

impl Default for NetworkParams {
    fn default() -> NetworkParams {
        NetworkParams {
            topology: Topology::FatTree { arity: 4 },
            hop: DurationNs::from_us(0.5),
            contention: ContentionParams::default(),
        }
    }
}

/// Barrier algorithm choice.  The paper's model is the linear
/// master–slave algorithm; logarithmic and hardware barriers are the
/// substitutions §3.3.3 mentions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BarrierAlgorithm {
    /// Linear master–slave: every slave messages thread 0; thread 0
    /// releases every slave.  Upper bound on synchronization time.
    #[default]
    Linear,
    /// Logarithmic combining tree with the given fan-in.
    Tree {
        /// Fan-in of the combining tree (≥ 2).
        arity: u32,
    },
    /// A dedicated hardware barrier with a fixed latency (e.g. the CM-5
    /// control network), modelled as `release = last entry + latency`.
    Hardware,
}

/// Barrier model parameters — Table 1 of the paper, plus the algorithm
/// selector and the hardware-barrier latency.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BarrierParams {
    /// `EntryTime`: time for each thread to enter a barrier.
    pub entry: DurationNs,
    /// `ExitTime`: time for each thread to come out of the barrier after
    /// it has been lowered.
    pub exit: DurationNs,
    /// `CheckTime`: delay incurred by the master thread every time it
    /// checks if all the threads have reached the barrier.
    pub check: DurationNs,
    /// `ExitCheckTime`: delay incurred by a slave thread every time it
    /// checks to see if the master has released the barrier.
    pub exit_check: DurationNs,
    /// `ModelTime`: time taken by the master thread to start lowering the
    /// barrier after all the slaves have reached the barrier.
    pub model: DurationNs,
    /// `BarrierByMsgs`: when true, actual messages are used for barrier
    /// synchronization and their transfer time contributes to the barrier
    /// time.
    pub by_msgs: bool,
    /// `BarrierMsgSize`: size of a message used for barrier
    /// synchronization.
    pub msg_size: u32,
    /// Algorithm (linear per the paper; tree/hardware as substitutions).
    pub algorithm: BarrierAlgorithm,
    /// Latency of the hardware barrier (only used by
    /// [`BarrierAlgorithm::Hardware`]).
    pub hardware_latency: DurationNs,
}

impl Default for BarrierParams {
    fn default() -> BarrierParams {
        // Exactly the example column of Table 1.
        BarrierParams {
            entry: DurationNs::from_us(5.0),
            exit: DurationNs::from_us(5.0),
            check: DurationNs::from_us(2.0),
            exit_check: DurationNs::from_us(2.0),
            model: DurationNs::from_us(10.0),
            by_msgs: true,
            msg_size: 128,
            algorithm: BarrierAlgorithm::Linear,
            hardware_latency: DurationNs::from_us(1.0),
        }
    }
}

impl BarrierParams {
    /// A zero-cost barrier (ideal synchronization).
    pub fn free() -> BarrierParams {
        BarrierParams {
            entry: DurationNs::ZERO,
            exit: DurationNs::ZERO,
            check: DurationNs::ZERO,
            exit_check: DurationNs::ZERO,
            model: DurationNs::ZERO,
            by_msgs: false,
            msg_size: 0,
            algorithm: BarrierAlgorithm::Hardware,
            hardware_latency: DurationNs::ZERO,
        }
    }
}

/// How the simulator covers the trace's barrier epochs.
///
/// `Exact` replays every epoch — the paper's simulator.  `Representative`
/// clusters repeating epochs by workload signature (SimPoint applied to
/// barrier phases), simulates one representative per cluster, and
/// composes full-run metrics from the cluster weights.  When clustering
/// finds no exploitable repetition the run silently falls back to the
/// exact path, so `Representative` is always safe to request.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum SimStrategy {
    /// Simulate every barrier epoch (full fidelity).
    #[default]
    Exact,
    /// Simulate one representative epoch per signature cluster and
    /// weight-compose the metrics; falls back to [`SimStrategy::Exact`]
    /// when the trace does not repeat.
    Representative {
        /// Clustering gives up (and the run falls back to exact) when
        /// the epochs need more than this many clusters.
        max_clusters: u32,
        /// Mean relative signature-distance threshold for two epochs
        /// to share a cluster (0 = identical only).
        tolerance: f64,
    },
}

impl SimStrategy {
    /// Default cluster-count bound of `repr` without an explicit `:K`.
    /// Sized for multigrid-style programs, whose per-level epochs are
    /// relatively distinct: Mgrid at paper scale needs ~57 clusters.
    pub const DEFAULT_MAX_CLUSTERS: u32 = 64;
    /// Default join tolerance of `repr` without an explicit `:K:TOL`.
    pub const DEFAULT_TOLERANCE: f64 = 0.05;
    /// The accepted spellings, for error messages.
    pub const VALID: &'static str = "exact, repr, repr:K, repr:K:TOL";

    /// The representative strategy with default knobs.
    pub fn representative() -> SimStrategy {
        SimStrategy::Representative {
            max_clusters: SimStrategy::DEFAULT_MAX_CLUSTERS,
            tolerance: SimStrategy::DEFAULT_TOLERANCE,
        }
    }

    /// Parses `exact`, `repr`, `repr:K`, or `repr:K:TOL`.
    pub fn parse(s: &str) -> Option<SimStrategy> {
        match s {
            "exact" => Some(SimStrategy::Exact),
            "repr" => Some(SimStrategy::representative()),
            other => {
                let rest = other.strip_prefix("repr:")?;
                let (k, tol) = match rest.split_once(':') {
                    Some((k, t)) => (k, Some(t)),
                    None => (rest, None),
                };
                let max_clusters = k.parse().ok()?;
                let tolerance = match tol {
                    Some(t) => t.parse().ok()?,
                    None => SimStrategy::DEFAULT_TOLERANCE,
                };
                Some(SimStrategy::Representative {
                    max_clusters,
                    tolerance,
                })
            }
        }
    }

    /// The canonical spelling ([`parse`](SimStrategy::parse) inverse).
    pub fn label(&self) -> String {
        match self {
            SimStrategy::Exact => "exact".to_string(),
            SimStrategy::Representative {
                max_clusters,
                tolerance,
            } => format!("repr:{max_clusters}:{tolerance}"),
        }
    }
}

/// The complete parameter set for one extrapolation run.
#[derive(Clone, PartialEq, Debug)]
pub struct SimParams {
    /// `MipsRatio`: computation times measured on the host are multiplied
    /// by this factor (1.0 = unchanged, 2.0 = target is 2× slower, 0.5 =
    /// target is 2× faster; Sun 4 → CM-5 is 1.1360 / 2.7645 ≈ 0.41).
    pub mips_ratio: f64,
    /// Remote-request service policy.
    pub policy: ServicePolicy,
    /// Which recorded access size the communication model uses.
    pub size_mode: SizeMode,
    /// Whether to materialize the predicted trace or only the metrics.
    pub record_mode: RecordMode,
    /// Event-queue backend for the simulation kernel.  `Auto` (the
    /// default) picks per run from the compiled program's expected peak
    /// queue occupancy; both concrete backends dispatch in identical
    /// `(time, seq)` order, so predictions are byte-identical across
    /// kinds and this is purely a performance knob.
    pub scheduler: SchedulerKind,
    /// Epoch coverage strategy: exact replay or representative-region
    /// simulation with weighted metric composition.
    pub strategy: SimStrategy,
    /// Remote data access model parameters.
    pub comm: CommParams,
    /// Network parameters.
    pub network: NetworkParams,
    /// Barrier model parameters.
    pub barrier: BarrierParams,
    /// Multithreading extension (threads per processor).
    pub multithread: MultithreadParams,
}

impl Default for SimParams {
    fn default() -> SimParams {
        SimParams {
            mips_ratio: 1.0,
            policy: ServicePolicy::default(),
            size_mode: SizeMode::default(),
            record_mode: RecordMode::default(),
            scheduler: SchedulerKind::Auto,
            strategy: SimStrategy::Exact,
            comm: CommParams::default(),
            network: NetworkParams::default(),
            barrier: BarrierParams::default(),
            multithread: MultithreadParams::default(),
        }
    }
}

impl SimParams {
    /// Validates ranges (positive ratios, nonzero poll interval, ...).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.mips_ratio.is_finite() && self.mips_ratio > 0.0) {
            return Err(format!(
                "MipsRatio must be positive, got {}",
                self.mips_ratio
            ));
        }
        if let ServicePolicy::Poll { interval } = self.policy {
            if interval.is_zero() {
                return Err("poll interval must be nonzero".to_string());
            }
        }
        if let BarrierAlgorithm::Tree { arity } = self.barrier.algorithm {
            if arity < 2 {
                return Err(format!("tree barrier arity must be >= 2, got {arity}"));
            }
        }
        if let SimStrategy::Representative {
            max_clusters,
            tolerance,
        } = self.strategy
        {
            if max_clusters == 0 {
                return Err("representative max_clusters must be >= 1".to_string());
            }
            if !(tolerance.is_finite() && tolerance >= 0.0) {
                return Err(format!(
                    "representative tolerance must be non-negative, got {tolerance}"
                ));
            }
        }
        if self.network.contention.alpha < 0.0 || !self.network.contention.alpha.is_finite() {
            return Err("contention alpha must be non-negative".to_string());
        }
        self.multithread.validate()?;
        Ok(())
    }

    /// Serializes to the `key = value` config text form.
    pub fn to_config_text(&self) -> String {
        let mut s = String::new();
        use fmt::Write;
        let _ = writeln!(s, "# ExtraP-rs simulation parameters");
        let _ = writeln!(s, "MipsRatio = {}", self.mips_ratio);
        let _ = writeln!(
            s,
            "Policy = {}",
            match self.policy {
                ServicePolicy::NoInterrupt => "no-interrupt".to_string(),
                ServicePolicy::Interrupt => "interrupt".to_string(),
                ServicePolicy::Poll { interval } => format!("poll:{}", interval.as_us()),
            }
        );
        let _ = writeln!(
            s,
            "SizeMode = {}",
            match self.size_mode {
                SizeMode::Declared => "declared",
                SizeMode::Actual => "actual",
            }
        );
        let _ = writeln!(
            s,
            "RecordMode = {}",
            match self.record_mode {
                RecordMode::Full => "full",
                RecordMode::MetricsOnly => "metrics-only",
            }
        );
        let _ = writeln!(s, "Scheduler = {}", self.scheduler.as_str());
        let _ = writeln!(s, "Strategy = {}", self.strategy.label());
        let _ = writeln!(s, "CommStartupTime = {}", self.comm.startup.as_us());
        let _ = writeln!(s, "ByteTransferTime = {}", self.comm.byte_transfer.as_us());
        let _ = writeln!(s, "MsgConstructTime = {}", self.comm.construct.as_us());
        let _ = writeln!(s, "ServiceTime = {}", self.comm.service.as_us());
        let _ = writeln!(s, "ReceiveTime = {}", self.comm.receive.as_us());
        let _ = writeln!(s, "RequestBytes = {}", self.comm.request_bytes);
        let _ = writeln!(s, "ReplyHeaderBytes = {}", self.comm.reply_header_bytes);
        let _ = writeln!(s, "Topology = {}", self.network.topology.config_name());
        let _ = writeln!(s, "HopTime = {}", self.network.hop.as_us());
        let _ = writeln!(
            s,
            "Contention = {}",
            if self.network.contention.enabled {
                "on"
            } else {
                "off"
            }
        );
        let _ = writeln!(s, "ContentionAlpha = {}", self.network.contention.alpha);
        let _ = writeln!(s, "BarrierEntryTime = {}", self.barrier.entry.as_us());
        let _ = writeln!(s, "BarrierExitTime = {}", self.barrier.exit.as_us());
        let _ = writeln!(s, "BarrierCheckTime = {}", self.barrier.check.as_us());
        let _ = writeln!(
            s,
            "BarrierExitCheckTime = {}",
            self.barrier.exit_check.as_us()
        );
        let _ = writeln!(s, "BarrierModelTime = {}", self.barrier.model.as_us());
        let _ = writeln!(
            s,
            "BarrierByMsgs = {}",
            if self.barrier.by_msgs { 1 } else { 0 }
        );
        let _ = writeln!(s, "BarrierMsgSize = {}", self.barrier.msg_size);
        let _ = writeln!(
            s,
            "BarrierAlgorithm = {}",
            match self.barrier.algorithm {
                BarrierAlgorithm::Linear => "linear".to_string(),
                BarrierAlgorithm::Tree { arity } => format!("tree:{arity}"),
                BarrierAlgorithm::Hardware => "hardware".to_string(),
            }
        );
        let _ = writeln!(
            s,
            "BarrierHardwareLatency = {}",
            self.barrier.hardware_latency.as_us()
        );
        let _ = writeln!(s, "{}", self.multithread.to_config_fragment());
        s
    }

    /// Parses the `key = value` config text form.  Unknown keys are
    /// errors; omitted keys keep their defaults.
    pub fn from_config_text(text: &str) -> Result<SimParams, String> {
        let p = SimParams::from_config_text_unvalidated(text)?;
        p.validate()?;
        Ok(p)
    }

    /// Parses the config text form **without** running [`validate`].
    ///
    /// Syntax errors (malformed lines, unknown keys, unparsable values)
    /// are still rejected, but semantically out-of-range values (zero
    /// `MipsRatio`, negative contention alpha, …) parse successfully —
    /// this is the entry point for `extrap-lint`, which wants to report
    /// every range violation as a diagnostic rather than stop at the
    /// first.
    ///
    /// [`validate`]: SimParams::validate
    pub fn from_config_text_unvalidated(text: &str) -> Result<SimParams, String> {
        let mut p = SimParams::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key = value", lineno + 1))?;
            let key = key.trim();
            let value = value.trim();
            let us = |v: &str| -> Result<DurationNs, String> {
                v.parse::<f64>()
                    .map(DurationNs::from_us)
                    .map_err(|e| format!("line {}: bad number {v:?}: {e}", lineno + 1))
            };
            let int = |v: &str| -> Result<u32, String> {
                v.parse::<u32>()
                    .map_err(|e| format!("line {}: bad integer {v:?}: {e}", lineno + 1))
            };
            match key {
                "MipsRatio" => {
                    p.mips_ratio = value
                        .parse()
                        .map_err(|e| format!("line {}: bad MipsRatio: {e}", lineno + 1))?
                }
                "Policy" => {
                    p.policy = match value {
                        "no-interrupt" => ServicePolicy::NoInterrupt,
                        "interrupt" => ServicePolicy::Interrupt,
                        other => {
                            let interval = other.strip_prefix("poll:").ok_or_else(|| {
                                format!("line {}: bad policy {other:?}", lineno + 1)
                            })?;
                            ServicePolicy::Poll {
                                interval: us(interval)?,
                            }
                        }
                    }
                }
                "SizeMode" => {
                    p.size_mode = match value {
                        "declared" => SizeMode::Declared,
                        "actual" => SizeMode::Actual,
                        other => {
                            return Err(format!("line {}: bad size mode {other:?}", lineno + 1))
                        }
                    }
                }
                "RecordMode" => {
                    p.record_mode = match value {
                        "full" => RecordMode::Full,
                        "metrics-only" => RecordMode::MetricsOnly,
                        other => {
                            return Err(format!("line {}: bad record mode {other:?}", lineno + 1))
                        }
                    }
                }
                "Scheduler" => {
                    p.scheduler = SchedulerKind::parse(value)
                        .ok_or_else(|| format!("line {}: bad scheduler {value:?}", lineno + 1))?
                }
                "Strategy" => {
                    p.strategy = SimStrategy::parse(value).ok_or_else(|| {
                        format!(
                            "line {}: bad strategy {value:?} (valid: {})",
                            lineno + 1,
                            SimStrategy::VALID
                        )
                    })?
                }
                "CommStartupTime" => p.comm.startup = us(value)?,
                "ByteTransferTime" => p.comm.byte_transfer = us(value)?,
                "MsgConstructTime" => p.comm.construct = us(value)?,
                "ServiceTime" => p.comm.service = us(value)?,
                "ReceiveTime" => p.comm.receive = us(value)?,
                "RequestBytes" => p.comm.request_bytes = int(value)?,
                "ReplyHeaderBytes" => p.comm.reply_header_bytes = int(value)?,
                "Topology" => {
                    p.network.topology = Topology::parse_config_name(value)
                        .ok_or_else(|| format!("line {}: bad topology {value:?}", lineno + 1))?
                }
                "HopTime" => p.network.hop = us(value)?,
                "Contention" => {
                    p.network.contention.enabled = match value {
                        "on" | "1" | "true" => true,
                        "off" | "0" | "false" => false,
                        other => {
                            return Err(format!(
                                "line {}: bad contention flag {other:?}",
                                lineno + 1
                            ))
                        }
                    }
                }
                "ContentionAlpha" => {
                    p.network.contention.alpha = value
                        .parse()
                        .map_err(|e| format!("line {}: bad alpha: {e}", lineno + 1))?
                }
                "BarrierEntryTime" => p.barrier.entry = us(value)?,
                "BarrierExitTime" => p.barrier.exit = us(value)?,
                "BarrierCheckTime" => p.barrier.check = us(value)?,
                "BarrierExitCheckTime" => p.barrier.exit_check = us(value)?,
                "BarrierModelTime" => p.barrier.model = us(value)?,
                "BarrierByMsgs" => p.barrier.by_msgs = int(value)? != 0,
                "BarrierMsgSize" => p.barrier.msg_size = int(value)?,
                "BarrierAlgorithm" => {
                    p.barrier.algorithm = match value {
                        "linear" => BarrierAlgorithm::Linear,
                        "hardware" => BarrierAlgorithm::Hardware,
                        other => {
                            let arity = other
                                .strip_prefix("tree:")
                                .and_then(|a| a.parse().ok())
                                .ok_or_else(|| {
                                    format!("line {}: bad barrier algorithm {other:?}", lineno + 1)
                                })?;
                            BarrierAlgorithm::Tree { arity }
                        }
                    }
                }
                "BarrierHardwareLatency" => p.barrier.hardware_latency = us(value)?,
                other => {
                    if !p.multithread.apply_config_key(other, value)? {
                        return Err(format!("line {}: unknown key {other:?}", lineno + 1));
                    }
                }
            }
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let b = BarrierParams::default();
        assert_eq!(b.entry, DurationNs::from_us(5.0));
        assert_eq!(b.exit, DurationNs::from_us(5.0));
        assert_eq!(b.check, DurationNs::from_us(2.0));
        assert_eq!(b.exit_check, DurationNs::from_us(2.0));
        assert_eq!(b.model, DurationNs::from_us(10.0));
        assert!(b.by_msgs);
        assert_eq!(b.msg_size, 128);
    }

    #[test]
    fn config_text_round_trips() {
        let mut p = SimParams::default();
        p.mips_ratio = 0.41;
        p.policy = ServicePolicy::poll_us(100.0);
        p.size_mode = SizeMode::Actual;
        p.scheduler = SchedulerKind::Calendar;
        p.comm = p.comm.with_bandwidth_mbps(200.0).with_startup_us(10.0);
        p.network.topology = Topology::Mesh2D;
        p.barrier.algorithm = BarrierAlgorithm::Tree { arity: 4 };
        p.barrier.by_msgs = false;
        p.strategy = SimStrategy::Representative {
            max_clusters: 32,
            tolerance: 0.125,
        };
        let text = p.to_config_text();
        let back = SimParams::from_config_text(&text).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn strategy_spellings() {
        assert_eq!(SimStrategy::parse("exact"), Some(SimStrategy::Exact));
        assert_eq!(
            SimStrategy::parse("repr"),
            Some(SimStrategy::representative())
        );
        assert_eq!(
            SimStrategy::parse("repr:32"),
            Some(SimStrategy::Representative {
                max_clusters: 32,
                tolerance: SimStrategy::DEFAULT_TOLERANCE,
            })
        );
        assert_eq!(
            SimStrategy::parse("repr:8:0.1"),
            Some(SimStrategy::Representative {
                max_clusters: 8,
                tolerance: 0.1,
            })
        );
        assert_eq!(SimStrategy::parse("repr:"), None);
        assert_eq!(SimStrategy::parse("approximate"), None);
        for s in ["exact", "repr:16:0.05", "repr:8:0.1"] {
            assert_eq!(SimStrategy::parse(s).unwrap().label(), s);
        }
    }

    #[test]
    fn strategy_validation() {
        let mut p = SimParams::default();
        p.strategy = SimStrategy::Representative {
            max_clusters: 0,
            tolerance: 0.05,
        };
        assert!(p.validate().is_err());
        p.strategy = SimStrategy::Representative {
            max_clusters: 4,
            tolerance: f64::NAN,
        };
        assert!(p.validate().is_err());
        p.strategy = SimStrategy::representative();
        assert!(p.validate().is_ok());
    }

    #[test]
    fn unknown_key_rejected() {
        assert!(SimParams::from_config_text("Bogus = 1\n").is_err());
    }

    #[test]
    fn malformed_line_rejected() {
        assert!(SimParams::from_config_text("MipsRatio 1.0\n").is_err());
        assert!(SimParams::from_config_text("MipsRatio = abc\n").is_err());
    }

    #[test]
    fn empty_config_is_defaults() {
        let p = SimParams::from_config_text("# nothing\n\n").unwrap();
        assert_eq!(p, SimParams::default());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut p = SimParams::default();
        p.mips_ratio = 0.0;
        assert!(p.validate().is_err());

        let mut p = SimParams::default();
        p.policy = ServicePolicy::Poll {
            interval: DurationNs::ZERO,
        };
        assert!(p.validate().is_err());

        let mut p = SimParams::default();
        p.barrier.algorithm = BarrierAlgorithm::Tree { arity: 1 };
        assert!(p.validate().is_err());

        let mut p = SimParams::default();
        p.network.contention.alpha = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn unvalidated_parse_accepts_out_of_range_values() {
        // Validation rejects MipsRatio = 0 …
        assert!(SimParams::from_config_text("MipsRatio = 0\n").is_err());
        // … but the lenient parse hands it over for linting.
        let p = SimParams::from_config_text_unvalidated("MipsRatio = 0\n").unwrap();
        assert_eq!(p.mips_ratio, 0.0);
        assert!(p.validate().is_err());
        // Syntax errors stay errors in both forms.
        assert!(SimParams::from_config_text_unvalidated("Bogus = 1\n").is_err());
    }

    #[test]
    fn policy_labels() {
        assert_eq!(ServicePolicy::NoInterrupt.label(), "no-interrupt");
        assert_eq!(ServicePolicy::Interrupt.label(), "interrupt");
        assert_eq!(ServicePolicy::poll_us(100.0).label(), "poll(100us)");
    }

    #[test]
    fn free_params_are_zero_cost() {
        let c = CommParams::free();
        assert!(c.startup.is_zero() && c.byte_transfer.is_zero() && c.construct.is_zero());
        let b = BarrierParams::free();
        assert!(b.entry.is_zero() && b.model.is_zero() && !b.by_msgs);
    }
}
