#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # extrap-core — the ExtraP performance-extrapolation models
//!
//! This crate is the paper's primary contribution (§3.3): a trace-driven
//! simulation that takes the *translated* per-thread traces of an
//! *n*-thread program (produced by `extrap-trace` from a 1-processor
//! measurement) and predicts the program's execution on an *n*-processor
//! target machine described by three composable models:
//!
//! * the **processor model** ([`processor`]) — computation-time scaling by
//!   `MipsRatio` and the remote-request **service policy** (no-interrupt,
//!   interrupt, or polling);
//! * the **remote data access model** ([`network`]) — request/reply
//!   messages with start-up, per-byte, and construction costs over a
//!   parameterized interconnect topology with analytic contention;
//! * the **barrier model** ([`barrier`]) — a linear master–slave barrier
//!   with the Table 1 cost parameters (tree and hardware variants are
//!   provided as the paper's "easily substituted" alternatives).
//!
//! The top-level entry point is the [`Extrapolator`] session builder
//! (the [`extrapolate()`] / [`extrapolate_program()`] free functions
//! remain as thin wrappers); machine presets (including the paper's CM-5
//! parameter set, Table 3) live in [`machine`], and whole parameter
//! grids run in parallel through the [`sweep`] engine.

// Parameter sets are built by mutating a preset/default — that is the
// intended API style ("take the CM-5 and change MipsRatio").
#![allow(clippy::field_reassign_with_default)]

pub mod barrier;
pub mod cluster;
pub mod compare;
pub mod engine;
pub mod extrapolate;
pub mod machine;
pub mod metrics;
pub mod multithread;
pub mod network;
pub mod params;
pub mod processor;
pub mod repr;
pub mod sanitizer;
pub mod scalability;
pub mod session;
pub mod streaming;
pub mod sweep;

pub use cluster::{extrapolate_clustered, ClusterParams, ClusteredNetwork};
pub use compare::{diff, DeltaNs, PredictionDiff};
pub use engine::{
    run_compiled, run_compiled_scratch, run_compiled_with_network, run_with_network, ExtrapError,
    SimScratch,
};
pub use extrap_sim::SchedulerKind;
pub use extrapolate::{extrapolate, extrapolate_program};
pub use metrics::{Prediction, ProcBreakdown};
pub use multithread::{MultithreadParams, ThreadMapping};
pub use network::state::NetModel;
pub use network::topology::Topology;
pub use params::{
    BarrierAlgorithm, BarrierParams, CommParams, ContentionParams, NetworkParams, RecordMode,
    ServicePolicy, SimParams, SimStrategy, SizeMode,
};
pub use processor::{CompiledProgram, CompiledThread, IncrementalCompiler};
pub use repr::{ReprCluster, ReprPlan};
pub use scalability::{Scalability, ScalePoint};
pub use session::{Extrapolator, RunInput};
pub use streaming::{compile_program_stream, compile_set_stream};
pub use sweep::{
    claim_chunk, parallel_map, parallel_map_with, sweep, sweep_cancellable, sweep_streaming,
    sweep_streaming_cancellable, CachedTrace, CancelToken, SharedTraceCache, SweepError, SweepGrid,
    SweepJob, TraceValidator,
};
