//! The analytic contention model.
//!
//! The paper deliberately does *not* simulate link allocation ("more
//! detailed simulation of contention would severely impact the speed of
//! performance extrapolation").  Instead, each message's wire time is
//! multiplied by a factor computed from the intensity of concurrent use
//! of the interconnect at injection time.

use crate::network::topology::Topology;
use crate::params::ContentionParams;

/// Computes the delay factor for a message injected while `in_flight`
/// *other* messages are traversing the network of `n` processors.
///
/// `factor = 1 + alpha * in_flight / capacity(topology, n)` — linear in
/// the excess load, normalized by the topology's concurrency capacity, so
/// a bus saturates immediately while a fat tree absorbs `n` concurrent
/// messages before slowing down.
pub fn delay_factor(
    params: &ContentionParams,
    topology: Topology,
    n: usize,
    in_flight: usize,
) -> f64 {
    if !params.enabled || in_flight == 0 {
        return 1.0;
    }
    1.0 + params.alpha * in_flight as f64 / topology.capacity(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(alpha: f64) -> ContentionParams {
        ContentionParams {
            enabled: true,
            alpha,
        }
    }

    #[test]
    fn no_load_means_no_delay() {
        assert_eq!(delay_factor(&params(0.5), Topology::Bus, 8, 0), 1.0);
    }

    #[test]
    fn disabled_model_is_unit_factor() {
        let p = ContentionParams {
            enabled: false,
            alpha: 10.0,
        };
        assert_eq!(delay_factor(&p, Topology::Bus, 8, 100), 1.0);
    }

    #[test]
    fn factor_grows_linearly_with_load() {
        let p = params(0.5);
        let f1 = delay_factor(&p, Topology::Crossbar, 8, 4);
        let f2 = delay_factor(&p, Topology::Crossbar, 8, 8);
        assert!(f2 > f1);
        assert!((f1 - (1.0 + 0.5 * 4.0 / 8.0)).abs() < 1e-12);
        assert!((f2 - (1.0 + 0.5 * 8.0 / 8.0)).abs() < 1e-12);
    }

    #[test]
    fn bus_contends_harder_than_fat_tree() {
        let p = params(0.5);
        let bus = delay_factor(&p, Topology::Bus, 32, 8);
        let ft = delay_factor(&p, Topology::FatTree { arity: 4 }, 32, 8);
        assert!(bus > ft);
    }
}
