//! Interconnect topologies: hop counts and concurrency capacities.

use extrap_time::ProcId;

/// Supported interconnection network topologies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Topology {
    /// A single shared medium; every message traverses one "hop" and the
    /// whole network is one contention domain.
    Bus,
    /// A full crossbar: one hop, contention only at endpoints.
    Crossbar,
    /// A 2-D mesh on the smallest near-square grid holding all
    /// processors; dimension-ordered (XY) routing.
    Mesh2D,
    /// A binary hypercube (processor count rounded up to a power of two);
    /// e-cube routing, hops = Hamming distance.
    Hypercube,
    /// A k-ary fat tree (the CM-5's data network is a 4-ary fat tree);
    /// hops = up to the least common ancestor and back down.
    FatTree {
        /// Tree arity (≥ 2).
        arity: u32,
    },
}

impl Default for Topology {
    fn default() -> Topology {
        Topology::FatTree { arity: 4 }
    }
}

impl Topology {
    /// Hop count between two processors in a machine of `n` processors.
    ///
    /// # Panics
    /// Panics if either processor is out of range.
    pub fn hops(&self, n: usize, a: ProcId, b: ProcId) -> u32 {
        assert!(a.index() < n && b.index() < n, "proc out of range");
        if a == b {
            return 0;
        }
        match *self {
            Topology::Bus | Topology::Crossbar => 1,
            Topology::Mesh2D => {
                let cols = mesh_cols(n);
                let (ax, ay) = (a.index() % cols, a.index() / cols);
                let (bx, by) = (b.index() % cols, b.index() / cols);
                (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
            }
            Topology::Hypercube => (a.index() ^ b.index()).count_ones(),
            Topology::FatTree { arity } => {
                let arity = arity.max(2) as usize;
                // Height of the lowest common ancestor: number of base-k
                // digit positions (from the leaves) that must be stripped
                // until the two leaf indices coincide.
                let mut x = a.index();
                let mut y = b.index();
                let mut up = 0u32;
                while x != y {
                    x /= arity;
                    y /= arity;
                    up += 1;
                }
                2 * up
            }
        }
    }

    /// The topology's concurrency capacity in a machine of `n` processors
    /// — how many messages can reasonably be in flight before contention
    /// delays grow.  Used to normalize the analytic contention factor.
    pub fn capacity(&self, n: usize) -> f64 {
        let n = n.max(1) as f64;
        match *self {
            Topology::Bus => 1.0,
            Topology::Crossbar => n,
            // Bisection-width style scaling.
            Topology::Mesh2D => n.sqrt(),
            Topology::Hypercube => n / 2.0,
            // A fat tree keeps full bisection bandwidth.
            Topology::FatTree { .. } => n,
        }
    }

    /// Longest hop distance in a machine of `n` processors.
    pub fn diameter(&self, n: usize) -> u32 {
        if n <= 1 {
            return 0;
        }
        match *self {
            Topology::Bus | Topology::Crossbar => 1,
            Topology::Mesh2D => {
                let cols = mesh_cols(n);
                let rows = n.div_ceil(cols);
                (cols - 1 + rows - 1) as u32
            }
            Topology::Hypercube => (usize::BITS - (n - 1).leading_zeros()).max(1),
            Topology::FatTree { arity } => {
                let arity = arity.max(2) as usize;
                let mut levels = 0u32;
                let mut span = 1usize;
                while span < n {
                    span *= arity;
                    levels += 1;
                }
                2 * levels
            }
        }
    }

    /// Stable name for config files.
    pub fn config_name(&self) -> String {
        match *self {
            Topology::Bus => "bus".to_string(),
            Topology::Crossbar => "crossbar".to_string(),
            Topology::Mesh2D => "mesh2d".to_string(),
            Topology::Hypercube => "hypercube".to_string(),
            Topology::FatTree { arity } => format!("fattree:{arity}"),
        }
    }

    /// Parses a config-file name.
    pub fn parse_config_name(s: &str) -> Option<Topology> {
        match s {
            "bus" => Some(Topology::Bus),
            "crossbar" => Some(Topology::Crossbar),
            "mesh2d" => Some(Topology::Mesh2D),
            "hypercube" => Some(Topology::Hypercube),
            other => {
                let arity: u32 = other.strip_prefix("fattree:")?.parse().ok()?;
                (arity >= 2).then_some(Topology::FatTree { arity })
            }
        }
    }
}

/// Number of columns of the near-square grid for an `n`-processor mesh.
pub fn mesh_cols(n: usize) -> usize {
    if n == 0 {
        return 1;
    }
    let mut c = (n as f64).sqrt().ceil() as usize;
    if c == 0 {
        c = 1;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcId {
        ProcId::from_index(i)
    }

    #[test]
    fn self_hops_are_zero() {
        for t in [
            Topology::Bus,
            Topology::Crossbar,
            Topology::Mesh2D,
            Topology::Hypercube,
            Topology::FatTree { arity: 4 },
        ] {
            assert_eq!(t.hops(8, p(3), p(3)), 0);
        }
    }

    #[test]
    fn bus_and_crossbar_are_single_hop() {
        assert_eq!(Topology::Bus.hops(8, p(0), p(7)), 1);
        assert_eq!(Topology::Crossbar.hops(8, p(2), p(5)), 1);
    }

    #[test]
    fn mesh_uses_manhattan_distance() {
        // 16 procs -> 4x4 grid; proc 0 = (0,0), proc 15 = (3,3).
        assert_eq!(Topology::Mesh2D.hops(16, p(0), p(15)), 6);
        assert_eq!(Topology::Mesh2D.hops(16, p(0), p(3)), 3);
        assert_eq!(Topology::Mesh2D.hops(16, p(0), p(4)), 1); // (0,0)->(0,1)
    }

    #[test]
    fn hypercube_uses_hamming_distance() {
        assert_eq!(Topology::Hypercube.hops(8, p(0), p(7)), 3);
        assert_eq!(Topology::Hypercube.hops(8, p(5), p(6)), 2);
        assert_eq!(Topology::Hypercube.hops(8, p(1), p(0)), 1);
    }

    #[test]
    fn fattree_counts_up_and_down() {
        let ft = Topology::FatTree { arity: 4 };
        // Siblings under one leaf switch: up 1, down 1.
        assert_eq!(ft.hops(16, p(0), p(3)), 2);
        // Different leaf switches: up 2, down 2.
        assert_eq!(ft.hops(16, p(0), p(4)), 4);
        assert_eq!(ft.hops(16, p(0), p(15)), 4);
    }

    #[test]
    fn hops_are_symmetric() {
        let topos = [
            Topology::Bus,
            Topology::Crossbar,
            Topology::Mesh2D,
            Topology::Hypercube,
            Topology::FatTree { arity: 2 },
        ];
        for t in topos {
            for a in 0..12 {
                for b in 0..12 {
                    assert_eq!(
                        t.hops(12, p(a), p(b)),
                        t.hops(12, p(b), p(a)),
                        "{t:?} asymmetric between {a} and {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn capacities_scale_sensibly() {
        assert_eq!(Topology::Bus.capacity(32), 1.0);
        assert_eq!(Topology::Crossbar.capacity(32), 32.0);
        assert!((Topology::Mesh2D.capacity(16) - 4.0).abs() < 1e-12);
        assert_eq!(Topology::Hypercube.capacity(32), 16.0);
        assert_eq!(Topology::FatTree { arity: 4 }.capacity(32), 32.0);
    }

    #[test]
    fn diameters() {
        assert_eq!(Topology::Bus.diameter(32), 1);
        assert_eq!(Topology::Mesh2D.diameter(16), 6);
        assert_eq!(Topology::Hypercube.diameter(8), 3);
        assert_eq!(Topology::FatTree { arity: 4 }.diameter(16), 4);
        assert_eq!(Topology::FatTree { arity: 4 }.diameter(1), 0);
    }

    #[test]
    fn config_names_round_trip() {
        for t in [
            Topology::Bus,
            Topology::Crossbar,
            Topology::Mesh2D,
            Topology::Hypercube,
            Topology::FatTree { arity: 4 },
            Topology::FatTree { arity: 2 },
        ] {
            assert_eq!(Topology::parse_config_name(&t.config_name()), Some(t));
        }
        assert_eq!(Topology::parse_config_name("fattree:1"), None);
        assert_eq!(Topology::parse_config_name("ring"), None);
    }
}
