//! Time-based network state: in-flight message tracking and wire-time
//! computation.

use crate::network::contention::delay_factor;
use crate::params::NetworkParams;
use extrap_time::{DurationNs, ProcId, TimeNs};

/// Aggregate network statistics for a simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetworkStats {
    /// Messages injected.
    pub messages: u64,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Highest number of simultaneously in-flight messages.
    pub max_in_flight: usize,
    /// Sum of contention delay factors over all messages (mean factor =
    /// `factor_sum / messages`).
    pub factor_sum: f64,
}

impl NetworkStats {
    /// Mean contention delay factor across all messages (1.0 if none).
    pub fn mean_factor(&self) -> f64 {
        if self.messages == 0 {
            1.0
        } else {
            self.factor_sum / self.messages as f64
        }
    }
}

/// A pluggable interconnect model for the trace-driven engine.
///
/// The engine calls [`NetModel::inject`] when a message enters the
/// network (returning its arrival time at the destination's network
/// interface) and [`NetModel::complete`] when the arrival event fires.
/// `extrap-core` ships the paper's *analytic* contention model
/// ([`NetworkState`]); `extrap-refsim` substitutes a link-level
/// simulation through the same interface — the exact model swap §3.3.2
/// describes.
pub trait NetModel {
    /// Injects a `bytes`-payload message at `now`; returns its arrival
    /// time at `dst`.
    fn inject(&mut self, now: TimeNs, src: ProcId, dst: ProcId, bytes: u32) -> TimeNs;
    /// Marks a previously injected message as delivered.  The endpoints
    /// are repeated so layered models (e.g. clustering) can route the
    /// completion to the right sub-model.
    fn complete(&mut self, src: ProcId, dst: ProcId);
    /// Aggregate statistics so far.
    fn stats(&self) -> NetworkStats;
}

/// The interconnect's simulation state.
///
/// The engine calls [`NetworkState::inject`] when a message enters the
/// network and [`NetworkState::complete`] when its arrival event fires;
/// between the two the message contributes to the concurrent load that
/// slows other messages down.
#[derive(Clone, Debug)]
pub struct NetworkState {
    params: NetworkParams,
    byte_transfer: DurationNs,
    n_procs: usize,
    in_flight: usize,
    stats: NetworkStats,
}

impl NetworkState {
    /// Creates the network for `n_procs` processors.
    pub fn new(n_procs: usize, params: NetworkParams, byte_transfer: DurationNs) -> NetworkState {
        NetworkState {
            params,
            byte_transfer,
            n_procs,
            in_flight: 0,
            stats: NetworkStats::default(),
        }
    }

    /// Injects a message of `bytes` payload from `src` to `dst` at `now`;
    /// returns its arrival time at the destination's network interface.
    ///
    /// Same-processor messages (multithreaded mode) bypass the wire
    /// entirely and arrive instantly.
    pub fn inject(&mut self, now: TimeNs, src: ProcId, dst: ProcId, bytes: u32) -> TimeNs {
        self.stats.messages += 1;
        self.stats.bytes += u64::from(bytes);
        if src == dst {
            self.stats.factor_sum += 1.0;
            return now;
        }
        let hops = self.params.topology.hops(self.n_procs, src, dst);
        let wire = self.params.hop * u64::from(hops) + self.byte_transfer * u64::from(bytes);
        let factor = delay_factor(
            &self.params.contention,
            self.params.topology,
            self.n_procs,
            self.in_flight,
        );
        self.stats.factor_sum += factor;
        self.in_flight += 1;
        self.stats.max_in_flight = self.stats.max_in_flight.max(self.in_flight);
        now + wire.scale(factor)
    }

    /// Records that a previously injected (non-local) message has reached
    /// its destination.
    pub fn complete(&mut self) {
        debug_assert!(self.in_flight > 0, "complete() without matching inject()");
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    /// Current number of in-flight messages.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Run statistics so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }
}

impl NetModel for NetworkState {
    fn inject(&mut self, now: TimeNs, src: ProcId, dst: ProcId, bytes: u32) -> TimeNs {
        NetworkState::inject(self, now, src, dst, bytes)
    }

    fn complete(&mut self, _src: ProcId, _dst: ProcId) {
        NetworkState::complete(self)
    }

    fn stats(&self) -> NetworkStats {
        NetworkState::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::topology::Topology;
    use crate::params::ContentionParams;

    fn net(contention: bool) -> NetworkState {
        NetworkState::new(
            8,
            NetworkParams {
                topology: Topology::Crossbar,
                hop: DurationNs(1_000),
                contention: ContentionParams {
                    enabled: contention,
                    alpha: 0.8,
                },
            },
            DurationNs(10),
        )
    }

    fn p(i: usize) -> ProcId {
        ProcId::from_index(i)
    }

    #[test]
    fn wire_time_is_hops_plus_bytes() {
        let mut n = net(false);
        // crossbar: 1 hop (1000ns) + 100 bytes * 10ns = 2000ns.
        let arrival = n.inject(TimeNs(0), p(0), p(1), 100);
        assert_eq!(arrival, TimeNs(2_000));
    }

    #[test]
    fn local_messages_are_instant() {
        let mut n = net(true);
        let arrival = n.inject(TimeNs(5), p(2), p(2), 1_000_000);
        assert_eq!(arrival, TimeNs(5));
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn concurrent_load_slows_messages() {
        let mut n = net(true);
        let first = n.inject(TimeNs(0), p(0), p(1), 100);
        let second = n.inject(TimeNs(0), p(2), p(3), 100);
        assert_eq!(first, TimeNs(2_000));
        // One message in flight: factor = 1 + 0.8 * 1/8 = 1.1.
        assert_eq!(second, TimeNs(2_200));
        n.complete();
        n.complete();
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net(true);
        n.inject(TimeNs(0), p(0), p(1), 100);
        n.inject(TimeNs(0), p(2), p(3), 50);
        assert_eq!(n.stats().messages, 2);
        assert_eq!(n.stats().bytes, 150);
        assert_eq!(n.stats().max_in_flight, 2);
        assert!(n.stats().mean_factor() > 1.0);
    }

    #[test]
    fn empty_stats_mean_factor_is_one() {
        assert_eq!(NetworkStats::default().mean_factor(), 1.0);
    }
}
