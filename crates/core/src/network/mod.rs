//! The remote data access model's network layer (§3.3.2).
//!
//! Remote accesses are represented as messages through a parameterized
//! interconnect.  Wire time is analytic (hop latency + per-byte transfer)
//! and the contention model multiplies it by a factor derived from the
//! concurrent network load tracked in simulation state — exactly the
//! "analytical expressions of remote access delay involving the contention
//! factors calculated from the simulation state" of the paper.

pub mod contention;
pub mod state;
pub mod topology;

pub use state::{NetworkState, NetworkStats};
pub use topology::Topology;
