//! Predicted performance metrics (§2: metrics are derived from the
//! predicted performance information `PI₂ᵖ`).

use crate::network::NetworkStats;
use extrap_time::{DurationNs, TimeNs};
use extrap_trace::TraceSet;

/// Per-thread (≡ per-processor when one thread runs per processor)
/// breakdown of where predicted time goes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProcBreakdown {
    /// Scaled computation time.
    pub compute: DurationNs,
    /// Time spent servicing other threads' remote requests.
    pub service: DurationNs,
    /// Message construction + startup overhead paid by this thread.
    pub send_overhead: DurationNs,
    /// Time blocked waiting for remote-read replies.
    pub remote_wait: DurationNs,
    /// Time waiting inside barriers (entry to exit).
    pub barrier_wait: DurationNs,
    /// Time waiting for the processor (multithreaded extrapolation only).
    pub sched_wait: DurationNs,
    /// The thread's predicted completion time.
    pub end_time: TimeNs,
    /// Remote reads issued.
    pub remote_reads: u64,
    /// Remote writes issued.
    pub remote_writes: u64,
}

impl ProcBreakdown {
    /// Communication-related time (send overhead + remote wait + service).
    pub fn comm_time(&self) -> DurationNs {
        self.send_overhead + self.remote_wait + self.service
    }
}

/// The result of one extrapolation run: the predicted performance
/// information and metrics for the target environment.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Threads in the program.
    pub n_threads: usize,
    /// Processors of the target machine.
    pub n_procs: usize,
    /// Per-thread time breakdown.
    pub per_thread: Vec<ProcBreakdown>,
    /// Interconnect statistics.
    pub network: NetworkStats,
    /// Barriers completed.
    pub barriers: usize,
    /// Simulator events dispatched (extrapolation cost metric).
    pub events_dispatched: u64,
    /// The extrapolated (predicted) event trace, timestamped in target
    /// time — the `PI₂ᵖ` of Figure 1.
    pub predicted: TraceSet,
}

impl Prediction {
    /// An empty prediction (zero threads).
    pub fn empty() -> Prediction {
        Prediction {
            n_threads: 0,
            n_procs: 0,
            per_thread: Vec::new(),
            network: NetworkStats::default(),
            barriers: 0,
            events_dispatched: 0,
            predicted: TraceSet { threads: vec![] },
        }
    }

    /// Predicted program execution time: the latest thread completion.
    pub fn exec_time(&self) -> TimeNs {
        self.per_thread
            .iter()
            .map(|t| t.end_time)
            .max()
            .unwrap_or(TimeNs::ZERO)
    }

    /// Speedup relative to a baseline (typically the predicted 1-processor
    /// time of the same problem).
    pub fn speedup_vs(&self, baseline: TimeNs) -> f64 {
        let t = self.exec_time().as_ns();
        if t == 0 {
            return f64::INFINITY;
        }
        baseline.as_ns() as f64 / t as f64
    }

    /// Total computation across threads.
    pub fn total_compute(&self) -> DurationNs {
        self.per_thread.iter().map(|t| t.compute).sum()
    }

    /// Total communication time across threads (send + wait + service).
    pub fn total_comm(&self) -> DurationNs {
        self.per_thread.iter().map(|t| t.comm_time()).sum()
    }

    /// Computation / communication ratio (∞ when there is no
    /// communication).
    pub fn comp_comm_ratio(&self) -> f64 {
        let comm = self.total_comm().as_ns();
        if comm == 0 {
            return f64::INFINITY;
        }
        self.total_compute().as_ns() as f64 / comm as f64
    }

    /// Mean processor utilization: compute time over `procs × makespan`.
    pub fn utilization(&self) -> f64 {
        let span = self.exec_time().as_ns() as f64 * self.n_procs.max(1) as f64;
        if span == 0.0 {
            return 1.0;
        }
        self.total_compute().as_ns() as f64 / span
    }

    /// Total barrier wait across threads.
    pub fn total_barrier_wait(&self) -> DurationNs {
        self.per_thread.iter().map(|t| t.barrier_wait).sum()
    }

    /// Total remote-reply wait across threads.
    pub fn total_remote_wait(&self) -> DurationNs {
        self.per_thread.iter().map(|t| t.remote_wait).sum()
    }
}

/// Speedup of `time` relative to `baseline` (free function for building
/// series in the experiment harness).
pub fn speedup(baseline: TimeNs, time: TimeNs) -> f64 {
    if time.as_ns() == 0 {
        return f64::INFINITY;
    }
    baseline.as_ns() as f64 / time.as_ns() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(ends: &[u64]) -> Prediction {
        Prediction {
            n_threads: ends.len(),
            n_procs: ends.len(),
            per_thread: ends
                .iter()
                .map(|&e| ProcBreakdown {
                    compute: DurationNs(e / 2),
                    end_time: TimeNs(e),
                    ..ProcBreakdown::default()
                })
                .collect(),
            network: NetworkStats::default(),
            barriers: 0,
            events_dispatched: 0,
            predicted: TraceSet { threads: vec![] },
        }
    }

    #[test]
    fn exec_time_is_max_end() {
        assert_eq!(pred(&[10, 30, 20]).exec_time(), TimeNs(30));
        assert_eq!(Prediction::empty().exec_time(), TimeNs::ZERO);
    }

    #[test]
    fn speedup_ratio() {
        let p = pred(&[50]);
        assert!((p.speedup_vs(TimeNs(100)) - 2.0).abs() < 1e-12);
        assert_eq!(speedup(TimeNs(100), TimeNs(25)), 4.0);
        assert_eq!(speedup(TimeNs(100), TimeNs::ZERO), f64::INFINITY);
    }

    #[test]
    fn utilization_of_balanced_halves() {
        // Each thread computes half its end time.
        let p = pred(&[100, 100]);
        assert!((p.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn comp_comm_ratio_infinite_without_comm() {
        assert_eq!(pred(&[10]).comp_comm_ratio(), f64::INFINITY);
    }

    #[test]
    fn breakdown_comm_time_sums_parts() {
        let b = ProcBreakdown {
            send_overhead: DurationNs(5),
            remote_wait: DurationNs(7),
            service: DurationNs(11),
            ..ProcBreakdown::default()
        };
        assert_eq!(b.comm_time(), DurationNs(23));
    }
}
