//! The multithreading extension (§3.3.1 / §6): extrapolating an
//! *n*-thread, 1-processor run to an *n*-thread, *m*-processor target
//! with `m <= n`, where several threads share a processor.
//!
//! Thread-to-processor assignment is static (the pC++ runtime allocates
//! threads to processors once).  Compute segments of co-located threads
//! serialize on their processor, context switches cost
//! [`MultithreadParams::switch_cost`], and messages between co-located
//! threads bypass the interconnect.

use extrap_time::{DurationNs, ProcId, ThreadId};

/// Static thread-to-processor assignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ThreadMapping {
    /// One thread per processor — the plain extrapolation of the paper's
    /// main experiments (`m = n`).
    #[default]
    OnePerProc,
    /// Contiguous blocks of threads per processor: with `procs = m`,
    /// thread `t` runs on processor `t / ceil(n/m)`.
    Block {
        /// Processor count `m`.
        procs: usize,
    },
    /// Round-robin assignment: thread `t` runs on processor `t % m`.
    Cyclic {
        /// Processor count `m`.
        procs: usize,
    },
}

impl ThreadMapping {
    /// Number of processors for a program of `n_threads` threads.
    pub fn n_procs(&self, n_threads: usize) -> usize {
        match *self {
            ThreadMapping::OnePerProc => n_threads,
            ThreadMapping::Block { procs } | ThreadMapping::Cyclic { procs } => {
                procs.min(n_threads).max(1)
            }
        }
    }

    /// The processor a thread runs on.
    pub fn proc_of(&self, thread: ThreadId, n_threads: usize) -> ProcId {
        let t = thread.index();
        debug_assert!(t < n_threads);
        match *self {
            ThreadMapping::OnePerProc => ProcId::from_index(t),
            ThreadMapping::Block { procs } => {
                let m = procs.min(n_threads).max(1);
                let per = n_threads.div_ceil(m);
                ProcId::from_index(t / per)
            }
            ThreadMapping::Cyclic { procs } => {
                let m = procs.min(n_threads).max(1);
                ProcId::from_index(t % m)
            }
        }
    }
}

/// Parameters of the multithreading extension.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MultithreadParams {
    /// Thread-to-processor mapping.
    pub mapping: ThreadMapping,
    /// Cost of a context switch when a processor changes the running
    /// thread.
    pub switch_cost: DurationNs,
}

impl Default for MultithreadParams {
    fn default() -> MultithreadParams {
        MultithreadParams {
            mapping: ThreadMapping::OnePerProc,
            switch_cost: DurationNs::from_us(10.0),
        }
    }
}

impl MultithreadParams {
    /// Validates the parameter set.
    pub fn validate(&self) -> Result<(), String> {
        match self.mapping {
            ThreadMapping::Block { procs } | ThreadMapping::Cyclic { procs } if procs == 0 => {
                Err("thread mapping needs at least one processor".to_string())
            }
            _ => Ok(()),
        }
    }

    /// Config-file fragment (consumed by `SimParams::to_config_text`).
    pub fn to_config_fragment(&self) -> String {
        let mapping = match self.mapping {
            ThreadMapping::OnePerProc => "one-per-proc".to_string(),
            ThreadMapping::Block { procs } => format!("block:{procs}"),
            ThreadMapping::Cyclic { procs } => format!("cyclic:{procs}"),
        };
        format!(
            "ThreadMapping = {mapping}\nSwitchCost = {}",
            self.switch_cost.as_us()
        )
    }

    /// Applies one config key; returns `Ok(false)` if the key is not a
    /// multithread key.
    pub fn apply_config_key(&mut self, key: &str, value: &str) -> Result<bool, String> {
        match key {
            "ThreadMapping" => {
                self.mapping = match value {
                    "one-per-proc" => ThreadMapping::OnePerProc,
                    other => {
                        if let Some(p) = other.strip_prefix("block:") {
                            ThreadMapping::Block {
                                procs: p.parse().map_err(|e| format!("bad mapping: {e}"))?,
                            }
                        } else if let Some(p) = other.strip_prefix("cyclic:") {
                            ThreadMapping::Cyclic {
                                procs: p.parse().map_err(|e| format!("bad mapping: {e}"))?,
                            }
                        } else {
                            return Err(format!("bad thread mapping {other:?}"));
                        }
                    }
                };
                Ok(true)
            }
            "SwitchCost" => {
                let us: f64 = value.parse().map_err(|e| format!("bad SwitchCost: {e}"))?;
                self.switch_cost = DurationNs::from_us(us);
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_per_proc_is_identity() {
        let m = ThreadMapping::OnePerProc;
        assert_eq!(m.n_procs(8), 8);
        for t in 0..8 {
            assert_eq!(m.proc_of(ThreadId::from_index(t), 8).index(), t);
        }
    }

    #[test]
    fn block_mapping_groups_contiguously() {
        let m = ThreadMapping::Block { procs: 2 };
        assert_eq!(m.n_procs(8), 2);
        let procs: Vec<usize> = (0..8)
            .map(|t| m.proc_of(ThreadId::from_index(t), 8).index())
            .collect();
        assert_eq!(procs, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn cyclic_mapping_round_robins() {
        let m = ThreadMapping::Cyclic { procs: 3 };
        let procs: Vec<usize> = (0..6)
            .map(|t| m.proc_of(ThreadId::from_index(t), 6).index())
            .collect();
        assert_eq!(procs, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn mapping_never_exceeds_thread_count() {
        let m = ThreadMapping::Block { procs: 100 };
        assert_eq!(m.n_procs(4), 4);
    }

    #[test]
    fn uneven_block_mapping_covers_all_procs_or_fewer() {
        let m = ThreadMapping::Block { procs: 3 };
        // 7 threads over 3 procs: ceil(7/3)=3 -> [0,0,0,1,1,1,2].
        let procs: Vec<usize> = (0..7)
            .map(|t| m.proc_of(ThreadId::from_index(t), 7).index())
            .collect();
        assert_eq!(procs, vec![0, 0, 0, 1, 1, 1, 2]);
    }

    #[test]
    fn zero_proc_mapping_rejected() {
        let p = MultithreadParams {
            mapping: ThreadMapping::Block { procs: 0 },
            switch_cost: DurationNs::ZERO,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn config_fragment_round_trips() {
        let mut p = MultithreadParams::default();
        p.mapping = ThreadMapping::Cyclic { procs: 4 };
        p.switch_cost = DurationNs::from_us(25.0);
        let mut q = MultithreadParams::default();
        for line in p.to_config_fragment().lines() {
            let (k, v) = line.split_once('=').unwrap();
            assert!(q.apply_config_key(k.trim(), v.trim()).unwrap());
        }
        assert_eq!(p, q);
    }

    #[test]
    fn unknown_key_passes_through() {
        let mut p = MultithreadParams::default();
        assert_eq!(p.apply_config_key("Bogus", "1"), Ok(false));
    }
}
