//! Representative-region simulation: the [`SimStrategy::Representative`]
//! execution path.
//!
//! Iterative programs (Mgrid, Poisson, Grid) repeat near-identical
//! barrier epochs hundreds of times; replaying every one is the
//! dominant cost of a paper-scale sweep.  This module applies
//! SimPoint-style region selection to barrier epochs: fingerprint each
//! epoch ([`extrap_trace::epoch_signatures`]-shaped signatures built
//! directly from the compiled op scripts), cluster the fingerprints
//! deterministically ([`extrap_trace::cluster_epochs`]), simulate **one
//! representative epoch per cluster** through the unmodified exact
//! engine, and compose full-run metrics from the cluster weights.
//!
//! # Fallback contract
//!
//! [`ReprPlan::from_program`] returns `None` — and the engine dispatch
//! falls back to the exact path, byte-identically — when the program
//! has fewer than [`MIN_EPOCHS`] epochs, when clustering would need
//! more than `max_clusters` clusters, or when the achieved repetition
//! is below [`MIN_REPETITION`] (simulating representatives would not
//! pay for itself).
//!
//! # What composition can and cannot preserve
//!
//! Weighted composition is exact for additive per-thread quantities
//! (compute, waits, remote counts) and for network volume, under the
//! assumption that same-cluster epochs simulate to the same cost.  It
//! cannot model cross-epoch network state; the analytic contention
//! model is memoryless per epoch, so this is lossless here, but the
//! refsim link-level path keeps state and therefore always runs exact.
//!
//! # Warmup: the leading barrier
//!
//! In the full run an epoch does not start from aligned threads — it
//! starts from the *staggered release* of the previous barrier, and at
//! high processor counts that stagger is a significant fraction of a
//! short epoch.  Each mini-program therefore opens with a warmup
//! barrier (the SimPoint warmup analog): all threads arrive aligned at
//! `t = 0`, the barrier completes, and its release reproduces the
//! steady-state stagger before the epoch body runs.  The cost of the
//! warmup itself is measured once by a barrier-only baseline program
//! and subtracted from every representative's metrics, so each cluster
//! contributes `weight x (representative - baseline)`.  The engine is
//! deterministic and the mini-run's prefix is identical to the
//! baseline run, so the subtraction never underflows.

use crate::engine::{self, ExtrapError, SimScratch};
use crate::metrics::Prediction;
use crate::network::state::NetworkStats;
use crate::params::{RecordMode, SimParams, SimStrategy};
use crate::processor::{CompiledProgram, CompiledThread, Op};
use extrap_time::{BarrierId, DurationNs, TimeNs};
use extrap_trace::{cluster_epochs, ClusterOptions, EpochSignature, EpochTerminator, TraceSet};

/// Programs with fewer epochs than this simulate exactly — there is
/// nothing to amortize.
pub const MIN_EPOCHS: usize = 4;

/// Minimum epochs-per-cluster ratio for a plan to be worthwhile;
/// below it the trace "repeats" too weakly and the run falls back.
pub const MIN_REPETITION: f64 = 2.0;

/// One epoch cluster: its representative's mini-program and how many
/// epochs of the full run it stands for.
#[derive(Clone, Debug)]
pub struct ReprCluster {
    /// Index of the representative epoch in the full program.
    pub rep_epoch: usize,
    /// Number of epochs this cluster covers.
    pub weight: u64,
    /// The representative epoch as a standalone compiled program.
    program: CompiledProgram,
}

impl ReprCluster {
    /// The representative epoch's standalone program.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }
}

/// A representative-region simulation plan: the clustering of a
/// program's barrier epochs plus one sliced mini-program per cluster.
///
/// A plan depends only on the compiled program and the strategy knobs —
/// not on machine parameters — so sweeps memoize it per trace (see
/// [`CachedTrace::repr_plan`](crate::sweep::CachedTrace::repr_plan))
/// and share it across every parameter set.
#[derive(Clone, Debug)]
pub struct ReprPlan {
    n_epochs: usize,
    assignment: Vec<u32>,
    clusters: Vec<ReprCluster>,
    /// Barrier-only program measuring the warmup barrier's cost (see
    /// the module docs); subtracted from every representative run.
    baseline: CompiledProgram,
}

impl ReprPlan {
    /// Fingerprints and clusters `program`'s barrier epochs and slices
    /// one mini-program per cluster.  `None` means "no exploitable
    /// repetition — simulate exactly" (see the module docs for the
    /// precise conditions).
    pub fn from_program(
        program: &CompiledProgram,
        max_clusters: u32,
        tolerance: f64,
    ) -> Option<ReprPlan> {
        if program.is_empty() {
            return None;
        }
        let spans: Vec<Vec<(usize, usize)>> = program
            .threads()
            .iter()
            .map(|t| epoch_spans(&t.ops))
            .collect();
        let n_epochs = spans[0].len();
        if n_epochs < MIN_EPOCHS || spans.iter().any(|s| s.len() != n_epochs) {
            return None;
        }

        let mut sigs = vec![EpochSignature::zero(EpochTerminator::Barrier); n_epochs];
        if let Some(last) = sigs.last_mut() {
            last.terminator = EpochTerminator::End;
        }
        for (t, thread) in program.threads().iter().enumerate() {
            for (e, &(start, end)) in spans[t].iter().enumerate() {
                accumulate_signature(&mut sigs[e], &thread.ops[start..end]);
            }
        }

        let opts = ClusterOptions {
            max_clusters: max_clusters as usize,
            tolerance,
        };
        let clustering = cluster_epochs(&sigs, &opts)?;
        if clustering.repetition() < MIN_REPETITION {
            return None;
        }

        let clusters = clustering
            .clusters
            .iter()
            .map(|c| ReprCluster {
                rep_epoch: c.rep,
                weight: c.weight,
                program: slice_epoch(program, &spans, c.rep),
            })
            .collect();
        let baseline = CompiledProgram::from_threads(
            program
                .threads()
                .iter()
                .map(|t| CompiledThread {
                    thread: t.thread,
                    ops: vec![Op::Barrier(BarrierId(0)), Op::End],
                    predicted_records: 4,
                })
                .collect(),
        );
        Some(ReprPlan {
            n_epochs,
            assignment: clustering.assignment,
            clusters,
            baseline,
        })
    }

    /// Total barrier epochs of the underlying program.
    pub fn n_epochs(&self) -> usize {
        self.n_epochs
    }

    /// `assignment[e]` is epoch `e`'s cluster index.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The clusters, in first-seen epoch order.
    pub fn clusters(&self) -> &[ReprCluster] {
        &self.clusters
    }

    /// The warmup-barrier baseline program subtracted from every
    /// representative run (see [`ReprPlan::run`]).  Exposed so static
    /// bound analysis can compose a matching envelope.
    pub fn baseline(&self) -> &CompiledProgram {
        &self.baseline
    }

    /// Epochs per simulated representative — the theoretical speedup
    /// bound of this plan.
    pub fn repetition(&self) -> f64 {
        self.n_epochs as f64 / self.clusters.len().max(1) as f64
    }

    /// Simulates each cluster's representative epoch through the exact
    /// engine and composes the full-run prediction from cluster
    /// weights.
    ///
    /// Composition rules: additive per-thread quantities (compute,
    /// service, waits, remote counts, end time) and network volume
    /// contribute `weight x (representative - baseline)` — the warmup
    /// barrier's cost never leaks into the total; `max_in_flight` takes
    /// the max across representatives; `barriers` is the full program's
    /// count; `events_dispatched` stays the *actual* (unweighted) event
    /// count across the baseline and representative runs, so the metric
    /// honestly reports what the representative simulation cost.  The
    /// predicted trace is always empty — representative simulation is a
    /// metrics-only strategy.
    pub fn run(
        &self,
        params: &SimParams,
        scratch: &mut SimScratch,
    ) -> Result<Prediction, ExtrapError> {
        // The mini-programs run the plain exact path: no recursion into
        // the strategy dispatch, no predicted-trace materialization.
        let mut run_params = params.clone();
        run_params.strategy = SimStrategy::Exact;
        run_params.record_mode = RecordMode::MetricsOnly;

        let base = engine::exact_compiled_scratch(&self.baseline, &run_params, scratch)?;
        let mut out = zeroed(&base);
        let mut events = base.events_dispatched;
        for cluster in &self.clusters {
            let pred = engine::exact_compiled_scratch(&cluster.program, &run_params, scratch)?;
            events += pred.events_dispatched;
            add_scaled_delta(&mut out, &pred, &base, cluster.weight);
        }
        out.barriers = self.n_epochs.saturating_sub(1);
        out.events_dispatched = events;
        out.predicted = TraceSet { threads: vec![] };
        Ok(out)
    }
}

/// Splits a thread's op script into per-epoch `[start, end)` spans.
/// Epoch `k`'s span ends just after its `Op::Barrier`; the final span
/// ends just before `Op::End`.
fn epoch_spans(ops: &[Op]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0usize;
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Barrier(_) => {
                spans.push((start, i + 1));
                start = i + 1;
            }
            Op::End => spans.push((start, i)),
            _ => {}
        }
    }
    spans
}

/// Folds an op slice into an epoch signature.  Barrier wait is a
/// simulation *output*, unknowable from the script, so it stays zero —
/// identical workloads produce identical waits, which is exactly the
/// clustering hypothesis.
fn accumulate_signature(sig: &mut EpochSignature, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Compute(d) => sig.compute += *d,
            Op::RemoteRead {
                declared_bytes,
                actual_bytes,
                ..
            } => {
                sig.remote_reads += 1;
                sig.declared_bytes += u64::from(*declared_bytes);
                sig.actual_bytes += u64::from(*actual_bytes);
            }
            Op::RemoteWrite {
                declared_bytes,
                actual_bytes,
                ..
            } => {
                sig.remote_writes += 1;
                sig.declared_bytes += u64::from(*declared_bytes);
                sig.actual_bytes += u64::from(*actual_bytes);
            }
            Op::Barrier(_) | Op::End => {}
        }
    }
}

/// Extracts epoch `e` of every thread as a standalone program: a
/// leading warmup barrier (`BarrierId(0)`, reproducing the staggered
/// start the epoch sees in the full run), the epoch's ops with its own
/// barrier remapped to `BarrierId(1)` (the coordinator sizes its state
/// by barrier index), and a trailing `Op::End`.
fn slice_epoch(
    program: &CompiledProgram,
    spans: &[Vec<(usize, usize)>],
    e: usize,
) -> CompiledProgram {
    let threads = program
        .threads()
        .iter()
        .enumerate()
        .map(|(t, thread)| {
            let (start, end) = spans[t][e];
            let mut ops = vec![Op::Barrier(BarrierId(0))];
            ops.extend(thread.ops[start..end].iter().map(|op| match op {
                Op::Barrier(_) => Op::Barrier(BarrierId(1)),
                other => *other,
            }));
            ops.push(Op::End);
            let predicted_records = 2 + ops
                .iter()
                .map(|op| match op {
                    Op::RemoteRead { .. } | Op::RemoteWrite { .. } => 1,
                    Op::Barrier(_) => 2,
                    Op::Compute(_) | Op::End => 0,
                })
                .sum::<usize>();
            CompiledThread {
                thread: thread.thread,
                ops,
                predicted_records,
            }
        })
        .collect();
    CompiledProgram::from_threads(threads)
}

/// `pred` with every composable metric cleared — the accumulator the
/// cluster deltas add into.  Thread identities, `n_threads`/`n_procs`
/// shape, and non-composable fields come from the baseline run.
fn zeroed(pred: &Prediction) -> Prediction {
    let mut out = pred.clone();
    for t in &mut out.per_thread {
        t.compute = DurationNs::ZERO;
        t.service = DurationNs::ZERO;
        t.send_overhead = DurationNs::ZERO;
        t.remote_wait = DurationNs::ZERO;
        t.barrier_wait = DurationNs::ZERO;
        t.sched_wait = DurationNs::ZERO;
        t.end_time = TimeNs::ZERO;
        t.remote_reads = 0;
        t.remote_writes = 0;
    }
    out.network = NetworkStats::default();
    out.barriers = 0;
    out.events_dispatched = 0;
    out.predicted = TraceSet { threads: vec![] };
    out
}

/// Adds `w x (pred - base)` into the running composition.  `base` is
/// the warmup-barrier baseline; its run is a prefix of `pred`'s (same
/// deterministic engine, identical opening ops), so each subtraction is
/// non-negative — `saturating_sub` merely documents that a zero floor
/// is the safe failure mode.
fn add_scaled_delta(acc: &mut Prediction, pred: &Prediction, base: &Prediction, w: u64) {
    for (a, (t, b)) in acc
        .per_thread
        .iter_mut()
        .zip(pred.per_thread.iter().zip(&base.per_thread))
    {
        a.compute += t.compute.saturating_sub(b.compute) * w;
        a.service += t.service.saturating_sub(b.service) * w;
        a.send_overhead += t.send_overhead.saturating_sub(b.send_overhead) * w;
        a.remote_wait += t.remote_wait.saturating_sub(b.remote_wait) * w;
        a.barrier_wait += t.barrier_wait.saturating_sub(b.barrier_wait) * w;
        a.sched_wait += t.sched_wait.saturating_sub(b.sched_wait) * w;
        a.end_time =
            TimeNs(a.end_time.as_ns() + t.end_time.as_ns().saturating_sub(b.end_time.as_ns()) * w);
        a.remote_reads += t.remote_reads.saturating_sub(b.remote_reads) * w;
        a.remote_writes += t.remote_writes.saturating_sub(b.remote_writes) * w;
    }
    acc.network.messages += pred.network.messages.saturating_sub(base.network.messages) * w;
    acc.network.bytes += pred.network.bytes.saturating_sub(base.network.bytes) * w;
    acc.network.max_in_flight = acc.network.max_in_flight.max(pred.network.max_in_flight);
    acc.network.factor_sum +=
        (pred.network.factor_sum - base.network.factor_sum).max(0.0) * w as f64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use extrap_trace::PhaseProgram;

    fn periodic(n_threads: usize, epochs: usize, pattern: &[u64]) -> CompiledProgram {
        let mut p = PhaseProgram::new(n_threads);
        for e in 0..epochs {
            p.push_uniform_phase(DurationNs(pattern[e % pattern.len()]));
        }
        let ts = extrap_trace::translate(&p.record(), Default::default()).unwrap();
        CompiledProgram::compile(&ts).unwrap()
    }

    #[test]
    fn plan_clusters_periodic_program() {
        let program = periodic(2, 20, &[1_000, 5_000]);
        let plan = ReprPlan::from_program(&program, 16, 0.05).unwrap();
        assert_eq!(plan.n_epochs(), 21);
        // Two alternating interior clusters plus the (empty) tail epoch.
        assert_eq!(plan.clusters().len(), 3);
        let total: u64 = plan.clusters().iter().map(|c| c.weight).sum();
        assert_eq!(total, 21);
        assert!(plan.repetition() > 5.0);
    }

    #[test]
    fn short_programs_refuse_a_plan() {
        let program = periodic(2, 2, &[1_000]);
        assert!(ReprPlan::from_program(&program, 16, 0.05).is_none());
    }

    #[test]
    fn non_repeating_programs_refuse_a_plan() {
        let pattern: Vec<u64> = (1..=12).map(|i| i * 7_919).collect();
        let program = periodic(2, 12, &pattern);
        assert!(ReprPlan::from_program(&program, 16, 0.001).is_none());
    }

    #[test]
    fn mini_programs_warm_up_end_and_remap_barriers() {
        let program = periodic(2, 10, &[1_000]);
        let plan = ReprPlan::from_program(&program, 16, 0.05).unwrap();
        for cluster in plan.clusters() {
            for thread in cluster.program().threads() {
                // Leading warmup barrier, remapped epoch barriers, End.
                assert_eq!(thread.ops.first(), Some(&Op::Barrier(BarrierId(0))));
                assert_eq!(thread.ops.last(), Some(&Op::End));
                for op in &thread.ops[1..] {
                    if let Op::Barrier(id) = op {
                        assert_eq!(*id, BarrierId(1));
                    }
                }
            }
        }
    }

    fn rel_err(a: TimeNs, b: TimeNs) -> f64 {
        (a.as_ns() as f64 - b.as_ns() as f64).abs() / b.as_ns() as f64
    }

    #[test]
    fn composed_metrics_match_exact_on_perfectly_periodic_trace() {
        let program = periodic(4, 30, &[2_000]);
        let params = SimParams::default();
        let exact = engine::run_compiled(&program, &params).unwrap();

        let plan = ReprPlan::from_program(&program, 16, 0.05).unwrap();
        let composed = plan.run(&params, &mut SimScratch::default()).unwrap();

        assert_eq!(composed.n_threads, exact.n_threads);
        assert_eq!(composed.barriers, exact.barriers);
        // Additive workload metrics compose exactly.
        assert_eq!(composed.network.messages, exact.network.messages);
        assert_eq!(composed.network.bytes, exact.network.bytes);
        for (c, e) in composed.per_thread.iter().zip(&exact.per_thread) {
            assert_eq!(c.compute, e.compute);
        }
        // Timing composes approximately: a mini-epoch starts its threads
        // aligned at t=0, while the full run's epoch starts are skewed
        // by the previous barrier's staggered release — a constant
        // per-epoch offset, well under 1% here.
        assert!(rel_err(composed.exec_time(), exact.exec_time()) < 0.01);
        // The whole point: far fewer simulator events.
        assert!(composed.events_dispatched < exact.events_dispatched / 2);
    }

    #[test]
    fn strategy_dispatch_uses_the_plan() {
        let program = periodic(2, 24, &[3_000]);
        let mut params = SimParams::default();
        let exact = engine::run_compiled(&program, &params).unwrap();
        params.strategy = SimStrategy::representative();
        let repr = engine::run_compiled(&program, &params).unwrap();
        assert!(rel_err(repr.exec_time(), exact.exec_time()) < 0.01);
        assert!(repr.events_dispatched < exact.events_dispatched);
        assert!(repr.predicted.threads.is_empty());
    }
}
